//! Durability experiment: log-append overhead and recovery time.
//!
//! Part one runs the same batch ingest four times — durability off, WAL
//! with per-record fsync, WAL with per-batch fsync, and WAL plus periodic
//! checkpoints — and reports the wall-clock cost of each policy next to
//! the log traffic it produced. Part two recovers prefixes of the longest
//! log (25% / 50% / 100% of its records) and reports recovery time as a
//! function of log length, the claim being that recovery cost is linear
//! in the un-checkpointed suffix, not in database size.

use crate::setup::Setup;
use crate::table::Table;
use nebula_core::{distort, Nebula, NebulaConfig, VerificationBounds};
use nebula_durable::{recover, recover_from_bytes, wal, Durability, DurabilityOptions, SyncPolicy};
use std::path::PathBuf;
use std::time::Instant;

/// One ingest scenario's cost and log traffic.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Scenario label.
    pub scenario: String,
    /// Annotations ingested.
    pub total: usize,
    /// Batch wall time in milliseconds.
    pub wall_ms: f64,
    /// WAL records appended over the whole run (0 when durability is off).
    pub records: u64,
    /// Bytes left in the WAL at the end of the run.
    pub wal_bytes: u64,
    /// Checkpoint watermark at the end of the run.
    pub watermark: u64,
    /// Wall time of a full recovery from the scenario's directory.
    pub recover_ms: f64,
    /// Records replayed by that recovery.
    pub replayed: usize,
}

/// One recovery-vs-log-length measurement.
#[derive(Debug, Clone)]
pub struct RecoveryCell {
    /// Fraction of the log recovered.
    pub fraction: &'static str,
    /// Records in the prefix.
    pub records: usize,
    /// Bytes in the prefix.
    pub bytes: usize,
    /// Recovery wall time in milliseconds.
    pub wall_ms: f64,
}

fn scenario_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("nebula-bench-durability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn engine(setup: &Setup) -> Nebula {
    setup.engine(NebulaConfig { bounds: VerificationBounds::new(0.4, 0.85), ..Default::default() })
}

/// Run one ingest scenario; `options` of `None` means durability off.
fn scenario(
    setup: &Setup,
    max_bytes: usize,
    label: &str,
    options: Option<DurabilityOptions>,
) -> (Cell, Option<PathBuf>) {
    // Fresh store per scenario so earlier runs don't seed the ACG.
    let bytes = annostore::snapshot::save(&setup.bundle.annotations);
    let mut store = annostore::snapshot::load(&bytes).expect("snapshot round-trip");
    let mut nebula = engine(setup);
    let items: Vec<_> = setup
        .set(max_bytes)
        .annotations
        .iter()
        .map(|wa| (wa.annotation.clone(), distort(&wa.ideal, 1).0))
        .collect();

    let dir = options.map(|opts| {
        let dir = scenario_dir(label);
        let durability = Durability::begin(&dir, &setup.bundle.db, &store, opts)
            .expect("fresh durability directory");
        nebula.set_mutation_sink(Some(Box::new(durability)));
        dir
    });

    let t0 = Instant::now();
    let report = nebula.process_batch(&setup.bundle.db, &mut store, &items);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    drop(nebula.take_mutation_sink());

    let mut cell = Cell {
        scenario: label.to_string(),
        total: report.total(),
        wall_ms,
        records: 0,
        wal_bytes: 0,
        watermark: 0,
        recover_ms: 0.0,
        replayed: 0,
    };
    if let Some(dir) = &dir {
        cell.wal_bytes = std::fs::metadata(dir.join(wal::WAL_FILE)).map(|m| m.len()).unwrap_or(0);
        let t1 = Instant::now();
        let recovered = recover(dir).expect("clean directory recovers");
        cell.recover_ms = t1.elapsed().as_secs_f64() * 1e3;
        cell.replayed = recovered.replayed;
        cell.watermark = recovered.watermark;
        // LSNs are dense from 1, so the last LSN is the total record count.
        cell.records = recovered.last_lsn;
    }
    (cell, dir)
}

/// Run the four ingest scenarios, then recovery-vs-log-length over the
/// longest log. Returns `(ingest cells, recovery cells)`.
pub fn run(setup: &Setup, max_bytes: usize) -> (Vec<Cell>, Vec<RecoveryCell>) {
    let (off, _) = scenario(setup, max_bytes, "off", None);
    let (sync_each, dir_each) = scenario(
        setup,
        max_bytes,
        "wal-sync-each",
        Some(DurabilityOptions { sync: SyncPolicy::EveryRecord, checkpoint_every: None }),
    );
    let (sync_batch, dir_batch) = scenario(
        setup,
        max_bytes,
        "wal-sync-batch",
        Some(DurabilityOptions { sync: SyncPolicy::Batch, checkpoint_every: None }),
    );
    let (ckpt, dir_ckpt) = scenario(
        setup,
        max_bytes,
        "wal-ckpt-64",
        Some(DurabilityOptions { sync: SyncPolicy::Batch, checkpoint_every: Some(64) }),
    );

    // Recovery cost vs log length, on the longest (never-checkpointed) log.
    let mut recovery = Vec::new();
    if let Some(dir) = &dir_batch {
        let image = nebula_durable::checkpoint::list_checkpoints(dir)
            .ok()
            .and_then(|list| list.last().map(|(_, p)| p.clone()))
            .and_then(|p| std::fs::read(p).ok())
            .expect("scenario wrote a checkpoint");
        let wal_bytes = std::fs::read(dir.join(wal::WAL_FILE)).unwrap_or_default();
        let (records, _) = wal::read_wal(&wal_bytes);
        for (fraction, share) in [("25%", 4), ("50%", 2), ("100%", 1)] {
            let count = records.len() / share;
            let end = if count == 0 { 0 } else { records[count - 1].end_offset };
            let t0 = Instant::now();
            let recovered =
                recover_from_bytes(Some(&image), &wal_bytes[..end]).expect("prefix recovers");
            recovery.push(RecoveryCell {
                fraction,
                records: recovered.replayed,
                bytes: end,
                wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            });
        }
    }

    for dir in [dir_each, dir_batch, dir_ckpt].into_iter().flatten() {
        let _ = std::fs::remove_dir_all(dir);
    }
    (vec![off, sync_each, sync_batch, ckpt], recovery)
}

/// Render the ingest-overhead grid.
pub fn table(cells: &[Cell]) -> Table {
    let mut t = Table::new(
        "Durability: batch ingest overhead by policy".to_string(),
        &[
            "scenario",
            "annotations",
            "wall_ms",
            "records",
            "wal_bytes",
            "watermark",
            "recover_ms",
            "replayed",
        ],
    );
    for c in cells {
        t.row(vec![
            c.scenario.clone(),
            c.total.to_string(),
            format!("{:.1}", c.wall_ms),
            c.records.to_string(),
            c.wal_bytes.to_string(),
            c.watermark.to_string(),
            format!("{:.1}", c.recover_ms),
            c.replayed.to_string(),
        ]);
    }
    t
}

/// Render the recovery-vs-log-length table.
pub fn recovery_table(cells: &[RecoveryCell]) -> Table {
    let mut t = Table::new(
        "Durability: recovery time vs log length".to_string(),
        &["log fraction", "records", "bytes", "recover_ms"],
    );
    for c in cells {
        t.row(vec![
            c.fraction.to_string(),
            c.records.to_string(),
            c.bytes.to_string(),
            format!("{:.1}", c.wall_ms),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_workload::DatasetSpec;

    #[test]
    fn policies_ingest_identically_and_recovery_scales_with_the_log() {
        let setup = Setup::new("test", &DatasetSpec::tiny());
        let (cells, recovery) = run(&setup, 100);
        assert_eq!(cells.len(), 4);
        // Durability never changes what the batch produces.
        for c in &cells[1..] {
            assert_eq!(c.total, cells[0].total, "{}", c.scenario);
            assert!(c.records > 0, "{} logged records", c.scenario);
        }
        assert_eq!(cells[0].records, 0, "off scenario stays off the log");
        // All WAL-only scenarios append the same record stream.
        assert_eq!(cells[1].records, cells[2].records);
        // The checkpointing scenario truncates: its WAL is the smallest.
        assert!(cells[3].wal_bytes <= cells[2].wal_bytes, "{cells:?}");
        // Recovery sweep covers growing prefixes of the same log.
        assert_eq!(recovery.len(), 3);
        assert!(recovery[0].records <= recovery[1].records);
        assert!(recovery[1].records <= recovery[2].records);
        assert_eq!(recovery[2].records as u64, cells[2].records);
        let rendered = table(&cells).render();
        assert!(rendered.contains("wal-sync-each"));
        assert!(recovery_table(&recovery).render().contains("100%"));
    }
}

//! `reproduce` — regenerate every table and figure of the Nebula paper.
//!
//! ```text
//! cargo run -p nebula-bench --release --bin reproduce -- [--fast] <experiment>
//!
//! experiments:
//!   fig11a fig11b fig11c     query generation (time / counts / quality)
//!   fig12a fig12b            execution time / produced tuples
//!   fig13                    multi-query shared execution
//!   fig14a fig14b            focal-spreading search
//!   fig15a fig15b            verification & assessment criteria
//!   naive-assess             §8.2 naive-baseline assessment
//!   profile                  Figure 7 hop profile + K selection
//!   durability               WAL append overhead + recovery vs log length
//!   overload                 concurrent ingest under arrival pressure
//!   replication              WAL shipping under transport faults
//!   sharding                 scatter-gather ingest across shard counts
//!   repair                   reconvergence cost vs divergence depth
//!   recovery                 backup cost + restore time vs archive depth
//!   paging                   paged storage vs RAM across pool sizes
//!   tracing                  trace overhead + critical-path attribution
//!   ablation-acg ablation-querygen ablation-stability
//!   all                      everything above
//! ```
//!
//! `--fast` shrinks the datasets ~10× (shapes preserved) for quick runs.
//!
//! `--metrics[=DIR]` turns on the telemetry subsystem and writes one JSON
//! snapshot per experiment (work counters, stage latency histograms,
//! recent pipeline events) to `DIR/<experiment>.json` (default `metrics/`).
//!
//! `--traces[=DIR]` turns on end-to-end tracing and writes the span trees
//! retained at the end of each experiment (full JSON, durations included)
//! to `DIR/<experiment>.trace.json` (default `traces/`).

use nebula_bench::{
    ablation, degradation, durability, fig11, fig12, fig13, fig14, fig15, overload, paging,
    pipeline, profile, recovery, repair, replication, sharding, tracing, Scale, Setup,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let scale = if fast { Scale::Fast } else { Scale::Full };
    let metrics_dir: Option<std::path::PathBuf> = args.iter().find_map(|a| {
        a.strip_prefix("--metrics").map(|rest| match rest.strip_prefix('=') {
            Some(dir) if !dir.is_empty() => dir.into(),
            _ => std::path::PathBuf::from("metrics"),
        })
    });
    if metrics_dir.is_some() {
        nebula_obs::set_enabled(true);
    }
    let traces_dir: Option<std::path::PathBuf> = args.iter().find_map(|a| {
        a.strip_prefix("--traces").map(|rest| match rest.strip_prefix('=') {
            Some(dir) if !dir.is_empty() => dir.into(),
            _ => std::path::PathBuf::from("traces"),
        })
    });
    if traces_dir.is_some() {
        nebula_obs::trace::set_enabled(true);
    }
    let experiments: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();
    let chosen: Vec<&str> = if experiments.is_empty() || experiments.contains(&"all") {
        vec![
            "fig11a",
            "fig11b",
            "fig11c",
            "fig12a",
            "fig12b",
            "fig13",
            "fig14a",
            "fig14b",
            "fig15a",
            "fig15b",
            "naive-assess",
            "profile",
            "pipeline",
            "degradation",
            "durability",
            "overload",
            "replication",
            "sharding",
            "repair",
            "recovery",
            "paging",
            "tracing",
            "ablation-acg",
            "ablation-learn",
            "ablation-querygen",
            "ablation-stability",
        ]
    } else if experiments.contains(&"help") {
        println!(
            "experiments: fig11a fig11b fig11c fig12a fig12b fig13 fig14a fig14b \
             fig15a fig15b naive-assess profile pipeline degradation durability \
             overload replication sharding repair recovery paging tracing ablation-acg \
             ablation-learn ablation-querygen ablation-stability all"
        );
        return;
    } else {
        experiments
    };

    eprintln!("[reproduce] scale = {scale:?}");

    // Lazy per-dataset setups (only built when an experiment needs them).
    let mut large: Option<Setup> = None;
    let mut small_mid: Option<(Setup, Setup)> = None;
    let mut bounds_cache: Option<nebula_core::VerificationBounds> = None;

    macro_rules! get_large {
        () => {{
            if large.is_none() {
                eprintln!("[reproduce] generating D_large ...");
                large = Some(Setup::large(scale));
            }
            large.as_ref().unwrap()
        }};
    }

    for exp in chosen {
        // Per-experiment metrics: diff against the counters accumulated so
        // far, so each sidecar reports only its own experiment's work.
        let baseline = metrics_dir.as_ref().map(|_| nebula_obs::snapshot());
        if traces_dir.is_some() {
            // Fresh ring per experiment so each sidecar carries only its
            // own span trees; the experiment may toggle tracing itself
            // (the `tracing` experiment does), so re-arm it here.
            nebula_obs::trace::set_enabled(true);
            nebula_obs::trace::reset();
        }
        match exp {
            "fig11a" | "fig11b" | "fig11c" => {
                let setup = get_large!();
                let cells = fig11::run(setup);
                match exp {
                    "fig11a" => fig11::table_a(&cells).print(),
                    "fig11b" => fig11::table_b(&cells).print(),
                    _ => fig11::table_c(&cells).print(),
                }
            }
            "fig12a" | "fig12b" => {
                if small_mid.is_none() {
                    eprintln!("[reproduce] generating D_small and D_mid ...");
                    small_mid = Some((Setup::small(scale), Setup::mid(scale)));
                }
                let mut cells = Vec::new();
                {
                    let (small, mid) = small_mid.as_ref().unwrap();
                    cells.extend(fig12::run_dataset(small));
                    cells.extend(fig12::run_dataset(mid));
                }
                cells.extend(fig12::run_dataset(get_large!()));
                if exp == "fig12a" {
                    fig12::table_a(&cells).print();
                } else {
                    fig12::table_b(&cells).print();
                }
            }
            "fig13" => {
                let setup = get_large!();
                fig13::table(&fig13::run_dataset(setup)).print();
            }
            "fig14a" | "fig14b" => {
                let setup = get_large!();
                let cells = fig14::run_dataset(setup, 100);
                if exp == "fig14a" {
                    fig14::table_a(&cells).print();
                } else {
                    fig14::table_b(&cells).print();
                }
            }
            "fig15a" | "fig15b" | "naive-assess" | "ablation-acg" | "ablation-learn" => {
                let setup = get_large!();
                if bounds_cache.is_none() {
                    eprintln!("[reproduce] tuning bounds via BoundsSetting() ...");
                    let training = if fast { 30 } else { 90 };
                    let (bounds, report) = fig15::tune_bounds(setup, training);
                    eprintln!(
                        "[reproduce] bounds = ({:.2}, {:.2}); training avg F_N={:.2} F_P={:.2} M_F={:.1}",
                        bounds.lower, bounds.upper, report.f_n, report.f_p, report.m_f
                    );
                    bounds_cache = Some(bounds);
                }
                let bounds = bounds_cache.as_ref().unwrap();
                match exp {
                    "fig15a" => {
                        let cells = fig15::run_with_bounds(setup, bounds);
                        fig15::table(
                            "Figure 15(a): assessment criteria, auto-adjusted bounds",
                            bounds,
                            &cells,
                        )
                        .print();
                    }
                    "fig15b" => {
                        let extreme = nebula_core::VerificationBounds::new(0.5, 0.5);
                        let cells = fig15::run_with_bounds(setup, &extreme);
                        fig15::table(
                            "Figure 15(b): extreme case — no expert involvement",
                            &extreme,
                            &cells,
                        )
                        .print();
                    }
                    "naive-assess" => {
                        let (report, tuples) = fig15::naive_assessment(setup, bounds);
                        fig15::naive_table(&report, tuples).print();
                    }
                    "ablation-acg" => {
                        ablation::acg_ablation(setup, bounds).print();
                    }
                    _ => {
                        ablation::learn_ablation(setup, bounds).print();
                    }
                }
            }
            "pipeline" => {
                eprintln!("[reproduce] generating D_small ...");
                let setup = Setup::small(scale);
                let report = pipeline::run(&setup, 100);
                pipeline::table(setup.name, 100, &report).print();
            }
            "degradation" => {
                eprintln!("[reproduce] generating D_small ...");
                let setup = Setup::small(scale);
                degradation::table(&degradation::run(&setup, 100)).print();
            }
            "durability" => {
                eprintln!("[reproduce] generating D_small ...");
                let setup = Setup::small(scale);
                let (cells, recovery) = durability::run(&setup, 100);
                durability::table(&cells).print();
                durability::recovery_table(&recovery).print();
            }
            "overload" => {
                eprintln!("[reproduce] generating D_small ...");
                let setup = Setup::small(scale);
                overload::table(&overload::run(&setup, if fast { 40 } else { 96 })).print();
            }
            "replication" => {
                eprintln!("[reproduce] generating D_small ...");
                let setup = Setup::small(scale);
                replication::table(&replication::run(&setup, if fast { 30 } else { 80 })).print();
            }
            "sharding" => {
                eprintln!("[reproduce] generating D_small ...");
                let setup = Setup::small(scale);
                sharding::table(&sharding::run(&setup, if fast { 24 } else { 64 })).print();
            }
            "repair" => {
                repair::table(&repair::run(if fast { 48 } else { 160 })).print();
            }
            "recovery" => {
                recovery::table(&recovery::run(if fast { 2_000 } else { 8_000 })).print();
            }
            "paging" => {
                paging::table(&paging::run(if fast { 200 } else { 800 })).print();
            }
            "tracing" => {
                eprintln!("[reproduce] generating D_small ...");
                let setup = Setup::small(scale);
                let overhead = tracing::run_overhead(&setup, if fast { 2 } else { 5 });
                tracing::overhead_table(&overhead).print();
                let cells = tracing::run_attribution(&setup, if fast { 24 } else { 64 });
                tracing::attribution_table(&cells).print();
            }
            "profile" => {
                let setup = get_large!();
                let p = profile::build_profile(setup, if fast { 30 } else { 120 });
                profile::table(&p).print();
                profile::k_selection_table(&p).print();
            }
            "ablation-querygen" => {
                ablation::querygen_ablation(get_large!()).print();
            }
            "ablation-stability" => {
                ablation::stability_ablation(get_large!()).print();
            }
            other => {
                eprintln!("[reproduce] unknown experiment `{other}` — try `help`");
            }
        }
        if let (Some(dir), Some(base)) = (&metrics_dir, baseline) {
            let diff = nebula_obs::snapshot().diff(&base);
            if let Err(e) = std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::write(dir.join(format!("{exp}.json")), diff.render_json()))
            {
                eprintln!("[reproduce] failed to write metrics sidecar for {exp}: {e}");
            } else {
                eprintln!(
                    "[reproduce] metrics sidecar → {}",
                    dir.join(format!("{exp}.json")).display()
                );
            }
        }
        if let Some(dir) = &traces_dir {
            let traces = nebula_obs::trace::traces();
            let json = nebula_obs::trace::render_traces_json(&traces, true);
            let path = dir.join(format!("{exp}.trace.json"));
            if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, json))
            {
                eprintln!("[reproduce] failed to write trace sidecar for {exp}: {e}");
            } else {
                eprintln!(
                    "[reproduce] trace sidecar → {} ({} trace(s))",
                    path.display(),
                    traces.len()
                );
            }
        }
    }
}

//! # nebula-bench — the evaluation harness
//!
//! Regenerates every table and figure of the Nebula paper's §8
//! evaluation. Each `figNN` module computes one experiment and returns
//! structured rows; the `reproduce` binary prints them in the same shape
//! the paper reports. Criterion micro-benches (in `benches/`) cover the
//! hot paths with statistical rigor.
//!
//! Run `cargo run -p nebula-bench --release --bin reproduce -- help` for
//! the experiment list.

pub mod ablation;
pub mod degradation;
pub mod durability;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod overload;
pub mod paging;
pub mod pipeline;
pub mod profile;
pub mod recovery;
pub mod repair;
pub mod replication;
pub mod setup;
pub mod sharding;
pub mod table;
pub mod tracing;

pub use setup::{Scale, Setup};

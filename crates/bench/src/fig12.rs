//! Figure 12 — execution of the keyword queries.
//!
//! (a) total execution time: the Naive whole-annotation baseline vs
//!     Nebula-0.6 vs Nebula-0.8, across `D_small` / `D_mid` / `D_large`
//!     and every `L^m` group (no multi-query sharing — each query runs in
//!     isolation, as the paper's default);
//! (b) the number of produced candidate tuples for the same
//!     configurations.

use crate::setup::Setup;
use crate::table::{fmt_duration, Table};
use nebula_core::{generate_queries, identify_related_tuples, ExecutionConfig, QueryGenConfig};
use std::time::Instant;
use textsearch::{naive_search, ExecutionMode, KeywordSearch, SearchOptions};

/// The approaches Figure 12 compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Approach {
    /// Whole annotation as one keyword query (§4).
    Naive,
    /// Nebula with cutoff ε (no sharing).
    Nebula {
        /// ε × 10 (6 or 8), to keep the type `Eq`/hashable.
        epsilon_tenths: u8,
    },
}

impl Approach {
    /// Display label.
    pub fn label(&self) -> String {
        match self {
            Approach::Naive => "Naive".to_string(),
            Approach::Nebula { epsilon_tenths } => {
                format!("Nebula-0.{epsilon_tenths}")
            }
        }
    }

    /// The ε value for Nebula variants.
    pub fn epsilon(&self) -> Option<f64> {
        match self {
            Approach::Naive => None,
            Approach::Nebula { epsilon_tenths } => Some(*epsilon_tenths as f64 / 10.0),
        }
    }
}

/// One measured cell of Figure 12.
#[derive(Debug, Clone)]
pub struct ExecutionCell {
    /// Dataset name.
    pub dataset: &'static str,
    /// Approach.
    pub approach: Approach,
    /// Size group.
    pub max_bytes: usize,
    /// Average execution seconds per annotation.
    pub seconds: f64,
    /// Average number of produced tuples per annotation.
    pub tuples: f64,
}

/// Run Figure 12 over one dataset for all approaches and `L^m` groups.
pub fn run_dataset(setup: &Setup) -> Vec<ExecutionCell> {
    let approaches = [
        Approach::Naive,
        Approach::Nebula { epsilon_tenths: 6 },
        Approach::Nebula { epsilon_tenths: 8 },
    ];
    let engine = KeywordSearch::new(SearchOptions {
        vocab: setup.bundle.meta.to_vocabulary(&setup.bundle.db),
        ..Default::default()
    });
    let mut cells = Vec::new();
    for approach in approaches {
        for set in &setup.workload {
            let mut seconds = 0.0;
            let mut tuples = 0.0;
            let n = set.annotations.len() as f64;
            for wa in &set.annotations {
                match approach {
                    Approach::Naive => {
                        let t0 = Instant::now();
                        let (hits, _) = naive_search(&setup.bundle.db, &wa.annotation.text)
                            .expect("ungoverned search cannot fail");
                        seconds += t0.elapsed().as_secs_f64() / n;
                        tuples += hits.len() as f64 / n;
                    }
                    Approach::Nebula { .. } => {
                        let config = QueryGenConfig {
                            epsilon: approach.epsilon().expect("nebula approach"),
                            ..Default::default()
                        };
                        // Query generation is measured in Figure 11; here
                        // we time execution only, per the paper.
                        let queries = generate_queries(
                            &setup.bundle.db,
                            &setup.bundle.meta,
                            &wa.annotation.text,
                            &config,
                        );
                        let focal: Vec<relstore::TupleId> =
                            wa.ideal.iter().take(1).copied().collect();
                        let t0 = Instant::now();
                        let (cands, _) = identify_related_tuples(
                            &setup.bundle.db,
                            &engine,
                            &queries,
                            &focal,
                            Some(&setup.acg),
                            &ExecutionConfig {
                                mode: ExecutionMode::Isolated,
                                acg_adjustment: true,
                                ..Default::default()
                            },
                        )
                        .expect("ungoverned search cannot fail");
                        seconds += t0.elapsed().as_secs_f64() / n;
                        tuples += cands.len() as f64 / n;
                    }
                }
            }
            cells.push(ExecutionCell {
                dataset: setup.name,
                approach,
                max_bytes: set.max_bytes,
                seconds,
                tuples,
            });
        }
    }
    cells
}

/// Which measurement a table renders.
#[derive(Clone, Copy)]
enum Metric {
    Seconds,
    Tuples,
}

impl Metric {
    fn value(self, c: &ExecutionCell) -> f64 {
        match self {
            Metric::Seconds => c.seconds,
            Metric::Tuples => c.tuples,
        }
    }

    fn format(self, c: &ExecutionCell) -> String {
        match self {
            Metric::Seconds => fmt_duration(c.seconds),
            Metric::Tuples => format!("{:.0}", c.tuples),
        }
    }
}

/// Render Figure 12(a): execution time.
pub fn table_a(cells: &[ExecutionCell]) -> Table {
    let mut t = Table::new(
        "Figure 12(a): keyword-query execution time (no sharing)",
        &["dataset", "L^m", "Naive", "Nebula-0.6", "Nebula-0.8", "naive/0.6 ratio"],
    );
    fill(&mut t, cells, Metric::Seconds);
    t
}

/// Render Figure 12(b): produced tuples.
pub fn table_b(cells: &[ExecutionCell]) -> Table {
    let mut t = Table::new(
        "Figure 12(b): number of produced candidate tuples",
        &["dataset", "L^m", "Naive", "Nebula-0.6", "Nebula-0.8", "naive/0.6 ratio"],
    );
    fill(&mut t, cells, Metric::Tuples);
    t
}

fn fill(t: &mut Table, cells: &[ExecutionCell], metric: Metric) {
    let mut keys: Vec<(&'static str, usize)> =
        cells.iter().map(|c| (c.dataset, c.max_bytes)).collect();
    keys.sort_by_key(|(d, m)| (dataset_order(d), *m));
    keys.dedup();
    for (dataset, m) in keys {
        let find = |a: Approach| {
            cells.iter().find(|c| c.dataset == dataset && c.max_bytes == m && c.approach == a)
        };
        let naive = find(Approach::Naive);
        let n06 = find(Approach::Nebula { epsilon_tenths: 6 });
        let n08 = find(Approach::Nebula { epsilon_tenths: 8 });
        let cell =
            |c: Option<&ExecutionCell>| c.map(|c| metric.format(c)).unwrap_or_else(|| "-".into());
        let ratio = match (naive, n06) {
            (Some(nv), Some(n6)) if metric.value(n6) > 0.0 => {
                format!("{:.0}x", metric.value(nv) / metric.value(n6))
            }
            _ => "-".into(),
        };
        t.row(vec![
            dataset.to_string(),
            format!("L^{m}"),
            cell(naive),
            cell(n06),
            cell(n08),
            ratio,
        ]);
    }
}

fn dataset_order(name: &str) -> u8 {
    match name {
        "D_small" => 0,
        "D_mid" => 1,
        "D_large" => 2,
        _ => 3,
    }
}

//! Smoke tests: every experiment harness runs end to end on a tiny
//! dataset and produces structurally sane results.

use nebula_bench::{ablation, fig11, fig12, fig13, fig14, fig15, profile, Setup};
use nebula_workload::DatasetSpec;

fn tiny_setup() -> Setup {
    Setup::new("D_tiny", &DatasetSpec::tiny())
}

#[test]
fn fig11_cells_are_sane() {
    let setup = tiny_setup();
    let cells = fig11::run(&setup);
    // 3 ε values × 4 L^m groups.
    assert_eq!(cells.len(), 12);
    for c in &cells {
        assert!(c.queries >= 0.0);
        assert!((0.0..=1.0).contains(&c.fp));
        assert!((0.0..=1.0).contains(&c.fn_));
        assert!(c.t_maps >= 0.0 && c.t_adjust >= 0.0 && c.t_queries >= 0.0);
    }
    // Monotonicity: ε=0.4 generates at least as many queries as ε=0.8
    // for the same L^m.
    for m in [50usize, 100, 500, 1000] {
        let q =
            |eps: f64| cells.iter().find(|c| c.epsilon == eps && c.max_bytes == m).unwrap().queries;
        assert!(q(0.4) >= q(0.8), "ε=0.4 ⊇ ε=0.8 at L^{m}");
    }
    // Tables render.
    assert!(fig11::table_a(&cells).render().contains("Figure 11(a)"));
    assert!(fig11::table_b(&cells).render().contains("Figure 11(b)"));
    assert!(fig11::table_c(&cells).render().contains("Figure 11(c)"));
}

#[test]
fn fig12_naive_returns_more_tuples() {
    let setup = tiny_setup();
    let cells = fig12::run_dataset(&setup);
    assert_eq!(cells.len(), 12); // 3 approaches × 4 sets
    for m in [50usize, 100, 500, 1000] {
        let naive = cells
            .iter()
            .find(|c| c.max_bytes == m && c.approach == fig12::Approach::Naive)
            .unwrap();
        let nebula = cells
            .iter()
            .find(|c| {
                c.max_bytes == m && c.approach == fig12::Approach::Nebula { epsilon_tenths: 6 }
            })
            .unwrap();
        assert!(
            naive.tuples > nebula.tuples,
            "naive must flood at L^{m}: {} vs {}",
            naive.tuples,
            nebula.tuples
        );
    }
    assert!(fig12::table_a(&cells).render().contains("Naive"));
    assert!(fig12::table_b(&cells).render().contains("ratio"));
}

#[test]
fn fig13_sharing_preserves_output() {
    let setup = tiny_setup();
    let cells = fig13::run_dataset(&setup);
    assert_eq!(cells.len(), 8); // 2 ε × 4 sets
    for c in &cells {
        assert!(c.outputs_match, "sharing must not change results");
        assert!(c.isolated >= 0.0 && c.shared >= 0.0);
    }
    assert!(fig13::table(&cells).render().contains("speedup"));
}

#[test]
fn fig14_minidb_grows_with_k() {
    let setup = tiny_setup();
    let cells = fig14::run_dataset(&setup, 100);
    assert_eq!(cells.len(), 12); // 3 Δ × (basic + 3 K)
    for delta in [1usize, 2, 3] {
        let sizes: Vec<f64> = [2usize, 3, 4]
            .iter()
            .map(|k| {
                cells.iter().find(|c| c.delta == delta && c.k == Some(*k)).unwrap().minidb_tuples
            })
            .collect();
        assert!(sizes[0] <= sizes[1] && sizes[1] <= sizes[2], "miniDB monotone in K");
    }
    assert!(fig14::table_a(&cells).render().contains("miniDB"));
    assert!(fig14::table_b(&cells).render().contains("reduction"));
}

#[test]
fn fig15_bounds_and_assessment() {
    let setup = tiny_setup();
    let (bounds, training_report) = fig15::tune_bounds(&setup, 9);
    assert!(bounds.lower <= bounds.upper);
    assert!((0.0..=1.0).contains(&training_report.f_n));
    let cells = fig15::run_with_bounds(&setup, &bounds);
    assert_eq!(cells.len(), 8);
    for c in &cells {
        assert!((0.0..=1.0).contains(&c.report.f_n));
        assert!((0.0..=1.0).contains(&c.report.f_p));
    }
    let (naive_report, tuples) = fig15::naive_assessment(&setup, &bounds);
    assert!(tuples > 0.0);
    assert!((0.0..=1.0).contains(&naive_report.f_p));
    assert!(fig15::table("t", &bounds, &cells).render().contains("F_N"));
}

#[test]
fn profile_and_ablations_run() {
    let setup = tiny_setup();
    let p = profile::build_profile(&setup, 9);
    assert!(p.total() > 0, "profile collects observations");
    assert!(profile::table(&p).render().contains("coverage"));
    assert!(profile::k_selection_table(&p).render().contains("selected K"));

    let bounds = nebula_core::VerificationBounds::new(0.4, 0.8);
    assert!(ablation::acg_ablation(&setup, &bounds).render().contains("direct edges"));
    assert!(ablation::querygen_ablation(&setup).render().contains("backward"));
    assert!(ablation::stability_ablation(&setup).render().contains("μ"));
    assert!(ablation::learn_ablation(&setup, &bounds).render().contains("learned"));
}

//! Criterion bench for Figure 12: query execution — the Naive
//! whole-annotation baseline vs Nebula's generated queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nebula_bench::{Scale, Setup};
use nebula_core::{generate_queries, identify_related_tuples, ExecutionConfig, QueryGenConfig};
use textsearch::{naive_search, ExecutionMode, KeywordSearch, SearchOptions};

fn bench_execution(c: &mut Criterion) {
    let setup = Setup::small(Scale::Fast);
    let engine = KeywordSearch::new(SearchOptions {
        vocab: setup.bundle.meta.to_vocabulary(&setup.bundle.db),
        ..Default::default()
    });
    let mut group = c.benchmark_group("fig12_execution");
    for max_bytes in [50usize, 100] {
        let wa = &setup.set(max_bytes).annotations[0];
        group.bench_with_input(
            BenchmarkId::new("naive", format!("L{max_bytes}")),
            &wa.annotation.text,
            |b, text| b.iter(|| naive_search(&setup.bundle.db, text)),
        );
        let config = QueryGenConfig { epsilon: 0.6, ..Default::default() };
        let queries =
            generate_queries(&setup.bundle.db, &setup.bundle.meta, &wa.annotation.text, &config);
        let focal = &wa.ideal[..1];
        group.bench_with_input(
            BenchmarkId::new("nebula-0.6", format!("L{max_bytes}")),
            &queries,
            |b, queries| {
                b.iter(|| {
                    identify_related_tuples(
                        &setup.bundle.db,
                        &engine,
                        queries,
                        focal,
                        Some(&setup.acg),
                        &ExecutionConfig {
                            mode: ExecutionMode::Isolated,
                            acg_adjustment: true,
                            ..Default::default()
                        },
                    )
                    .expect("ungoverned search cannot fail")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_execution);
criterion_main!(benches);

//! Criterion bench for Figure 11: keyword-query generation throughput
//! across ε thresholds and annotation sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nebula_bench::{Scale, Setup};
use nebula_core::{generate_queries, QueryGenConfig};

fn bench_querygen(c: &mut Criterion) {
    let setup = Setup::large(Scale::Fast);
    let mut group = c.benchmark_group("fig11_querygen");
    for epsilon in [0.4, 0.6, 0.8] {
        for max_bytes in [50usize, 1000] {
            let set = setup.set(max_bytes);
            let text = &set.annotations[0].annotation.text;
            let config = QueryGenConfig { epsilon, ..Default::default() };
            group.bench_with_input(
                BenchmarkId::new(format!("eps{epsilon:.1}"), format!("L{max_bytes}")),
                text,
                |b, text| {
                    b.iter(|| generate_queries(&setup.bundle.db, &setup.bundle.meta, text, &config))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_querygen);
criterion_main!(benches);

//! Criterion bench for Figure 14: full-database search vs the K-hop
//! focal-spreading miniDB search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nebula_bench::{Scale, Setup};
use nebula_core::{
    build_minidb, distort, generate_queries, identify_related_tuples, translate_candidates,
    ExecutionConfig, QueryGenConfig,
};
use textsearch::{ExecutionMode, KeywordSearch, SearchOptions};

fn bench_focal(c: &mut Criterion) {
    let setup = Setup::large(Scale::Fast);
    let config = QueryGenConfig { epsilon: 0.6, ..Default::default() };
    let wa = &setup.set(100).annotations[0];
    let (focal, _) = distort(&wa.ideal, 2);
    let queries =
        generate_queries(&setup.bundle.db, &setup.bundle.meta, &wa.annotation.text, &config);
    let exec = ExecutionConfig {
        mode: ExecutionMode::Isolated,
        acg_adjustment: true,
        ..Default::default()
    };
    let engine = KeywordSearch::new(SearchOptions {
        vocab: setup.bundle.meta.to_vocabulary(&setup.bundle.db),
        ..Default::default()
    });

    let mut group = c.benchmark_group("fig14_focal");
    group.bench_function(BenchmarkId::new("basic-full", "L100"), |b| {
        b.iter(|| {
            identify_related_tuples(
                &setup.bundle.db,
                &engine,
                &queries,
                &focal,
                Some(&setup.acg),
                &exec,
            )
            .expect("ungoverned search cannot fail")
        })
    });
    for k in [2usize, 3, 4] {
        group.bench_function(BenchmarkId::new("focal-spread", format!("K{k}")), |b| {
            b.iter(|| {
                let (mini, back) = build_minidb(&setup.bundle.db, &setup.acg, &focal, k);
                let mini_engine = KeywordSearch::new(SearchOptions {
                    vocab: setup.bundle.meta.to_vocabulary(&mini),
                    ..Default::default()
                });
                let (cands, _) = identify_related_tuples(
                    &mini,
                    &mini_engine,
                    &queries,
                    &[],
                    None,
                    &ExecutionConfig { acg_adjustment: false, ..exec },
                )
                .expect("ungoverned search cannot fail");
                translate_candidates(cands, &back)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_focal);
criterion_main!(benches);

//! Criterion bench for Figure 13: isolated vs shared multi-query
//! execution of one annotation's whole query group.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nebula_bench::{Scale, Setup};
use nebula_core::{generate_queries, identify_related_tuples, ExecutionConfig, QueryGenConfig};
use textsearch::{ExecutionMode, KeywordSearch, SearchOptions};

fn bench_sharing(c: &mut Criterion) {
    let setup = Setup::large(Scale::Fast);
    let engine = KeywordSearch::new(SearchOptions {
        vocab: setup.bundle.meta.to_vocabulary(&setup.bundle.db),
        ..Default::default()
    });
    let config = QueryGenConfig { epsilon: 0.6, ..Default::default() };
    let wa = &setup.set(1000).annotations[0];
    let queries =
        generate_queries(&setup.bundle.db, &setup.bundle.meta, &wa.annotation.text, &config);
    let focal = &wa.ideal[..1];

    let mut group = c.benchmark_group("fig13_sharing");
    for (label, mode) in [("isolated", ExecutionMode::Isolated), ("shared", ExecutionMode::Shared)]
    {
        group.bench_with_input(BenchmarkId::new(label, "L1000"), &queries, |b, queries| {
            b.iter(|| {
                identify_related_tuples(
                    &setup.bundle.db,
                    &engine,
                    queries,
                    focal,
                    Some(&setup.acg),
                    &ExecutionConfig { mode, acg_adjustment: true, ..Default::default() },
                )
                .expect("ungoverned search cannot fail")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sharing);
criterion_main!(benches);

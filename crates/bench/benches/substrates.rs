//! Micro-benchmarks of the from-scratch substrates: the pattern matcher,
//! the inverted index, and the snapshot format.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nebula_core::Pattern;
use nebula_workload::{generate_dataset, DatasetSpec};
use relstore::snapshot;

fn bench_patterns(c: &mut Criterion) {
    let gid = Pattern::compile("JW[0-9]{4}").unwrap();
    let name = Pattern::compile("[a-z]{3}[A-Z]").unwrap();
    let backtrack = Pattern::compile(".*c[a-z]{2,4}x?").unwrap();
    let mut group = c.benchmark_group("patterns");
    group.bench_function("gid_hit", |b| b.iter(|| gid.matches(std::hint::black_box("JW0042"))));
    group.bench_function("gid_miss", |b| b.iter(|| gid.matches(std::hint::black_box("JW00422"))));
    group.bench_function("name_hit", |b| b.iter(|| name.matches(std::hint::black_box("grpC"))));
    group.bench_function("backtracking", |b| {
        b.iter(|| backtrack.matches(std::hint::black_box("aaacabcdabcdabcd")))
    });
    group.finish();
}

fn bench_inverted_index(c: &mut Criterion) {
    let bundle = generate_dataset(&DatasetSpec::small(), 1);
    let mut group = c.benchmark_group("inverted_index");
    group.bench_function("lookup_rare", |b| {
        b.iter(|| bundle.db.inverted_index().lookup(std::hint::black_box("jw0042")))
    });
    group.bench_function("lookup_common", |b| {
        b.iter(|| bundle.db.inverted_index().lookup(std::hint::black_box("expression")))
    });
    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let bundle = generate_dataset(&DatasetSpec::tiny(), 1);
    let bytes = snapshot::save(&bundle.db);
    let mut group = c.benchmark_group("snapshot");
    group.bench_function("save_tiny", |b| b.iter(|| snapshot::save(&bundle.db)));
    group.bench_function("load_tiny", |b| {
        b.iter_batched(
            || bytes.clone(),
            |bytes| snapshot::load(&bytes).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_patterns, bench_inverted_index, bench_snapshot);
criterion_main!(benches);

//! Injectable sleeper: real `thread::sleep` in production, a virtual
//! accumulator in tests.
//!
//! The engine's retry backoff and the fault plan's latency injection both
//! park the calling thread. Under test (and under the virtual mode the
//! ingest worker pool enables for deterministic runs) that wall-clock time
//! is pure waste — the *amount* slept is what matters, not the elapsed
//! time. `sleep` therefore consults a process-global mode flag: real mode
//! forwards to `std::thread::sleep`, virtual mode adds the duration to a
//! monotonic nanosecond accumulator that tests can read back via
//! [`virtual_ns`].
//!
//! The mode is process-global (not thread-local) on purpose: a worker pool
//! enables it once and every worker thread — including ones spawned after
//! the flag was set — observes it without per-thread plumbing. Correctness
//! never depends on actually sleeping, so a concurrently-running real-mode
//! test that momentarily observes virtual mode only runs faster.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

static VIRTUAL: AtomicBool = AtomicBool::new(false);
static VIRTUAL_NS: AtomicU64 = AtomicU64::new(0);

/// Switch the process-wide clock between real (`false`, the default) and
/// virtual (`true`) mode.
///
/// Engaging virtual mode also installs this clock as the trace layer's
/// ambient time source (idempotent): while virtual mode is on, traced
/// span durations come from the virtual accumulator instead of the wall
/// clock, so they are as deterministic as the sleeps that feed them.
pub fn set_virtual(on: bool) {
    if on {
        nebula_obs::trace::install_time_source(virtual_probe);
    }
    VIRTUAL.store(on, Ordering::Relaxed);
}

/// The [`nebula_obs::trace::TimeSource`] probe: claim the clock only
/// while virtual mode is on.
fn virtual_probe() -> Option<u64> {
    is_virtual().then(virtual_ns)
}

/// Is the clock currently virtual?
pub fn is_virtual() -> bool {
    VIRTUAL.load(Ordering::Relaxed)
}

/// Park for `d` — really (real mode) or by advancing the virtual
/// accumulator (virtual mode).
pub fn sleep(d: Duration) {
    if d.is_zero() {
        return;
    }
    if VIRTUAL.load(Ordering::Relaxed) {
        VIRTUAL_NS.fetch_add(d.as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
    } else {
        std::thread::sleep(d);
    }
}

/// Total nanoseconds "slept" in virtual mode since the last
/// [`reset_virtual`].
pub fn virtual_ns() -> u64 {
    VIRTUAL_NS.load(Ordering::Relaxed)
}

/// Zero the virtual accumulator (mode flag is untouched).
pub fn reset_virtual() {
    VIRTUAL_NS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_sleep_accumulates_without_blocking() {
        set_virtual(true);
        reset_virtual();
        let start = std::time::Instant::now();
        sleep(Duration::from_secs(3600));
        sleep(Duration::from_nanos(25));
        assert!(start.elapsed() < Duration::from_secs(5));
        assert_eq!(virtual_ns(), 3_600_000_000_025);
        reset_virtual();
        assert_eq!(virtual_ns(), 0);
        set_virtual(false);
    }

    #[test]
    fn zero_sleep_is_free_in_both_modes() {
        sleep(Duration::ZERO);
        set_virtual(true);
        reset_virtual();
        sleep(Duration::ZERO);
        assert_eq!(virtual_ns(), 0);
        set_virtual(false);
    }
}

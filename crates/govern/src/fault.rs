//! Deterministic, seeded fault injection.
//!
//! A [`FaultPlan`] describes *where* and *how often* faults fire; the plan
//! carries its own xorshift64* stream so that a given seed replays the exact
//! same fault sequence, independent of wall clock or thread scheduling.

use std::fmt;
use std::time::Duration;

/// The injection points wired into the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A relstore/executor query errors out before producing results.
    Query,
    /// An inverted-index probe fails; executors fall back to a scan.
    IndexProbe,
    /// Artificial latency at a pipeline stage boundary.
    Latency,
    /// A panic at a pipeline stage boundary (tests batch containment).
    Panic,
    /// A WAL append is cut short at byte `k` and the partial bytes stay on
    /// disk, as if the process lost power mid-write.
    TornWrite,
    /// A write call persists fewer bytes than asked and reports it, so the
    /// caller can repair by truncating back to the pre-write offset.
    ShortWrite,
    /// An `fsync` fails after the bytes were handed to the OS.
    FsyncFail,
    /// One bit of a checkpoint image flips before it reaches disk.
    BitFlip,
    /// One bit of the at-rest WAL file flips on disk (silent media rot,
    /// found by the anti-entropy scrubber rather than at recovery).
    WalRot,
    /// One bit of the at-rest checkpoint file flips on disk (silent media
    /// rot, found by the anti-entropy scrubber rather than at recovery).
    CheckpointRot,
    /// A replication transport frame vanishes in flight.
    NetDrop,
    /// A replication transport frame is held back before delivery.
    NetDelay,
    /// A replication transport frame overtakes an earlier one.
    NetReorder,
    /// A replication transport frame is delivered twice.
    NetDuplicate,
    /// A scatter-gather shard probe errors out while a sibling shard
    /// serves it (the shard answers with an error instead of hits).
    ShardProbe,
    /// A shard boundary-edge apply fails before the batch is replayed
    /// (the shard nacks and the origin retries).
    ShardApply,
    /// A buffer-pool page read fails before the page leaves the kernel
    /// (transient; the pool retries the syscall).
    PageRead,
    /// A page write-back fails mid-syscall during the in-place apply
    /// phase (the shadow image on disk makes the apply replayable).
    PageWrite,
    /// An `fsync` of the page file or its shadow image fails.
    PageFsync,
    /// One bit of an at-rest page flips on disk (silent media rot, found
    /// by the page scrubber's CRC walk rather than at read time).
    PageRot,
    /// An archive-segment write is cut short mid-write, leaving a torn
    /// file in the backup directory (detected by the backup scrubber and
    /// by checkpoint refusing to truncate the WAL).
    ArchiveWrite,
    /// One bit of an at-rest archive file flips on disk (silent media
    /// rot in the backup directory, found by the backup scrubber).
    ArchiveRot,
    /// An `fsync` of an archived segment fails after the write.
    ArchiveFsync,
    /// A write returns no-space (`ENOSPC`); write paths must degrade to
    /// a typed wedge instead of panicking.
    Enospc,
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultSite::Query => "query",
            FaultSite::IndexProbe => "index-probe",
            FaultSite::Latency => "latency",
            FaultSite::Panic => "panic",
            FaultSite::TornWrite => "torn-write",
            FaultSite::ShortWrite => "short-write",
            FaultSite::FsyncFail => "fsync-fail",
            FaultSite::BitFlip => "bit-flip",
            FaultSite::WalRot => "wal-rot",
            FaultSite::CheckpointRot => "checkpoint-rot",
            FaultSite::NetDrop => "net-drop",
            FaultSite::NetDelay => "net-delay",
            FaultSite::NetReorder => "net-reorder",
            FaultSite::NetDuplicate => "net-duplicate",
            FaultSite::ShardProbe => "shard-probe",
            FaultSite::ShardApply => "shard-apply",
            FaultSite::PageRead => "page-read",
            FaultSite::PageWrite => "page-write",
            FaultSite::PageFsync => "page-fsync",
            FaultSite::PageRot => "page-rot",
            FaultSite::ArchiveWrite => "archive-write",
            FaultSite::ArchiveRot => "archive-rot",
            FaultSite::ArchiveFsync => "archive-fsync",
            FaultSite::Enospc => "enospc",
        };
        write!(f, "{s}")
    }
}

/// A fault that actually fired at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// Where it fired.
    pub site: FaultSite,
    /// Transient faults are retryable; permanent ones are not.
    pub transient: bool,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.transient { "transient" } else { "permanent" };
        write!(f, "injected {kind} fault at {} site", self.site)
    }
}

impl std::error::Error for InjectedFault {}

/// Probability + flavor for one site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Firing probability in `[0, 1]`.
    pub rate: f64,
    /// Whether fired faults are transient (retryable).
    pub transient: bool,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec { rate: 0.0, transient: true }
    }
}

/// Firing rates for the seeded I/O fault sites exercised by the durability
/// layer. All rates are probabilities in `[0, 1]` and default to zero, so
/// plans built before the durability layer existed behave identically.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IoFaultSpec {
    /// Torn-write rate ([`FaultSite::TornWrite`]).
    pub torn_write: f64,
    /// Short-write rate ([`FaultSite::ShortWrite`]).
    pub short_write: f64,
    /// Fsync-failure rate ([`FaultSite::FsyncFail`]).
    pub fsync_fail: f64,
    /// Checkpoint bit-flip rate ([`FaultSite::BitFlip`]).
    pub bit_flip: f64,
    /// At-rest WAL bit-rot rate ([`FaultSite::WalRot`]).
    pub wal_rot: f64,
    /// At-rest checkpoint bit-rot rate ([`FaultSite::CheckpointRot`]).
    pub checkpoint_rot: f64,
    /// Torn archive-segment write rate ([`FaultSite::ArchiveWrite`]).
    pub archive_write: f64,
    /// At-rest archive bit-rot rate ([`FaultSite::ArchiveRot`]).
    pub archive_rot: f64,
    /// Archive fsync-failure rate ([`FaultSite::ArchiveFsync`]).
    pub archive_fsync: f64,
    /// No-space (`ENOSPC`) rate ([`FaultSite::Enospc`]).
    pub enospc: f64,
}

/// Firing rates for the seeded replication-transport fault sites. All
/// rates are probabilities in `[0, 1]` and default to zero, so plans built
/// before the replication layer existed behave identically.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NetFaultSpec {
    /// Frame-drop rate ([`FaultSite::NetDrop`]).
    pub drop: f64,
    /// Frame-delay rate ([`FaultSite::NetDelay`]).
    pub delay: f64,
    /// Frame-reorder rate ([`FaultSite::NetReorder`]).
    pub reorder: f64,
    /// Frame-duplication rate ([`FaultSite::NetDuplicate`]).
    pub duplicate: f64,
}

/// Firing rates for the seeded page-store fault sites. All rates are
/// probabilities in `[0, 1]` and default to zero, so plans built before
/// the page store existed behave identically.
///
/// The page store rolls these against its **own** [`FaultPlan`] (the
/// owned-plan discipline [`FaultPlan::roll_net`] established), so page
/// I/O faults never shift the engine's thread-local fault stream — the
/// property the mem-vs-paged digest-identity tests rely on.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PageFaultSpec {
    /// Page-read failure rate ([`FaultSite::PageRead`]).
    pub read: f64,
    /// Page write-back failure rate ([`FaultSite::PageWrite`]).
    pub write: f64,
    /// Page-file fsync failure rate ([`FaultSite::PageFsync`]).
    pub fsync: f64,
    /// At-rest page bit-rot rate ([`FaultSite::PageRot`]).
    pub rot: f64,
    /// Disk-full rate for page-file writes ([`FaultSite::Enospc`]).
    pub enospc: f64,
}

/// A page-store fault that fired, with its seed-derived parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageFault {
    /// The read syscall fails; no bytes are delivered. Transient — the
    /// buffer pool retries it.
    ReadError,
    /// The write-back syscall fails mid-apply; the on-disk page may hold
    /// any mix of old and new bytes. The shadow image makes the apply
    /// replayable, so recovery re-drives it.
    WriteError,
    /// The `fsync` call fails after the bytes were handed to the OS.
    FsyncFail,
    /// Bit number `bit` (little-endian within the page) flips at rest.
    Rot {
        /// Flipped bit index in `[0, page_len * 8)`.
        bit: usize,
    },
    /// The filesystem reports no space left (`ENOSPC`) before any byte of
    /// the commit reaches disk. The store must wedge with a typed error —
    /// the old page image stays intact.
    NoSpace,
}

/// A transport fault that fired, with its seed-derived parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// The frame is dropped on the floor; the shipping protocol must
    /// retransmit.
    Drop,
    /// The frame is held for `ticks` delivery polls before it becomes
    /// deliverable (head-of-line: later frames on the link wait behind it
    /// unless a reorder moved them ahead).
    Delay {
        /// Polls to hold the frame, in `[1, 4]`.
        ticks: u32,
    },
    /// The frame is inserted *ahead* of the frames already queued on its
    /// link, overtaking them.
    Reorder,
    /// The frame is enqueued twice.
    Duplicate,
}

/// An I/O fault that fired, with its seed-derived parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// Only the first `keep` bytes of the buffer reach the file; the rest
    /// vanish as if the process died mid-write. `keep` is always strictly
    /// less than the buffer length.
    TornWrite {
        /// Bytes that made it to disk.
        keep: usize,
    },
    /// The write persists `keep` bytes and reports the shortfall, so the
    /// caller can truncate back and surface a clean error.
    ShortWrite {
        /// Bytes that made it to disk.
        keep: usize,
    },
    /// The `fsync` call fails after the write.
    FsyncFail,
    /// Bit number `bit` (little-endian within the buffer) flips before the
    /// buffer is written.
    BitFlip {
        /// Flipped bit index in `[0, len * 8)`.
        bit: usize,
    },
    /// The filesystem reports no space left (`ENOSPC`); nothing reaches
    /// the file. Callers must wedge with a typed error, not panic.
    NoSpace,
}

/// A seeded schedule of faults across all injection sites.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed the plan was built from (for display/reproduction).
    pub seed: u64,
    /// Query-execution errors.
    pub query: FaultSpec,
    /// Index-probe failure rate (always recoverable via scan fallback).
    pub index_probe: f64,
    /// Stage-boundary latency rate.
    pub latency: f64,
    /// Latency injected per firing.
    pub latency_per_site: Duration,
    /// Stage-boundary panic rate.
    pub panic_rate: f64,
    /// Seeded I/O fault rates for the durability layer.
    pub io: IoFaultSpec,
    /// Seeded transport fault rates for the replication layer.
    pub net: NetFaultSpec,
    /// Shard-layer fault rate (probe serving and boundary-edge applies).
    pub shard: f64,
    /// Seeded page-store fault rates for the paged storage backend.
    pub pages: PageFaultSpec,
    state: u64,
}

impl FaultPlan {
    /// A plan with the given seed and all rates zero.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            query: FaultSpec::default(),
            index_probe: 0.0,
            latency: 0.0,
            latency_per_site: Duration::from_micros(50),
            panic_rate: 0.0,
            io: IoFaultSpec::default(),
            net: NetFaultSpec::default(),
            shard: 0.0,
            pages: PageFaultSpec::default(),
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    /// Every non-panic site fires at `rate`; query faults are transient.
    pub fn uniform(seed: u64, rate: f64) -> FaultPlan {
        let mut plan = FaultPlan::new(seed);
        plan.query = FaultSpec { rate, transient: true };
        plan.index_probe = rate;
        plan.latency = rate;
        plan
    }

    /// Errors at every injection site: transient query errors and
    /// index-probe failures always fire, every stage boundary stalls.
    /// Panics stay off — they are opt-in via [`FaultPlan::with_panics`].
    pub fn hostile(seed: u64) -> FaultPlan {
        let mut plan = FaultPlan::new(seed);
        plan.query = FaultSpec { rate: 1.0, transient: true };
        plan.index_probe = 1.0;
        plan.latency = 1.0;
        plan
    }

    /// Builder: set the query-error rate and flavor.
    pub fn with_query(mut self, rate: f64, transient: bool) -> FaultPlan {
        self.query = FaultSpec { rate, transient };
        self
    }

    /// Builder: set the index-probe failure rate.
    pub fn with_index_probe(mut self, rate: f64) -> FaultPlan {
        self.index_probe = rate;
        self
    }

    /// Builder: set the stage-latency rate and per-firing delay.
    pub fn with_latency(mut self, rate: f64, delay: Duration) -> FaultPlan {
        self.latency = rate;
        self.latency_per_site = delay;
        self
    }

    /// Builder: set the stage-panic rate.
    pub fn with_panics(mut self, rate: f64) -> FaultPlan {
        self.panic_rate = rate;
        self
    }

    /// Builder: set the torn-write rate.
    pub fn with_torn_writes(mut self, rate: f64) -> FaultPlan {
        self.io.torn_write = rate;
        self
    }

    /// Builder: set the short-write rate.
    pub fn with_short_writes(mut self, rate: f64) -> FaultPlan {
        self.io.short_write = rate;
        self
    }

    /// Builder: set the fsync-failure rate.
    pub fn with_fsync_failures(mut self, rate: f64) -> FaultPlan {
        self.io.fsync_fail = rate;
        self
    }

    /// Builder: set the checkpoint bit-flip rate.
    pub fn with_bit_flips(mut self, rate: f64) -> FaultPlan {
        self.io.bit_flip = rate;
        self
    }

    /// Builder: set the at-rest bit-rot rate for both storage artifacts
    /// (the WAL file and the checkpoint file).
    pub fn with_bit_rot(mut self, wal: f64, checkpoint: f64) -> FaultPlan {
        self.io.wal_rot = wal;
        self.io.checkpoint_rot = checkpoint;
        self
    }

    /// Builder: set the three archive fault rates (torn segment writes,
    /// at-rest archive rot, archive fsync failures) at once.
    pub fn with_archive_faults(mut self, write: f64, rot: f64, fsync: f64) -> FaultPlan {
        self.io.archive_write = write;
        self.io.archive_rot = rot;
        self.io.archive_fsync = fsync;
        self
    }

    /// Builder: set the no-space (`ENOSPC`) rate.
    pub fn with_enospc(mut self, rate: f64) -> FaultPlan {
        self.io.enospc = rate;
        self
    }

    /// Builder: set all four replication-transport fault rates at once.
    pub fn with_net(mut self, drop: f64, delay: f64, reorder: f64, duplicate: f64) -> FaultPlan {
        self.net = NetFaultSpec { drop, delay, reorder, duplicate };
        self
    }

    /// Builder: set the shard-layer fault rate (probe serving and
    /// boundary-edge applies both roll against it).
    pub fn with_shard(mut self, rate: f64) -> FaultPlan {
        self.shard = rate;
        self
    }

    /// Roll the seeded stream at one transport fault site. Valid sites are
    /// the four `Net*` variants; anything else never fires.
    ///
    /// Every call consumes exactly **two** draws (the Bernoulli roll and
    /// the parameter draw) whether or not the fault fires, so toggling one
    /// site's rate never shifts the stream seen by the other sites — the
    /// same discipline `inject_io` follows.
    pub fn roll_net(&mut self, site: FaultSite) -> Option<NetFault> {
        let rate = match site {
            FaultSite::NetDrop => self.net.drop,
            FaultSite::NetDelay => self.net.delay,
            FaultSite::NetReorder => self.net.reorder,
            FaultSite::NetDuplicate => self.net.duplicate,
            _ => 0.0,
        };
        let fired = self.roll(rate);
        let param = self.draw();
        if !fired {
            return None;
        }
        match site {
            FaultSite::NetDrop => Some(NetFault::Drop),
            FaultSite::NetDelay => Some(NetFault::Delay { ticks: (param % 4) as u32 + 1 }),
            FaultSite::NetReorder => Some(NetFault::Reorder),
            FaultSite::NetDuplicate => Some(NetFault::Duplicate),
            _ => None,
        }
    }

    /// Builder: set the four core page-store fault rates at once (the
    /// disk-full rate is set separately via
    /// [`FaultPlan::with_page_enospc`]).
    pub fn with_pages(mut self, read: f64, write: f64, fsync: f64, rot: f64) -> FaultPlan {
        self.pages = PageFaultSpec { read, write, fsync, rot, ..self.pages };
        self
    }

    /// Builder: set the page-store disk-full rate.
    pub fn with_page_enospc(mut self, rate: f64) -> FaultPlan {
        self.pages.enospc = rate;
        self
    }

    /// Roll the seeded stream at one page-store fault site. Valid sites
    /// are the four `Page*` variants plus [`FaultSite::Enospc`]; anything
    /// else never fires. `page_len` bounds the bit index a
    /// [`PageFault::Rot`] can name.
    ///
    /// Every call consumes exactly **two** draws (the Bernoulli roll and
    /// the parameter draw) whether or not the fault fires, so toggling one
    /// site's rate never shifts the stream seen by the other sites — the
    /// same discipline [`FaultPlan::roll_net`] and `inject_io` follow.
    pub fn roll_page(&mut self, site: FaultSite, page_len: usize) -> Option<PageFault> {
        let rate = match site {
            FaultSite::PageRead => self.pages.read,
            FaultSite::PageWrite => self.pages.write,
            FaultSite::PageFsync => self.pages.fsync,
            FaultSite::PageRot => self.pages.rot,
            FaultSite::Enospc => self.pages.enospc,
            _ => 0.0,
        };
        let fired = self.roll(rate);
        let param = self.draw();
        if !fired {
            return None;
        }
        match site {
            FaultSite::PageRead => Some(PageFault::ReadError),
            FaultSite::PageWrite => Some(PageFault::WriteError),
            FaultSite::PageFsync => Some(PageFault::FsyncFail),
            FaultSite::PageRot => {
                Some(PageFault::Rot { bit: (param as usize) % (page_len * 8).max(1) })
            }
            FaultSite::Enospc => Some(PageFault::NoSpace),
            _ => None,
        }
    }

    /// Human-readable one-liner for `SHOW FAULTS`.
    pub fn describe(&self) -> String {
        format!(
            "seed={} query={:.2}{} index-probe={:.2} latency={:.2}@{}us panic={:.2} \
             io[torn={:.2} short={:.2} fsync={:.2} flip={:.2} rot={:.2}/{:.2}] \
             net[drop={:.2} delay={:.2} reorder={:.2} dup={:.2}] shard={:.2} \
             page[read={:.2} write={:.2} fsync={:.2} rot={:.2} enospc={:.2}] \
             archive[write={:.2} rot={:.2} fsync={:.2}] enospc={:.2}",
            self.seed,
            self.query.rate,
            if self.query.transient { " (transient)" } else { " (permanent)" },
            self.index_probe,
            self.latency,
            self.latency_per_site.as_micros(),
            self.panic_rate,
            self.io.torn_write,
            self.io.short_write,
            self.io.fsync_fail,
            self.io.bit_flip,
            self.io.wal_rot,
            self.io.checkpoint_rot,
            self.net.drop,
            self.net.delay,
            self.net.reorder,
            self.net.duplicate,
            self.shard,
            self.pages.read,
            self.pages.write,
            self.pages.fsync,
            self.pages.rot,
            self.pages.enospc,
            self.io.archive_write,
            self.io.archive_rot,
            self.io.archive_fsync,
            self.io.enospc,
        )
    }

    /// xorshift64* step; the plan is its own RNG so injection order is a
    /// pure function of the seed and the call sequence.
    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// One Bernoulli draw at `rate`. Always consumes a draw so that toggling
    /// one site's rate does not shift the stream seen by other sites.
    pub(crate) fn roll(&mut self, rate: f64) -> bool {
        let draw = (self.next() >> 11) as f64 / (1u64 << 53) as f64;
        rate > 0.0 && draw < rate
    }

    /// One raw 64-bit draw, used to derive fault parameters (torn-write
    /// offsets, flipped bit indexes) from the same seeded stream.
    pub(crate) fn draw(&mut self) -> u64 {
        self.next()
    }
}

/// Per-thread tally of injection activity, for tests and `SHOW FAULTS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Query errors injected.
    pub query_errors: u64,
    /// Index-probe failures injected.
    pub index_probe_failures: u64,
    /// Latency stalls injected.
    pub latency_injections: u64,
    /// Panics injected.
    pub panics: u64,
    /// Torn writes injected.
    pub torn_writes: u64,
    /// Short writes injected.
    pub short_writes: u64,
    /// Fsync failures injected.
    pub fsync_failures: u64,
    /// Checkpoint bit flips injected.
    pub bit_flips: u64,
    /// At-rest WAL bit-rot flips injected.
    pub wal_rots: u64,
    /// At-rest checkpoint bit-rot flips injected.
    pub checkpoint_rots: u64,
    /// Faults absorbed without surfacing an error (e.g. scan fallback).
    pub recovered: u64,
    /// Retry attempts made against transient faults.
    pub retries: u64,
    /// Shard-layer faults injected (probe serving + boundary applies).
    pub shard_faults: u64,
    /// Torn archive-segment writes injected.
    pub archive_writes: u64,
    /// At-rest archive bit-rot flips injected.
    pub archive_rots: u64,
    /// Archive fsync failures injected.
    pub archive_fsyncs: u64,
    /// No-space (`ENOSPC`) faults injected.
    pub enospc_faults: u64,
}

impl FaultStats {
    /// Total faults injected across all sites.
    pub fn total_injected(&self) -> u64 {
        self.query_errors
            + self.index_probe_failures
            + self.latency_injections
            + self.panics
            + self.torn_writes
            + self.short_writes
            + self.fsync_failures
            + self.bit_flips
            + self.wal_rots
            + self.checkpoint_rots
            + self.archive_writes
            + self.archive_rots
            + self.archive_fsyncs
            + self.enospc_faults
    }
}

/// Bounded exponential backoff for retrying transient faults.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first (so 3 = 1 try + 2 retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(5),
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (0-based): base * 2^attempt,
    /// capped at `max_backoff`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.base_backoff.checked_mul(factor).map_or(self.max_backoff, |d| d.min(self.max_backoff))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roll_net_replays_identically_for_a_seed() {
        let sites = [
            FaultSite::NetDrop,
            FaultSite::NetDelay,
            FaultSite::NetReorder,
            FaultSite::NetDuplicate,
        ];
        let mut a = FaultPlan::new(0xF00D).with_net(0.3, 0.3, 0.3, 0.3);
        let mut b = FaultPlan::new(0xF00D).with_net(0.3, 0.3, 0.3, 0.3);
        for i in 0..256 {
            let site = sites[i % sites.len()];
            assert_eq!(a.roll_net(site), b.roll_net(site), "call {i}");
        }
    }

    #[test]
    fn roll_net_consumes_fixed_draws_regardless_of_rates() {
        // With drop off in one plan and on in the other, the *other*
        // sites must still see the same stream: every roll_net call
        // consumes exactly two draws.
        let mut quiet = FaultPlan::new(42).with_net(0.0, 0.5, 0.5, 0.5);
        let mut noisy = FaultPlan::new(42).with_net(1.0, 0.5, 0.5, 0.5);
        for _ in 0..64 {
            assert_eq!(quiet.roll_net(FaultSite::NetDrop), None);
            assert!(noisy.roll_net(FaultSite::NetDrop).is_some());
            assert_eq!(quiet.roll_net(FaultSite::NetDelay), noisy.roll_net(FaultSite::NetDelay));
            assert_eq!(
                quiet.roll_net(FaultSite::NetReorder),
                noisy.roll_net(FaultSite::NetReorder)
            );
        }
    }

    #[test]
    fn delay_ticks_stay_in_range() {
        let mut plan = FaultPlan::new(7).with_net(0.0, 1.0, 0.0, 0.0);
        for _ in 0..128 {
            match plan.roll_net(FaultSite::NetDelay) {
                Some(NetFault::Delay { ticks }) => assert!((1..=4).contains(&ticks)),
                other => panic!("delay at rate 1.0 must fire: {other:?}"),
            }
        }
    }

    #[test]
    fn non_net_sites_never_fire_in_roll_net() {
        let mut plan = FaultPlan::hostile(1).with_net(1.0, 1.0, 1.0, 1.0);
        assert_eq!(plan.roll_net(FaultSite::Query), None);
        assert_eq!(plan.roll_net(FaultSite::TornWrite), None);
    }

    #[test]
    fn roll_page_replays_identically_for_a_seed() {
        let sites =
            [FaultSite::PageRead, FaultSite::PageWrite, FaultSite::PageFsync, FaultSite::PageRot];
        let mut a = FaultPlan::new(0xBEEF).with_pages(0.3, 0.3, 0.3, 0.3);
        let mut b = FaultPlan::new(0xBEEF).with_pages(0.3, 0.3, 0.3, 0.3);
        for i in 0..256 {
            let site = sites[i % sites.len()];
            assert_eq!(a.roll_page(site, 4096), b.roll_page(site, 4096), "call {i}");
        }
    }

    #[test]
    fn roll_page_consumes_fixed_draws_regardless_of_rates() {
        // With read faults off in one plan and on in the other, the
        // *other* sites must still see the same stream: every roll_page
        // call consumes exactly two draws.
        let mut quiet = FaultPlan::new(42).with_pages(0.0, 0.5, 0.5, 0.5);
        let mut noisy = FaultPlan::new(42).with_pages(1.0, 0.5, 0.5, 0.5);
        for _ in 0..64 {
            assert_eq!(quiet.roll_page(FaultSite::PageRead, 4096), None);
            assert!(noisy.roll_page(FaultSite::PageRead, 4096).is_some());
            assert_eq!(
                quiet.roll_page(FaultSite::PageWrite, 4096),
                noisy.roll_page(FaultSite::PageWrite, 4096)
            );
            assert_eq!(
                quiet.roll_page(FaultSite::PageRot, 4096),
                noisy.roll_page(FaultSite::PageRot, 4096)
            );
        }
    }

    #[test]
    fn page_rot_bit_stays_in_range() {
        let mut plan = FaultPlan::new(9).with_pages(0.0, 0.0, 0.0, 1.0);
        for _ in 0..128 {
            match plan.roll_page(FaultSite::PageRot, 512) {
                Some(PageFault::Rot { bit }) => assert!(bit < 512 * 8),
                other => panic!("rot at rate 1.0 must fire: {other:?}"),
            }
        }
        // A zero-length page cannot panic on the modulus.
        assert!(plan.roll_page(FaultSite::PageRot, 0).is_some());
    }

    #[test]
    fn non_page_sites_never_fire_in_roll_page() {
        let mut plan = FaultPlan::hostile(1).with_pages(1.0, 1.0, 1.0, 1.0);
        assert_eq!(plan.roll_page(FaultSite::Query, 4096), None);
        assert_eq!(plan.roll_page(FaultSite::NetDrop, 4096), None);
    }

    #[test]
    fn page_enospc_rolls_without_shifting_the_other_page_sites() {
        let mut plan = FaultPlan::new(5).with_page_enospc(1.0);
        assert_eq!(plan.roll_page(FaultSite::Enospc, 4096), Some(PageFault::NoSpace));
        // The rate lives in its own field: the four core sites still
        // default to zero, and toggling enospc never shifts their stream.
        let mut quiet = FaultPlan::new(6).with_pages(0.0, 0.5, 0.0, 0.5);
        let mut full = FaultPlan::new(6).with_pages(0.0, 0.5, 0.0, 0.5).with_page_enospc(1.0);
        for _ in 0..64 {
            assert_eq!(quiet.roll_page(FaultSite::Enospc, 4096), None);
            assert_eq!(full.roll_page(FaultSite::Enospc, 4096), Some(PageFault::NoSpace));
            assert_eq!(
                quiet.roll_page(FaultSite::PageWrite, 4096),
                full.roll_page(FaultSite::PageWrite, 4096)
            );
            assert_eq!(
                quiet.roll_page(FaultSite::PageRot, 4096),
                full.roll_page(FaultSite::PageRot, 4096)
            );
        }
    }
}

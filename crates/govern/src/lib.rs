//! nebula-govern: resource governance for the Nebula pipeline.
//!
//! Three cooperating facilities, all thread-local so that governed calls on
//! different threads never interfere:
//!
//! - **Budgets** ([`ExecutionBudget`], [`begin_budget`], [`charge`],
//!   [`admit`]): declarative per-call limits on wall clock, tuples
//!   inspected, configurations compiled, and candidates ranked, checked
//!   cooperatively in the hot loops via a cheap tick-based guard. An
//!   unbounded budget (the default) installs nothing and costs one TLS
//!   check per charge.
//! - **Fault injection** ([`FaultPlan`], [`set_fault_plan`], [`inject`],
//!   [`stage_boundary`]): a seeded, deterministic schedule of query errors,
//!   index-probe failures, artificial latency, and panics, used to exercise
//!   the engine's recovery paths.
//! - **Degradation** ([`Degradation`], [`RetryPolicy`]): the vocabulary the
//!   engine uses to report *how* it survived — focal fallback, truncated
//!   fan-out, abandoned search, bounded retries.
//!
//! The crate deliberately depends only on `nebula-obs` so every layer of
//! the engine (relstore, textsearch, core) can hook into it without cycles.

mod budget;
pub mod clock;
mod fault;

pub use budget::{BudgetExceeded, ExecutionBudget, Resource};
pub use fault::{
    FaultPlan, FaultSite, FaultSpec, FaultStats, InjectedFault, IoFault, IoFaultSpec, NetFault,
    NetFaultSpec, PageFault, PageFaultSpec, RetryPolicy,
};

use std::cell::RefCell;
use std::fmt;
use std::time::{Duration, Instant};

/// Counter names this crate publishes to `nebula-obs`.
pub mod counters {
    /// Budget trips (any resource).
    pub const BUDGET_TRIPS: &str = "govern.budget_trips";
    /// Configurations dropped by budget truncation.
    pub const TRUNCATED_CONFIGURATIONS: &str = "govern.truncated_configurations";
    /// Candidates dropped by budget truncation.
    pub const TRUNCATED_CANDIDATES: &str = "govern.truncated_candidates";
    /// Faults injected (all sites).
    pub const FAULTS_INJECTED: &str = "govern.faults_injected";
    /// Faults absorbed without surfacing an error.
    pub const FAULTS_RECOVERED: &str = "govern.faults_recovered";
    /// Retry attempts against transient faults.
    pub const RETRIES: &str = "govern.retries";
}

// How often the deadline clock is consulted: every charge increments a tick
// and only ticks matching this mask pay for an `Instant::now()`.
const DEADLINE_CHECK_MASK: u32 = 0xFF;

struct BudgetState {
    deadline: Option<(Instant, Duration)>,
    limits: [usize; 3],
    used: [usize; 3],
    truncated: [usize; 3],
    tick: u32,
    prev: Option<Box<BudgetState>>,
}

impl BudgetState {
    fn from_budget(budget: &ExecutionBudget) -> BudgetState {
        BudgetState {
            deadline: budget.deadline.map(|d| (Instant::now(), d)),
            limits: [budget.max_tuples_inspected, budget.max_configurations, budget.max_candidates],
            used: [0; 3],
            truncated: [0; 3],
            tick: 0,
            prev: None,
        }
    }

    fn deadline_exceeded(&mut self) -> Option<BudgetExceeded> {
        let (start, limit) = self.deadline?;
        // First charge always checks (tick was just bumped to 1); after
        // that, only every DEADLINE_CHECK_MASK-th charge pays for the clock.
        if self.tick & DEADLINE_CHECK_MASK != 1 {
            return None;
        }
        if start.elapsed() >= limit {
            Some(BudgetExceeded { resource: Resource::Deadline, limit: limit.as_millis() as usize })
        } else {
            None
        }
    }
}

#[derive(Default)]
struct Governor {
    budget: Option<BudgetState>,
    plan: Option<FaultPlan>,
    fault_stats: FaultStats,
    /// Degradations noted by layers below the engine (e.g. a shard
    /// scatter-gather returning a partial result); the pipeline drains
    /// them into the annotation's outcome.
    noted: Vec<Degradation>,
}

thread_local! {
    static GOVERNOR: RefCell<Governor> = RefCell::new(Governor::default());
}

/// RAII handle returned by [`begin_budget`]; dropping it uninstalls the
/// budget (restoring any outer one).
pub struct BudgetScope {
    installed: bool,
}

impl Drop for BudgetScope {
    fn drop(&mut self) {
        if self.installed {
            GOVERNOR.with(|g| {
                let mut g = g.borrow_mut();
                if let Some(state) = g.budget.take() {
                    g.budget = state.prev.map(|b| *b);
                }
            });
        }
    }
}

/// Install `budget` for the current thread until the returned scope drops.
///
/// Unbounded budgets install nothing, keeping the default path identical to
/// the ungoverned engine; a bounded budget nests over any outer one.
pub fn begin_budget(budget: &ExecutionBudget) -> BudgetScope {
    if budget.is_unbounded() {
        return BudgetScope { installed: false };
    }
    GOVERNOR.with(|g| {
        let mut g = g.borrow_mut();
        let mut state = BudgetState::from_budget(budget);
        state.prev = g.budget.take().map(Box::new);
        g.budget = Some(state);
    });
    BudgetScope { installed: true }
}

/// Is a bounded budget currently installed on this thread?
pub fn governed() -> bool {
    GOVERNOR.with(|g| g.borrow().budget.is_some())
}

/// Charge `n` units of `resource` against the installed budget.
///
/// No-op (always `Ok`) when ungoverned. Also serves as the deadline guard:
/// every 256th charge consults the clock.
pub fn charge(resource: Resource, n: usize) -> Result<(), BudgetExceeded> {
    GOVERNOR.with(|g| {
        let mut g = g.borrow_mut();
        let Some(state) = g.budget.as_mut() else {
            return Ok(());
        };
        state.tick = state.tick.wrapping_add(1);
        if let Some(trip) = state.deadline_exceeded() {
            drop(g);
            nebula_obs::counter_add(counters::BUDGET_TRIPS, 1);
            return Err(trip);
        }
        if let Some(slot) = resource.slot() {
            state.used[slot] = state.used[slot].saturating_add(n);
            if state.used[slot] > state.limits[slot] {
                let trip = BudgetExceeded { resource, limit: state.limits[slot] };
                drop(g);
                nebula_obs::counter_add(counters::BUDGET_TRIPS, 1);
                return Err(trip);
            }
        }
        Ok(())
    })
}

/// Ask how many of `requested` items of `resource` the budget admits.
///
/// Charges the admitted amount and records the rest as truncated. Unlike
/// [`charge`], running out of room here is *not* an error — the caller is
/// expected to shrink its fan-out to the returned count.
pub fn admit(resource: Resource, requested: usize) -> usize {
    GOVERNOR.with(|g| {
        let mut g = g.borrow_mut();
        let Some(state) = g.budget.as_mut() else {
            return requested;
        };
        let Some(slot) = resource.slot() else {
            return requested;
        };
        let room = state.limits[slot].saturating_sub(state.used[slot]);
        let allowed = requested.min(room);
        state.used[slot] = state.used[slot].saturating_add(allowed);
        let dropped = requested - allowed;
        state.truncated[slot] = state.truncated[slot].saturating_add(dropped);
        drop(g);
        if dropped > 0 {
            let name = match resource {
                Resource::Configurations => counters::TRUNCATED_CONFIGURATIONS,
                Resource::Candidates => counters::TRUNCATED_CANDIDATES,
                _ => counters::BUDGET_TRIPS,
            };
            nebula_obs::counter_add(name, dropped as u64);
        }
        allowed
    })
}

/// Reset the installed budget's usage counters for a degraded re-attempt.
///
/// The deadline keeps ticking from its original start (a fallback does not
/// buy more wall clock), and truncation tallies are preserved so the final
/// report still reflects everything dropped.
pub fn rearm() {
    GOVERNOR.with(|g| {
        if let Some(state) = g.borrow_mut().budget.as_mut() {
            state.used = [0; 3];
            state.tick = 0;
        }
    });
}

/// Usage snapshot of the installed budget (all zeros when ungoverned).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BudgetReport {
    /// Whether a bounded budget was installed.
    pub governed: bool,
    /// Tuples charged since install/rearm.
    pub tuples_inspected: usize,
    /// Configurations charged since install/rearm.
    pub configurations: usize,
    /// Candidates charged since install/rearm.
    pub candidates: usize,
    /// Configurations dropped by truncation (survives rearm).
    pub truncated_configurations: usize,
    /// Candidates dropped by truncation (survives rearm).
    pub truncated_candidates: usize,
}

/// Read the current budget usage without touching it.
pub fn budget_report() -> BudgetReport {
    GOVERNOR.with(|g| {
        let g = g.borrow();
        match g.budget.as_ref() {
            None => BudgetReport::default(),
            Some(state) => BudgetReport {
                governed: true,
                tuples_inspected: state.used[0],
                configurations: state.used[1],
                candidates: state.used[2],
                truncated_configurations: state.truncated[1],
                truncated_candidates: state.truncated[2],
            },
        }
    })
}

/// Install (or clear, with `None`) the fault plan for the current thread.
/// Resets the per-thread [`FaultStats`].
pub fn set_fault_plan(plan: Option<FaultPlan>) {
    GOVERNOR.with(|g| {
        let mut g = g.borrow_mut();
        g.plan = plan;
        g.fault_stats = FaultStats::default();
    });
}

/// A detached fault plan plus its accumulated statistics, for migrating the
/// single deterministic fault stream between threads.
///
/// [`set_fault_plan`] resets the stats and the plan's RNG position, which is
/// right for *starting* a run but wrong for *continuing* one on another
/// thread. A worker pool that must replay the exact sequential fault
/// sequence takes the context off the coordinating thread with
/// [`take_fault_context`], hands it to whichever worker holds the commit
/// turn, and restores it with [`restore_fault_context`] — RNG state and
/// tallies intact.
#[derive(Debug, Clone, Default)]
pub struct FaultContext {
    /// The plan, frozen mid-stream (RNG position preserved). `None` when no
    /// plan was installed.
    pub plan: Option<FaultPlan>,
    /// Injection tallies accumulated so far.
    pub stats: FaultStats,
}

/// Detach the current thread's fault plan and stats, leaving the thread
/// without a plan. Pair with [`restore_fault_context`].
pub fn take_fault_context() -> FaultContext {
    GOVERNOR.with(|g| {
        let mut g = g.borrow_mut();
        FaultContext { plan: g.plan.take(), stats: std::mem::take(&mut g.fault_stats) }
    })
}

/// Install a previously-detached fault context on the current thread,
/// preserving its RNG position and tallies (unlike [`set_fault_plan`],
/// which resets both).
pub fn restore_fault_context(ctx: FaultContext) {
    GOVERNOR.with(|g| {
        let mut g = g.borrow_mut();
        g.plan = ctx.plan;
        g.fault_stats = ctx.stats;
    });
}

/// Is a fault plan currently installed on this thread?
pub fn fault_plan_active() -> bool {
    GOVERNOR.with(|g| g.borrow().plan.is_some())
}

/// Human-readable description of the installed plan, if any.
pub fn describe_fault_plan() -> Option<String> {
    GOVERNOR.with(|g| g.borrow().plan.as_ref().map(FaultPlan::describe))
}

/// Per-thread tally of injection activity since the plan was installed.
pub fn fault_stats() -> FaultStats {
    GOVERNOR.with(|g| g.borrow().fault_stats)
}

/// Roll the installed plan at an error-producing site ([`FaultSite::Query`]
/// or [`FaultSite::IndexProbe`]). Returns the fault if it fired.
pub fn inject(site: FaultSite) -> Option<InjectedFault> {
    let fired = GOVERNOR.with(|g| {
        let mut g = g.borrow_mut();
        let plan = g.plan.as_mut()?;
        let fault = match site {
            FaultSite::Query => {
                let spec = plan.query;
                plan.roll(spec.rate).then_some(InjectedFault { site, transient: spec.transient })
            }
            FaultSite::IndexProbe => {
                let rate = plan.index_probe;
                plan.roll(rate).then_some(InjectedFault { site, transient: false })
            }
            FaultSite::ShardProbe | FaultSite::ShardApply => {
                let rate = plan.shard;
                plan.roll(rate).then_some(InjectedFault { site, transient: false })
            }
            // Latency and panics fire through stage_boundary; the I/O
            // sites fire through inject_io; the transport sites fire
            // through FaultPlan::roll_net on a transport-owned plan; the
            // page sites fire through FaultPlan::roll_page on the page
            // store's own plan.
            FaultSite::Latency
            | FaultSite::Panic
            | FaultSite::TornWrite
            | FaultSite::ShortWrite
            | FaultSite::FsyncFail
            | FaultSite::BitFlip
            | FaultSite::WalRot
            | FaultSite::CheckpointRot
            | FaultSite::NetDrop
            | FaultSite::NetDelay
            | FaultSite::NetReorder
            | FaultSite::NetDuplicate
            | FaultSite::PageRead
            | FaultSite::PageWrite
            | FaultSite::PageFsync
            | FaultSite::PageRot
            | FaultSite::ArchiveWrite
            | FaultSite::ArchiveRot
            | FaultSite::ArchiveFsync
            | FaultSite::Enospc => None,
        }?;
        match site {
            FaultSite::Query => g.fault_stats.query_errors += 1,
            FaultSite::IndexProbe => g.fault_stats.index_probe_failures += 1,
            FaultSite::ShardProbe | FaultSite::ShardApply => g.fault_stats.shard_faults += 1,
            _ => {}
        }
        Some(fault)
    });
    if fired.is_some() {
        nebula_obs::counter_add(counters::FAULTS_INJECTED, 1);
    }
    fired
}

/// Roll the installed plan at one of the I/O fault sites
/// ([`FaultSite::TornWrite`], [`FaultSite::ShortWrite`],
/// [`FaultSite::FsyncFail`], [`FaultSite::BitFlip`]) for an operation over a
/// `len`-byte buffer. Returns the fault (with seed-derived parameters) if it
/// fired; `None` for non-I/O sites, when no plan is installed, or when the
/// roll misses.
///
/// Every call consumes exactly two draws from the plan's stream — one
/// Bernoulli roll and one parameter value — so toggling a site's rate never
/// shifts the sequence seen by other sites.
pub fn inject_io(site: FaultSite, len: usize) -> Option<IoFault> {
    let fired = GOVERNOR.with(|g| {
        let mut g = g.borrow_mut();
        let plan = g.plan.as_mut()?;
        let rate = match site {
            FaultSite::TornWrite => plan.io.torn_write,
            FaultSite::ShortWrite => plan.io.short_write,
            FaultSite::FsyncFail => plan.io.fsync_fail,
            FaultSite::BitFlip => plan.io.bit_flip,
            FaultSite::WalRot => plan.io.wal_rot,
            FaultSite::CheckpointRot => plan.io.checkpoint_rot,
            FaultSite::ArchiveWrite => plan.io.archive_write,
            FaultSite::ArchiveRot => plan.io.archive_rot,
            FaultSite::ArchiveFsync => plan.io.archive_fsync,
            FaultSite::Enospc => plan.io.enospc,
            _ => 0.0,
        };
        let hit = plan.roll(rate);
        let value = plan.draw() as usize;
        if !hit {
            return None;
        }
        let fault = match site {
            FaultSite::TornWrite => IoFault::TornWrite { keep: value % len.max(1) },
            FaultSite::ShortWrite => IoFault::ShortWrite { keep: value % len.max(1) },
            FaultSite::FsyncFail => IoFault::FsyncFail,
            FaultSite::BitFlip | FaultSite::WalRot | FaultSite::CheckpointRot => {
                IoFault::BitFlip { bit: value % (len.max(1) * 8) }
            }
            FaultSite::ArchiveWrite => IoFault::TornWrite { keep: value % len.max(1) },
            FaultSite::ArchiveRot => IoFault::BitFlip { bit: value % (len.max(1) * 8) },
            FaultSite::ArchiveFsync => IoFault::FsyncFail,
            FaultSite::Enospc => IoFault::NoSpace,
            _ => return None,
        };
        match site {
            FaultSite::TornWrite => g.fault_stats.torn_writes += 1,
            FaultSite::ShortWrite => g.fault_stats.short_writes += 1,
            FaultSite::FsyncFail => g.fault_stats.fsync_failures += 1,
            FaultSite::BitFlip => g.fault_stats.bit_flips += 1,
            FaultSite::WalRot => g.fault_stats.wal_rots += 1,
            FaultSite::CheckpointRot => g.fault_stats.checkpoint_rots += 1,
            FaultSite::ArchiveWrite => g.fault_stats.archive_writes += 1,
            FaultSite::ArchiveRot => g.fault_stats.archive_rots += 1,
            FaultSite::ArchiveFsync => g.fault_stats.archive_fsyncs += 1,
            FaultSite::Enospc => g.fault_stats.enospc_faults += 1,
            _ => {}
        }
        Some(fault)
    });
    if fired.is_some() {
        nebula_obs::counter_add(counters::FAULTS_INJECTED, 1);
    }
    fired
}

/// Roll the installed plan at a pipeline stage boundary: may sleep for the
/// plan's artificial latency, and may panic (to exercise containment).
pub fn stage_boundary(stage: &'static str) {
    let (delay, panic_now) = GOVERNOR.with(|g| {
        let mut g = g.borrow_mut();
        let Some(plan) = g.plan.as_mut() else {
            return (None, false);
        };
        let latency_rate = plan.latency;
        let delay = plan.roll(latency_rate).then_some(plan.latency_per_site);
        let panic_rate = plan.panic_rate;
        let panic_now = plan.roll(panic_rate);
        if delay.is_some() {
            g.fault_stats.latency_injections += 1;
        }
        if panic_now {
            g.fault_stats.panics += 1;
        }
        (delay, panic_now)
    });
    if let Some(d) = delay {
        nebula_obs::counter_add(counters::FAULTS_INJECTED, 1);
        clock::sleep(d);
    }
    if panic_now {
        nebula_obs::counter_add(counters::FAULTS_INJECTED, 1);
        panic!("nebula-govern: injected panic at {stage}");
    }
}

/// Record that a fault was absorbed without surfacing an error (e.g. an
/// index-probe failure satisfied by a scan fallback).
pub fn note_recovered(_site: FaultSite) {
    GOVERNOR.with(|g| g.borrow_mut().fault_stats.recovered += 1);
    nebula_obs::counter_add(counters::FAULTS_RECOVERED, 1);
}

/// Record one retry attempt against a transient fault.
pub fn note_retry() {
    GOVERNOR.with(|g| g.borrow_mut().fault_stats.retries += 1);
    nebula_obs::counter_add(counters::RETRIES, 1);
}

/// Note a degradation that happened below the engine's own ladder (e.g.
/// a shard scatter-gather answering partially). The pipeline drains notes
/// into the current annotation's outcome via [`take_noted_degradations`].
pub fn note_degradation(d: Degradation) {
    GOVERNOR.with(|g| g.borrow_mut().noted.push(d));
}

/// Drain every degradation noted on this thread since the last drain.
pub fn take_noted_degradations() -> Vec<Degradation> {
    GOVERNOR.with(|g| std::mem::take(&mut g.borrow_mut().noted))
}

/// How a governed call survived a resource trip: what was given up, where.
#[derive(Debug, Clone, PartialEq)]
pub enum Degradation {
    /// Full-database search tripped a budget; the engine re-ran in focal
    /// neighborhood mode with spreading factor `k`.
    FocalFallback {
        /// The resource that tripped.
        resource: Resource,
        /// Spreading factor used by the fallback.
        k: usize,
    },
    /// Even the degraded search tripped; candidate discovery was abandoned
    /// and the annotation proceeds with no related tuples.
    SearchAbandoned {
        /// The resource that tripped.
        resource: Resource,
    },
    /// Configuration fan-out was cut to fit the budget (lowest-scoring
    /// configurations dropped first).
    TruncatedConfigurations {
        /// How many configurations were dropped.
        dropped: usize,
    },
    /// The ranked candidate list was cut to fit the budget.
    TruncatedCandidates {
        /// How many candidates were dropped.
        dropped: usize,
    },
    /// A scatter-gather search completed without every shard: the listed
    /// shards were past their deadline, partitioned, or breaker-skipped,
    /// so their slice of the hit space is absent from the results.
    PartialShards {
        /// Shards that answered in time (the home shard included).
        answered: usize,
        /// Total shards the query was scattered to (home included).
        total: usize,
        /// The missing shard ids, ascending.
        missing: Vec<usize>,
    },
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Degradation::FocalFallback { resource, k } => {
                write!(f, "focal-fallback({resource}, k={k})")
            }
            Degradation::SearchAbandoned { resource } => {
                write!(f, "search-abandoned({resource})")
            }
            Degradation::TruncatedConfigurations { dropped } => {
                write!(f, "truncated-configurations({dropped})")
            }
            Degradation::TruncatedCandidates { dropped } => {
                write!(f, "truncated-candidates({dropped})")
            }
            Degradation::PartialShards { answered, total, missing } => {
                let ids: Vec<String> = missing.iter().map(ToString::to_string).collect();
                write!(f, "partial-shards({answered}/{total}, missing=[{}])", ids.join(","))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_budget_installs_nothing() {
        let _scope = begin_budget(&ExecutionBudget::default());
        assert!(!governed());
        assert!(charge(Resource::TuplesInspected, 1_000_000).is_ok());
        assert_eq!(admit(Resource::Candidates, 42), 42);
        assert_eq!(budget_report(), BudgetReport::default());
    }

    #[test]
    fn charge_trips_at_limit() {
        let budget = ExecutionBudget::unbounded().with_max_tuples(10);
        let _scope = begin_budget(&budget);
        assert!(governed());
        assert!(charge(Resource::TuplesInspected, 10).is_ok());
        let err = charge(Resource::TuplesInspected, 1).expect_err("over budget");
        assert_eq!(err.resource, Resource::TuplesInspected);
        assert_eq!(err.limit, 10);
        // Other resources still have room.
        assert!(charge(Resource::Candidates, 5).is_ok());
    }

    #[test]
    fn admit_truncates_and_records() {
        let budget = ExecutionBudget::unbounded().with_max_configurations(3);
        let _scope = begin_budget(&budget);
        assert_eq!(admit(Resource::Configurations, 2), 2);
        assert_eq!(admit(Resource::Configurations, 5), 1);
        let report = budget_report();
        assert_eq!(report.configurations, 3);
        assert_eq!(report.truncated_configurations, 4);
    }

    #[test]
    fn rearm_resets_usage_but_keeps_truncation() {
        let budget = ExecutionBudget::unbounded().with_max_tuples(4).with_max_candidates(1);
        let _scope = begin_budget(&budget);
        assert!(charge(Resource::TuplesInspected, 4).is_ok());
        assert_eq!(admit(Resource::Candidates, 3), 1);
        assert!(charge(Resource::TuplesInspected, 1).is_err());
        rearm();
        assert!(charge(Resource::TuplesInspected, 4).is_ok());
        let report = budget_report();
        assert_eq!(report.tuples_inspected, 4);
        assert_eq!(report.truncated_candidates, 2);
    }

    #[test]
    fn scopes_nest_and_restore() {
        let outer = ExecutionBudget::unbounded().with_max_tuples(100);
        let scope1 = begin_budget(&outer);
        assert!(charge(Resource::TuplesInspected, 60).is_ok());
        {
            let inner = ExecutionBudget::unbounded().with_max_tuples(5);
            let _scope2 = begin_budget(&inner);
            assert!(charge(Resource::TuplesInspected, 5).is_ok());
            assert!(charge(Resource::TuplesInspected, 1).is_err());
        }
        // Outer budget restored with its usage intact.
        assert!(charge(Resource::TuplesInspected, 40).is_ok());
        assert!(charge(Resource::TuplesInspected, 1).is_err());
        drop(scope1);
        assert!(!governed());
    }

    #[test]
    fn deadline_trips_eventually() {
        let budget = ExecutionBudget::unbounded().with_deadline(Duration::from_millis(0));
        let _scope = begin_budget(&budget);
        // The clock is consulted every 256 charges, starting with the first.
        let mut tripped = None;
        for _ in 0..1024 {
            if let Err(e) = charge(Resource::TuplesInspected, 0) {
                tripped = Some(e);
                break;
            }
        }
        let err = tripped.expect("zero deadline must trip within a tick window");
        assert_eq!(err.resource, Resource::Deadline);
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let run = |seed: u64| {
            set_fault_plan(Some(FaultPlan::uniform(seed, 0.5)));
            let seq: Vec<bool> = (0..64).map(|_| inject(FaultSite::Query).is_some()).collect();
            set_fault_plan(None);
            seq
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn hostile_plan_fires_everywhere_but_never_panics() {
        set_fault_plan(Some(FaultPlan::hostile(99)));
        for _ in 0..16 {
            let fault = inject(FaultSite::Query).expect("hostile query always fires");
            assert!(fault.transient);
            assert!(inject(FaultSite::IndexProbe).is_some());
        }
        let before = fault_stats();
        assert_eq!(before.query_errors, 16);
        assert_eq!(before.index_probe_failures, 16);
        assert_eq!(before.panics, 0);
        stage_boundary("test.stage"); // latency only; must not panic
        assert_eq!(fault_stats().latency_injections, 1);
        set_fault_plan(None);
        assert!(inject(FaultSite::Query).is_none());
    }

    #[test]
    fn backoff_is_monotone_and_capped() {
        let policy = RetryPolicy::default();
        let mut prev = Duration::ZERO;
        for attempt in 0..40 {
            let b = policy.backoff(attempt);
            assert!(b >= prev);
            assert!(b <= policy.max_backoff);
            prev = b;
        }
        assert_eq!(policy.backoff(39), policy.max_backoff);
    }

    #[test]
    fn note_helpers_update_stats() {
        set_fault_plan(Some(FaultPlan::new(1)));
        note_recovered(FaultSite::IndexProbe);
        note_retry();
        note_retry();
        let stats = fault_stats();
        assert_eq!(stats.recovered, 1);
        assert_eq!(stats.retries, 2);
        set_fault_plan(None);
    }

    #[test]
    fn io_faults_fire_with_bounded_parameters() {
        set_fault_plan(Some(
            FaultPlan::new(5)
                .with_torn_writes(1.0)
                .with_short_writes(1.0)
                .with_fsync_failures(1.0)
                .with_bit_flips(1.0),
        ));
        for _ in 0..32 {
            match inject_io(FaultSite::TornWrite, 100) {
                Some(IoFault::TornWrite { keep }) => assert!(keep < 100),
                other => panic!("expected a torn write, got {other:?}"),
            }
            match inject_io(FaultSite::ShortWrite, 100) {
                Some(IoFault::ShortWrite { keep }) => assert!(keep < 100),
                other => panic!("expected a short write, got {other:?}"),
            }
            assert_eq!(inject_io(FaultSite::FsyncFail, 100), Some(IoFault::FsyncFail));
            match inject_io(FaultSite::BitFlip, 100) {
                Some(IoFault::BitFlip { bit }) => assert!(bit < 800),
                other => panic!("expected a bit flip, got {other:?}"),
            }
        }
        let stats = fault_stats();
        assert_eq!(stats.torn_writes, 32);
        assert_eq!(stats.short_writes, 32);
        assert_eq!(stats.fsync_failures, 32);
        assert_eq!(stats.bit_flips, 32);
        assert_eq!(stats.total_injected(), 128);
        set_fault_plan(None);
        assert!(inject_io(FaultSite::TornWrite, 100).is_none());
    }

    #[test]
    fn io_sites_consume_fixed_draws() {
        // Two plans with the same seed but different site toggles must see
        // the same downstream stream: each inject_io consumes exactly two
        // draws whether or not the site is enabled.
        let run = |plan: FaultPlan| {
            set_fault_plan(Some(plan));
            let _ = inject_io(FaultSite::TornWrite, 64);
            let seq: Vec<bool> = (0..32).map(|_| inject(FaultSite::Query).is_some()).collect();
            set_fault_plan(None);
            seq
        };
        let without = run(FaultPlan::new(9).with_query(0.5, true));
        let with = run(FaultPlan::new(9).with_query(0.5, true).with_torn_writes(1.0));
        assert_eq!(without, with);
    }

    #[test]
    fn archive_and_enospc_sites_fire_with_bounded_parameters() {
        set_fault_plan(Some(
            FaultPlan::new(11).with_archive_faults(1.0, 1.0, 1.0).with_enospc(1.0),
        ));
        for _ in 0..32 {
            match inject_io(FaultSite::ArchiveWrite, 100) {
                Some(IoFault::TornWrite { keep }) => assert!(keep < 100),
                other => panic!("expected a torn archive write, got {other:?}"),
            }
            match inject_io(FaultSite::ArchiveRot, 100) {
                Some(IoFault::BitFlip { bit }) => assert!(bit < 800),
                other => panic!("expected archive rot, got {other:?}"),
            }
            assert_eq!(inject_io(FaultSite::ArchiveFsync, 100), Some(IoFault::FsyncFail));
            assert_eq!(inject_io(FaultSite::Enospc, 100), Some(IoFault::NoSpace));
        }
        let stats = fault_stats();
        assert_eq!(stats.archive_writes, 32);
        assert_eq!(stats.archive_rots, 32);
        assert_eq!(stats.archive_fsyncs, 32);
        assert_eq!(stats.enospc_faults, 32);
        assert_eq!(stats.total_injected(), 128);
        set_fault_plan(None);
        assert!(inject_io(FaultSite::ArchiveWrite, 100).is_none());
    }

    #[test]
    fn archive_sites_consume_fixed_draws() {
        // Toggling the archive sites must not shift the stream the other
        // sites see: each inject_io consumes exactly two draws.
        let run = |plan: FaultPlan| {
            set_fault_plan(Some(plan));
            let _ = inject_io(FaultSite::ArchiveWrite, 64);
            let _ = inject_io(FaultSite::Enospc, 64);
            let seq: Vec<bool> = (0..32).map(|_| inject(FaultSite::Query).is_some()).collect();
            set_fault_plan(None);
            seq
        };
        let without = run(FaultPlan::new(13).with_query(0.5, true));
        let with = run(FaultPlan::new(13)
            .with_query(0.5, true)
            .with_archive_faults(1.0, 1.0, 1.0)
            .with_enospc(1.0));
        assert_eq!(without, with);
    }

    #[test]
    fn fault_context_migration_preserves_stream_and_stats() {
        // Uninterrupted stream on one thread.
        set_fault_plan(Some(FaultPlan::uniform(21, 0.5)));
        let whole: Vec<bool> = (0..64).map(|_| inject(FaultSite::Query).is_some()).collect();
        let whole_stats = fault_stats();
        set_fault_plan(None);

        // Same plan, but detached mid-stream and continued on another thread.
        set_fault_plan(Some(FaultPlan::uniform(21, 0.5)));
        let mut split: Vec<bool> = (0..20).map(|_| inject(FaultSite::Query).is_some()).collect();
        let ctx = take_fault_context();
        assert!(!fault_plan_active());
        let (rest, ctx_back) = std::thread::spawn(move || {
            restore_fault_context(ctx);
            let rest: Vec<bool> = (0..44).map(|_| inject(FaultSite::Query).is_some()).collect();
            (rest, take_fault_context())
        })
        .join()
        .expect("migration thread");
        split.extend(rest);
        assert_eq!(split, whole);
        assert_eq!(ctx_back.stats.query_errors, whole_stats.query_errors);
        restore_fault_context(FaultContext::default());
    }

    #[test]
    fn degradation_displays() {
        let d = Degradation::FocalFallback { resource: Resource::TuplesInspected, k: 3 };
        assert_eq!(d.to_string(), "focal-fallback(tuples-inspected, k=3)");
        let t = Degradation::TruncatedConfigurations { dropped: 7 };
        assert_eq!(t.to_string(), "truncated-configurations(7)");
    }
}

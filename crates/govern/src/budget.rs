//! Execution budgets: declarative per-call resource limits.
//!
//! A budget bounds one `process_annotation` call along four axes — wall
//! clock, tuples inspected, configurations compiled, candidates ranked.
//! Limits of `usize::MAX` (and `deadline: None`) mean *unbounded*; the
//! default budget is fully unbounded, so existing callers pay nothing.

use std::fmt;
use std::time::Duration;

/// The resources a budget can bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Wall-clock deadline for the whole call.
    Deadline,
    /// Tuples materialized/inspected by query execution (relstore and the
    /// shared executor hot loops).
    TuplesInspected,
    /// Keyword-query configurations compiled by the search engine.
    Configurations,
    /// Candidate attachments ranked by the execution stage.
    Candidates,
}

impl Resource {
    /// Counter slot for chargeable resources (`None` for the deadline,
    /// which is clock-driven rather than counted).
    pub(crate) fn slot(self) -> Option<usize> {
        match self {
            Resource::Deadline => None,
            Resource::TuplesInspected => Some(0),
            Resource::Configurations => Some(1),
            Resource::Candidates => Some(2),
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Resource::Deadline => "deadline",
            Resource::TuplesInspected => "tuples-inspected",
            Resource::Configurations => "configurations",
            Resource::Candidates => "candidates",
        };
        write!(f, "{s}")
    }
}

/// Per-call resource limits. `usize::MAX` / `None` = unbounded.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionBudget {
    /// Wall-clock deadline for the governed call.
    pub deadline: Option<Duration>,
    /// Max tuples the executors may inspect.
    pub max_tuples_inspected: usize,
    /// Max configurations the search engine may compile (excess
    /// configurations are truncated by descending score, not an error).
    pub max_configurations: usize,
    /// Max candidates the execution stage may rank (excess candidates are
    /// truncated by descending confidence, not an error).
    pub max_candidates: usize,
}

impl ExecutionBudget {
    /// A budget with no limits at all (the default).
    pub fn unbounded() -> ExecutionBudget {
        ExecutionBudget {
            deadline: None,
            max_tuples_inspected: usize::MAX,
            max_configurations: usize::MAX,
            max_candidates: usize::MAX,
        }
    }

    /// Does this budget constrain anything?
    pub fn is_unbounded(&self) -> bool {
        self.deadline.is_none()
            && self.max_tuples_inspected == usize::MAX
            && self.max_configurations == usize::MAX
            && self.max_candidates == usize::MAX
    }

    /// Builder: set the deadline.
    pub fn with_deadline(mut self, d: Duration) -> ExecutionBudget {
        self.deadline = Some(d);
        self
    }

    /// Builder: cap tuples inspected.
    pub fn with_max_tuples(mut self, n: usize) -> ExecutionBudget {
        self.max_tuples_inspected = n;
        self
    }

    /// Builder: cap configurations compiled.
    pub fn with_max_configurations(mut self, n: usize) -> ExecutionBudget {
        self.max_configurations = n;
        self
    }

    /// Builder: cap candidates ranked.
    pub fn with_max_candidates(mut self, n: usize) -> ExecutionBudget {
        self.max_candidates = n;
        self
    }
}

impl Default for ExecutionBudget {
    fn default() -> Self {
        ExecutionBudget::unbounded()
    }
}

impl fmt::Display for ExecutionBudget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_unbounded() {
            return write!(f, "unbounded");
        }
        let mut parts = Vec::new();
        if let Some(d) = self.deadline {
            parts.push(format!("deadline={}ms", d.as_millis()));
        }
        if self.max_tuples_inspected != usize::MAX {
            parts.push(format!("tuples={}", self.max_tuples_inspected));
        }
        if self.max_configurations != usize::MAX {
            parts.push(format!("configs={}", self.max_configurations));
        }
        if self.max_candidates != usize::MAX {
            parts.push(format!("candidates={}", self.max_candidates));
        }
        write!(f, "{}", parts.join(" "))
    }
}

/// A budget trip: which resource ran out and at what limit (for the
/// deadline, the limit is in milliseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The exhausted resource.
    pub resource: Resource,
    /// The configured limit that was hit.
    pub limit: usize,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.resource {
            Resource::Deadline => write!(f, "execution deadline of {}ms exceeded", self.limit),
            r => write!(f, "{r} budget of {} exceeded", self.limit),
        }
    }
}

impl std::error::Error for BudgetExceeded {}

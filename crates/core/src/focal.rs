//! Focal-based spreading search support (paper §6.3, Figure 7).
//!
//! When the ACG is stable, Nebula restricts the keyword search to a
//! *miniDB* of the K-hop ACG neighborhood of the annotation's focal. This
//! module provides:
//!
//! - [`HopProfile`] — the metadata profile (a histogram of how many hops
//!   away discovered attachments were from the focal) that guides the
//!   choice of K, either manually by DB admins or automatically given a
//!   desired coverage;
//! - [`build_minidb`] — materialization of the K-hop miniDB over which
//!   `KeywordSearch` runs unchanged.

use crate::acg::Acg;
use relstore::{Database, TupleId};
use std::collections::HashMap;

/// Cap on tracked hop distances; further hops land in the last bucket.
const MAX_TRACKED_HOPS: usize = 16;

/// Histogram of `Bucket[hops] → count`: how many discovered attachments
/// were `hops` away from the nearest focal tuple at discovery time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HopProfile {
    buckets: Vec<u64>,
    total: u64,
}

impl HopProfile {
    /// Empty profile.
    pub fn new() -> Self {
        HopProfile::default()
    }

    /// Record one discovered attachment at the given hop distance
    /// (`Bucket[S.length] += 1`).
    pub fn record(&mut self, hops: usize) {
        let h = hops.min(MAX_TRACKED_HOPS);
        if self.buckets.len() <= h {
            self.buckets.resize(h + 1, 0);
        }
        self.buckets[h] += 1;
        self.total += 1;
    }

    /// Total recorded observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in one bucket.
    pub fn bucket(&self, hops: usize) -> u64 {
        self.buckets.get(hops).copied().unwrap_or(0)
    }

    /// Fraction of observations within `k` hops — the expected recall of a
    /// `K = k` spreading search (e.g. the paper's "K = 2 → 71%,
    /// K = 3 → 93%").
    pub fn coverage(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let within: u64 = self.buckets.iter().take(k + 1).sum();
        within as f64 / self.total as f64
    }

    /// The smallest `K` whose expected coverage reaches `target`
    /// (`None` when even the full histogram cannot reach it, which only
    /// happens for `target > 1`).
    pub fn select_k(&self, target: f64) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        (0..self.buckets.len()).find(|&k| self.coverage(k) >= target)
    }

    /// Iterate `(hops, count)` over non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, &c)| c > 0).map(|(h, &c)| (h, c))
    }
}

/// Materialize the K-hop miniDB around `focal`: the returned map
/// translates miniDB tuple ids back to ids in `db`.
pub fn build_minidb(
    db: &Database,
    acg: &Acg,
    focal: &[TupleId],
    k: usize,
) -> (Database, HashMap<TupleId, TupleId>) {
    let members = acg.k_hop(focal, k);
    db.materialize_subset(&members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acg::StabilityConfig;
    use annostore::{Annotation, AnnotationStore, AttachmentTarget};
    use relstore::{DataType, TableSchema, Value};

    #[test]
    fn profile_records_and_covers() {
        let mut p = HopProfile::new();
        // The Figure 7 example: 71% within 2 hops, 93% within 3.
        for _ in 0..40 {
            p.record(1);
        }
        for _ in 0..31 {
            p.record(2);
        }
        for _ in 0..22 {
            p.record(3);
        }
        for _ in 0..7 {
            p.record(4);
        }
        assert_eq!(p.total(), 100);
        assert!((p.coverage(2) - 0.71).abs() < 1e-9);
        assert!((p.coverage(3) - 0.93).abs() < 1e-9);
        assert_eq!(p.coverage(10), 1.0);
    }

    #[test]
    fn select_k_finds_smallest_sufficient_radius() {
        let mut p = HopProfile::new();
        for _ in 0..71 {
            p.record(2);
        }
        for _ in 0..29 {
            p.record(3);
        }
        assert_eq!(p.select_k(0.7), Some(2));
        assert_eq!(p.select_k(0.9), Some(3));
        assert_eq!(p.select_k(1.0), Some(3));
        assert_eq!(HopProfile::new().select_k(0.5), None);
    }

    #[test]
    fn huge_hop_counts_clamp() {
        let mut p = HopProfile::new();
        p.record(1_000_000);
        assert_eq!(p.bucket(MAX_TRACKED_HOPS), 1);
        assert_eq!(p.coverage(MAX_TRACKED_HOPS), 1.0);
    }

    #[test]
    fn iter_skips_empty_buckets() {
        let mut p = HopProfile::new();
        p.record(1);
        p.record(3);
        p.record(3);
        let v: Vec<(usize, u64)> = p.iter().collect();
        assert_eq!(v, vec![(1, 1), (3, 2)]);
    }

    #[test]
    fn minidb_contains_only_neighborhood() {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("gene")
                .column("gid", DataType::Text)
                .column("name", DataType::Text)
                .primary_key("gid")
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut ids = Vec::new();
        for i in 0..5 {
            ids.push(
                db.insert(
                    "gene",
                    vec![Value::text(format!("JW{i:04}")), Value::text(format!("gn{i}A"))],
                )
                .unwrap(),
            );
        }
        // Chain annotations: 0-1, 1-2, 2-3, 3-4.
        let mut store = AnnotationStore::new();
        for w in ids.windows(2) {
            let a = store.add_annotation(Annotation::new("link"));
            store.attach(a, AttachmentTarget::tuple(w[0])).unwrap();
            store.attach(a, AttachmentTarget::tuple(w[1])).unwrap();
        }
        let mut acg = crate::acg::Acg::build_from_store(&store);
        acg.set_stable(true);
        let _ = StabilityConfig::default();

        let (mini, back) = build_minidb(&db, &acg, &[ids[0]], 2);
        assert_eq!(mini.total_tuples(), 3, "focal + 2 hops");
        // Back-translation maps every mini tuple to a chain member.
        for orig in back.values() {
            assert!(ids[..3].contains(orig));
        }
        // The miniDB is searchable.
        assert_eq!(mini.inverted_index().lookup("gn0a").len(), 1);
        assert_eq!(mini.inverted_index().lookup("gn4a").len(), 0);
    }
}

//! Verification of predicted attachments (paper §7).
//!
//! Every candidate attachment becomes a [`VerificationTask`]. Two bounds
//! route it: `confidence < β_lower` → auto-reject;
//! `confidence > β_upper` → auto-accept (becomes a true attachment);
//! otherwise the task is *pending* and waits for an expert, who resolves
//! it through the extended SQL command
//! `[Verify | Reject] Attachment <vid>;`.

use annostore::AnnotationId;
use relstore::TupleId;
use std::collections::BTreeMap;
use std::fmt;

/// A verification task `v = (vid, a, t, confidence, evidence)`
/// (Definition 7.1).
#[derive(Debug, Clone, PartialEq)]
pub struct VerificationTask {
    /// Unique system-generated identifier.
    pub vid: u64,
    /// The annotation endpoint.
    pub annotation: AnnotationId,
    /// The tuple Nebula predicts a missing attachment to.
    pub tuple: TupleId,
    /// Estimated confidence of the attachment.
    pub confidence: f64,
    /// The keyword queries (rendered) that produced this prediction.
    pub evidence: Vec<String>,
}

/// The β bounds routing verification decisions (Figure 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerificationBounds {
    /// β_lower: below this, auto-reject.
    pub lower: f64,
    /// β_upper: above this, auto-accept.
    pub upper: f64,
}

impl VerificationBounds {
    /// Construct, clamping to `[0, 1]` and enforcing `lower ≤ upper`.
    pub fn new(lower: f64, upper: f64) -> Self {
        let lower = lower.clamp(0.0, 1.0);
        let upper = upper.clamp(0.0, 1.0).max(lower);
        VerificationBounds { lower, upper }
    }

    /// Route a confidence value.
    pub fn decide(&self, confidence: f64) -> Decision {
        if confidence < self.lower {
            Decision::AutoReject
        } else if confidence > self.upper {
            Decision::AutoAccept
        } else {
            Decision::Pending
        }
    }
}

impl Default for VerificationBounds {
    fn default() -> Self {
        // The values the paper's BoundsSetting() converged to (§8.2).
        VerificationBounds { lower: 0.32, upper: 0.86 }
    }
}

/// Routing outcome for one prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// `confidence < β_lower` — discard.
    AutoReject,
    /// `β_lower ≤ confidence ≤ β_upper` — requires an expert.
    Pending,
    /// `confidence > β_upper` — accepted as a true attachment.
    AutoAccept,
}

/// The system table of pending verification tasks, queryable by admins.
#[derive(Debug, Clone, Default)]
pub struct VerificationQueue {
    pending: BTreeMap<u64, VerificationTask>,
    next_vid: u64,
}

impl VerificationQueue {
    /// Empty queue.
    pub fn new() -> Self {
        VerificationQueue::default()
    }

    /// Allocate a fresh task id.
    pub fn next_vid(&mut self) -> u64 {
        let vid = self.next_vid;
        self.next_vid += 1;
        vid
    }

    /// Enqueue a pending task. Panics in debug builds if the vid is
    /// already queued.
    pub fn enqueue(&mut self, task: VerificationTask) {
        debug_assert!(!self.pending.contains_key(&task.vid));
        self.pending.insert(task.vid, task);
    }

    /// Remove and return a pending task (expert handled it).
    pub fn take(&mut self, vid: u64) -> Option<VerificationTask> {
        self.pending.remove(&vid)
    }

    /// Look at a pending task.
    pub fn get(&self, vid: u64) -> Option<&VerificationTask> {
        self.pending.get(&vid)
    }

    /// Number of pending tasks.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when no tasks are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Iterate pending tasks in vid order (the admin's report query).
    pub fn iter(&self) -> impl Iterator<Item = &VerificationTask> {
        self.pending.values()
    }
}

/// The extended SQL command of §7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// `Verify Attachment <vid>;` — accept.
    Verify(u64),
    /// `Reject Attachment <vid>;` — discard.
    Reject(u64),
}

/// Errors from command parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot parse verification command: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Parse `[Verify | Reject] Attachment <vid>;` (case-insensitive,
/// trailing semicolon optional).
pub fn parse_command(input: &str) -> Result<Command, ParseError> {
    let cleaned = input.trim().trim_end_matches(';').trim();
    let mut parts = cleaned.split_whitespace();
    let verb = parts.next().ok_or_else(|| ParseError("empty command".into()))?;
    let noun = parts.next().ok_or_else(|| ParseError("missing `Attachment`".into()))?;
    let vid_str = parts.next().ok_or_else(|| ParseError("missing task id".into()))?;
    if parts.next().is_some() {
        return Err(ParseError(format!("trailing tokens in `{input}`")));
    }
    if !noun.eq_ignore_ascii_case("attachment") {
        return Err(ParseError(format!("expected `Attachment`, got `{noun}`")));
    }
    let vid: u64 =
        vid_str.parse().map_err(|_| ParseError(format!("invalid task id `{vid_str}`")))?;
    if verb.eq_ignore_ascii_case("verify") {
        Ok(Command::Verify(vid))
    } else if verb.eq_ignore_ascii_case("reject") {
        Ok(Command::Reject(vid))
    } else {
        Err(ParseError(format!("unknown verb `{verb}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::schema::TableId;

    fn task(vid: u64) -> VerificationTask {
        VerificationTask {
            vid,
            annotation: AnnotationId(0),
            tuple: TupleId::new(TableId(0), vid),
            confidence: 0.5,
            evidence: vec!["q{gene JW0014} (w=1.00)".into()],
        }
    }

    #[test]
    fn bounds_route_correctly() {
        let b = VerificationBounds::new(0.3, 0.8);
        assert_eq!(b.decide(0.1), Decision::AutoReject);
        assert_eq!(b.decide(0.3), Decision::Pending, "inclusive lower");
        assert_eq!(b.decide(0.5), Decision::Pending);
        assert_eq!(b.decide(0.8), Decision::Pending, "inclusive upper");
        assert_eq!(b.decide(0.81), Decision::AutoAccept);
    }

    #[test]
    fn degenerate_bounds_fully_automated() {
        // β_lower = β_upper → no expert involvement except exact boundary.
        let b = VerificationBounds::new(0.5, 0.5);
        assert_eq!(b.decide(0.49), Decision::AutoReject);
        assert_eq!(b.decide(0.51), Decision::AutoAccept);
        assert_eq!(b.decide(0.5), Decision::Pending);
    }

    #[test]
    fn bounds_constructor_clamps() {
        let b = VerificationBounds::new(-1.0, 2.0);
        assert_eq!(b, VerificationBounds { lower: 0.0, upper: 1.0 });
        let inverted = VerificationBounds::new(0.9, 0.2);
        assert!(inverted.lower <= inverted.upper);
    }

    #[test]
    fn upper_bound_one_forces_manual() {
        // §7: "if β_upper = 1 then no predictions will be automatically
        // accepted".
        let b = VerificationBounds::new(0.0, 1.0);
        assert_ne!(b.decide(1.0), Decision::AutoAccept);
    }

    #[test]
    fn queue_lifecycle() {
        let mut q = VerificationQueue::new();
        let v0 = q.next_vid();
        let v1 = q.next_vid();
        assert_ne!(v0, v1);
        q.enqueue(task(v0));
        q.enqueue(task(v1));
        assert_eq!(q.len(), 2);
        assert!(q.get(v0).is_some());
        let t = q.take(v0).unwrap();
        assert_eq!(t.vid, v0);
        assert!(q.take(v0).is_none());
        assert_eq!(q.iter().count(), 1);
    }

    #[test]
    fn parse_command_variants() {
        assert_eq!(parse_command("Verify Attachment 7;"), Ok(Command::Verify(7)));
        assert_eq!(parse_command("reject attachment 12"), Ok(Command::Reject(12)));
        assert_eq!(parse_command("  VERIFY ATTACHMENT 0  ;"), Ok(Command::Verify(0)));
    }

    #[test]
    fn parse_command_errors() {
        assert!(parse_command("").is_err());
        assert!(parse_command("Verify 7").is_err());
        assert!(parse_command("Verify Attachment").is_err());
        assert!(parse_command("Verify Attachment x").is_err());
        assert!(parse_command("Frobnicate Attachment 7").is_err());
        assert!(parse_command("Verify Attachment 7 extra").is_err());
    }
}

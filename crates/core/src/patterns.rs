//! A small syntactic-pattern engine.
//!
//! NebulaMeta stores *syntactic descriptions* of column values — e.g. the
//! paper's `Gene.ID` values conform to `JW[0-9]{4}` and `Gene.Name` values
//! to `[a-z]{3}[A-Z]` (§5.1, item 4). This module implements exactly the
//! pattern language those descriptions need, from scratch:
//!
//! - literal characters (case-sensitive),
//! - character classes `[a-z0-9_]` with ranges, sets, and negation `[^…]`,
//! - the wildcard `.`,
//! - counted repetition `{n}` / `{n,m}` / `{n,}`,
//! - the quantifiers `?`, `*`, `+`.
//!
//! Patterns are anchored: [`Pattern::matches`] tests the *whole* string.
//! Matching is backtracking over a compiled element list; pattern sizes in
//! NebulaMeta are tiny, so worst-case behaviour is irrelevant in practice,
//! but repetition counts are capped defensively anyway.

use std::fmt;

/// Maximum allowed repetition bound — defensive cap against pathological
/// patterns.
const MAX_REPEAT: u32 = 1024;

/// Errors from pattern compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// Unbalanced or empty `[...]` class.
    BadClass(String),
    /// Malformed `{...}` repetition.
    BadRepeat(String),
    /// A quantifier with nothing to repeat.
    DanglingQuantifier(usize),
    /// Repetition bounds exceed the defensive cap or are inverted.
    BadBounds(u32, u32),
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::BadClass(s) => write!(f, "malformed character class `{s}`"),
            PatternError::BadRepeat(s) => write!(f, "malformed repetition `{s}`"),
            PatternError::DanglingQuantifier(i) => {
                write!(f, "quantifier at byte {i} has nothing to repeat")
            }
            PatternError::BadBounds(lo, hi) => write!(f, "bad repetition bounds {{{lo},{hi}}}"),
        }
    }
}

impl std::error::Error for PatternError {}

/// A single-character matcher.
#[derive(Debug, Clone, PartialEq)]
enum CharClass {
    /// One literal character.
    Literal(char),
    /// Any character.
    Any,
    /// A set of ranges/characters, possibly negated.
    Set { negated: bool, singles: Vec<char>, ranges: Vec<(char, char)> },
}

impl CharClass {
    fn matches(&self, c: char) -> bool {
        match self {
            CharClass::Literal(l) => *l == c,
            CharClass::Any => true,
            CharClass::Set { negated, singles, ranges } => {
                let inside =
                    singles.contains(&c) || ranges.iter().any(|(lo, hi)| *lo <= c && c <= *hi);
                inside != *negated
            }
        }
    }
}

/// One compiled element: a character class with repetition bounds.
#[derive(Debug, Clone, PartialEq)]
struct Element {
    class: CharClass,
    min: u32,
    max: u32,
}

/// A compiled, anchored pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    source: String,
    elements: Vec<Element>,
}

impl Pattern {
    /// Compile a pattern string.
    pub fn compile(source: &str) -> Result<Pattern, PatternError> {
        let chars: Vec<char> = source.chars().collect();
        let mut elements: Vec<Element> = Vec::new();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            match c {
                '[' => {
                    let (class, next) = parse_class(&chars, i)?;
                    elements.push(Element { class, min: 1, max: 1 });
                    i = next;
                }
                '.' => {
                    elements.push(Element { class: CharClass::Any, min: 1, max: 1 });
                    i += 1;
                }
                '{' => {
                    let (min, max, next) = parse_repeat(&chars, i)?;
                    let last = elements.last_mut().ok_or(PatternError::DanglingQuantifier(i))?;
                    if last.min != 1 || last.max != 1 {
                        return Err(PatternError::DanglingQuantifier(i));
                    }
                    last.min = min;
                    last.max = max;
                    i = next;
                }
                '?' | '*' | '+' => {
                    let last = elements.last_mut().ok_or(PatternError::DanglingQuantifier(i))?;
                    if last.min != 1 || last.max != 1 {
                        return Err(PatternError::DanglingQuantifier(i));
                    }
                    match c {
                        '?' => (last.min, last.max) = (0, 1),
                        '*' => (last.min, last.max) = (0, MAX_REPEAT),
                        '+' => (last.min, last.max) = (1, MAX_REPEAT),
                        _ => unreachable!(),
                    }
                    i += 1;
                }
                '\\' => {
                    let escaped = *chars.get(i + 1).ok_or(PatternError::BadClass("\\".into()))?;
                    elements.push(Element { class: CharClass::Literal(escaped), min: 1, max: 1 });
                    i += 2;
                }
                other => {
                    elements.push(Element { class: CharClass::Literal(other), min: 1, max: 1 });
                    i += 1;
                }
            }
        }
        Ok(Pattern { source: source.to_string(), elements })
    }

    /// The original pattern string.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Does the whole string match?
    pub fn matches(&self, input: &str) -> bool {
        let chars: Vec<char> = input.chars().collect();
        match_here(&self.elements, &chars, 0)
    }
}

/// Backtracking matcher: does `elements` consume exactly `chars[pos..]`?
fn match_here(elements: &[Element], chars: &[char], pos: usize) -> bool {
    let Some((elem, rest)) = elements.split_first() else {
        return pos == chars.len();
    };
    // Consume the mandatory minimum greedily.
    let mut p = pos;
    for _ in 0..elem.min {
        match chars.get(p) {
            Some(&c) if elem.class.matches(c) => p += 1,
            _ => return false,
        }
    }
    // Try the optional extra repetitions, longest first (greedy with
    // backtracking).
    let mut extras = Vec::new();
    let mut q = p;
    while (extras.len() as u32) < elem.max - elem.min {
        match chars.get(q) {
            Some(&c) if elem.class.matches(c) => {
                q += 1;
                extras.push(q);
            }
            _ => break,
        }
    }
    for &end in extras.iter().rev() {
        if match_here(rest, chars, end) {
            return true;
        }
    }
    match_here(rest, chars, p)
}

/// Parse `[...]` starting at `chars[start] == '['`; returns the class and
/// the index just past `]`.
fn parse_class(chars: &[char], start: usize) -> Result<(CharClass, usize), PatternError> {
    let mut i = start + 1;
    let mut negated = false;
    if chars.get(i) == Some(&'^') {
        negated = true;
        i += 1;
    }
    let mut singles = Vec::new();
    let mut ranges = Vec::new();
    let mut any = false;
    while let Some(&c) = chars.get(i) {
        if c == ']' {
            if !any {
                return Err(PatternError::BadClass(collect(chars, start, i + 1)));
            }
            return Ok((CharClass::Set { negated, singles, ranges }, i + 1));
        }
        let lo = if c == '\\' {
            i += 1;
            *chars.get(i).ok_or_else(|| PatternError::BadClass(collect(chars, start, i)))?
        } else {
            c
        };
        // Range `a-z`?
        if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']') {
            let hi = chars[i + 2];
            if hi < lo {
                return Err(PatternError::BadClass(collect(chars, start, i + 3)));
            }
            ranges.push((lo, hi));
            i += 3;
        } else {
            singles.push(lo);
            i += 1;
        }
        any = true;
    }
    Err(PatternError::BadClass(collect(chars, start, chars.len())))
}

/// Parse `{n}` / `{n,}` / `{n,m}` starting at `chars[start] == '{'`.
fn parse_repeat(chars: &[char], start: usize) -> Result<(u32, u32, usize), PatternError> {
    let close = chars[start..]
        .iter()
        .position(|&c| c == '}')
        .map(|off| start + off)
        .ok_or_else(|| PatternError::BadRepeat(collect(chars, start, chars.len())))?;
    let body: String = chars[start + 1..close].iter().collect();
    let bad = || PatternError::BadRepeat(collect(chars, start, close + 1));
    let (min, max) = match body.split_once(',') {
        None => {
            let n: u32 = body.trim().parse().map_err(|_| bad())?;
            (n, n)
        }
        Some((lo, hi)) => {
            let min: u32 = lo.trim().parse().map_err(|_| bad())?;
            let max: u32 = if hi.trim().is_empty() {
                MAX_REPEAT
            } else {
                hi.trim().parse().map_err(|_| bad())?
            };
            (min, max)
        }
    };
    if max < min || max > MAX_REPEAT {
        return Err(PatternError::BadBounds(min, max));
    }
    Ok((min, max, close + 1))
}

fn collect(chars: &[char], from: usize, to: usize) -> String {
    chars[from..to.min(chars.len())].iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gene_id_pattern_from_paper() {
        // Values in Gene.ID conform to `JW[0-9]{4}` (paper §5.1).
        let p = Pattern::compile("JW[0-9]{4}").unwrap();
        assert!(p.matches("JW0013"));
        assert!(p.matches("JW9999"));
        assert!(!p.matches("JW001"));
        assert!(!p.matches("JW00133"));
        assert!(!p.matches("jw0013"), "literals are case-sensitive");
        assert!(!p.matches("XW0013"));
    }

    #[test]
    fn gene_name_pattern_from_paper() {
        // Gene.Name values follow `[a-z]{3}[A-Z]` (paper §5.1).
        let p = Pattern::compile("[a-z]{3}[A-Z]").unwrap();
        assert!(p.matches("grpC"));
        assert!(p.matches("yaaB"));
        assert!(!p.matches("Gene"));
        assert!(!p.matches("grp"));
        assert!(!p.matches("grpCC"));
    }

    #[test]
    fn literals_and_escape() {
        let p = Pattern::compile(r"a\.b").unwrap();
        assert!(p.matches("a.b"));
        assert!(!p.matches("axb"));
        let q = Pattern::compile("a.b").unwrap();
        assert!(q.matches("axb"), "unescaped dot is wildcard");
    }

    #[test]
    fn quantifiers() {
        let star = Pattern::compile("ab*c").unwrap();
        assert!(star.matches("ac"));
        assert!(star.matches("abbbbc"));
        let plus = Pattern::compile("ab+c").unwrap();
        assert!(!plus.matches("ac"));
        assert!(plus.matches("abc"));
        let opt = Pattern::compile("ab?c").unwrap();
        assert!(opt.matches("ac"));
        assert!(opt.matches("abc"));
        assert!(!opt.matches("abbc"));
    }

    #[test]
    fn counted_ranges() {
        let p = Pattern::compile("[0-9]{2,3}").unwrap();
        assert!(!p.matches("1"));
        assert!(p.matches("12"));
        assert!(p.matches("123"));
        assert!(!p.matches("1234"));
        let open = Pattern::compile("[0-9]{2,}").unwrap();
        assert!(open.matches("123456"));
        assert!(!open.matches("1"));
    }

    #[test]
    fn negated_class_and_sets() {
        let p = Pattern::compile("[^0-9]+").unwrap();
        assert!(p.matches("abc"));
        assert!(!p.matches("a1c"));
        let set = Pattern::compile("[abx-z]{2}").unwrap();
        assert!(set.matches("ab"));
        assert!(set.matches("xz"));
        assert!(!set.matches("cd"));
    }

    #[test]
    fn class_with_literal_dash_at_end() {
        let p = Pattern::compile("[a-]").unwrap();
        assert!(p.matches("a"));
        assert!(p.matches("-"));
        assert!(!p.matches("b"));
    }

    #[test]
    fn anchored_matching() {
        let p = Pattern::compile("[0-9]+").unwrap();
        assert!(!p.matches("a123"), "must match the whole string");
        assert!(!p.matches("123a"));
        assert!(!p.matches(""));
    }

    #[test]
    fn empty_pattern_matches_empty_only() {
        let p = Pattern::compile("").unwrap();
        assert!(p.matches(""));
        assert!(!p.matches("a"));
    }

    #[test]
    fn backtracking_needed_cases() {
        // `.*c` must backtrack off trailing characters.
        let p = Pattern::compile(".*c").unwrap();
        assert!(p.matches("abcabc"));
        assert!(!p.matches("abcab"));
        // Adjacent overlapping classes.
        let q = Pattern::compile("[a-z]*z[a-z]*").unwrap();
        assert!(q.matches("abzcd"));
        assert!(q.matches("z"));
        assert!(!q.matches("abcd"));
    }

    #[test]
    fn compile_errors() {
        assert!(matches!(Pattern::compile("[abc"), Err(PatternError::BadClass(_))));
        assert!(matches!(Pattern::compile("[]"), Err(PatternError::BadClass(_))));
        assert!(matches!(Pattern::compile("a{2"), Err(PatternError::BadRepeat(_))));
        assert!(matches!(Pattern::compile("a{x}"), Err(PatternError::BadRepeat(_))));
        assert!(matches!(Pattern::compile("{3}"), Err(PatternError::DanglingQuantifier(_))));
        assert!(matches!(Pattern::compile("*a"), Err(PatternError::DanglingQuantifier(_))));
        assert!(matches!(Pattern::compile("a{5,2}"), Err(PatternError::BadBounds(5, 2))));
        assert!(matches!(Pattern::compile("a+*"), Err(PatternError::DanglingQuantifier(_))));
    }

    #[test]
    fn unicode_input() {
        let p = Pattern::compile("é+").unwrap();
        assert!(p.matches("ééé"));
        assert!(!p.matches("e"));
    }

    #[test]
    fn source_is_preserved() {
        let p = Pattern::compile("JW[0-9]{4}").unwrap();
        assert_eq!(p.source(), "JW[0-9]{4}");
    }
}

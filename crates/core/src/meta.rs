//! NebulaMeta — the auxiliary-information repository (paper §5.1).
//!
//! NebulaMeta integrates the knowledge sources Nebula consults while
//! analyzing annotation text:
//!
//! 1. a lexicon of synonyms (the paper uses WordNet; here a built-in,
//!    user-extensible synonym table plays that role),
//! 2. curator-declared *equivalent names* for tables and columns
//!    (`GID` ≡ "gene id"),
//! 3. per-column **ontologies** (controlled vocabularies),
//! 4. per-column **syntactic patterns** (e.g. `Gene.ID ~ JW[0-9]{4}`),
//! 5. random **samples** of column values for columns without ontology or
//!    pattern, and
//! 6. the **ConceptRefs** table: the key concepts of the database and the
//!    column combinations most likely used to reference them inside
//!    annotations.
//!
//! Everything is stored by *name* and resolved against a live
//! [`Database`] at use time, so one `NebulaMeta` can serve the full
//! database and every focal miniDB built from it.

use crate::patterns::Pattern;
use relstore::schema::{ColumnId, TableId};
use relstore::{DataType, Database};
use std::collections::{HashMap, HashSet};

/// Match strengths for `p(w, c)` — concept (schema) matching. Exact and
/// equivalent-name matches rank above synonym matches (§5.2.1).
pub mod concept_weights {
    /// Word equals the table/column name itself.
    pub const EXACT: f64 = 0.95;
    /// Word equals a curator-declared equivalent name.
    pub const EQUIVALENT: f64 = 0.9;
    /// Word equals a lexicon synonym.
    pub const SYNONYM: f64 = 0.65;
}

/// Match strengths for `d(w, c)` — value (domain) matching.
pub mod domain_weights {
    /// Word is a member of the column's ontology.
    pub const ONTOLOGY_MEMBER: f64 = 0.95;
    /// Word matches the column's syntactic pattern.
    pub const PATTERN_MATCH: f64 = 0.9;
    /// Word exactly equals a sampled value.
    pub const SAMPLE_EXACT: f64 = 0.85;
    /// Word has the same character-class shape as a sampled value.
    pub const SAMPLE_SHAPE: f64 = 0.6;
    /// Word merely type-conforms to the column — the floor for every
    /// type-conforming word. This is what makes the ε = 0.4 cutoff so
    /// noisy in the paper's Figure 11(c): *every* word of the right type
    /// passes it.
    pub const TYPE_ONLY: f64 = 0.4;
}

/// One row of the `ConceptRefs` system table: a key database concept and
/// the column combinations most likely used to reference it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConceptRef {
    /// Human-readable concept name, e.g. `"Gene"`.
    pub concept: String,
    /// The table holding the concept.
    pub table: String,
    /// Alternative referencing column combinations, e.g.
    /// `[["gid"], ["name"]]` — a gene is referenced by its id *or* name —
    /// or `[["pname", "ptype"]]` for a combined reference.
    pub referenced_by: Vec<Vec<String>>,
}

/// Domain knowledge about one column's values.
#[derive(Debug, Clone, Default)]
pub struct ColumnDomain {
    /// Controlled vocabulary the values belong to (lower-cased terms).
    pub ontology: Option<HashSet<String>>,
    /// Syntactic pattern the values conform to.
    pub pattern: Option<Pattern>,
    /// Sampled values (used when neither ontology nor pattern exists).
    pub sample: Vec<String>,
}

/// A schema object a word may reference — the paper's *rectangle* (table)
/// and *triangle* (column) shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConceptTarget {
    /// The word names a table.
    Table(TableId),
    /// The word names a column.
    Column(TableId, ColumnId),
}

impl ConceptTarget {
    /// The table this target belongs to.
    pub fn table(&self) -> TableId {
        match self {
            ConceptTarget::Table(t) | ConceptTarget::Column(t, _) => *t,
        }
    }
}

/// The NebulaMeta repository.
#[derive(Debug, Clone, Default)]
pub struct NebulaMeta {
    concept_refs: Vec<ConceptRef>,
    /// alias (lower) → table names it may denote, with weight.
    table_aliases: HashMap<String, Vec<(String, f64)>>,
    /// alias (lower) → `(table, column)` names it may denote, with weight.
    column_aliases: HashMap<String, Vec<(String, String, f64)>>,
    /// `(table lower, column lower)` → domain knowledge.
    domains: HashMap<(String, String), ColumnDomain>,
}

impl NebulaMeta {
    /// Empty repository.
    pub fn new() -> Self {
        NebulaMeta::default()
    }

    /// Register a concept (a `ConceptRefs` row).
    pub fn add_concept(&mut self, concept: ConceptRef) {
        self.concept_refs.push(concept);
    }

    /// The registered concepts.
    pub fn concepts(&self) -> &[ConceptRef] {
        &self.concept_refs
    }

    /// Declare a curator equivalent name for a table
    /// (e.g. `"locus table"` for `gene`).
    pub fn add_table_equivalent(&mut self, alias: &str, table: &str) {
        self.table_aliases
            .entry(alias.to_lowercase())
            .or_default()
            .push((table.to_string(), concept_weights::EQUIVALENT));
    }

    /// Declare a lexicon synonym for a table (the WordNet role).
    pub fn add_table_synonym(&mut self, alias: &str, table: &str) {
        self.table_aliases
            .entry(alias.to_lowercase())
            .or_default()
            .push((table.to_string(), concept_weights::SYNONYM));
    }

    /// Declare a curator equivalent name for a column
    /// (e.g. `"id"` for `gene.gid`).
    pub fn add_column_equivalent(&mut self, alias: &str, table: &str, column: &str) {
        self.column_aliases.entry(alias.to_lowercase()).or_default().push((
            table.to_string(),
            column.to_string(),
            concept_weights::EQUIVALENT,
        ));
    }

    /// Declare a lexicon synonym for a column.
    pub fn add_column_synonym(&mut self, alias: &str, table: &str, column: &str) {
        self.column_aliases.entry(alias.to_lowercase()).or_default().push((
            table.to_string(),
            column.to_string(),
            concept_weights::SYNONYM,
        ));
    }

    /// Attach an ontology (controlled vocabulary) to a column.
    pub fn set_ontology<I, S>(&mut self, table: &str, column: &str, terms: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.domain_mut(table, column).ontology =
            Some(terms.into_iter().map(|t| t.as_ref().to_lowercase()).collect());
    }

    /// Attach a syntactic pattern to a column.
    pub fn set_pattern(&mut self, table: &str, column: &str, pattern: Pattern) {
        self.domain_mut(table, column).pattern = Some(pattern);
    }

    /// Attach a drawn sample to a column.
    pub fn set_sample<I, S>(&mut self, table: &str, column: &str, values: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.domain_mut(table, column).sample =
            values.into_iter().map(|v| v.as_ref().to_string()).collect();
    }

    fn domain_mut(&mut self, table: &str, column: &str) -> &mut ColumnDomain {
        self.domains.entry((table.to_lowercase(), column.to_lowercase())).or_default()
    }

    /// Domain knowledge for a column, if declared.
    pub fn domain(&self, table: &str, column: &str) -> Option<&ColumnDomain> {
        self.domains.get(&(table.to_lowercase(), column.to_lowercase()))
    }

    /// All *target columns* — the `(table, column)` pairs appearing in any
    /// concept's `referenced_by` lists — resolved against `db`.
    pub fn target_columns(&self, db: &Database) -> Vec<(TableId, ColumnId)> {
        let mut out = Vec::new();
        for cr in &self.concept_refs {
            let Some(tid) = db.catalog().resolve(&cr.table) else { continue };
            let Some(table) = db.table(tid) else { continue };
            for combo in &cr.referenced_by {
                for col in combo {
                    if let Some(cid) = table.schema().column_id(col) {
                        out.push((tid, cid));
                    }
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// `p(w, c)`: schema objects the word may reference, with weights
    /// (§5.2.1 Step 1). Only tables/columns appearing in `ConceptRefs`
    /// participate.
    pub fn match_concepts(&self, db: &Database, word: &str) -> Vec<(ConceptTarget, f64)> {
        let w = word.to_lowercase();
        // Plural concept words match their singular form ("genes JW0013
        // and JW0014" must reach the `gene` concept) — the lexical
        // normalization WordNet provides in the paper.
        let singular = textsearch::singularize(&w);
        let name_matches = |name: &str| {
            name.eq_ignore_ascii_case(&w) || singular.as_deref() == Some(&name.to_lowercase())
        };

        let mut best: HashMap<ConceptTarget, f64> = HashMap::new();
        let mut add = |target: ConceptTarget, weight: f64| {
            let e = best.entry(target).or_insert(0.0);
            if weight > *e {
                *e = weight;
            }
        };

        // Tables and columns named in ConceptRefs (exact name matches,
        // including the concept's own display name as an equivalent).
        for cr in &self.concept_refs {
            let Some(tid) = db.catalog().resolve(&cr.table) else { continue };
            if name_matches(&cr.table) {
                add(ConceptTarget::Table(tid), concept_weights::EXACT);
            }
            if name_matches(&cr.concept) && !name_matches(&cr.table) {
                add(ConceptTarget::Table(tid), concept_weights::EQUIVALENT);
            }
            let Some(table) = db.table(tid) else { continue };
            for combo in &cr.referenced_by {
                for col in combo {
                    if let Some(cid) = table.schema().column_id(col) {
                        if name_matches(col) {
                            add(ConceptTarget::Column(tid, cid), concept_weights::EXACT);
                        }
                    }
                }
            }
        }
        // Curator equivalents and lexicon synonyms (singular form too).
        let alias_keys: Vec<&str> =
            std::iter::once(w.as_str()).chain(singular.as_deref()).collect();
        for key in &alias_keys {
            if let Some(aliases) = self.table_aliases.get(*key) {
                for (tname, weight) in aliases {
                    if let Some(tid) = db.catalog().resolve(tname) {
                        if self.table_in_concepts(tname) {
                            add(ConceptTarget::Table(tid), *weight);
                        }
                    }
                }
            }
            if let Some(aliases) = self.column_aliases.get(*key) {
                for (tname, cname, weight) in aliases {
                    if let Some(tid) = db.catalog().resolve(tname) {
                        if let Some(cid) = db.table(tid).and_then(|t| t.schema().column_id(cname)) {
                            add(ConceptTarget::Column(tid, cid), *weight);
                        }
                    }
                }
            }
        }
        let mut out: Vec<(ConceptTarget, f64)> = best.into_iter().collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out
    }

    fn table_in_concepts(&self, table: &str) -> bool {
        self.concept_refs.iter().any(|cr| cr.table.eq_ignore_ascii_case(table))
    }

    /// `d(w, c)`: probability the word belongs to the domain of column
    /// `(table, column)` (§5.2.1 Step 2). Returns 0.0 when the word cannot
    /// possibly be a value of the column (type mismatch).
    pub fn domain_weight(
        &self,
        db: &Database,
        word: &str,
        table: TableId,
        column: ColumnId,
    ) -> f64 {
        let Some(t) = db.table(table) else { return 0.0 };
        let Some(def) = t.schema().column(column) else { return 0.0 };
        // Factor 1: data-type conformance.
        if !type_conforms(word, def.data_type) {
            return 0.0;
        }
        let table_name = t.schema().name.to_lowercase();
        let domain = self.domains.get(&(table_name, def.name.to_lowercase()));
        // Type conformance is the evidence floor; each further factor only
        // raises the score (positive evidence accumulates by max — a word
        // failing the pattern still type-conforms, which is exactly why
        // the ε = 0.4 threshold is noisy in Figure 11(c)).
        let mut score = domain_weights::TYPE_ONLY;
        let Some(domain) = domain else { return score };
        // Factor 2: ontology membership.
        if let Some(ont) = &domain.ontology {
            if ont.contains(&word.to_lowercase()) {
                score = score.max(domain_weights::ONTOLOGY_MEMBER);
            }
        }
        // Factor 3: syntactic pattern.
        if let Some(p) = &domain.pattern {
            if p.matches(word) {
                score = score.max(domain_weights::PATTERN_MATCH);
            }
        }
        // Factor 4: sample matching.
        if !domain.sample.is_empty() {
            if domain.sample.iter().any(|v| v.eq_ignore_ascii_case(word)) {
                score = score.max(domain_weights::SAMPLE_EXACT);
            } else {
                let sig = shape_signature(word);
                if domain.sample.iter().any(|v| shape_signature(v) == sig) {
                    score = score.max(domain_weights::SAMPLE_SHAPE);
                }
            }
        }
        score
    }

    /// `d(w, c)` across **all** target columns: every column for which the
    /// word scores above zero, sorted by descending weight.
    pub fn match_domains(&self, db: &Database, word: &str) -> Vec<(TableId, ColumnId, f64)> {
        let mut out: Vec<(TableId, ColumnId, f64)> = self
            .target_columns(db)
            .into_iter()
            .filter_map(|(t, c)| {
                let w = self.domain_weight(db, word, t, c);
                (w > 0.0).then_some((t, c, w))
            })
            .collect();
        out.sort_by(|a, b| b.2.total_cmp(&a.2));
        out
    }

    /// Export the schema vocabulary for the keyword-search engine, so its
    /// metadata matching agrees with NebulaMeta's.
    pub fn to_vocabulary(&self, db: &Database) -> textsearch::SchemaVocabulary {
        let mut vocab = textsearch::SchemaVocabulary::new();
        for (alias, targets) in &self.table_aliases {
            for (tname, weight) in targets {
                if let Some(tid) = db.catalog().resolve(tname) {
                    if *weight >= concept_weights::EQUIVALENT {
                        vocab.table_equivalent(alias, tid);
                    } else {
                        vocab.table_synonym(alias, tid);
                    }
                }
            }
        }
        for (alias, targets) in &self.column_aliases {
            for (tname, cname, weight) in targets {
                if let Some(tid) = db.catalog().resolve(tname) {
                    if let Some(cid) = db.table(tid).and_then(|t| t.schema().column_id(cname)) {
                        if *weight >= concept_weights::EQUIVALENT {
                            vocab.column_equivalent(alias, tid, cid);
                        } else {
                            vocab.column_synonym(alias, tid, cid);
                        }
                    }
                }
            }
        }
        vocab
    }
}

/// Can this word be a value of a column with the given type?
fn type_conforms(word: &str, ty: DataType) -> bool {
    match ty {
        DataType::Text => true,
        DataType::Int => word.parse::<i64>().is_ok(),
        DataType::Float => word.parse::<f64>().is_ok(),
        DataType::Null => false,
    }
}

/// Character-class shape of a string, run-length compressed:
/// `JW0013` → `[Upper, Digit]`, `grpC` → `[Lower, Upper]`.
fn shape_signature(s: &str) -> Vec<u8> {
    let mut out = Vec::new();
    for ch in s.chars() {
        let class = if ch.is_ascii_digit() {
            b'd'
        } else if ch.is_lowercase() {
            b'l'
        } else if ch.is_uppercase() {
            b'u'
        } else {
            b'o'
        };
        if out.last() != Some(&class) {
            out.push(class);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{TableSchema, Value};

    fn bio_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("gene")
                .column("gid", DataType::Text)
                .column("name", DataType::Text)
                .column("length", DataType::Int)
                .primary_key("gid")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert("gene", vec![Value::text("JW0013"), Value::text("grpC"), Value::Int(1130)])
            .unwrap();
        db
    }

    fn meta() -> NebulaMeta {
        let mut m = NebulaMeta::new();
        m.add_concept(ConceptRef {
            concept: "Gene".into(),
            table: "gene".into(),
            referenced_by: vec![vec!["gid".into()], vec!["name".into()]],
        });
        m.add_column_equivalent("id", "gene", "gid");
        m.add_table_synonym("locus", "gene");
        m.set_pattern("gene", "gid", Pattern::compile("JW[0-9]{4}").unwrap());
        m.set_pattern("gene", "name", Pattern::compile("[a-z]{3}[A-Z]").unwrap());
        m
    }

    #[test]
    fn concept_matching_ranks_exact_over_synonym() {
        let db = bio_db();
        let m = meta();
        let gene_t = db.catalog().resolve("gene").unwrap();
        let exact = m.match_concepts(&db, "gene");
        assert_eq!(exact[0], (ConceptTarget::Table(gene_t), concept_weights::EXACT));
        let syn = m.match_concepts(&db, "locus");
        assert_eq!(syn[0].1, concept_weights::SYNONYM);
        assert!(m.match_concepts(&db, "banana").is_empty());
    }

    #[test]
    fn column_equivalent_matches() {
        let db = bio_db();
        let m = meta();
        let gene_t = db.catalog().resolve("gene").unwrap();
        let gid = db.table(gene_t).unwrap().schema().column_id("gid").unwrap();
        let hits = m.match_concepts(&db, "id");
        assert_eq!(hits[0], (ConceptTarget::Column(gene_t, gid), concept_weights::EQUIVALENT));
        // The column's own name matches exactly.
        let hits = m.match_concepts(&db, "GID");
        assert_eq!(hits[0].1, concept_weights::EXACT);
    }

    #[test]
    fn domain_weight_pattern_path() {
        let db = bio_db();
        let m = meta();
        let gene_t = db.catalog().resolve("gene").unwrap();
        let gid = db.table(gene_t).unwrap().schema().column_id("gid").unwrap();
        let name = db.table(gene_t).unwrap().schema().column_id("name").unwrap();
        assert_eq!(m.domain_weight(&db, "JW0014", gene_t, gid), domain_weights::PATTERN_MATCH);
        // A pattern miss falls back to the type-conformance floor.
        assert_eq!(m.domain_weight(&db, "hello", gene_t, gid), domain_weights::TYPE_ONLY);
        assert_eq!(m.domain_weight(&db, "yaaB", gene_t, name), domain_weights::PATTERN_MATCH);
    }

    #[test]
    fn domain_weight_type_gate() {
        let db = bio_db();
        let m = meta();
        let gene_t = db.catalog().resolve("gene").unwrap();
        let length = db.table(gene_t).unwrap().schema().column_id("length").unwrap();
        // "abc" cannot be an Int value.
        assert_eq!(m.domain_weight(&db, "abc", gene_t, length), 0.0);
        // "1130" conforms; no domain knowledge declared for length.
        assert_eq!(m.domain_weight(&db, "1130", gene_t, length), domain_weights::TYPE_ONLY);
    }

    #[test]
    fn domain_weight_ontology_path() {
        let db = bio_db();
        let mut m = meta();
        m.set_ontology("gene", "name", ["grpc", "grop", "yaab"]);
        let gene_t = db.catalog().resolve("gene").unwrap();
        let name = db.table(gene_t).unwrap().schema().column_id("name").unwrap();
        // Ontology and pattern both present: the stronger signal wins.
        assert_eq!(m.domain_weight(&db, "grpC", gene_t, name), domain_weights::ONTOLOGY_MEMBER);
        // In the ontology but failing the pattern → still a member.
        m.set_ontology("gene", "name", ["notapattern"]);
        assert_eq!(
            m.domain_weight(&db, "notapattern", gene_t, name),
            domain_weights::ONTOLOGY_MEMBER
        );
    }

    #[test]
    fn domain_weight_sample_paths() {
        let db = bio_db();
        let mut m = NebulaMeta::new();
        m.add_concept(ConceptRef {
            concept: "Gene".into(),
            table: "gene".into(),
            referenced_by: vec![vec!["gid".into()]],
        });
        m.set_sample("gene", "gid", ["JW0013", "JW0555"]);
        let gene_t = db.catalog().resolve("gene").unwrap();
        let gid = db.table(gene_t).unwrap().schema().column_id("gid").unwrap();
        assert_eq!(m.domain_weight(&db, "jw0013", gene_t, gid), domain_weights::SAMPLE_EXACT);
        // Same shape (letters then digits) as the sample.
        assert_eq!(m.domain_weight(&db, "AB1234", gene_t, gid), domain_weights::SAMPLE_SHAPE);
        assert_eq!(m.domain_weight(&db, "hello", gene_t, gid), domain_weights::TYPE_ONLY);
    }

    #[test]
    fn match_domains_sorted_and_filtered() {
        let db = bio_db();
        let m = meta();
        let hits = m.match_domains(&db, "JW0013");
        assert!(!hits.is_empty());
        assert!(hits.windows(2).all(|w| w[0].2 >= w[1].2));
        // gid (pattern match) should rank first.
        let gene_t = db.catalog().resolve("gene").unwrap();
        let gid = db.table(gene_t).unwrap().schema().column_id("gid").unwrap();
        assert_eq!((hits[0].0, hits[0].1), (gene_t, gid));
    }

    #[test]
    fn target_columns_resolves_concept_refs() {
        let db = bio_db();
        let m = meta();
        assert_eq!(m.target_columns(&db).len(), 2);
    }

    #[test]
    fn shape_signature_compresses_runs() {
        assert_eq!(shape_signature("JW0013"), shape_signature("AB1234"));
        assert_ne!(shape_signature("JW0013"), shape_signature("grpC"));
        assert_eq!(shape_signature("grpC"), shape_signature("yaaB"));
    }

    #[test]
    fn vocabulary_export_carries_aliases() {
        let db = bio_db();
        let m = meta();
        let vocab = m.to_vocabulary(&db);
        let hits = vocab.match_tables(&db, "locus");
        assert_eq!(hits.len(), 1);
    }
}

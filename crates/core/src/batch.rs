//! Fault-contained batch ingest.
//!
//! [`Nebula::process_batch`] drives a whole batch of annotations through
//! the pipeline with per-annotation containment: an annotation whose
//! processing errors out — or panics, e.g. under an injected-panic fault
//! plan — is *quarantined* and the batch continues. Every annotation
//! therefore ends in exactly one of the five [`BatchStatus`] states, and
//! the [`BatchReport`] tallies match the per-entry records.

use crate::engine::{Nebula, ProcessOutcome};
use crate::error::NebulaError;
use annostore::{Annotation, AnnotationStore};
use relstore::{Database, TupleId};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Terminal state of one annotation in a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchStatus {
    /// At least one attachment was auto-accepted.
    Accepted,
    /// No auto-accepts, but at least one pending verification task.
    Pending,
    /// Processed cleanly; every candidate was auto-rejected (or none were
    /// found).
    Rejected,
    /// Processed, but only by giving something up (see the outcome's
    /// degradation records).
    Degraded,
    /// Processing failed or panicked; the annotation was isolated and the
    /// batch continued.
    Quarantined,
}

impl std::fmt::Display for BatchStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BatchStatus::Accepted => "accepted",
            BatchStatus::Pending => "pending",
            BatchStatus::Rejected => "rejected",
            BatchStatus::Degraded => "degraded",
            BatchStatus::Quarantined => "quarantined",
        };
        write!(f, "{s}")
    }
}

/// Why an annotation was quarantined.
#[derive(Debug, Clone)]
pub enum QuarantineReason {
    /// A structured engine error (exhausted retries, store failure, …).
    Error(NebulaError),
    /// A panic, captured and downcast to its message where possible.
    Panic(String),
}

impl std::fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuarantineReason::Error(e) => write!(f, "{e}"),
            QuarantineReason::Panic(msg) => write!(f, "panic: {msg}"),
        }
    }
}

/// One annotation's record in a [`BatchReport`].
#[derive(Debug, Clone)]
pub struct BatchEntry {
    /// Position in the input batch.
    pub index: usize,
    /// Terminal state.
    pub status: BatchStatus,
    /// The pipeline outcome (absent for quarantined annotations).
    pub outcome: Option<ProcessOutcome>,
    /// Why the annotation was quarantined (present iff quarantined).
    pub quarantine: Option<QuarantineReason>,
}

/// Result of a contained batch ingest.
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    /// Per-annotation records, in input order.
    pub entries: Vec<BatchEntry>,
    /// Annotations ending [`BatchStatus::Accepted`].
    pub accepted: usize,
    /// Annotations ending [`BatchStatus::Pending`].
    pub pending: usize,
    /// Annotations ending [`BatchStatus::Rejected`].
    pub rejected: usize,
    /// Annotations ending [`BatchStatus::Degraded`].
    pub degraded: usize,
    /// Annotations ending [`BatchStatus::Quarantined`].
    pub quarantined: usize,
}

impl BatchReport {
    /// Total annotations processed (all five states).
    pub fn total(&self) -> usize {
        self.entries.len()
    }

    /// Append `entry` and update the matching tally. This is the only way
    /// entries should enter a report, so tallies and records can't drift.
    pub fn push(&mut self, entry: BatchEntry) {
        self.tally(entry.status);
        self.entries.push(entry);
    }

    fn tally(&mut self, status: BatchStatus) {
        match status {
            BatchStatus::Accepted => self.accepted += 1,
            BatchStatus::Pending => self.pending += 1,
            BatchStatus::Rejected => self.rejected += 1,
            BatchStatus::Degraded => self.degraded += 1,
            BatchStatus::Quarantined => self.quarantined += 1,
        }
    }
}

/// Classify a clean outcome. Degradation dominates — a degraded run's
/// accepts were computed from a reduced search and should be flagged.
pub fn classify_outcome(outcome: &ProcessOutcome) -> BatchStatus {
    if !outcome.degradations.is_empty() {
        BatchStatus::Degraded
    } else if !outcome.accepted.is_empty() {
        BatchStatus::Accepted
    } else if !outcome.pending.is_empty() {
        BatchStatus::Pending
    } else {
        BatchStatus::Rejected
    }
}

/// Downcast a caught panic payload to its message where possible.
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Nebula {
    /// Process `items` — `(annotation, focal)` pairs — with per-annotation
    /// fault containment. Never panics and never aborts early: an
    /// annotation that errors or panics is quarantined and the rest of the
    /// batch proceeds.
    pub fn process_batch(
        &mut self,
        db: &Database,
        store: &mut AnnotationStore,
        items: &[(Annotation, Vec<TupleId>)],
    ) -> BatchReport {
        let mut report = BatchReport::default();
        for (index, (annotation, focal)) in items.iter().enumerate() {
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                self.process_annotation(db, store, annotation, focal)
            }));
            let entry = match attempt {
                Ok(Ok(outcome)) => BatchEntry {
                    index,
                    status: classify_outcome(&outcome),
                    outcome: Some(outcome),
                    quarantine: None,
                },
                Ok(Err(e)) => BatchEntry {
                    index,
                    status: BatchStatus::Quarantined,
                    outcome: None,
                    quarantine: Some(QuarantineReason::Error(e)),
                },
                Err(payload) => BatchEntry {
                    index,
                    status: BatchStatus::Quarantined,
                    outcome: None,
                    quarantine: Some(QuarantineReason::Panic(panic_message(payload))),
                },
            };
            if entry.status == BatchStatus::Quarantined {
                nebula_obs::counter_add("core.quarantined", 1);
            }
            report.push(entry);
            // Periodic checkpointing between items: the sink decides when
            // one is due; a failed checkpoint degrades gracefully (the WAL
            // still covers everything, so nothing is lost).
            if let Some(sink) = self.mutation_sink_mut() {
                if sink.checkpoint_due() && sink.checkpoint(db, store).is_err() {
                    nebula_obs::counter_add("core.checkpoint_deferred", 1);
                }
            }
        }
        if let Some(sink) = self.mutation_sink_mut() {
            if sink.flush().is_err() {
                nebula_obs::counter_add("core.flush_failed", 1);
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NebulaConfig;
    use crate::meta::{ConceptRef, NebulaMeta};
    use crate::verify::VerificationBounds;
    use relstore::{DataType, TableSchema, Value};

    fn setup() -> (Database, NebulaMeta, Vec<TupleId>) {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("gene")
                .column("gid", DataType::Text)
                .column("name", DataType::Text)
                .primary_key("gid")
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut ids = Vec::new();
        for (gid, name) in [("JW0013", "grpC"), ("JW0014", "groP"), ("JW0019", "yaaB")] {
            ids.push(db.insert("gene", vec![Value::text(gid), Value::text(name)]).unwrap());
        }
        let mut meta = NebulaMeta::new();
        meta.add_concept(ConceptRef {
            concept: "Gene".into(),
            table: "gene".into(),
            referenced_by: vec![vec!["gid".into()], vec!["name".into()]],
        });
        (db, meta, ids)
    }

    #[test]
    fn clean_batch_classifies_every_entry() {
        let (db, meta, ids) = setup();
        let mut store = AnnotationStore::new();
        let config =
            NebulaConfig { bounds: VerificationBounds::new(0.0, 0.0), ..Default::default() };
        let mut nebula = Nebula::new(config, meta);
        let items = vec![
            (Annotation::new("gene JW0014 is notable"), vec![ids[0]]),
            (Annotation::new("nothing matches here at all"), vec![ids[1]]),
        ];
        let report = nebula.process_batch(&db, &mut store, &items);
        assert_eq!(report.total(), 2);
        assert_eq!(report.quarantined, 0);
        assert_eq!(
            report.accepted + report.pending + report.rejected + report.degraded,
            2,
            "every clean entry lands in exactly one bucket"
        );
        assert!(report.entries.iter().all(|e| e.outcome.is_some()));
    }

    #[test]
    fn report_tallies_match_entries() {
        let (db, meta, ids) = setup();
        let mut store = AnnotationStore::new();
        let mut nebula = Nebula::new(NebulaConfig::default(), meta);
        let items: Vec<_> = (0..5)
            .map(|i| (Annotation::new(format!("gene JW001{i}")), vec![ids[i % ids.len()]]))
            .collect();
        let report = nebula.process_batch(&db, &mut store, &items);
        for status in [
            BatchStatus::Accepted,
            BatchStatus::Pending,
            BatchStatus::Rejected,
            BatchStatus::Degraded,
            BatchStatus::Quarantined,
        ] {
            let n = report.entries.iter().filter(|e| e.status == status).count();
            let tallied = match status {
                BatchStatus::Accepted => report.accepted,
                BatchStatus::Pending => report.pending,
                BatchStatus::Rejected => report.rejected,
                BatchStatus::Degraded => report.degraded,
                BatchStatus::Quarantined => report.quarantined,
            };
            assert_eq!(n, tallied, "{status} tally");
        }
    }
}

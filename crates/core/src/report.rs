//! Curation-session reporting: aggregate statistics over a stream of
//! processed annotations.
//!
//! The paper's §7 closes with how, absent `D_ideal`, domain experts
//! periodically compute the assessment statistics over the recent
//! annotations ("min, max, and average, across the m annotations"). This
//! module is that bookkeeping: feed it every [`ProcessOutcome`] and expert
//! resolution, read back a session report.

use crate::engine::ProcessOutcome;
use std::fmt;

/// Running min/mean/max over one quantity.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Stat {
    /// Number of observations.
    pub count: u64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    sum: f64,
}

impl Stat {
    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.sum += x;
        self.count += 1;
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Sum of the observations (0 when empty).
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

impl fmt::Display for Stat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "min {:.1} / mean {:.1} / max {:.1}", self.min, self.mean(), self.max)
    }
}

/// Aggregated statistics of a curation session.
#[derive(Debug, Clone, Default)]
pub struct SessionReport {
    /// Annotations processed.
    pub annotations: u64,
    /// Keyword queries generated per annotation.
    pub queries: Stat,
    /// Candidates produced per annotation.
    pub candidates: Stat,
    /// Auto-accepted attachments per annotation.
    pub accepted: Stat,
    /// Pending (expert) tasks per annotation.
    pub pending: Stat,
    /// Auto-rejected predictions per annotation.
    pub rejected: Stat,
    /// How many annotations used the focal-spreading search.
    pub focal_spread_used: u64,
    /// Expert resolutions recorded, split by decision.
    pub expert_accepts: u64,
    /// Expert rejections recorded.
    pub expert_rejects: u64,
}

impl SessionReport {
    /// Fresh report.
    pub fn new() -> Self {
        SessionReport::default()
    }

    /// Record one processed annotation.
    pub fn record(&mut self, outcome: &ProcessOutcome) {
        self.annotations += 1;
        self.queries.record(outcome.queries.len() as f64);
        self.candidates.record(outcome.candidates.len() as f64);
        self.accepted.record(outcome.accepted.len() as f64);
        self.pending.record(outcome.pending.len() as f64);
        self.rejected.record(outcome.rejected.len() as f64);
        if outcome.used_focal_spread {
            self.focal_spread_used += 1;
        }
    }

    /// Record one expert resolution.
    pub fn record_resolution(&mut self, accepted: bool) {
        if accepted {
            self.expert_accepts += 1;
        } else {
            self.expert_rejects += 1;
        }
    }

    /// Fraction of auto decisions (accept + reject) among all routed
    /// predictions — the automation the adaptive bounds buy.
    pub fn automation_ratio(&self) -> f64 {
        let auto = self.accepted.sum() + self.rejected.sum();
        let total = auto + self.pending.sum();
        if total > 0.0 {
            auto / total
        } else {
            0.0
        }
    }

    /// The expert-accept ratio (`M_H` over the actual expert decisions).
    pub fn expert_hit_ratio(&self) -> f64 {
        let n = self.expert_accepts + self.expert_rejects;
        if n > 0 {
            self.expert_accepts as f64 / n as f64
        } else {
            0.0
        }
    }
}

impl fmt::Display for SessionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "session: {} annotations processed", self.annotations)?;
        writeln!(f, "  queries/annotation:    {}", self.queries)?;
        writeln!(f, "  candidates/annotation: {}", self.candidates)?;
        writeln!(f, "  auto-accepted:         {}", self.accepted)?;
        writeln!(f, "  pending (expert):      {}", self.pending)?;
        writeln!(f, "  auto-rejected:         {}", self.rejected)?;
        writeln!(f, "  automation ratio:      {:.0}%", self.automation_ratio() * 100.0)?;
        writeln!(f, "  focal spreading used:  {}/{}", self.focal_spread_used, self.annotations)?;
        write!(
            f,
            "  expert decisions:      {} accept / {} reject (hit {:.0}%)",
            self.expert_accepts,
            self.expert_rejects,
            self.expert_hit_ratio() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annostore::AnnotationId;
    use textsearch::SearchStats;

    fn outcome(queries: usize, accepted: usize, pending: usize, rejected: usize) -> ProcessOutcome {
        use relstore::schema::TableId;
        use relstore::TupleId;
        let t = |i: u64| TupleId::new(TableId(0), i);
        ProcessOutcome {
            annotation: AnnotationId(0),
            queries: (0..queries)
                .map(|i| crate::querygen::GeneratedQuery {
                    keywords: vec![format!("k{i}")],
                    weight: 1.0,
                    anchor_table: TableId(0),
                    value_column: None,
                    positions: vec![i],
                    match_type: 2,
                })
                .collect(),
            candidates: (0..accepted + pending + rejected)
                .map(|i| crate::execution::Candidate {
                    tuple: t(i as u64),
                    confidence: 0.5,
                    evidence: vec![],
                })
                .collect(),
            accepted: (0..accepted).map(|i| (t(i as u64), 0.9)).collect(),
            pending: (0..pending).map(|i| i as u64).collect(),
            rejected: (0..rejected).map(|i| (t(100 + i as u64), 0.1)).collect(),
            used_focal_spread: accepted.is_multiple_of(2),
            stats: SearchStats::default(),
            degradations: vec![],
        }
    }

    #[test]
    fn stat_tracks_min_mean_max() {
        let mut s = Stat::default();
        assert_eq!(s.mean(), 0.0);
        for x in [3.0, 1.0, 5.0] {
            s.record(x);
        }
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert!((s.sum() - 9.0).abs() < 1e-12);
        assert_eq!(s.count, 3);
    }

    #[test]
    fn stat_empty_is_all_zero() {
        let s = Stat::default();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.sum(), 0.0);
        assert_eq!(s.mean(), 0.0, "mean of zero observations must not divide by zero");
        assert_eq!(s.to_string(), "min 0.0 / mean 0.0 / max 0.0");
    }

    #[test]
    fn stat_single_observation_sets_all_fields() {
        let mut s = Stat::default();
        s.record(7.5);
        assert_eq!(s.count, 1);
        assert_eq!(s.min, 7.5);
        assert_eq!(s.max, 7.5);
        assert_eq!(s.sum(), 7.5);
        assert_eq!(s.mean(), 7.5);
    }

    #[test]
    fn stat_min_updates_on_smaller_later_observation() {
        let mut s = Stat::default();
        s.record(2.0);
        s.record(-4.0);
        assert_eq!(s.min, -4.0);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.sum(), -2.0);
    }

    #[test]
    fn report_aggregates_outcomes() {
        let mut r = SessionReport::new();
        r.record(&outcome(5, 2, 1, 1));
        r.record(&outcome(3, 0, 3, 0));
        assert_eq!(r.annotations, 2);
        assert!((r.queries.mean() - 4.0).abs() < 1e-12);
        assert_eq!(r.accepted.max, 2.0);
        assert_eq!(r.pending.max, 3.0);
        // automation: auto = 2+1 ; pending = 4 → 3/7
        assert!((r.automation_ratio() - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn expert_hit_ratio() {
        let mut r = SessionReport::new();
        assert_eq!(r.expert_hit_ratio(), 0.0);
        r.record_resolution(true);
        r.record_resolution(true);
        r.record_resolution(false);
        assert!((r.expert_hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_renders_all_sections() {
        let mut r = SessionReport::new();
        r.record(&outcome(4, 2, 1, 0));
        r.record_resolution(true);
        let text = r.to_string();
        assert!(text.contains("1 annotations processed"));
        assert!(text.contains("automation ratio"));
        assert!(text.contains("expert decisions"));
    }
}

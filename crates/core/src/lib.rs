//! # nebula-core — proactive annotation management
//!
//! The primary contribution of *"Proactive Annotation Management in
//! Relational Databases"* (SIGMOD 2015): an engine that learns from the
//! annotations already attached to a relational database, discovers the
//! **embedded references** hidden in their text, and proactively
//! recommends the missing annotation-to-data attachments.
//!
//! The pipeline (Figure 16 of the paper):
//!
//! | Stage | Module(s) | What happens |
//! |---|---|---|
//! | 0 | [`engine`] | a new annotation is inserted with its *focal* attachments |
//! | 1 | [`meta`], [`sigmap`], [`adjust`], [`querygen`] | signature maps highlight candidate reference words; context adjustment rewards consistent neighborhoods; keyword queries are formed |
//! | 2 | [`execution`], [`acg`], [`focal`] | queries execute over the full database or the focal K-hop miniDB; the ACG rewards candidates near the focal |
//! | 3 | [`verify`], [`assess`], [`bounds`] | candidates are auto-accepted / queued for experts / auto-rejected by the adaptive β bounds |
//!
//! [`patterns`] provides the small from-scratch pattern matcher NebulaMeta
//! uses for syntactic column descriptions (e.g. `JW[0-9]{4}`).
//!
//! Cross-cutting robustness ([`error`], [`batch`], [`durability`]): every
//! fallible engine path returns a typed [`NebulaError`],
//! [`Nebula::process_batch`] ingests whole batches with per-annotation
//! fault containment under the `nebula-govern` execution budgets and fault
//! plans, and an optional [`MutationSink`] receives every annotation-layer
//! mutation *before* it is applied (write-ahead), which is what the
//! `nebula-durable` crate builds its crash-safe WAL on.
//!
//! See the [`Nebula`] facade for the end-to-end API.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod acg;
pub mod adjust;
pub mod assess;
pub mod batch;
pub mod bounds;
pub mod durability;
pub mod engine;
pub mod error;
pub mod execution;
pub mod focal;
pub mod learn;
pub mod meta;
pub mod patterns;
pub mod querygen;
pub mod report;
pub mod sigmap;
pub mod verify;

pub use acg::{Acg, StabilityConfig};
pub use adjust::{context_based_adjustment, AdjustParams};
pub use assess::{assess_predictions, AssessmentCounts, AssessmentReport};
pub use batch::{
    classify_outcome, panic_message, BatchEntry, BatchReport, BatchStatus, QuarantineReason,
};
pub use bounds::{distort, BoundsEvaluation, BoundsSetting, TrainingExample};
pub use durability::{CommitRule, Mutation, MutationSink, ReplicationStatus, SinkError};
pub use engine::{GroupSearch, Nebula, NebulaConfig, ProcessOutcome, SearchMode};
pub use error::NebulaError;
pub use execution::{
    identify_related_tuples, translate_candidates, AcgRewardMode, Candidate, ExecutionConfig,
};
pub use focal::{build_minidb, HopProfile};
pub use learn::{learn_concept_refs, learn_referencing_columns, LearnConfig, LearnedColumn};
pub use meta::{ConceptRef, ConceptTarget, NebulaMeta};
pub use patterns::{Pattern, PatternError};
pub use querygen::{build_context_map, generate_queries, GeneratedQuery, QueryGenConfig};
pub use report::{SessionReport, Stat};
pub use sigmap::{split_annotation, ContextEntry, ContextMap, Word};
pub use verify::{
    parse_command, Command, Decision, VerificationBounds, VerificationQueue, VerificationTask,
};

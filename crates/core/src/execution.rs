//! Executing generated keyword queries — `IdentifyRelatedTuples()`
//! (paper §6.1, Figure 5) plus the focal-based confidence adjustment
//! (§6.2).
//!
//! Step 1 submits each keyword query to the underlying search technique
//! and scales each answer tuple's confidence by the query's weight.
//! Step 2 groups tuples across queries, *rewarding* tuples that satisfy
//! several queries of the same annotation, and (optionally) applies the
//! ACG focal reward. Step 3 normalizes confidences relative to the
//! maximum.

use crate::acg::Acg;
use crate::querygen::GeneratedQuery;
use relstore::{Database, TupleId};
use std::collections::HashMap;
use textsearch::{ExecutionMode, KeywordQuery, SearchBackend, SearchError, SearchStats};

/// A candidate attachment: a tuple the annotation likely references.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The candidate tuple (in the coordinate space of the searched
    /// database — callers translate miniDB ids back).
    pub tuple: TupleId,
    /// Normalized confidence in `(0, 1]`.
    pub confidence: f64,
    /// The generated queries this tuple satisfied, rendered as evidence
    /// strings for the verification task (§7: `v.evidence`).
    pub evidence: Vec<String>,
}

/// How the ACG rewards candidates connected to the focal (§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcgRewardMode {
    /// Only direct edges to focal tuples reward (the paper's default —
    /// it judges the multi-hop variant "semantically weaker and may cause
    /// model overfitting").
    Direct,
    /// The §6.2 extension: indirect connections reward too, with the
    /// product of edge weights along the shortest path (capped hops).
    Path {
        /// Maximum path length considered.
        max_hops: usize,
    },
}

/// Knobs of the execution stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionConfig {
    /// Execute the query group isolated or shared (§6 / Figure 13).
    pub mode: ExecutionMode,
    /// Apply the ACG focal-based confidence adjustment (§6.2).
    pub acg_adjustment: bool,
    /// Direct-edge or shortest-path reward.
    pub reward: AcgRewardMode,
}

impl Default for ExecutionConfig {
    fn default() -> Self {
        ExecutionConfig {
            mode: ExecutionMode::Shared,
            acg_adjustment: true,
            reward: AcgRewardMode::Direct,
        }
    }
}

/// `IdentifyRelatedTuples()`: execute the queries and produce ranked
/// candidate tuples.
///
/// `focal` is the annotation's focal (excluded from the candidates —
/// those attachments already exist — and used for the ACG reward).
/// Returns the candidates sorted by descending confidence, plus search
/// work counters. Fails when the installed budget trips mid-search or a
/// fault plan injects an unrecovered error.
pub fn identify_related_tuples(
    db: &Database,
    engine: &dyn SearchBackend,
    queries: &[GeneratedQuery],
    focal: &[TupleId],
    acg: Option<&Acg>,
    config: &ExecutionConfig,
) -> Result<(Vec<Candidate>, SearchStats), SearchError> {
    // Step 1: execute each keyword query; scale hit confidence by the
    // query's weight.
    let kw_queries: Vec<KeywordQuery> = queries
        .iter()
        .map(|q| KeywordQuery::new(q.keywords.clone()).with_weight(q.weight))
        .collect();
    let (per_query_hits, stats) = engine.run_group(&kw_queries, db, config.mode)?;

    // Candidate attachments are restricted to the *concept* tables the
    // queries anchor on (Definition 3.2's embedded references point at
    // ConceptRefs concepts); hits on other tables — e.g. free-text rows
    // that merely quote the same tokens — are not attachment candidates.
    let anchor_tables: std::collections::HashSet<relstore::schema::TableId> =
        queries.iter().map(|q| q.anchor_table).collect();

    // Step 2: group tuples across queries and sum confidences (rewarding
    // tuples that satisfy multiple queries), collecting evidence.
    let mut conf: HashMap<TupleId, f64> = HashMap::new();
    let mut evidence: HashMap<TupleId, Vec<String>> = HashMap::new();
    for (gq, hits) in queries.iter().zip(&per_query_hits) {
        let rendered = format!("q{{{}}} (w={:.2})", gq.keywords.join(" "), gq.weight);
        for hit in hits {
            if !anchor_tables.contains(&hit.tuple.table) {
                continue;
            }
            let weighted = hit.confidence * gq.weight;
            *conf.entry(hit.tuple).or_insert(0.0) += weighted;
            evidence.entry(hit.tuple).or_default().push(rendered.clone());
        }
    }

    // The focal tuples themselves are already attached — drop them.
    for f in focal {
        conf.remove(f);
        evidence.remove(f);
    }

    // §6.2 focal-based adjustment: for each ACG connection between t and
    // a focal tuple, t.conf += connection_weight × t.conf.
    if config.acg_adjustment {
        if let Some(acg) = acg {
            for (t, c) in conf.iter_mut() {
                for f in focal {
                    let w = match config.reward {
                        AcgRewardMode::Direct => acg.edge_weight(*t, *f),
                        AcgRewardMode::Path { max_hops } => acg.path_weight(*t, *f, max_hops),
                    };
                    if let Some(w) = w {
                        *c += w * *c;
                    }
                }
            }
        }
    }

    // Step 3: normalize into [0, 1]. The paper divides by the maximum
    // confidence; we instead *cap* at 1.0. Dividing by the max has two
    // failure modes the β-bound routing cannot recover from: an
    // annotation whose queries were all noise still gets a candidate at
    // confidence 1.0 (guaranteeing a false auto-accept), and the ACG
    // reward inflating one candidate suppresses every *unconnected* true
    // reference below β_lower. Capping keeps confidences absolute, which
    // is what the adaptive bounds need (see DESIGN.md).
    let mut raw: Vec<(TupleId, f64)> = conf.into_iter().collect();
    // Rank by the *uncapped* confidence so the ordering distinguishes
    // candidates whose routing confidence saturates at 1.0.
    raw.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut out: Vec<Candidate> = raw
        .into_iter()
        .map(|(tuple, c)| Candidate {
            tuple,
            confidence: c.min(1.0),
            evidence: evidence.remove(&tuple).unwrap_or_default(),
        })
        .collect();
    // Budget governance: keep only as many ranked candidates as the
    // installed budget admits (the list is already sorted by descending
    // confidence, so the weakest are dropped). A no-op when ungoverned.
    let allowed = nebula_govern::admit(nebula_govern::Resource::Candidates, out.len());
    out.truncate(allowed);
    Ok((out, stats))
}

/// Translate candidates produced over a miniDB back into original-database
/// tuple ids, dropping any that do not translate (should not happen for a
/// well-formed map).
pub fn translate_candidates(
    candidates: Vec<Candidate>,
    back: &HashMap<TupleId, TupleId>,
) -> Vec<Candidate> {
    candidates
        .into_iter()
        .filter_map(|mut c| {
            let orig = back.get(&c.tuple)?;
            c.tuple = *orig;
            Some(c)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::{ConceptRef, NebulaMeta};
    use crate::patterns::Pattern;
    use crate::querygen::{generate_queries, QueryGenConfig};
    use annostore::{Annotation, AnnotationStore, AttachmentTarget};
    use relstore::{DataType, TableSchema, Value};
    use textsearch::KeywordSearch;

    fn setup() -> (Database, NebulaMeta, Vec<TupleId>) {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("gene")
                .column("gid", DataType::Text)
                .column("name", DataType::Text)
                .primary_key("gid")
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut ids = Vec::new();
        for (gid, name) in
            [("JW0013", "grpC"), ("JW0014", "groP"), ("JW0019", "yaaB"), ("JW0012", "yaaI")]
        {
            ids.push(db.insert("gene", vec![Value::text(gid), Value::text(name)]).unwrap());
        }
        let mut meta = NebulaMeta::new();
        meta.add_concept(ConceptRef {
            concept: "Gene".into(),
            table: "gene".into(),
            referenced_by: vec![vec!["gid".into()], vec!["name".into()]],
        });
        meta.set_pattern("gene", "gid", Pattern::compile("JW[0-9]{4}").unwrap());
        meta.set_pattern("gene", "name", Pattern::compile("[a-z]{3}[A-Z]").unwrap());
        (db, meta, ids)
    }

    fn run(
        db: &Database,
        meta: &NebulaMeta,
        text: &str,
        focal: &[TupleId],
        acg: Option<&Acg>,
        config: &ExecutionConfig,
    ) -> Vec<Candidate> {
        let queries = generate_queries(db, meta, text, &QueryGenConfig::default());
        let engine = KeywordSearch::default();
        identify_related_tuples(db, &engine, &queries, focal, acg, config)
            .expect("ungoverned search cannot fail")
            .0
    }

    #[test]
    fn discovers_referenced_tuples() {
        let (db, meta, ids) = setup();
        let cands = run(
            &db,
            &meta,
            "this gene correlates with JW0014 and also grpC",
            &[ids[2]],
            None,
            &ExecutionConfig::default(),
        );
        let tuples: Vec<TupleId> = cands.iter().map(|c| c.tuple).collect();
        assert!(tuples.contains(&ids[1]), "JW0014 found");
        assert!(tuples.contains(&ids[0]), "grpC found");
        assert!(!tuples.contains(&ids[2]), "focal excluded");
        assert!(cands.iter().all(|c| c.confidence > 0.0 && c.confidence <= 1.0));
        assert!(cands.iter().all(|c| !c.evidence.is_empty()));
    }

    #[test]
    fn multi_query_tuples_rewarded() {
        let (db, meta, ids) = setup();
        // JW0014 referenced twice (by id and by name) → two queries hit
        // the same tuple → its summed confidence ranks first.
        let cands = run(
            &db,
            &meta,
            "gene JW0014 also known as gene groP interacts with gene yaaB",
            &[],
            None,
            &ExecutionConfig::default(),
        );
        assert_eq!(cands[0].tuple, ids[1]);
        assert_eq!(cands[0].confidence, 1.0);
        assert_eq!(cands[0].evidence.len(), 2);
    }

    #[test]
    fn acg_adjustment_boosts_focal_neighbors() {
        let (db, meta, ids) = setup();
        // ACG edge between focal ids[2] and candidate ids[1].
        let mut store = AnnotationStore::new();
        let a = store.add_annotation(Annotation::new("shared"));
        store.attach(a, AttachmentTarget::tuple(ids[2])).unwrap();
        store.attach(a, AttachmentTarget::tuple(ids[1])).unwrap();
        let acg = Acg::build_from_store(&store);

        let text = "gene JW0014 and gene grpC";
        let with = run(
            &db,
            &meta,
            text,
            &[ids[2]],
            Some(&acg),
            &ExecutionConfig { acg_adjustment: true, ..Default::default() },
        );
        // With the reward, JW0014 (connected to the focal) outranks grpC
        // (routing confidences may both saturate at 1.0; the *ranking*
        // uses the uncapped score).
        assert_eq!(with[0].tuple, ids[1]);
        assert!(with[0].confidence >= with[1].confidence);

        let without = run(
            &db,
            &meta,
            text,
            &[ids[2]],
            Some(&acg),
            &ExecutionConfig { acg_adjustment: false, ..Default::default() },
        );
        // Without it, both references score equally.
        assert!((without[0].confidence - without[1].confidence).abs() < 1e-9);
    }

    #[test]
    fn empty_queries_empty_result() {
        let (db, _meta, _) = setup();
        let engine = KeywordSearch::default();
        let (cands, stats) =
            identify_related_tuples(&db, &engine, &[], &[], None, &ExecutionConfig::default())
                .unwrap();
        assert!(cands.is_empty());
        assert_eq!(stats.compiled_queries, 0);
    }

    #[test]
    fn shared_and_isolated_agree() {
        let (db, meta, _) = setup();
        let text = "gene JW0014 or gene JW0013 or gene grpC";
        let a = run(
            &db,
            &meta,
            text,
            &[],
            None,
            &ExecutionConfig {
                mode: ExecutionMode::Shared,
                acg_adjustment: false,
                ..Default::default()
            },
        );
        let b = run(
            &db,
            &meta,
            text,
            &[],
            None,
            &ExecutionConfig {
                mode: ExecutionMode::Isolated,
                acg_adjustment: false,
                ..Default::default()
            },
        );
        assert_eq!(a, b);
    }

    #[test]
    fn translate_candidates_maps_ids() {
        let (_, _, ids) = setup();
        let mini_id = TupleId::new(relstore::schema::TableId(0), 99);
        let mut back = HashMap::new();
        back.insert(mini_id, ids[0]);
        let cands = vec![
            Candidate { tuple: mini_id, confidence: 0.9, evidence: vec![] },
            Candidate {
                tuple: TupleId::new(relstore::schema::TableId(0), 98),
                confidence: 0.5,
                evidence: vec![],
            },
        ];
        let out = translate_candidates(cands, &back);
        assert_eq!(out.len(), 1, "untranslatable candidates dropped");
        assert_eq!(out[0].tuple, ids[0]);
    }
}

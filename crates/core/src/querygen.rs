//! Keyword-query generation (paper §5.2.3, Figure 4(d)).
//!
//! The last step of `QueryGeneration()`: walk the Context-Map, and for
//! each emphasized word take its highest-weight mapping and form the best
//! matching within its influence range — Type-1 (table + column + value),
//! else Type-2 (table + value), else Type-3 (column + value). Each match
//! becomes one keyword query whose weight is the sum of its members'
//! mapping weights.
//!
//! The **backward-concept special case** handles human writing where the
//! concept word appears once and is not repeated before every value
//! ("…gene is correlated to JW0014 or grpC"): a value word with an empty
//! influence range searches *backward* for the closest concept word and
//! pairs with it when consistent.
//!
//! Finally, duplicate queries are collapsed (keeping the highest weight)
//! and weights are normalized to `(0, 1]`.

use crate::adjust::{context_based_adjustment, AdjustParams};
use crate::meta::{ConceptTarget, NebulaMeta};
use crate::sigmap::{
    generate_concept_map, generate_value_map, overlay, split_annotation, ContextMap,
};
use relstore::schema::{ColumnId, TableId};
use relstore::Database;
use std::collections::HashMap;

/// Configuration of the query-generation stage.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryGenConfig {
    /// Cutoff threshold ε for the signature maps.
    pub epsilon: f64,
    /// Context-adjustment parameters (α, β₁, β₂, β₃).
    pub adjust: AdjustParams,
    /// Apply the context-based weight adjustment (ablation switch).
    pub context_adjustment: bool,
    /// Apply the backward-concept special case (ablation switch).
    pub backward_search: bool,
}

impl Default for QueryGenConfig {
    fn default() -> Self {
        QueryGenConfig {
            epsilon: 0.6,
            adjust: AdjustParams::default(),
            context_adjustment: true,
            backward_search: true,
        }
    }
}

/// One generated keyword query.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedQuery {
    /// The query keywords in annotation order (raw word forms).
    pub keywords: Vec<String>,
    /// Normalized weight in `(0, 1]`.
    pub weight: f64,
    /// The table the match anchors to.
    pub anchor_table: TableId,
    /// The value column of the match's hexagon member.
    pub value_column: Option<ColumnId>,
    /// Positions (word indexes) the keywords came from.
    pub positions: Vec<usize>,
    /// Matching type that formed the query: 1, 2, or 3.
    pub match_type: u8,
}

/// The best concept members visible from `center` within radius α:
/// `(table word position, weight)` for the anchor table and
/// `(column word position, weight)` for a consistent column.
#[derive(Debug, Default, Clone, Copy)]
struct RangeConcepts {
    table: Option<(usize, f64)>,
    column: Option<(usize, f64)>,
}

/// Scan `map` within `[center−α, center+α]` (excluding `center`) for
/// concept words consistent with value mapping `(t, c)`.
fn range_concepts(
    map: &ContextMap,
    center: usize,
    alpha: usize,
    t: TableId,
    c: ColumnId,
) -> RangeConcepts {
    let lo = center.saturating_sub(alpha);
    let hi = (center + alpha).min(map.entries.len().saturating_sub(1));
    let mut out = RangeConcepts::default();
    for (i, entry) in map.entries.iter().enumerate().take(hi + 1).skip(lo) {
        if i == center {
            continue;
        }
        for cm in &entry.concepts {
            match cm.target {
                ConceptTarget::Table(ct)
                    if ct == t && out.table.is_none_or(|(_, w)| cm.weight > w) =>
                {
                    out.table = Some((i, cm.weight));
                }
                ConceptTarget::Column(ct, cc)
                    if ct == t && cc == c && out.column.is_none_or(|(_, w)| cm.weight > w) =>
                {
                    out.column = Some((i, cm.weight));
                }
                _ => {}
            }
        }
    }
    out
}

/// Backward search (Lines 8–12 of Figure 4(d)): from `center−1` toward the
/// beginning, find the closest concept word consistent with `(t, c)`.
/// Returns `(position, weight, is_table)` of the found concept.
fn backward_concept(
    map: &ContextMap,
    center: usize,
    t: TableId,
    c: ColumnId,
) -> Option<(usize, f64, bool)> {
    for i in (0..center).rev() {
        let entry = &map.entries[i];
        // The *closest* concept word wins — check both shapes at this
        // position, preferring the table shape (Type-2 over Type-3).
        let mut best: Option<(f64, bool)> = None;
        for cm in &entry.concepts {
            match cm.target {
                ConceptTarget::Table(ct)
                    if ct == t && best.is_none_or(|(w, is_t)| !is_t || cm.weight > w) =>
                {
                    best = Some((cm.weight, true));
                }
                ConceptTarget::Column(ct, cc) if ct == t && cc == c && best.is_none() => {
                    best = Some((cm.weight, false));
                }
                _ => {}
            }
        }
        if let Some((w, is_table)) = best {
            return Some((i, w, is_table));
        }
        // Any other concept word (inconsistent) also terminates the
        // backward scan — it re-sets the discourse context.
        if !entry.concepts.is_empty() {
            return None;
        }
    }
    None
}

/// Resolve the multi-column referencing combinations declared in
/// ConceptRefs (e.g. a protein referenced by `PName & PType`) to ids.
fn combo_columns(db: &Database, meta: &NebulaMeta) -> Vec<(TableId, Vec<ColumnId>)> {
    let mut out = Vec::new();
    for cr in meta.concepts() {
        let Some(tid) = db.catalog().resolve(&cr.table) else { continue };
        let Some(table) = db.table(tid) else { continue };
        for combo in &cr.referenced_by {
            if combo.len() < 2 {
                continue;
            }
            let cols: Vec<ColumnId> =
                combo.iter().filter_map(|c| table.schema().column_id(c)).collect();
            if cols.len() == combo.len() {
                out.push((tid, cols));
            }
        }
    }
    out
}

/// Complete a query anchored on value mapping `(t, c)` with the other
/// members of a multi-column referencing combination, when consistent
/// value words are in range — e.g. `…protein G-Actin structural…` forms
/// one `{protein, G-Actin, structural}` query instead of two ambiguous
/// ones.
fn complete_combo(
    map: &ContextMap,
    center: usize,
    alpha: usize,
    t: TableId,
    c: ColumnId,
    combos: &[(TableId, Vec<ColumnId>)],
    q: &mut GeneratedQuery,
) {
    for (ct, cols) in combos {
        if *ct != t || !cols.contains(&c) {
            continue;
        }
        let lo = center.saturating_sub(alpha);
        let hi = (center + alpha).min(map.entries.len().saturating_sub(1));
        for &other_col in cols.iter().filter(|cc| **cc != c) {
            // Best in-range value word mapping to (t, other_col).
            let mut best: Option<(usize, f64)> = None;
            for (j, entry) in map.entries.iter().enumerate().take(hi + 1).skip(lo) {
                if j == center || q.positions.contains(&j) {
                    continue;
                }
                for vm in &entry.values {
                    if vm.table == t
                        && vm.column == other_col
                        && best.is_none_or(|(_, w)| vm.weight > w)
                    {
                        best = Some((j, vm.weight));
                    }
                }
            }
            if let Some((j, w)) = best {
                q.positions.push(j);
                q.positions.sort_unstable();
                q.keywords =
                    q.positions.iter().map(|&p| map.entries[p].word.raw_for_matching()).collect();
                q.weight += w;
            }
        }
    }
}

/// `ConceptMap-To-Queries()`: form keyword queries from an adjusted
/// Context-Map.
pub fn concept_map_to_queries(
    db: &Database,
    meta: &NebulaMeta,
    map: &ContextMap,
    config: &QueryGenConfig,
) -> Vec<GeneratedQuery> {
    let combos = combo_columns(db, meta);
    let mut queries: Vec<GeneratedQuery> = Vec::new();

    for (i, entry) in map.entries.iter().enumerate() {
        // Only the word's highest-weight mapping is considered (Line 2).
        // Queries anchor on value (hexagon) words: a query without a value
        // keyword cannot identify a tuple. Concept-led matches are formed
        // from the perspective of their hexagon member, so iterating
        // hexagons covers every match the paper's loop would form, and the
        // final dedup collapses the rest.
        let Some(best_value) = entry.values.iter().max_by(|a, b| a.weight.total_cmp(&b.weight))
        else {
            continue;
        };
        // Is the value mapping actually the word's best mapping? If a
        // concept mapping dominates, the word acts as a concept, not a
        // value.
        if let Some(best_concept) = entry.concepts.iter().map(|c| c.weight).max_by(f64::total_cmp) {
            if best_concept > best_value.weight {
                continue;
            }
        }
        let (t, c) = (best_value.table, best_value.column);
        let rc = range_concepts(map, i, config.adjust.alpha, t, c);

        let q = match (rc.table, rc.column) {
            (Some((tp, tw)), Some((cp, cw))) => {
                // Type-1: {table word, column word, value word}.
                let mut positions = vec![tp, cp, i];
                positions.sort();
                Some(GeneratedQuery {
                    keywords: positions
                        .iter()
                        .map(|&p| map.entries[p].word.raw_for_matching())
                        .collect(),
                    weight: tw + cw + best_value.weight,
                    anchor_table: t,
                    value_column: Some(c),
                    positions,
                    match_type: 1,
                })
            }
            (Some((tp, tw)), None) => {
                let mut positions = vec![tp, i];
                positions.sort();
                Some(GeneratedQuery {
                    keywords: positions
                        .iter()
                        .map(|&p| map.entries[p].word.raw_for_matching())
                        .collect(),
                    weight: tw + best_value.weight,
                    anchor_table: t,
                    value_column: Some(c),
                    positions,
                    match_type: 2,
                })
            }
            (None, Some((cp, cw))) => {
                let mut positions = vec![cp, i];
                positions.sort();
                Some(GeneratedQuery {
                    keywords: positions
                        .iter()
                        .map(|&p| map.entries[p].word.raw_for_matching())
                        .collect(),
                    weight: cw + best_value.weight,
                    anchor_table: t,
                    value_column: Some(c),
                    positions,
                    match_type: 3,
                })
            }
            (None, None) if config.backward_search => {
                // Special case: empty influence range — search backward
                // for the closest consistent concept (Lines 8–12).
                backward_concept(map, i, t, c).map(|(pos, w, is_table)| GeneratedQuery {
                    keywords: vec![
                        map.entries[pos].word.raw_for_matching(),
                        map.entries[i].word.raw_for_matching(),
                    ],
                    weight: w + best_value.weight,
                    anchor_table: t,
                    value_column: Some(c),
                    positions: vec![pos, i],
                    match_type: if is_table { 2 } else { 3 },
                })
            }
            _ => None,
        };
        if let Some(mut q) = q {
            complete_combo(map, i, config.adjust.alpha, t, c, &combos, &mut q);
            queries.push(q);
        }
    }

    dedup_and_normalize(queries)
}

/// Eliminate duplicates (same keyword multiset) keeping the highest
/// weight, then normalize weights to `(0, 1]` (Lines 15–16).
fn dedup_and_normalize(queries: Vec<GeneratedQuery>) -> Vec<GeneratedQuery> {
    let mut best: HashMap<Vec<String>, GeneratedQuery> = HashMap::new();
    for q in queries {
        let mut key: Vec<String> = q.keywords.iter().map(|k| k.to_lowercase()).collect();
        key.sort();
        match best.get(&key) {
            Some(prev) if prev.weight >= q.weight => {}
            _ => {
                best.insert(key, q);
            }
        }
    }
    let mut out: Vec<GeneratedQuery> = best.into_values().collect();
    let max = out.iter().map(|q| q.weight).fold(0.0_f64, f64::max);
    if max > 0.0 {
        for q in &mut out {
            q.weight /= max;
        }
    }
    out.sort_by(|a, b| b.weight.total_cmp(&a.weight).then_with(|| a.positions.cmp(&b.positions)));
    out
}

/// The full `QueryGeneration()` pipeline of Figure 4(a): signature maps →
/// overlay → context adjustment → queries.
pub fn generate_queries(
    db: &Database,
    meta: &NebulaMeta,
    annotation_text: &str,
    config: &QueryGenConfig,
) -> Vec<GeneratedQuery> {
    let map = build_context_map(db, meta, annotation_text, config);
    concept_map_to_queries(db, meta, &map, config)
}

/// Phases 1–2 of the pipeline (exposed separately so the benchmarks can
/// time map generation, overlay/adjustment, and query generation
/// individually — Figure 11(a)).
pub fn build_context_map(
    db: &Database,
    meta: &NebulaMeta,
    annotation_text: &str,
    config: &QueryGenConfig,
) -> ContextMap {
    let words = split_annotation(annotation_text);
    let cmap = generate_concept_map(db, meta, &words, config.epsilon);
    let vmap = generate_value_map(db, meta, &words, config.epsilon);
    let mut map = overlay(&words, cmap, vmap);
    if config.context_adjustment {
        context_based_adjustment(&mut map, &config.adjust);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::ConceptRef;
    use crate::patterns::Pattern;
    use relstore::{DataType, TableSchema, Value};

    fn setup() -> (Database, NebulaMeta) {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("gene")
                .column("gid", DataType::Text)
                .column("name", DataType::Text)
                .primary_key("gid")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert("gene", vec![Value::text("JW0013"), Value::text("grpC")]).unwrap();
        let mut meta = NebulaMeta::new();
        meta.add_concept(ConceptRef {
            concept: "Gene".into(),
            table: "gene".into(),
            referenced_by: vec![vec!["gid".into()], vec!["name".into()]],
        });
        meta.add_column_equivalent("id", "gene", "gid");
        meta.set_pattern("gene", "gid", Pattern::compile("JW[0-9]{4}").unwrap());
        meta.set_pattern("gene", "name", Pattern::compile("[a-z]{3}[A-Z]").unwrap());
        (db, meta)
    }

    #[test]
    fn type1_query_formed() {
        let (db, meta) = setup();
        let qs = generate_queries(&db, &meta, "gene id JW0018", &QueryGenConfig::default());
        assert_eq!(qs.len(), 1);
        assert_eq!(qs[0].match_type, 1);
        assert_eq!(qs[0].keywords, vec!["gene", "id", "JW0018"]);
        assert_eq!(qs[0].weight, 1.0, "single query normalizes to 1");
    }

    #[test]
    fn type2_query_formed() {
        let (db, meta) = setup();
        let qs = generate_queries(
            &db,
            &meta,
            "the gene yaaB was upregulated",
            &QueryGenConfig::default(),
        );
        assert_eq!(qs.len(), 1);
        assert_eq!(qs[0].match_type, 2);
        assert_eq!(qs[0].keywords, vec!["gene", "yaaB"]);
    }

    #[test]
    fn plural_concept_word_matches() {
        // "genes JW0013 and JW0014" — the plural concept word must still
        // anchor both references (the WordNet-normalization role).
        let (db, meta) = setup();
        let qs = generate_queries(
            &db,
            &meta,
            "the genes JW0013 and JW0014 were both upregulated",
            &QueryGenConfig::default(),
        );
        assert_eq!(qs.len(), 2, "{qs:?}");
        let kws: Vec<&String> = qs.iter().flat_map(|q| &q.keywords).collect();
        assert!(kws.contains(&&"JW0013".to_string()));
        assert!(kws.contains(&&"JW0014".to_string()));
    }

    #[test]
    fn alice_comment_backward_search() {
        // Alice's comment from Figure 1: "gene" appears once, then two
        // value references follow without repeating the concept.
        let (db, meta) = setup();
        let text = "From the exp, it seems this gene is correlated to \
                    the expression values and the timing of JW0014 or possibly grpC";
        let qs = generate_queries(&db, &meta, text, &QueryGenConfig::default());
        let keyword_sets: Vec<&Vec<String>> = qs.iter().map(|q| &q.keywords).collect();
        assert!(keyword_sets.iter().any(|k| k.contains(&"JW0014".to_string())));
        assert!(keyword_sets.iter().any(|k| k.contains(&"grpC".to_string())));
        // Both were found by the backward search (concept out of α range).
        for q in &qs {
            assert_eq!(q.keywords[0], "gene");
        }
    }

    #[test]
    fn backward_search_can_be_disabled() {
        let (db, meta) = setup();
        let text = "From the exp, it seems this gene is correlated to \
                    the expression values and the timing of JW0014 or possibly grpC";
        let config = QueryGenConfig { backward_search: false, ..Default::default() };
        let qs = generate_queries(&db, &meta, text, &config);
        assert!(
            qs.iter().all(|q| !q.keywords.contains(&"grpC".to_string())),
            "distant value words are dropped without backward search"
        );
    }

    #[test]
    fn duplicates_collapsed() {
        let (db, meta) = setup();
        // "gene JW0018 ... gene JW0018" produces the same query twice.
        let qs = generate_queries(
            &db,
            &meta,
            "gene JW0018 compared against gene JW0018",
            &QueryGenConfig::default(),
        );
        assert_eq!(qs.len(), 1);
    }

    #[test]
    fn weights_normalized_and_sorted() {
        let (db, meta) = setup();
        // A Type-1 (stronger) and a Type-2 match in the same annotation.
        let qs = generate_queries(
            &db,
            &meta,
            "gene id JW0018 while gene yaaB remained",
            &QueryGenConfig::default(),
        );
        assert!(qs.len() >= 2);
        assert_eq!(qs[0].weight, 1.0);
        assert!(qs.windows(2).all(|w| w[0].weight >= w[1].weight));
        assert!(qs.iter().all(|q| q.weight > 0.0 && q.weight <= 1.0));
    }

    #[test]
    fn no_emphasized_words_no_queries() {
        let (db, meta) = setup();
        let qs =
            generate_queries(&db, &meta, "nothing to see here at all", &QueryGenConfig::default());
        assert!(qs.is_empty());
    }

    #[test]
    fn value_word_without_any_concept_ignored() {
        let (db, meta) = setup();
        // Value with no concept anywhere in the annotation.
        let qs = generate_queries(&db, &meta, "JW0018 alone", &QueryGenConfig::default());
        assert!(qs.is_empty());
    }

    #[test]
    fn inconsistent_backward_concept_stops_scan() {
        let (_db, mut meta) = setup();
        // Add a protein concept; a protein word between "gene" and the
        // value resets the discourse, so the gene value does not pair.
        let mut db2 = Database::new();
        db2.create_table(
            TableSchema::builder("gene")
                .column("gid", DataType::Text)
                .column("name", DataType::Text)
                .primary_key("gid")
                .build()
                .unwrap(),
        )
        .unwrap();
        db2.create_table(
            TableSchema::builder("protein")
                .column("pid", DataType::Text)
                .primary_key("pid")
                .build()
                .unwrap(),
        )
        .unwrap();
        meta.add_concept(ConceptRef {
            concept: "Protein".into(),
            table: "protein".into(),
            referenced_by: vec![vec!["pid".into()]],
        });
        let text = "gene expression was affected while protein folding pathways \
                    showed unusual variance near JW0014";
        let qs = generate_queries(&db2, &meta, text, &QueryGenConfig::default());
        assert!(
            qs.iter().all(|q| !q.keywords.contains(&"JW0014".to_string())
                || !q.keywords.contains(&"gene".to_string())),
            "backward scan stops at the protein concept"
        );
    }
}

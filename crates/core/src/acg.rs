//! The Annotations Connectivity Graph — ACG (paper §6.2, Figure 6).
//!
//! Each annotated tuple is a node; an edge connects two tuples iff they
//! share at least one annotation, weighted by
//! `|common annotations| / |union of their annotations|`. The ACG powers:
//!
//! - **focal-based confidence adjustment** (§6.2): candidate tuples
//!   connected to the annotation's focal get their confidence rewarded;
//! - **focal-based spreading search** (§6.3): once the graph is *stable*
//!   (few new edges per batch of annotations — Definition 6.1), the search
//!   runs only over the K-hop neighborhood of the focal.
//!
//! The graph is built incrementally as attachments arrive, and tracks the
//! batch counters (`B`, `M`, `N`) that drive the stability property.

use annostore::{AnnotationId, AnnotationStore};
use relstore::TupleId;
use std::collections::{HashMap, HashSet, VecDeque};

/// Stability configuration (Definition 6.1): over the most recent batch of
/// `batch_size` annotations with `M` total attachments, the graph is
/// stable iff `N/M < mu`, where `N` is the number of newly added edges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StabilityConfig {
    /// Batch size `B` in annotations.
    pub batch_size: usize,
    /// Stability threshold μ < 1.
    pub mu: f64,
}

impl Default for StabilityConfig {
    fn default() -> Self {
        StabilityConfig { batch_size: 50, mu: 0.2 }
    }
}

/// The ACG.
#[derive(Debug, Clone, Default)]
pub struct Acg {
    adjacency: HashMap<TupleId, HashMap<TupleId, f64>>,
    edge_count: usize,
    stability: StabilityConfig,
    // Current-batch counters (non-overlapping batches, reset at each
    // boundary).
    batch_annotations: usize,
    batch_attachments: usize,
    batch_new_edges: usize,
    stable: bool,
}

impl Acg {
    /// Empty graph with the given stability configuration.
    pub fn new(stability: StabilityConfig) -> Self {
        Acg { stability, ..Default::default() }
    }

    /// Number of nodes (annotated tuples with at least one edge).
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Is the graph currently marked stable (Definition 6.1)?
    pub fn is_stable(&self) -> bool {
        self.stable
    }

    /// Force the stability flag (used by experiments that pre-build a
    /// mature graph at once, as §8.1 does).
    pub fn set_stable(&mut self, stable: bool) {
        self.stable = stable;
    }

    /// Weight of the edge between two tuples, if connected.
    pub fn edge_weight(&self, a: TupleId, b: TupleId) -> Option<f64> {
        self.adjacency.get(&a)?.get(&b).copied()
    }

    /// Direct neighbors of a tuple with edge weights.
    pub fn neighbors(&self, t: TupleId) -> impl Iterator<Item = (TupleId, f64)> + '_ {
        self.adjacency.get(&t).into_iter().flat_map(|m| m.iter().map(|(k, v)| (*k, *v)))
    }

    /// Insert or refresh the undirected edge `(a, b)` with the
    /// common/total annotation ratio from `store`. Returns true if the
    /// edge is new.
    fn upsert_edge(&mut self, store: &AnnotationStore, a: TupleId, b: TupleId) -> bool {
        if a == b {
            return false;
        }
        let (common, total) = store.common_annotations(a, b);
        if common == 0 {
            return false;
        }
        let weight = common as f64 / total.max(1) as f64;
        let was_new = self.adjacency.entry(a).or_default().insert(b, weight).is_none();
        self.adjacency.entry(b).or_default().insert(a, weight);
        if was_new {
            self.edge_count += 1;
        }
        was_new
    }

    /// Refresh the weights of every edge incident to `t` (annotation
    /// counts changed).
    fn refresh_incident(&mut self, store: &AnnotationStore, t: TupleId) {
        let neighbors: Vec<TupleId> =
            self.adjacency.get(&t).map(|m| m.keys().copied().collect()).unwrap_or_default();
        for n in neighbors {
            let (common, total) = store.common_annotations(t, n);
            let weight = common as f64 / total.max(1) as f64;
            if let Some(m) = self.adjacency.get_mut(&t) {
                m.insert(n, weight);
            }
            if let Some(m) = self.adjacency.get_mut(&n) {
                m.insert(t, weight);
            }
        }
    }

    /// Record a new **true attachment** of `annotation` to `tuple`:
    /// connects `tuple` with every other tuple of the annotation, refreshes
    /// incident weights, and updates the batch counters.
    ///
    /// Call *after* the attachment is recorded in `store`.
    pub fn add_attachment(
        &mut self,
        store: &AnnotationStore,
        annotation: AnnotationId,
        tuple: TupleId,
    ) {
        self.batch_attachments += 1;
        for other in store.focal(annotation) {
            if other != tuple && self.upsert_edge(store, tuple, other) {
                self.batch_new_edges += 1;
            }
        }
        self.refresh_incident(store, tuple);
    }

    /// Tuple-deletion cleanup: drop the node and every incident edge.
    pub fn remove_tuple(&mut self, tid: TupleId) {
        let Some(neighbors) = self.adjacency.remove(&tid) else { return };
        for n in neighbors.keys() {
            if let Some(m) = self.adjacency.get_mut(n) {
                m.remove(&tid);
                if m.is_empty() {
                    self.adjacency.remove(n);
                }
            }
        }
        self.edge_count -= neighbors.len();
    }

    /// Mark one annotation as fully processed; at every `batch_size`-th
    /// call the stability property is re-evaluated and the counters reset
    /// (non-overlapping batches).
    pub fn record_annotation(&mut self) {
        self.batch_annotations += 1;
        if self.batch_annotations >= self.stability.batch_size {
            let m = self.batch_attachments.max(1);
            self.stable = (self.batch_new_edges as f64 / m as f64) < self.stability.mu;
            self.batch_annotations = 0;
            self.batch_attachments = 0;
            self.batch_new_edges = 0;
        }
    }

    /// Build the whole graph at once from the store's true attachments
    /// (the §8.1 setup: "the ACG is built at once and not in an
    /// incremental fashion"). Leaves the stability flag untouched.
    pub fn build_from_store(store: &AnnotationStore) -> Acg {
        let mut acg = Acg::new(StabilityConfig::default());
        for (aid, _) in store.iter_annotations() {
            let focal = store.focal(aid);
            for (i, &a) in focal.iter().enumerate() {
                for &b in &focal[i + 1..] {
                    acg.upsert_edge(store, a, b);
                }
            }
        }
        acg
    }

    /// All tuples within `k` hops of any focal tuple (including the focal
    /// tuples themselves) — the *miniDB* membership of the focal-based
    /// spreading search (§6.3).
    pub fn k_hop(&self, focal: &[TupleId], k: usize) -> Vec<TupleId> {
        let mut seen: HashSet<TupleId> = focal.iter().copied().collect();
        let mut frontier: VecDeque<(TupleId, usize)> = focal.iter().map(|&t| (t, 0)).collect();
        while let Some((t, d)) = frontier.pop_front() {
            if d == k {
                continue;
            }
            if let Some(neigh) = self.adjacency.get(&t) {
                for &n in neigh.keys() {
                    if seen.insert(n) {
                        frontier.push_back((n, d + 1));
                    }
                }
            }
        }
        let mut out: Vec<TupleId> = seen.into_iter().collect();
        out.sort();
        out
    }

    /// Product of the edge weights along a shortest (unweighted) path from
    /// `from` to `to`, within `max_hops` — the §6.2 extension that rewards
    /// indirect focal connections by multiplying the in-between edge
    /// weights. `None` when unreachable; `Some(1.0)` when `from == to`.
    pub fn path_weight(&self, from: TupleId, to: TupleId, max_hops: usize) -> Option<f64> {
        if from == to {
            return Some(1.0);
        }
        // BFS with parent tracking.
        let mut parent: HashMap<TupleId, TupleId> = HashMap::new();
        let mut frontier: VecDeque<(TupleId, usize)> = VecDeque::new();
        frontier.push_back((from, 0));
        parent.insert(from, from);
        'bfs: while let Some((cur, d)) = frontier.pop_front() {
            if d == max_hops {
                continue;
            }
            if let Some(neigh) = self.adjacency.get(&cur) {
                for &n in neigh.keys() {
                    if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(n) {
                        e.insert(cur);
                        if n == to {
                            break 'bfs;
                        }
                        frontier.push_back((n, d + 1));
                    }
                }
            }
        }
        if !parent.contains_key(&to) {
            return None;
        }
        // Walk back multiplying weights.
        let mut weight = 1.0;
        let mut cur = to;
        while cur != from {
            let p = parent[&cur];
            weight *= self.edge_weight(p, cur)?;
            cur = p;
        }
        Some(weight)
    }

    /// Length of the shortest (unweighted) path from `t` to any tuple in
    /// `targets`, capped at `max_hops`. `Some(0)` when `t` is itself a
    /// target; `None` when unreachable within the cap.
    pub fn shortest_hops(&self, t: TupleId, targets: &[TupleId], max_hops: usize) -> Option<usize> {
        if targets.contains(&t) {
            return Some(0);
        }
        let mut seen: HashSet<TupleId> = HashSet::new();
        seen.insert(t);
        let mut frontier: VecDeque<(TupleId, usize)> = VecDeque::new();
        frontier.push_back((t, 0));
        while let Some((cur, d)) = frontier.pop_front() {
            if d == max_hops {
                continue;
            }
            if let Some(neigh) = self.adjacency.get(&cur) {
                for &n in neigh.keys() {
                    if targets.contains(&n) {
                        return Some(d + 1);
                    }
                    if seen.insert(n) {
                        frontier.push_back((n, d + 1));
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annostore::{Annotation, AttachmentTarget};
    use relstore::schema::TableId;

    fn t(row: u64) -> TupleId {
        TupleId::new(TableId(0), row)
    }

    /// Store where annotation i is attached to the given tuple rows.
    fn store_with(groups: &[&[u64]]) -> AnnotationStore {
        let mut s = AnnotationStore::new();
        for rows in groups {
            let a = s.add_annotation(Annotation::new("x"));
            for &r in *rows {
                s.attach(a, AttachmentTarget::tuple(t(r))).unwrap();
            }
        }
        s
    }

    #[test]
    fn build_from_store_connects_co_annotated_tuples() {
        let s = store_with(&[&[1, 2, 3], &[3, 4]]);
        let acg = Acg::build_from_store(&s);
        assert_eq!(acg.edge_count(), 4); // (1,2),(1,3),(2,3),(3,4)
        assert!(acg.edge_weight(t(1), t(2)).is_some());
        assert!(acg.edge_weight(t(1), t(4)).is_none());
        // Edge weights are symmetric.
        assert_eq!(acg.edge_weight(t(3), t(4)), acg.edge_weight(t(4), t(3)));
    }

    #[test]
    fn edge_weight_is_common_over_union() {
        // t1 and t2 share one annotation; t1 has 1 annotation, t2 has 2.
        let s = store_with(&[&[1, 2], &[2, 3]]);
        let acg = Acg::build_from_store(&s);
        // common(t1,t2) = 1, union = 2 → 0.5
        assert!((acg.edge_weight(t(1), t(2)).unwrap() - 0.5).abs() < 1e-12);
        // common(t2,t3) = 1, union = 2 → 0.5
        assert!((acg.edge_weight(t(2), t(3)).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn add_attachment_updates_incrementally() {
        let mut s = store_with(&[&[1, 2]]);
        let mut acg = Acg::build_from_store(&s);
        assert_eq!(acg.edge_count(), 1);
        // New annotation attached to t2 and t5.
        let a = s.add_annotation(Annotation::new("y"));
        s.attach(a, AttachmentTarget::tuple(t(2))).unwrap();
        acg.add_attachment(&s, a, t(2));
        s.attach(a, AttachmentTarget::tuple(t(5))).unwrap();
        acg.add_attachment(&s, a, t(5));
        assert_eq!(acg.edge_count(), 2);
        assert!(acg.edge_weight(t(2), t(5)).is_some());
        // Weight of (1,2) refreshed: common 1, union now 3 (t1 has 1, t2
        // has 2, common 1 → total 2)… common_annotations(t1,t2) = (1, 2).
        assert!((acg.edge_weight(t(1), t(2)).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stability_flips_when_few_new_edges() {
        let mut s = store_with(&[]);
        let mut acg = Acg::new(StabilityConfig { batch_size: 2, mu: 0.5 });
        assert!(!acg.is_stable());
        // Batch 1: two annotations, each creating new edges → unstable.
        for rows in [[10u64, 11], [12, 13]] {
            let a = s.add_annotation(Annotation::new("x"));
            for &r in &rows {
                s.attach(a, AttachmentTarget::tuple(t(r))).unwrap();
                acg.add_attachment(&s, a, t(r));
            }
            acg.record_annotation();
        }
        assert!(!acg.is_stable(), "every attachment created a new edge");
        // Batch 2: re-annotate the same pairs → no new edges → stable.
        for rows in [[10u64, 11], [12, 13]] {
            let a = s.add_annotation(Annotation::new("x"));
            for &r in &rows {
                s.attach(a, AttachmentTarget::tuple(t(r))).unwrap();
                acg.add_attachment(&s, a, t(r));
            }
            acg.record_annotation();
        }
        assert!(acg.is_stable());
    }

    #[test]
    fn k_hop_expansion() {
        // Chain: 1 - 2 - 3 - 4
        let s = store_with(&[&[1, 2], &[2, 3], &[3, 4]]);
        let acg = Acg::build_from_store(&s);
        assert_eq!(acg.k_hop(&[t(1)], 0), vec![t(1)]);
        assert_eq!(acg.k_hop(&[t(1)], 1), vec![t(1), t(2)]);
        assert_eq!(acg.k_hop(&[t(1)], 2), vec![t(1), t(2), t(3)]);
        assert_eq!(acg.k_hop(&[t(1)], 9), vec![t(1), t(2), t(3), t(4)]);
        // Multiple focal tuples expand jointly.
        assert_eq!(acg.k_hop(&[t(1), t(4)], 1).len(), 4);
    }

    #[test]
    fn shortest_hops_bfs() {
        let s = store_with(&[&[1, 2], &[2, 3], &[3, 4]]);
        let acg = Acg::build_from_store(&s);
        assert_eq!(acg.shortest_hops(t(4), &[t(1)], 10), Some(3));
        assert_eq!(acg.shortest_hops(t(1), &[t(1)], 10), Some(0));
        assert_eq!(acg.shortest_hops(t(4), &[t(1)], 2), None, "cap respected");
        assert_eq!(acg.shortest_hops(t(99), &[t(1)], 10), None, "disconnected");
    }

    #[test]
    fn set_stable_override() {
        let mut acg = Acg::new(StabilityConfig::default());
        acg.set_stable(true);
        assert!(acg.is_stable());
    }

    #[test]
    fn remove_tuple_drops_incident_edges() {
        let s = store_with(&[&[1, 2], &[2, 3], &[1, 3]]);
        let mut acg = Acg::build_from_store(&s);
        assert_eq!(acg.edge_count(), 3);
        acg.remove_tuple(t(2));
        assert_eq!(acg.edge_count(), 1, "only (1,3) survives");
        assert!(acg.edge_weight(t(1), t(2)).is_none());
        assert!(acg.edge_weight(t(1), t(3)).is_some());
        assert_eq!(acg.neighbors(t(2)).count(), 0);
        // Removing again is a no-op.
        acg.remove_tuple(t(2));
        assert_eq!(acg.edge_count(), 1);
    }

    #[test]
    fn path_weight_multiplies_edges() {
        // Chain 1 - 2 - 3 - 4. Edge weights: (1,2) = 1/2 (one shared of
        // two total), (2,3) = 1/3, (3,4) = 1/2.
        let s = store_with(&[&[1, 2], &[2, 3], &[3, 4]]);
        let acg = Acg::build_from_store(&s);
        let direct = acg.path_weight(t(1), t(2), 8).unwrap();
        assert!((direct - 0.5).abs() < 1e-12);
        let two_hops = acg.path_weight(t(1), t(3), 8).unwrap();
        assert!((two_hops - 0.5 / 3.0).abs() < 1e-12);
        let three_hops = acg.path_weight(t(1), t(4), 8).unwrap();
        assert!((three_hops - 0.25 / 3.0).abs() < 1e-12);
        assert_eq!(acg.path_weight(t(1), t(1), 8), Some(1.0));
        assert_eq!(acg.path_weight(t(1), t(99), 8), None);
        assert_eq!(acg.path_weight(t(1), t(4), 2), None, "hop cap respected");
    }

    #[test]
    fn path_weight_agrees_with_direct_edge() {
        let s = store_with(&[&[1, 2, 3]]);
        let acg = Acg::build_from_store(&s);
        for (a, b) in [(1u64, 2u64), (2, 3), (1, 3)] {
            assert_eq!(acg.path_weight(t(a), t(b), 4), acg.edge_weight(t(a), t(b)));
        }
    }
}

//! Adaptive adjustment of the β_lower / β_upper bounds —
//! `BoundsSetting()` (paper §7, Figure 9).
//!
//! The algorithm takes a training dataset whose annotations have *known
//! complete* attachment sets, distorts each annotation down to Δ links,
//! re-runs the discovery pipeline, and then grid-searches the
//! `(β_lower, β_upper)` plane for the setting that minimizes expert effort
//! `M_F` while keeping the averaged `F_N` and `F_P` within acceptable
//! ranges. An `M_H`-guided refinement then nudges β_upper down when almost
//! every manual verification accepts.

use crate::assess::{assess_predictions, AssessmentReport};
use crate::execution::Candidate;
use crate::verify::VerificationBounds;
use relstore::TupleId;

/// One training example: the discovery pipeline's output for a distorted
/// training annotation, plus the ground truth.
#[derive(Debug, Clone)]
pub struct TrainingExample {
    /// Candidates the pipeline predicted for the distorted annotation.
    pub candidates: Vec<Candidate>,
    /// Every tuple the annotation is attached to in the training (ideal)
    /// dataset.
    pub ideal: Vec<TupleId>,
    /// The links kept by the distortion (the annotation's focal during
    /// discovery) — Δ = `focal.len()`.
    pub focal: Vec<TupleId>,
}

/// Grid-search configuration for `BoundsSetting()`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundsSetting {
    /// Grid step for both bounds.
    pub grid_step: f64,
    /// Acceptable average false-negative ratio.
    pub max_fn: f64,
    /// Acceptable average false-positive ratio.
    pub max_fp: f64,
    /// `M_H`-guided refinement: when the winning setting's average `M_H`
    /// exceeds this, β_upper is lowered one step (most manual checks were
    /// accepts anyway). `1.0` disables the refinement.
    pub mh_refine_threshold: f64,
}

impl Default for BoundsSetting {
    fn default() -> Self {
        BoundsSetting { grid_step: 0.02, max_fn: 0.15, max_fp: 0.05, mh_refine_threshold: 0.9 }
    }
}

/// Evaluation of one grid point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundsEvaluation {
    /// The evaluated bounds.
    pub bounds: VerificationBounds,
    /// Averaged criteria over the training examples.
    pub report: AssessmentReport,
}

impl BoundsSetting {
    /// Average the assessment criteria of `examples` under `bounds`.
    pub fn evaluate(
        &self,
        examples: &[TrainingExample],
        bounds: VerificationBounds,
    ) -> AssessmentReport {
        let reports: Vec<AssessmentReport> = examples
            .iter()
            .map(|ex| assess_predictions(&ex.candidates, &bounds, &ex.ideal, &ex.focal).1)
            .collect();
        AssessmentReport::average(&reports)
    }

    /// Run the grid search and return the selected bounds with their
    /// evaluation. Among feasible settings (average `F_N ≤ max_fn` and
    /// `F_P ≤ max_fp`) the one with minimal `M_F` wins (ties: smaller
    /// `F_N`, then smaller `F_P`). If no setting is feasible, the one
    /// minimizing `F_N + F_P` wins (quality first, effort second).
    pub fn select(&self, examples: &[TrainingExample]) -> BoundsEvaluation {
        let steps = (1.0 / self.grid_step).round() as usize;
        let mut best_feasible: Option<BoundsEvaluation> = None;
        let mut best_fallback: Option<BoundsEvaluation> = None;

        for li in 0..=steps {
            let lower = li as f64 * self.grid_step;
            for ui in li..=steps {
                let upper = ui as f64 * self.grid_step;
                let bounds = VerificationBounds::new(lower, upper);
                let report = self.evaluate(examples, bounds);
                let eval = BoundsEvaluation { bounds, report };
                if report.f_n <= self.max_fn && report.f_p <= self.max_fp {
                    let better = match &best_feasible {
                        None => true,
                        Some(b) => {
                            (report.m_f, report.f_n, report.f_p)
                                < (b.report.m_f, b.report.f_n, b.report.f_p)
                        }
                    };
                    if better {
                        best_feasible = Some(eval);
                    }
                }
                let fallback_better = match &best_fallback {
                    None => true,
                    Some(b) => {
                        (report.f_n + report.f_p, report.m_f)
                            < (b.report.f_n + b.report.f_p, b.report.m_f)
                    }
                };
                if fallback_better {
                    best_fallback = Some(eval);
                }
            }
        }

        // The grid always evaluates at least one point, but degrade to the
        // default bounds rather than panic if it ever doesn't.
        let mut chosen = best_feasible.or(best_fallback).unwrap_or_else(|| {
            let bounds = VerificationBounds::default();
            BoundsEvaluation { bounds, report: self.evaluate(examples, bounds) }
        });

        // M_H-guided refinement: if almost all manual verifications accept,
        // lower β_upper one step to auto-accept more (§7 enhancement 2).
        if chosen.report.m_h > self.mh_refine_threshold && chosen.report.m_f > 0.0 {
            let lowered = VerificationBounds::new(
                chosen.bounds.lower,
                (chosen.bounds.upper - self.grid_step).max(chosen.bounds.lower),
            );
            let report = self.evaluate(examples, lowered);
            if report.f_n <= self.max_fn && report.f_p <= self.max_fp {
                chosen = BoundsEvaluation { bounds: lowered, report };
            }
        }
        chosen
    }
}

/// Distort an ideal attachment list down to Δ links (Step 1 of Figure 9):
/// keeps the first Δ tuples as the focal, deterministic so experiments are
/// reproducible. Returns `(kept focal, dropped links)`.
pub fn distort(ideal: &[TupleId], delta: usize) -> (Vec<TupleId>, Vec<TupleId>) {
    let keep = delta.max(1).min(ideal.len());
    (ideal[..keep].to_vec(), ideal[keep..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::schema::TableId;

    fn t(row: u64) -> TupleId {
        TupleId::new(TableId(0), row)
    }

    fn cand(row: u64, conf: f64) -> Candidate {
        Candidate { tuple: t(row), confidence: conf, evidence: vec![] }
    }

    /// Correct predictions score high, wrong ones score low, with some
    /// overlap in the middle.
    fn examples() -> Vec<TrainingExample> {
        vec![
            TrainingExample {
                candidates: vec![cand(1, 0.9), cand(2, 0.7), cand(8, 0.4), cand(9, 0.2)],
                ideal: vec![t(0), t(1), t(2)],
                focal: vec![t(0)],
            },
            TrainingExample {
                candidates: vec![cand(11, 0.85), cand(12, 0.65), cand(18, 0.35)],
                ideal: vec![t(10), t(11), t(12)],
                focal: vec![t(10)],
            },
        ]
    }

    #[test]
    fn select_finds_separating_bounds() {
        let setting = BoundsSetting { max_fn: 0.01, max_fp: 0.01, ..Default::default() };
        let eval = setting.select(&examples());
        // A clean separation exists: accept > 0.6ish, reject < 0.45.
        assert_eq!(eval.report.f_n, 0.0);
        assert_eq!(eval.report.f_p, 0.0);
        assert_eq!(eval.report.m_f, 0.0, "no expert effort needed");
        assert!(eval.bounds.lower > 0.4);
        assert!(eval.bounds.upper < 0.65);
    }

    #[test]
    fn overlapping_confidences_need_experts() {
        // Wrong candidate scores *above* a right one: no automated setting
        // is clean, so the winner must route the overlap to experts.
        let exs = vec![TrainingExample {
            candidates: vec![cand(1, 0.9), cand(9, 0.8), cand(2, 0.7)],
            ideal: vec![t(0), t(1), t(2)],
            focal: vec![t(0)],
        }];
        let setting = BoundsSetting { max_fn: 0.0, max_fp: 0.0, ..Default::default() };
        let eval = setting.select(&exs);
        assert_eq!(eval.report.f_n, 0.0);
        assert_eq!(eval.report.f_p, 0.0);
        assert!(eval.report.m_f >= 1.0, "the overlap goes to experts");
    }

    #[test]
    fn infeasible_targets_fall_back_to_quality() {
        // max_fn = 0 with a candidate set that simply misses an ideal
        // tuple — infeasible; fallback should minimize F_N + F_P.
        let exs = vec![TrainingExample {
            candidates: vec![cand(1, 0.9)],
            ideal: vec![t(0), t(1), t(2)],
            focal: vec![t(0)],
        }];
        let setting = BoundsSetting { max_fn: 0.0, max_fp: 0.0, ..Default::default() };
        let eval = setting.select(&exs);
        // Best possible: find t1, miss t2 → F_N = 1/3.
        assert!((eval.report.f_n - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn evaluate_is_deterministic() {
        let setting = BoundsSetting::default();
        let b = VerificationBounds::new(0.3, 0.8);
        let r1 = setting.evaluate(&examples(), b);
        let r2 = setting.evaluate(&examples(), b);
        assert_eq!(r1, r2);
    }

    #[test]
    fn distort_keeps_delta_links() {
        let ideal = vec![t(1), t(2), t(3), t(4)];
        let (focal, dropped) = distort(&ideal, 2);
        assert_eq!(focal, vec![t(1), t(2)]);
        assert_eq!(dropped, vec![t(3), t(4)]);
        // Δ larger than the list keeps everything.
        let (focal, dropped) = distort(&ideal, 10);
        assert_eq!(focal.len(), 4);
        assert!(dropped.is_empty());
        // Δ = 0 still keeps one link (an annotation always has a focal).
        let (focal, _) = distort(&ideal, 0);
        assert_eq!(focal.len(), 1);
    }
}

//! The Nebula engine facade: the full Stage 0 → 3 pipeline of Figure 16.
//!
//! [`Nebula::process_annotation`] drives one newly inserted annotation
//! through:
//!
//! 1. **Stage 0** — registering the annotation and its focal attachments
//!    in the passive store;
//! 2. **Stage 1** — signature maps → context adjustment → keyword queries;
//! 3. **Stage 2** — query execution, either over the full database or
//!    (when the ACG is stable) over the K-hop focal miniDB, with ACG
//!    confidence adjustment;
//! 4. **Stage 3** — routing every candidate through the β bounds:
//!    auto-accepts become true attachments (updating the ACG and the hop
//!    profile), the middle band lands in the pending-verification queue,
//!    and the rest is discarded.
//!
//! Experts later resolve pending tasks via [`Nebula::resolve_task`] or the
//! extended SQL command handled by [`Nebula::execute_command`].

use crate::acg::{Acg, StabilityConfig};
use crate::durability::{Mutation, MutationSink};
use crate::error::NebulaError;
use crate::execution::{identify_related_tuples, translate_candidates, Candidate, ExecutionConfig};
use crate::focal::{build_minidb, HopProfile};
use crate::meta::NebulaMeta;
use crate::querygen::{generate_queries, GeneratedQuery, QueryGenConfig};
use crate::verify::{Command, Decision, VerificationBounds, VerificationQueue, VerificationTask};
use annostore::{Annotation, AnnotationId, AnnotationStore, AttachmentTarget};
use nebula_govern::{Degradation, ExecutionBudget, RetryPolicy};
use nebula_obs::{names, PipelineEvent};
use relstore::{Database, TupleId};
use textsearch::{
    ExecutionMode, KeywordQuery, KeywordSearch, SearchBackend, SearchError, SearchHit,
    SearchOptions, SearchStats,
};

/// A pluggable Stage 2 group searcher a distribution layer can install in
/// front of the engine's local full-database search (e.g. the shard
/// scatter-gather router in `nebula-shard`).
///
/// Mirrors [`SearchBackend::run_group`] but is `Send` (the ingest pool
/// drives engines from worker threads) and `Debug` (the engine derives
/// it). Only the *full* search routes through the override; focal-spread
/// searches stay local — the K-hop miniDB is built from the engine's own
/// replica, which a shard deployment keeps fully converged.
pub trait GroupSearch: std::fmt::Debug + Send {
    /// Execute the query group against `db` and return per-query hit
    /// lists plus work counters, exactly as [`SearchBackend::run_group`].
    fn run_group(
        &self,
        queries: &[KeywordQuery],
        db: &Database,
        mode: ExecutionMode,
    ) -> Result<(Vec<Vec<SearchHit>>, SearchStats), SearchError>;

    /// Short label for EXPLAIN output.
    fn label(&self) -> &'static str {
        "override"
    }
}

/// Adapts a [`GroupSearch`] override to the [`SearchBackend`] seam that
/// `identify_related_tuples` executes against.
struct OverrideBackend<'a>(&'a dyn GroupSearch);

impl SearchBackend for OverrideBackend<'_> {
    fn run_group(
        &self,
        queries: &[KeywordQuery],
        db: &Database,
        mode: ExecutionMode,
    ) -> Result<(Vec<Vec<SearchHit>>, SearchStats), SearchError> {
        self.0.run_group(queries, db, mode)
    }

    fn name(&self) -> &'static str {
        self.0.label()
    }
}

/// Where Stage 2 searches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SearchMode {
    /// Search the entire database.
    Full,
    /// Focal-based spreading with a fixed K (the paper's *Fixed-Scope*
    /// variant).
    FocalSpread {
        /// Hop radius around the focal.
        k: usize,
    },
    /// Focal-based spreading with K selected from the hop profile to reach
    /// the desired expected coverage.
    FocalSpreadAuto {
        /// Target fraction of candidates the radius should cover.
        coverage: f64,
    },
}

/// Full engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NebulaConfig {
    /// Stage-1 query generation (ε, α, β rewards, ablation switches).
    pub querygen: QueryGenConfig,
    /// Stage-2 execution (shared/isolated, ACG adjustment).
    pub execution: ExecutionConfig,
    /// Stage-2 search space.
    pub search_mode: SearchMode,
    /// Focal spreading engages only once the ACG is stable (§6.3). Set to
    /// `false` to force it regardless (used by the experiments).
    pub require_stable: bool,
    /// Fallback K when `FocalSpreadAuto` has an empty profile.
    pub default_k: usize,
    /// Stage-3 verification bounds.
    pub bounds: VerificationBounds,
    /// ACG stability configuration (batch size B, threshold μ).
    pub stability: StabilityConfig,
    /// Per-annotation execution budget. Unbounded by default, which keeps
    /// the pipeline byte-identical to the ungoverned engine.
    pub budget: ExecutionBudget,
    /// Retry policy for transient (injected) search faults.
    pub retry: RetryPolicy,
}

impl Default for NebulaConfig {
    fn default() -> Self {
        NebulaConfig {
            querygen: QueryGenConfig::default(),
            execution: ExecutionConfig::default(),
            search_mode: SearchMode::Full,
            require_stable: true,
            default_k: 3,
            bounds: VerificationBounds::default(),
            stability: StabilityConfig::default(),
            budget: ExecutionBudget::unbounded(),
            retry: RetryPolicy::default(),
        }
    }
}

/// What happened to one processed annotation.
#[derive(Debug, Clone)]
pub struct ProcessOutcome {
    /// The annotation's id in the store.
    pub annotation: AnnotationId,
    /// Stage-1 keyword queries.
    pub queries: Vec<GeneratedQuery>,
    /// Stage-2 ranked candidates (original-database tuple ids).
    pub candidates: Vec<Candidate>,
    /// Auto-accepted attachments `(tuple, confidence)` — already applied.
    pub accepted: Vec<(TupleId, f64)>,
    /// Pending verification task ids.
    pub pending: Vec<u64>,
    /// Auto-rejected predictions `(tuple, confidence)`.
    pub rejected: Vec<(TupleId, f64)>,
    /// Whether Stage 2 used the focal-spreading miniDB.
    pub used_focal_spread: bool,
    /// Search work counters.
    pub stats: SearchStats,
    /// What the engine gave up to fit the execution budget (empty on an
    /// ungoverned or untripped run).
    pub degradations: Vec<Degradation>,
}

/// The proactive annotation-management engine.
#[derive(Debug)]
pub struct Nebula {
    config: NebulaConfig,
    meta: NebulaMeta,
    acg: Acg,
    profile: HopProfile,
    queue: VerificationQueue,
    sink: Option<Box<dyn MutationSink>>,
    searcher: Option<Box<dyn GroupSearch>>,
}

impl Nebula {
    /// New engine with the given configuration and metadata repository.
    pub fn new(config: NebulaConfig, meta: NebulaMeta) -> Self {
        let acg = Acg::new(config.stability);
        Nebula {
            config,
            meta,
            acg,
            profile: HopProfile::new(),
            queue: VerificationQueue::new(),
            sink: None,
            searcher: None,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &NebulaConfig {
        &self.config
    }

    /// Mutable configuration access (experiments flip switches between
    /// runs).
    pub fn config_mut(&mut self) -> &mut NebulaConfig {
        &mut self.config
    }

    /// The metadata repository.
    pub fn meta(&self) -> &NebulaMeta {
        &self.meta
    }

    /// The Annotations Connectivity Graph.
    pub fn acg(&self) -> &Acg {
        &self.acg
    }

    /// Mutable ACG access (experiments pre-mature the graph).
    pub fn acg_mut(&mut self) -> &mut Acg {
        &mut self.acg
    }

    /// The hop profile guiding K selection.
    pub fn profile(&self) -> &HopProfile {
        &self.profile
    }

    /// The pending-verification queue.
    pub fn queue(&self) -> &VerificationQueue {
        &self.queue
    }

    /// Install (or clear, with `None`) the durability sink. Every
    /// subsequent annotation-layer mutation is offered to the sink
    /// *before* it is applied (write-ahead); a sink failure aborts the
    /// mutation, so the log never diverges from the in-memory state.
    pub fn set_mutation_sink(&mut self, sink: Option<Box<dyn MutationSink>>) {
        self.sink = sink;
    }

    /// The installed durability sink, if any.
    pub fn mutation_sink(&self) -> Option<&dyn MutationSink> {
        self.sink.as_deref()
    }

    /// Mutable access to the installed durability sink (checkpoints need
    /// `&mut`).
    pub fn mutation_sink_mut(&mut self) -> Option<&mut (dyn MutationSink + 'static)> {
        self.sink.as_deref_mut()
    }

    /// Remove and return the installed durability sink.
    pub fn take_mutation_sink(&mut self) -> Option<Box<dyn MutationSink>> {
        self.sink.take()
    }

    /// Install (or clear, with `None`) a Stage 2 group-search override.
    /// When set, *full* searches execute through it instead of the local
    /// [`KeywordSearch`]; focal-spread searches stay local.
    pub fn set_group_search(&mut self, searcher: Option<Box<dyn GroupSearch>>) {
        self.searcher = searcher;
    }

    /// The installed group-search override, if any.
    pub fn group_search(&self) -> Option<&dyn GroupSearch> {
        self.searcher.as_deref()
    }

    /// Offer one mutation to the sink (no-op when none is installed).
    fn log_mutation(&mut self, mutation: &Mutation<'_>) -> Result<(), NebulaError> {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.record(mutation)?;
        }
        Ok(())
    }

    /// Build the ACG at once from the store's current true attachments
    /// (the §8.1 experimental setup).
    pub fn bootstrap_acg(&mut self, store: &AnnotationStore) {
        let mut acg = Acg::build_from_store(store);
        acg.set_stable(self.acg.is_stable());
        self.acg = acg;
    }

    /// The keyword-search engine configured with this repository's
    /// vocabulary.
    pub fn search_engine(&self, db: &Database) -> KeywordSearch {
        KeywordSearch::new(SearchOptions {
            vocab: self.meta.to_vocabulary(db),
            ..Default::default()
        })
    }

    /// Should Stage 2 spread from the focal instead of searching the full
    /// database?
    fn spreading_k(&self, focal: &[TupleId]) -> Option<usize> {
        if focal.is_empty() {
            return None;
        }
        let engaged = match self.config.search_mode {
            SearchMode::Full => return None,
            SearchMode::FocalSpread { .. } | SearchMode::FocalSpreadAuto { .. } => {
                !self.config.require_stable || self.acg.is_stable()
            }
        };
        if !engaged {
            return None;
        }
        match self.config.search_mode {
            SearchMode::Full => None,
            SearchMode::FocalSpread { k } => Some(k),
            SearchMode::FocalSpreadAuto { coverage } => {
                Some(self.profile.select_k(coverage).unwrap_or(self.config.default_k))
            }
        }
    }

    /// Process one newly inserted annotation end to end.
    ///
    /// `focal` — the tuples the annotation was manually attached to
    /// (Definition 3.5). Returns the outcome; auto-accepted attachments
    /// are already applied to `store`, the ACG, and the hop profile.
    ///
    /// The whole call runs under the configured [`ExecutionBudget`]. On a
    /// budget trip the engine *degrades* rather than fails — full search
    /// falls back to focal spreading, then to an empty candidate set — and
    /// the outcome's `degradations` records what was given up. Transient
    /// injected faults are retried per the configured [`RetryPolicy`];
    /// only exhausted or permanent faults surface as errors.
    pub fn process_annotation(
        &mut self,
        db: &Database,
        store: &mut AnnotationStore,
        annotation: &Annotation,
        focal: &[TupleId],
    ) -> Result<ProcessOutcome, NebulaError> {
        let pipeline_span = nebula_obs::span(names::PIPELINE);
        // When the ingest pool dispatched us it already opened the trace
        // root; otherwise (sequential callers, the bench harness) this
        // scope owns a fresh root. Either way the stage spans below
        // attach under it, and an error return abandons an owned trace.
        let pipeline_trace = PipelineTrace::open();
        let _budget = nebula_govern::begin_budget(&self.config.budget);
        // Drop notes leaked by an earlier erroring pipeline run so they
        // cannot masquerade as this annotation's degradations.
        nebula_govern::take_noted_degradations();
        let mut degradations: Vec<Degradation> = Vec::new();

        // Stage 0: register the annotation and its focal attachments.
        nebula_govern::stage_boundary(names::STAGE0_REGISTER);
        let stage0_span = nebula_obs::span(names::STAGE0_REGISTER);
        let stage0_trace = nebula_obs::trace::span(names::STAGE0_REGISTER);
        let expected = AnnotationId(store.annotation_count() as u64);
        self.log_mutation(&Mutation::AddAnnotation { expected, annotation })?;
        let aid = store.add_annotation(annotation.clone());
        nebula_obs::trace::bind(aid.0);
        for &f in focal {
            self.log_mutation(&Mutation::AttachTuple { annotation: aid, tuple: f })?;
            store.attach(aid, AttachmentTarget::tuple(f))?;
            self.acg.add_attachment(store, aid, f);
        }
        stage_event(aid, names::STAGE0_REGISTER, stage0_span, stage0_trace, focal.len(), || {
            format!("focal={}", focal.len())
        });

        // Stage 1: annotation text → keyword queries.
        nebula_govern::stage_boundary(names::STAGE1_QUERYGEN);
        let stage1_span = nebula_obs::span(names::STAGE1_QUERYGEN);
        let stage1_trace = nebula_obs::trace::span(names::STAGE1_QUERYGEN);
        let queries = generate_queries(db, &self.meta, &annotation.text, &self.config.querygen);
        stage_event(aid, names::STAGE1_QUERYGEN, stage1_span, stage1_trace, queries.len(), || {
            format!("queries={}", queries.len())
        });

        // Stage 2: execute, full or focal-spreading, degrading on budget
        // trips instead of failing.
        nebula_govern::stage_boundary(names::STAGE2_EXECUTE);
        let stage2_span = nebula_obs::span(names::STAGE2_EXECUTE);
        let stage2_trace = nebula_obs::trace::span(names::STAGE2_EXECUTE);
        let (candidates, stats, used_focal_spread) =
            self.stage2_search(db, &queries, focal, &mut degradations)?;
        // Layers below the engine (e.g. a shard scatter-gather) note their
        // degradations out-of-band; fold them into this annotation's
        // outcome so partial results are typed, never silent.
        degradations.extend(nebula_govern::take_noted_degradations());
        let report = nebula_govern::budget_report();
        if report.truncated_configurations > 0 {
            degradations.push(Degradation::TruncatedConfigurations {
                dropped: report.truncated_configurations,
            });
        }
        if report.truncated_candidates > 0 {
            degradations
                .push(Degradation::TruncatedCandidates { dropped: report.truncated_candidates });
        }
        stage_event(
            aid,
            names::STAGE2_EXECUTE,
            stage2_span,
            stage2_trace,
            candidates.len(),
            || {
                format!(
                    "mode={} hits={}",
                    if used_focal_spread { "focal-spread" } else { "full" },
                    candidates.len()
                )
            },
        );

        // Stage 3: route candidates through the bounds.
        nebula_govern::stage_boundary(names::STAGE3_ROUTE);
        let stage3_span = nebula_obs::span(names::STAGE3_ROUTE);
        let stage3_trace = nebula_obs::trace::span(names::STAGE3_ROUTE);
        let mut accepted = Vec::new();
        let mut pending = Vec::new();
        let mut rejected = Vec::new();
        for cand in &candidates {
            match self.config.bounds.decide(cand.confidence) {
                Decision::AutoAccept => {
                    self.apply_accept(store, aid, cand.tuple, focal)?;
                    accepted.push((cand.tuple, cand.confidence));
                }
                Decision::Pending => {
                    self.log_mutation(&Mutation::AttachPredicted {
                        annotation: aid,
                        tuple: cand.tuple,
                        confidence: cand.confidence,
                    })?;
                    store.attach_predicted(aid, cand.tuple, cand.confidence)?;
                    let vid = self.queue.next_vid();
                    self.queue.enqueue(VerificationTask {
                        vid,
                        annotation: aid,
                        tuple: cand.tuple,
                        confidence: cand.confidence,
                        evidence: cand.evidence.clone(),
                    });
                    pending.push(vid);
                }
                Decision::AutoReject => {
                    rejected.push((cand.tuple, cand.confidence));
                }
            }
        }

        stage_event(aid, names::STAGE3_ROUTE, stage3_span, stage3_trace, candidates.len(), || {
            format!(
                "accepted={} pending={} rejected={}",
                accepted.len(),
                pending.len(),
                rejected.len()
            )
        });

        // One more annotation processed — advance the stability batch.
        self.acg.record_annotation();

        if nebula_obs::enabled() {
            nebula_obs::counter_add("core.annotations_processed", 1);
            nebula_obs::counter_add("core.queries_generated", queries.len() as u64);
            nebula_obs::counter_add("core.candidates", candidates.len() as u64);
            nebula_obs::counter_add("core.accepted", accepted.len() as u64);
            nebula_obs::counter_add("core.pending_verification", pending.len() as u64);
            nebula_obs::counter_add("core.rejected", rejected.len() as u64);
            if used_focal_spread {
                nebula_obs::counter_add("core.focal_spread_used", 1);
            }
            if !degradations.is_empty() {
                nebula_obs::counter_add("core.degraded_annotations", 1);
                nebula_obs::record_event(PipelineEvent {
                    annotation_id: aid.0,
                    stage: names::GOVERN_DEGRADE,
                    duration_ns: 0,
                    candidates: candidates.len() as u64,
                    decision: degradations
                        .iter()
                        .map(|d| d.to_string())
                        .collect::<Vec<_>>()
                        .join(" "),
                });
            }
            let total_ns = pipeline_span.elapsed_ns();
            nebula_obs::record_event(PipelineEvent {
                annotation_id: aid.0,
                stage: names::PIPELINE,
                duration_ns: total_ns,
                candidates: candidates.len() as u64,
                decision: format!(
                    "accepted={} pending={} rejected={} focal_spread={} configs={} \
                     compiled={} inspected={}",
                    accepted.len(),
                    pending.len(),
                    rejected.len(),
                    used_focal_spread,
                    stats.configurations,
                    stats.compiled_queries,
                    stats.tuples_inspected,
                ),
            });
        }
        drop(pipeline_span);
        pipeline_trace.commit(format!(
            "accepted={} pending={} rejected={}",
            accepted.len(),
            pending.len(),
            rejected.len()
        ));

        Ok(ProcessOutcome {
            annotation: aid,
            queries,
            candidates,
            accepted,
            pending,
            rejected,
            used_focal_spread,
            stats,
            degradations,
        })
    }

    /// Stage 2 with the degradation ladder. Runs the primary search
    /// (focal-spreading when engaged, full otherwise); on a budget trip the
    /// full search falls back to focal-spreading with `default_k` (the
    /// budget usage is re-armed, the deadline keeps ticking), and if even
    /// that trips, candidate discovery is abandoned. Transient faults are
    /// retried with bounded backoff at every rung.
    fn stage2_search(
        &self,
        db: &Database,
        queries: &[GeneratedQuery],
        focal: &[TupleId],
        degradations: &mut Vec<Degradation>,
    ) -> Result<(Vec<Candidate>, SearchStats, bool), NebulaError> {
        let spread_k = self.spreading_k(focal);
        let primary = retry_transient(&self.config.retry, || match spread_k {
            Some(k) => self.focal_search(db, queries, focal, k),
            None => self.full_search(db, queries, focal),
        });
        let tripped = match primary {
            Ok((cands, stats)) => return Ok((cands, stats, spread_k.is_some())),
            Err(SearchFailure::Fatal(e)) => return Err(e),
            Err(SearchFailure::Budget(b)) => b,
        };
        if spread_k.is_none() && !focal.is_empty() {
            // Rung 1: the full-database search was too expensive — retry in
            // the focal neighborhood, which inspects far fewer tuples.
            let k = self.config.default_k;
            degradations.push(Degradation::FocalFallback { resource: tripped.resource, k });
            nebula_govern::rearm();
            match retry_transient(&self.config.retry, || self.focal_search(db, queries, focal, k)) {
                Ok((cands, stats)) => return Ok((cands, stats, true)),
                Err(SearchFailure::Fatal(e)) => return Err(e),
                Err(SearchFailure::Budget(b)) => {
                    degradations.push(Degradation::SearchAbandoned { resource: b.resource });
                    return Ok((Vec::new(), SearchStats::default(), true));
                }
            }
        }
        // Rung 2: no cheaper search space left — proceed with no candidates
        // (the annotation itself and its focal attachments are preserved).
        degradations.push(Degradation::SearchAbandoned { resource: tripped.resource });
        Ok((Vec::new(), SearchStats::default(), spread_k.is_some()))
    }

    /// One full-database search attempt.
    fn full_search(
        &self,
        db: &Database,
        queries: &[GeneratedQuery],
        focal: &[TupleId],
    ) -> Result<(Vec<Candidate>, SearchStats), SearchError> {
        if let Some(searcher) = self.searcher.as_deref() {
            let backend = OverrideBackend(searcher);
            return identify_related_tuples(
                db,
                &backend,
                queries,
                focal,
                Some(&self.acg),
                &self.config.execution,
            );
        }
        let engine = self.search_engine(db);
        identify_related_tuples(
            db,
            &engine,
            queries,
            focal,
            Some(&self.acg),
            &self.config.execution,
        )
    }

    /// One focal-spreading search attempt over the K-hop miniDB.
    fn focal_search(
        &self,
        db: &Database,
        queries: &[GeneratedQuery],
        focal: &[TupleId],
        k: usize,
    ) -> Result<(Vec<Candidate>, SearchStats), SearchError> {
        let (mini, back) = build_minidb(db, &self.acg, focal, k);
        let mini_engine = self.search_engine(&mini);
        // Focal ids in miniDB space for exclusion/ACG are the *translated*
        // ones; simplest is to translate results back first and
        // exclude/adjust in original space.
        let (cands, stats) = identify_related_tuples(
            &mini,
            &mini_engine,
            queries,
            &[],
            None,
            &ExecutionConfig { acg_adjustment: false, ..self.config.execution },
        )?;
        let mut cands = translate_candidates(cands, &back);
        cands.retain(|c| !focal.contains(&c.tuple));
        if self.config.execution.acg_adjustment {
            apply_acg_adjustment(&mut cands, &self.acg, focal);
        }
        Ok((cands, stats))
    }

    /// Accept one predicted attachment: promote the edge, update the ACG,
    /// and record the hop distance in the profile **before** the new edges
    /// are added (§6.3's profile-update rule).
    fn apply_accept(
        &mut self,
        store: &mut AnnotationStore,
        aid: AnnotationId,
        tuple: TupleId,
        focal: &[TupleId],
    ) -> Result<(), NebulaError> {
        self.log_mutation(&Mutation::AcceptEdge { annotation: aid, tuple })?;
        if !focal.is_empty() {
            if let Some(hops) = self.acg.shortest_hops(tuple, focal, 16) {
                self.profile.record(hops);
            }
        }
        store.attach(aid, AttachmentTarget::tuple(tuple))?;
        self.acg.add_attachment(store, aid, tuple);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Mirror API: replaying another engine's committed mutations.
    //
    // A shard sibling (or any follower holding a full replica) replays the
    // home engine's mutation batches through these methods so its own
    // engine state — store, ACG, hop profile, verification queue — stays
    // byte-equivalent with the engine that originated the batch. Each
    // method performs exactly the state transitions the originating
    // pipeline performed, in the same order, without consulting the sink
    // (the mutations are already committed upstream).
    // ------------------------------------------------------------------

    /// Mirror a focal (true, manual) attachment: Stage 0's per-focal
    /// store + ACG update.
    pub fn mirror_attach_focal(
        &mut self,
        store: &mut AnnotationStore,
        aid: AnnotationId,
        tuple: TupleId,
    ) -> Result<(), NebulaError> {
        store.attach(aid, AttachmentTarget::tuple(tuple))?;
        self.acg.add_attachment(store, aid, tuple);
        Ok(())
    }

    /// Mirror an auto-accepted (or expert-verified) attachment, including
    /// the profile-before-attach rule of [`Nebula::process_annotation`]'s
    /// Stage 3. `focal` must be the annotation's *manual* focal list at
    /// accept time (its logged `AttachTuple` targets), not every true
    /// attachment accumulated since.
    pub fn mirror_accept(
        &mut self,
        store: &mut AnnotationStore,
        aid: AnnotationId,
        tuple: TupleId,
        focal: &[TupleId],
    ) -> Result<(), NebulaError> {
        if !focal.is_empty() {
            if let Some(hops) = self.acg.shortest_hops(tuple, focal, 16) {
                self.profile.record(hops);
            }
        }
        store.attach(aid, AttachmentTarget::tuple(tuple))?;
        self.acg.add_attachment(store, aid, tuple);
        Ok(())
    }

    /// Mirror a predicted attachment entering the pending band. The
    /// verification task is enqueued with the same vid sequence the
    /// originating engine drew; evidence strings are not replicated (they
    /// are display-only and never feed a decision).
    pub fn mirror_attach_predicted(
        &mut self,
        store: &mut AnnotationStore,
        aid: AnnotationId,
        tuple: TupleId,
        confidence: f64,
    ) -> Result<u64, NebulaError> {
        store.attach_predicted(aid, tuple, confidence)?;
        let vid = self.queue.next_vid();
        self.queue.enqueue(VerificationTask {
            vid,
            annotation: aid,
            tuple,
            confidence,
            evidence: Vec::new(),
        });
        Ok(vid)
    }

    /// Mirror the end of one annotation's pipeline run: advance the ACG
    /// stability batch exactly as the originating engine did.
    pub fn mirror_annotation_done(&mut self) {
        self.acg.record_annotation();
    }

    /// Expert resolution of a pending task. `accept == true` verifies the
    /// attachment (it becomes true, with ACG and profile updates exactly
    /// like an auto-accept); `false` rejects and discards it.
    pub fn resolve_task(
        &mut self,
        store: &mut AnnotationStore,
        vid: u64,
        accept: bool,
    ) -> Result<VerificationTask, NebulaError> {
        let Some(task) = self.queue.take(vid) else {
            return Err(NebulaError::UnknownTask(vid));
        };
        if accept {
            let focal = store.focal(task.annotation);
            self.apply_accept(store, task.annotation, task.tuple, &focal)?;
        } else {
            self.log_mutation(&Mutation::RejectEdge {
                annotation: task.annotation,
                tuple: task.tuple,
            })?;
            store.discard_prediction(task.annotation, task.tuple)?;
        }
        Ok(task)
    }

    /// Tuple-deletion hook: call after `db.delete(tid)` to keep the
    /// annotation layer consistent — removes every attachment to the
    /// tuple, drops it from the ACG, and discards pending verification
    /// tasks that target it. Returns the annotations that lost a true
    /// attachment. Fails only when the durability sink cannot log the
    /// deletion (the annotation layer is then left untouched).
    pub fn on_tuple_deleted(
        &mut self,
        store: &mut AnnotationStore,
        tid: TupleId,
    ) -> Result<Vec<AnnotationId>, NebulaError> {
        self.log_mutation(&Mutation::TupleDeleted { tuple: tid })?;
        let stale: Vec<u64> =
            self.queue.iter().filter(|task| task.tuple == tid).map(|task| task.vid).collect();
        for vid in stale {
            self.queue.take(vid);
        }
        self.acg.remove_tuple(tid);
        Ok(store.on_tuple_deleted(tid))
    }

    /// Execute the extended SQL command
    /// `[Verify | Reject] Attachment <vid>;`.
    pub fn execute_command(
        &mut self,
        store: &mut AnnotationStore,
        input: &str,
    ) -> Result<VerificationTask, NebulaError> {
        let command =
            crate::verify::parse_command(input).map_err(|e| NebulaError::Parse(e.to_string()))?;
        match command {
            Command::Verify(vid) => self.resolve_task(store, vid, true),
            Command::Reject(vid) => self.resolve_task(store, vid, false),
        }
    }
}

/// How one retried search attempt ultimately failed.
enum SearchFailure {
    /// A budget trip — the caller degrades instead of failing.
    Budget(nebula_govern::BudgetExceeded),
    /// Anything else — surfaced to the caller as-is.
    Fatal(NebulaError),
}

/// Run `attempt_fn`, retrying transient injected faults with bounded
/// exponential backoff. Budget trips are never retried (re-running the same
/// work would trip again); permanent faults and store errors fail fast.
fn retry_transient<T>(
    retry: &RetryPolicy,
    mut attempt_fn: impl FnMut() -> Result<T, SearchError>,
) -> Result<T, SearchFailure> {
    let mut attempt = 0u32;
    loop {
        match attempt_fn() {
            Ok(v) => return Ok(v),
            Err(SearchError::Budget(b)) => return Err(SearchFailure::Budget(b)),
            Err(SearchError::Fault(fault))
                if fault.transient && attempt + 1 < retry.max_attempts =>
            {
                nebula_govern::note_retry();
                nebula_govern::clock::sleep(retry.backoff(attempt));
                attempt += 1;
            }
            Err(SearchError::Fault(fault)) => {
                return Err(SearchFailure::Fatal(NebulaError::Fault {
                    fault,
                    attempts: attempt + 1,
                }));
            }
            Err(other) => return Err(SearchFailure::Fatal(other.into())),
        }
    }
}

/// Close a stage span (and its trace twin) and, when telemetry is on,
/// record a structured pipeline event for it. The `decision` closure only
/// runs when either consumer (event log or trace detail) is live, so the
/// fully-disabled path never allocates.
fn stage_event(
    aid: AnnotationId,
    stage: &'static str,
    span: nebula_obs::SpanGuard<'_>,
    tspan: nebula_obs::trace::SpanHandle,
    candidates: usize,
    decision: impl FnOnce() -> String,
) {
    let duration_ns = span.elapsed_ns();
    drop(span); // feeds the stage histogram
    let obs_on = nebula_obs::enabled();
    if obs_on || tspan.is_active() {
        let decision = decision();
        if tspan.is_active() {
            tspan.detail(decision.clone());
        }
        drop(tspan); // closes the trace span at the same boundary
        if obs_on {
            nebula_obs::record_event(PipelineEvent {
                annotation_id: aid.0,
                stage,
                duration_ns,
                candidates: candidates as u64,
                decision,
            });
        }
    }
}

/// Trace scope for one `process_annotation` call.
///
/// If the caller (the ingest pool) already opened a trace root, the
/// pipeline attaches as a child span and the caller keeps ownership of
/// `finish`/`abandon`. Otherwise — sequential callers, the bench harness —
/// this scope owns a fresh root: a clean exit commits it via
/// [`PipelineTrace::commit`], while an early `?` return drops the scope
/// and abandons the partial trace (the mutation it described failed).
struct PipelineTrace {
    owns_root: bool,
    span: nebula_obs::trace::SpanHandle,
}

impl PipelineTrace {
    fn open() -> Self {
        let owns_root = nebula_obs::trace::start_if_idle(names::PIPELINE);
        let span = if owns_root {
            nebula_obs::trace::SpanHandle::inert()
        } else {
            nebula_obs::trace::span(names::PIPELINE)
        };
        PipelineTrace { owns_root, span }
    }

    fn commit(mut self, detail: String) {
        let span = std::mem::replace(&mut self.span, nebula_obs::trace::SpanHandle::inert());
        if span.is_active() {
            span.detail(detail);
        }
        drop(span);
        if self.owns_root {
            self.owns_root = false;
            nebula_obs::trace::finish();
        }
    }
}

impl Drop for PipelineTrace {
    fn drop(&mut self) {
        if self.owns_root {
            nebula_obs::trace::abandon();
        }
    }
}

/// §6.2 reward applied in original-id space (used by the focal-spreading
/// path after translation).
fn apply_acg_adjustment(candidates: &mut [Candidate], acg: &Acg, focal: &[TupleId]) {
    let mut keyed: Vec<(f64, Candidate)> = candidates
        .iter()
        .cloned()
        .map(|mut c| {
            for f in focal {
                if let Some(w) = acg.edge_weight(c.tuple, *f) {
                    c.confidence += w * c.confidence;
                }
            }
            let raw = c.confidence;
            // Capped, not max-normalized — see `identify_related_tuples`.
            c.confidence = c.confidence.min(1.0);
            (raw, c)
        })
        .collect();
    keyed.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.tuple.cmp(&b.1.tuple)));
    for (slot, (_, c)) in candidates.iter_mut().zip(keyed) {
        *slot = c;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::ConceptRef;
    use crate::patterns::Pattern;
    use relstore::{DataType, TableSchema, Value};

    fn setup() -> (Database, NebulaMeta, Vec<TupleId>) {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("gene")
                .column("gid", DataType::Text)
                .column("name", DataType::Text)
                .primary_key("gid")
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut ids = Vec::new();
        for (gid, name) in
            [("JW0013", "grpC"), ("JW0014", "groP"), ("JW0019", "yaaB"), ("JW0012", "yaaI")]
        {
            ids.push(db.insert("gene", vec![Value::text(gid), Value::text(name)]).unwrap());
        }
        let mut meta = NebulaMeta::new();
        meta.add_concept(ConceptRef {
            concept: "Gene".into(),
            table: "gene".into(),
            referenced_by: vec![vec!["gid".into()], vec!["name".into()]],
        });
        meta.set_pattern("gene", "gid", Pattern::compile("JW[0-9]{4}").unwrap());
        meta.set_pattern("gene", "name", Pattern::compile("[a-z]{3}[A-Z]").unwrap());
        (db, meta, ids)
    }

    fn config_accept_all() -> NebulaConfig {
        NebulaConfig { bounds: VerificationBounds::new(0.0, 0.0), ..Default::default() }
    }

    #[test]
    fn end_to_end_discovers_and_accepts() {
        let (db, meta, ids) = setup();
        let mut store = AnnotationStore::new();
        let mut nebula = Nebula::new(config_accept_all(), meta);
        let ann = Annotation::new("this gene correlates with JW0014 and grpC").by("Alice");
        let out = nebula.process_annotation(&db, &mut store, &ann, &[ids[2]]).unwrap();

        assert!(!out.queries.is_empty());
        let accepted: Vec<TupleId> = out.accepted.iter().map(|(t, _)| *t).collect();
        assert!(accepted.contains(&ids[0]));
        assert!(accepted.contains(&ids[1]));
        // Attachments applied to the store.
        assert!(store.focal(out.annotation).contains(&ids[0]));
        assert!(store.focal(out.annotation).contains(&ids[2]), "focal kept");
        // ACG gained edges between focal and accepted tuples.
        assert!(nebula.acg().edge_weight(ids[2], ids[1]).is_some());
        assert!(!out.used_focal_spread);
    }

    #[test]
    fn pending_band_queues_tasks_with_evidence() {
        let (db, meta, ids) = setup();
        let mut store = AnnotationStore::new();
        let config = NebulaConfig {
            bounds: VerificationBounds::new(0.0, 1.0), // everything pending
            ..Default::default()
        };
        let mut nebula = Nebula::new(config, meta);
        let ann = Annotation::new("gene JW0014 is notable");
        let out = nebula.process_annotation(&db, &mut store, &ann, &[ids[0]]).unwrap();
        assert_eq!(out.accepted.len(), 0);
        assert_eq!(out.pending.len(), 1);
        let task = nebula.queue().get(out.pending[0]).unwrap();
        assert_eq!(task.tuple, ids[1]);
        assert!(!task.evidence.is_empty());
        // The predicted edge exists but is not true yet.
        let edge = store.edge(out.annotation, ids[1]).unwrap();
        assert_eq!(edge.kind, annostore::EdgeKind::Predicted);
    }

    #[test]
    fn resolve_task_accept_and_reject() {
        let (db, meta, ids) = setup();
        let mut store = AnnotationStore::new();
        let config =
            NebulaConfig { bounds: VerificationBounds::new(0.0, 1.0), ..Default::default() };
        let mut nebula = Nebula::new(config, meta);
        let ann = Annotation::new("gene JW0014 and gene yaaI are notable");
        let out = nebula.process_annotation(&db, &mut store, &ann, &[ids[0]]).unwrap();
        assert_eq!(out.pending.len(), 2);

        let t1 = nebula.resolve_task(&mut store, out.pending[0], true).unwrap();
        assert!(store.focal(out.annotation).contains(&t1.tuple));
        let t2 = nebula.resolve_task(&mut store, out.pending[1], false).unwrap();
        assert!(store.edge(out.annotation, t2.tuple).is_none());
        // Resolving again fails.
        assert!(nebula.resolve_task(&mut store, out.pending[0], true).is_err());
    }

    #[test]
    fn execute_command_verifies() {
        let (db, meta, ids) = setup();
        let mut store = AnnotationStore::new();
        let config =
            NebulaConfig { bounds: VerificationBounds::new(0.0, 1.0), ..Default::default() };
        let mut nebula = Nebula::new(config, meta);
        let ann = Annotation::new("gene JW0014");
        let out = nebula.process_annotation(&db, &mut store, &ann, &[ids[0]]).unwrap();
        let vid = out.pending[0];
        let task =
            nebula.execute_command(&mut store, &format!("Verify Attachment {vid};")).unwrap();
        assert!(store.focal(out.annotation).contains(&task.tuple));
        assert!(nebula.execute_command(&mut store, "garbage").is_err());
    }

    #[test]
    fn focal_spread_requires_stability() {
        let (db, meta, ids) = setup();
        let mut store = AnnotationStore::new();
        let config = NebulaConfig {
            search_mode: SearchMode::FocalSpread { k: 2 },
            require_stable: true,
            bounds: VerificationBounds::new(0.0, 0.0),
            ..Default::default()
        };
        let mut nebula = Nebula::new(config, meta);
        let ann = Annotation::new("gene JW0014");
        let out = nebula.process_annotation(&db, &mut store, &ann, &[ids[0]]).unwrap();
        assert!(!out.used_focal_spread, "ACG not stable yet → full search");

        nebula.acg_mut().set_stable(true);
        let ann2 = Annotation::new("gene grpC");
        let out2 = nebula.process_annotation(&db, &mut store, &ann2, &[ids[1]]).unwrap();
        assert!(out2.used_focal_spread);
    }

    #[test]
    fn focal_spread_finds_neighbors_only() {
        let (db, meta, ids) = setup();
        let mut store = AnnotationStore::new();
        // Pre-annotate: link ids[0] and ids[1] so the ACG has an edge.
        let seed = store.add_annotation(Annotation::new("seed"));
        store.attach(seed, AttachmentTarget::tuple(ids[0])).unwrap();
        store.attach(seed, AttachmentTarget::tuple(ids[1])).unwrap();

        let config = NebulaConfig {
            search_mode: SearchMode::FocalSpread { k: 1 },
            require_stable: false,
            bounds: VerificationBounds::new(0.0, 0.0),
            ..Default::default()
        };
        let mut nebula = Nebula::new(config, meta);
        nebula.bootstrap_acg(&store);

        // References JW0014 (a neighbor — found) and yaaI (3 hops away —
        // outside the miniDB, missed).
        let ann = Annotation::new("gene JW0014 and gene yaaI");
        let out = nebula.process_annotation(&db, &mut store, &ann, &[ids[0]]).unwrap();
        assert!(out.used_focal_spread);
        let found: Vec<TupleId> = out.candidates.iter().map(|c| c.tuple).collect();
        assert!(found.contains(&ids[1]));
        assert!(!found.contains(&ids[3]), "outside the 1-hop miniDB");
    }

    #[test]
    fn auto_k_uses_profile() {
        let (db, meta, ids) = setup();
        let mut store = AnnotationStore::new();
        let config = NebulaConfig {
            search_mode: SearchMode::FocalSpreadAuto { coverage: 0.9 },
            require_stable: false,
            bounds: VerificationBounds::new(0.0, 0.0),
            ..Default::default()
        };
        let mut nebula = Nebula::new(config, meta);
        nebula.acg_mut().set_stable(true);
        // Empty profile → default_k is used; the call still works.
        let ann = Annotation::new("gene JW0014");
        let out = nebula.process_annotation(&db, &mut store, &ann, &[ids[0]]).unwrap();
        assert!(out.used_focal_spread);
    }

    #[test]
    fn tuple_deletion_cleans_all_layers() {
        let (db, meta, ids) = setup();
        let mut store = AnnotationStore::new();
        let config = NebulaConfig {
            bounds: VerificationBounds::new(0.0, 1.0), // everything pending
            ..Default::default()
        };
        let mut nebula = Nebula::new(config, meta);
        let ann = Annotation::new("gene JW0014 and gene yaaI");
        let out = nebula.process_annotation(&db, &mut store, &ann, &[ids[0]]).unwrap();
        assert!(!out.pending.is_empty());
        let victim = nebula.queue().get(out.pending[0]).unwrap().tuple;

        let affected = nebula.on_tuple_deleted(&mut store, victim).unwrap();
        // Pending tasks targeting the tuple are gone.
        assert!(nebula.queue().iter().all(|t| t.tuple != victim));
        // Predicted edge gone from the store.
        assert!(store.edge(out.annotation, victim).is_none());
        // ACG no longer knows the tuple.
        assert_eq!(nebula.acg().neighbors(victim).count(), 0);
        // The victim carried only a predicted edge, so no annotation lost
        // a *true* attachment.
        assert!(affected.is_empty());

        // Deleting a focal tuple reports the affected annotation.
        let affected = nebula.on_tuple_deleted(&mut store, ids[0]).unwrap();
        assert_eq!(affected, vec![out.annotation]);
    }

    #[test]
    fn unknown_task_is_a_structured_error() {
        let (_db, meta, _) = setup();
        let mut store = AnnotationStore::new();
        let mut nebula = Nebula::new(NebulaConfig::default(), meta);
        assert_eq!(
            nebula.resolve_task(&mut store, 999, true).unwrap_err(),
            NebulaError::UnknownTask(999)
        );
        assert_eq!(
            nebula.execute_command(&mut store, "Verify Attachment 999;").unwrap_err(),
            NebulaError::UnknownTask(999)
        );
        assert!(matches!(
            nebula.execute_command(&mut store, "garbage").unwrap_err(),
            NebulaError::Parse(_)
        ));
    }

    #[test]
    fn tight_budget_degrades_instead_of_failing() {
        let (db, meta, ids) = setup();
        let mut store = AnnotationStore::new();
        let config = NebulaConfig {
            bounds: VerificationBounds::new(0.0, 0.0),
            budget: ExecutionBudget::unbounded().with_max_tuples(1),
            ..Default::default()
        };
        let mut nebula = Nebula::new(config, meta);
        let ann = Annotation::new("this gene correlates with JW0014 and grpC");
        let out = nebula.process_annotation(&db, &mut store, &ann, &[ids[2]]).unwrap();
        // The full search cannot fit in one inspected tuple: the engine
        // fell back to the focal neighborhood (and, with an empty ACG,
        // ultimately abandoned the search) instead of erroring out.
        assert!(!out.degradations.is_empty());
        assert!(out.degradations.iter().any(|d| matches!(d, Degradation::FocalFallback { .. })));
        // The annotation and its focal attachment survived.
        assert!(store.focal(out.annotation).contains(&ids[2]));
    }

    #[test]
    fn unbounded_budget_reports_no_degradations() {
        let (db, meta, ids) = setup();
        let mut store = AnnotationStore::new();
        let mut nebula = Nebula::new(config_accept_all(), meta);
        let ann = Annotation::new("this gene correlates with JW0014 and grpC");
        let out = nebula.process_annotation(&db, &mut store, &ann, &[ids[2]]).unwrap();
        assert!(out.degradations.is_empty());
    }

    #[test]
    fn accepted_attachments_update_profile() {
        let (db, meta, ids) = setup();
        let mut store = AnnotationStore::new();
        // Seed ACG edge: ids[0] — ids[1].
        let seed = store.add_annotation(Annotation::new("seed"));
        store.attach(seed, AttachmentTarget::tuple(ids[0])).unwrap();
        store.attach(seed, AttachmentTarget::tuple(ids[1])).unwrap();
        let mut nebula = Nebula::new(config_accept_all(), meta);
        nebula.bootstrap_acg(&store);

        let ann = Annotation::new("gene JW0014"); // 1 hop from focal
        let out = nebula.process_annotation(&db, &mut store, &ann, &[ids[0]]).unwrap();
        assert!(out.accepted.iter().any(|(t, _)| *t == ids[1]));
        assert_eq!(nebula.profile().bucket(1), 1, "1-hop discovery recorded");
    }
}

//! Assessment criteria (paper Definition 7.2, Figure 8).
//!
//! Given an annotation's predictions, the ideal attachment set, and the β
//! bounds, the predictions fall into five categories
//! (reject / verify-T / verify-F / accept-T / accept-F); the four criteria
//! are computed from their counts:
//!
//! - `F_N` — false-negative ratio (missed ideal attachments),
//! - `F_P` — false-positive ratio (wrong auto-accepted attachments),
//! - `M_F` — manual effort (number of expert verifications),
//! - `M_H` — manual hit (conversion) ratio.

use crate::execution::Candidate;
use crate::verify::{Decision, VerificationBounds};
use relstore::TupleId;
use std::collections::HashSet;

/// The categorized prediction counts of Figure 8.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AssessmentCounts {
    /// `N_ideal`: attachments of the annotation in the ideal database.
    pub n_ideal: usize,
    /// `N_focal`: ideal attachments already present (the focal — not
    /// predictions).
    pub n_focal: usize,
    /// `N_reject`: auto-rejected predictions.
    pub n_reject: usize,
    /// `N_verify-T`: expert-verified predictions that are correct.
    pub n_verify_t: usize,
    /// `N_verify-F`: expert-verified predictions that are wrong.
    pub n_verify_f: usize,
    /// `N_accept-T`: auto-accepted predictions that are correct.
    pub n_accept_t: usize,
    /// `N_accept-F`: auto-accepted predictions that are wrong.
    pub n_accept_f: usize,
}

impl AssessmentCounts {
    /// `N_verify = N_verify-T + N_verify-F`.
    pub fn n_verify(&self) -> usize {
        self.n_verify_t + self.n_verify_f
    }

    /// `N_accept = N_accept-T + N_accept-F`.
    pub fn n_accept(&self) -> usize {
        self.n_accept_t + self.n_accept_f
    }
}

/// The four assessment criteria (Definition 7.2).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AssessmentReport {
    /// False-negative ratio.
    pub f_n: f64,
    /// False-positive ratio.
    pub f_p: f64,
    /// Manual effort: number of tasks routed to experts.
    pub m_f: f64,
    /// Manual hit ratio: fraction of expert verifications that accept.
    pub m_h: f64,
}

impl AssessmentReport {
    /// Compute the criteria from categorized counts, exactly per
    /// Definition 7.2. Ratios whose denominator is zero are defined as 0
    /// (nothing to miss / nothing asserted), except `M_H`, which is 0 when
    /// no manual work happened.
    pub fn from_counts(c: &AssessmentCounts) -> AssessmentReport {
        let found = c.n_verify_t + c.n_accept_t + c.n_focal;
        let f_n = if c.n_ideal > 0 {
            (c.n_ideal.saturating_sub(found)) as f64 / c.n_ideal as f64
        } else {
            0.0
        };
        let fp_denom = c.n_verify_t + c.n_accept() + c.n_focal;
        let f_p = if fp_denom > 0 { c.n_accept_f as f64 / fp_denom as f64 } else { 0.0 };
        let m_f = c.n_verify() as f64;
        let m_h = if c.n_verify() > 0 { c.n_verify_t as f64 / c.n_verify() as f64 } else { 0.0 };
        AssessmentReport { f_n, f_p, m_f, m_h }
    }

    /// Average several reports (the paper averages over the annotations of
    /// a workload set).
    pub fn average(reports: &[AssessmentReport]) -> AssessmentReport {
        if reports.is_empty() {
            return AssessmentReport::default();
        }
        let n = reports.len() as f64;
        AssessmentReport {
            f_n: reports.iter().map(|r| r.f_n).sum::<f64>() / n,
            f_p: reports.iter().map(|r| r.f_p).sum::<f64>() / n,
            m_f: reports.iter().map(|r| r.m_f).sum::<f64>() / n,
            m_h: reports.iter().map(|r| r.m_h).sum::<f64>() / n,
        }
    }
}

/// Categorize one annotation's candidate predictions against the ideal
/// attachment set (experts assumed error-free, as in §8.2), and compute
/// the report.
///
/// - `candidates`: the ranked predictions (focal already excluded);
/// - `ideal`: every tuple the annotation is attached to in `D_ideal`;
/// - `focal`: the tuples the annotation is currently attached to.
pub fn assess_predictions(
    candidates: &[Candidate],
    bounds: &VerificationBounds,
    ideal: &[TupleId],
    focal: &[TupleId],
) -> (AssessmentCounts, AssessmentReport) {
    let ideal_set: HashSet<TupleId> = ideal.iter().copied().collect();
    let focal_in_ideal = focal.iter().filter(|f| ideal_set.contains(f)).count();
    let mut counts = AssessmentCounts {
        n_ideal: ideal_set.len(),
        n_focal: focal_in_ideal,
        ..Default::default()
    };
    for cand in candidates {
        let correct = ideal_set.contains(&cand.tuple);
        match bounds.decide(cand.confidence) {
            Decision::AutoReject => counts.n_reject += 1,
            Decision::Pending => {
                if correct {
                    counts.n_verify_t += 1;
                } else {
                    counts.n_verify_f += 1;
                }
            }
            Decision::AutoAccept => {
                if correct {
                    counts.n_accept_t += 1;
                } else {
                    counts.n_accept_f += 1;
                }
            }
        }
    }
    let report = AssessmentReport::from_counts(&counts);
    (counts, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::schema::TableId;

    fn t(row: u64) -> TupleId {
        TupleId::new(TableId(0), row)
    }

    fn cand(row: u64, conf: f64) -> Candidate {
        Candidate { tuple: t(row), confidence: conf, evidence: vec![] }
    }

    #[test]
    fn perfect_predictions_zero_error() {
        // Ideal: focal {0} plus {1, 2}; both predicted with high conf.
        let bounds = VerificationBounds::new(0.3, 0.8);
        let (counts, report) = assess_predictions(
            &[cand(1, 0.95), cand(2, 0.9)],
            &bounds,
            &[t(0), t(1), t(2)],
            &[t(0)],
        );
        assert_eq!(counts.n_accept_t, 2);
        assert_eq!(report.f_n, 0.0);
        assert_eq!(report.f_p, 0.0);
        assert_eq!(report.m_f, 0.0);
    }

    #[test]
    fn missed_attachment_counts_as_false_negative() {
        let bounds = VerificationBounds::new(0.3, 0.8);
        // Ideal has t1 and t2; only t1 predicted (accepted); t2 never
        // surfaced.
        let (_, report) =
            assess_predictions(&[cand(1, 0.9)], &bounds, &[t(0), t(1), t(2)], &[t(0)]);
        assert!((report.f_n - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn auto_rejected_correct_prediction_is_a_miss() {
        let bounds = VerificationBounds::new(0.3, 0.8);
        let (counts, report) = assess_predictions(&[cand(1, 0.1)], &bounds, &[t(0), t(1)], &[t(0)]);
        assert_eq!(counts.n_reject, 1);
        assert!((report.f_n - 0.5).abs() < 1e-12);
    }

    #[test]
    fn only_auto_accept_produces_false_positives() {
        let bounds = VerificationBounds::new(0.3, 0.8);
        // Wrong prediction in the pending band → expert catches it, no FP.
        let (c1, r1) = assess_predictions(&[cand(9, 0.5)], &bounds, &[t(0)], &[t(0)]);
        assert_eq!(c1.n_verify_f, 1);
        assert_eq!(r1.f_p, 0.0);
        assert_eq!(r1.m_f, 1.0);
        assert_eq!(r1.m_h, 0.0);
        // Wrong prediction above β_upper → false positive.
        let (c2, r2) = assess_predictions(&[cand(9, 0.95)], &bounds, &[t(0)], &[t(0)]);
        assert_eq!(c2.n_accept_f, 1);
        assert!(r2.f_p > 0.0);
    }

    #[test]
    fn manual_hit_ratio() {
        let bounds = VerificationBounds::new(0.3, 0.8);
        let (_, report) = assess_predictions(
            &[cand(1, 0.5), cand(2, 0.5), cand(9, 0.5), cand(10, 0.5)],
            &bounds,
            &[t(0), t(1), t(2)],
            &[t(0)],
        );
        assert_eq!(report.m_f, 4.0);
        assert!((report.m_h - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_counts_matches_formulas() {
        let c = AssessmentCounts {
            n_ideal: 10,
            n_focal: 1,
            n_reject: 3,
            n_verify_t: 4,
            n_verify_f: 2,
            n_accept_t: 3,
            n_accept_f: 1,
        };
        let r = AssessmentReport::from_counts(&c);
        // F_N = (10 − (4 + 3 + 1)) / 10 = 0.2
        assert!((r.f_n - 0.2).abs() < 1e-12);
        // F_P = 1 / (4 + 4 + 1) = 1/9
        assert!((r.f_p - 1.0 / 9.0).abs() < 1e-12);
        assert_eq!(r.m_f, 6.0);
        assert!((r.m_h - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn average_of_reports() {
        let a = AssessmentReport { f_n: 0.2, f_p: 0.0, m_f: 4.0, m_h: 1.0 };
        let b = AssessmentReport { f_n: 0.4, f_p: 0.2, m_f: 0.0, m_h: 0.0 };
        let avg = AssessmentReport::average(&[a, b]);
        assert!((avg.f_n - 0.3).abs() < 1e-12);
        assert!((avg.f_p - 0.1).abs() < 1e-12);
        assert!((avg.m_f - 2.0).abs() < 1e-12);
        assert_eq!(AssessmentReport::average(&[]), AssessmentReport::default());
    }

    #[test]
    fn empty_everything_is_clean() {
        let bounds = VerificationBounds::default();
        let (counts, report) = assess_predictions(&[], &bounds, &[], &[]);
        assert_eq!(counts, AssessmentCounts::default());
        assert_eq!(report, AssessmentReport::default());
    }
}

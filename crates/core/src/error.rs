//! The workspace-level error type.
//!
//! Every fallible path of the engine funnels into [`NebulaError`]:
//! annotation-store failures, relational-store failures, search failures,
//! and the governed causes (budget trips, injected faults) lifted out so
//! the caller — and the batch-ingest quarantine — can route on them
//! without unwrapping nested sources.

use annostore::StoreError;
use nebula_govern::{BudgetExceeded, InjectedFault};
use std::fmt;
use textsearch::SearchError;

/// Unified error for the Nebula engine.
#[derive(Debug, Clone, PartialEq)]
pub enum NebulaError {
    /// The annotation store rejected an operation.
    Store(StoreError),
    /// The relational store failed.
    Relational(relstore::Error),
    /// Keyword search failed for a non-governed reason.
    Search(SearchError),
    /// The execution budget tripped and no further degradation was
    /// possible (the engine normally degrades instead of surfacing this).
    Budget(BudgetExceeded),
    /// An injected fault persisted through every retry attempt.
    Fault {
        /// The fault that fired.
        fault: InjectedFault,
        /// How many attempts were made (including the first).
        attempts: u32,
    },
    /// No pending verification task has this id.
    UnknownTask(u64),
    /// An extended-SQL command failed to parse.
    Parse(String),
    /// The durability sink failed to record a mutation; the mutation was
    /// not applied, keeping the log and the in-memory state consistent.
    Durability(String),
}

impl From<StoreError> for NebulaError {
    fn from(e: StoreError) -> NebulaError {
        NebulaError::Store(e)
    }
}

impl From<relstore::Error> for NebulaError {
    fn from(e: relstore::Error) -> NebulaError {
        match e {
            relstore::Error::BudgetExceeded(b) => NebulaError::Budget(b),
            relstore::Error::FaultInjected(fault) => NebulaError::Fault { fault, attempts: 1 },
            other => NebulaError::Relational(other),
        }
    }
}

impl From<SearchError> for NebulaError {
    fn from(e: SearchError) -> NebulaError {
        match e {
            SearchError::Budget(b) => NebulaError::Budget(b),
            SearchError::Fault(fault) => NebulaError::Fault { fault, attempts: 1 },
            other => NebulaError::Search(other),
        }
    }
}

impl From<BudgetExceeded> for NebulaError {
    fn from(b: BudgetExceeded) -> NebulaError {
        NebulaError::Budget(b)
    }
}

impl From<crate::durability::SinkError> for NebulaError {
    fn from(e: crate::durability::SinkError) -> NebulaError {
        NebulaError::Durability(e.0)
    }
}

impl fmt::Display for NebulaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NebulaError::Store(e) => write!(f, "annotation store: {e}"),
            NebulaError::Relational(e) => write!(f, "relational store: {e}"),
            NebulaError::Search(e) => write!(f, "{e}"),
            NebulaError::Budget(b) => write!(f, "{b}"),
            NebulaError::Fault { fault, attempts } => {
                write!(f, "{fault} (after {attempts} attempt(s))")
            }
            NebulaError::UnknownTask(vid) => write!(f, "no pending verification task {vid}"),
            NebulaError::Parse(msg) => write!(f, "parse error: {msg}"),
            NebulaError::Durability(msg) => write!(f, "durability: {msg}"),
        }
    }
}

impl std::error::Error for NebulaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NebulaError::Store(e) => Some(e),
            NebulaError::Relational(e) => Some(e),
            NebulaError::Search(e) => Some(e),
            NebulaError::Budget(b) => Some(b),
            NebulaError::Fault { fault, .. } => Some(fault),
            NebulaError::UnknownTask(_) | NebulaError::Parse(_) | NebulaError::Durability(_) => {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_govern::{FaultSite, Resource};

    #[test]
    fn governed_causes_are_lifted_from_sources() {
        let b = BudgetExceeded { resource: Resource::TuplesInspected, limit: 10 };
        assert_eq!(NebulaError::from(relstore::Error::BudgetExceeded(b)), NebulaError::Budget(b));
        let fault = InjectedFault { site: FaultSite::Query, transient: true };
        assert_eq!(
            NebulaError::from(SearchError::Fault(fault)),
            NebulaError::Fault { fault, attempts: 1 }
        );
        // Non-governed sources stay wrapped.
        let e = NebulaError::from(relstore::Error::UnknownTable("x".into()));
        assert!(matches!(e, NebulaError::Relational(_)));
    }

    #[test]
    fn display_is_informative() {
        assert!(NebulaError::UnknownTask(7).to_string().contains('7'));
        assert!(NebulaError::Parse("bad token".into()).to_string().contains("bad token"));
    }
}

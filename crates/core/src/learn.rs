//! Learning ConceptRefs from the available annotations (the extension the
//! paper's §5.1 footnote 2 sketches and leaves out of scope).
//!
//! The paper assumes domain experts populate the `ConceptRefs` table. This
//! module derives it automatically: for every annotation already attached
//! to tuples, it checks which of the attached tuples' column values appear
//! verbatim in the annotation's text. A column that is frequently used to
//! reference its table's tuples inside annotation text is, by definition,
//! a *referencing column* of that concept.

use crate::meta::{ConceptRef, NebulaMeta};
use annostore::AnnotationStore;
use relstore::{Database, Value};
use std::collections::HashMap;

/// One learned referencing column with its evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnedColumn {
    /// Table name.
    pub table: String,
    /// Column name.
    pub column: String,
    /// Number of (annotation, attached tuple) pairs where the tuple's
    /// value in this column appeared in the annotation text.
    pub support: usize,
    /// Fraction of examined pairs (for this table) the column covered.
    pub coverage: f64,
}

/// Configuration of the learner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearnConfig {
    /// Minimum absolute support for a column to be reported.
    pub min_support: usize,
    /// Minimum coverage (support / pairs involving the table).
    pub min_coverage: f64,
    /// Maximum annotations to examine (0 = all).
    pub sample: usize,
}

impl Default for LearnConfig {
    fn default() -> Self {
        LearnConfig { min_support: 3, min_coverage: 0.05, sample: 0 }
    }
}

/// Scan the store's true attachments and learn which columns reference
/// each table's tuples inside annotation text.
pub fn learn_referencing_columns(
    db: &Database,
    store: &AnnotationStore,
    config: &LearnConfig,
) -> Vec<LearnedColumn> {
    // (table, column) -> support; table -> pairs examined.
    let mut support: HashMap<(String, String), usize> = HashMap::new();
    let mut pairs_per_table: HashMap<String, usize> = HashMap::new();

    let annotations: Box<dyn Iterator<Item = _>> = if config.sample > 0 {
        Box::new(store.iter_annotations().take(config.sample))
    } else {
        Box::new(store.iter_annotations())
    };
    for (aid, annotation) in annotations {
        let text = &annotation.text;
        for tid in store.focal(aid) {
            let Some(tuple) = db.get(tid) else { continue };
            let table_name = tuple.schema.name.clone();
            *pairs_per_table.entry(table_name.clone()).or_insert(0) += 1;
            for ((_, def), value) in tuple.schema.iter_columns().zip(&tuple.values) {
                let Value::Text(v) = value else { continue };
                // Only identifier-sized values count as references: long
                // free-text cells trivially overlap the annotation.
                if v.len() < 2 || v.len() > 32 {
                    continue;
                }
                if text.contains(v.as_str()) {
                    *support.entry((table_name.clone(), def.name.clone())).or_insert(0) += 1;
                }
            }
        }
    }

    let mut out: Vec<LearnedColumn> =
        support
            .into_iter()
            .filter_map(|((table, column), s)| {
                let pairs = pairs_per_table.get(&table).copied().unwrap_or(0);
                if pairs == 0 {
                    return None;
                }
                let coverage = s as f64 / pairs as f64;
                (s >= config.min_support && coverage >= config.min_coverage)
                    .then_some(LearnedColumn { table, column, support: s, coverage })
            })
            .collect();
    out.sort_by(|a, b| {
        a.table.cmp(&b.table).then(b.support.cmp(&a.support)).then(a.column.cmp(&b.column))
    });
    out
}

/// Turn learned columns into `ConceptRefs` rows (one concept per table,
/// each qualifying column an alternative single-column reference) and add
/// them to a fresh NebulaMeta. Returns the meta plus the learned evidence.
pub fn learn_concept_refs(
    db: &Database,
    store: &AnnotationStore,
    config: &LearnConfig,
) -> (NebulaMeta, Vec<LearnedColumn>) {
    let learned = learn_referencing_columns(db, store, config);
    let mut meta = NebulaMeta::new();
    let mut by_table: HashMap<&str, Vec<&LearnedColumn>> = HashMap::new();
    for lc in &learned {
        by_table.entry(lc.table.as_str()).or_default().push(lc);
    }
    let mut tables: Vec<&str> = by_table.keys().copied().collect();
    tables.sort();
    for table in tables {
        let cols = &by_table[table];
        meta.add_concept(ConceptRef {
            concept: capitalize(table),
            table: table.to_string(),
            referenced_by: cols.iter().map(|lc| vec![lc.column.clone()]).collect(),
        });
    }
    (meta, learned)
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annostore::{Annotation, AttachmentTarget};
    use relstore::{DataType, TableSchema};

    fn setup() -> (Database, AnnotationStore) {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("gene")
                .column("gid", DataType::Text)
                .column("name", DataType::Text)
                .column("family", DataType::Text)
                .primary_key("gid")
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut ids = Vec::new();
        for i in 0..8 {
            ids.push(
                db.insert(
                    "gene",
                    vec![
                        Value::text(format!("JW{i:04}")),
                        Value::text(format!("gn{i}X")),
                        Value::text("F1"),
                    ],
                )
                .unwrap(),
            );
        }
        let mut store = AnnotationStore::new();
        // Annotations reference their genes by id (always) and by name
        // (half the time); the family value never appears.
        for (i, id) in ids.iter().enumerate() {
            let text = if i % 2 == 0 {
                format!("study of gene JW{i:04} aka gn{i}X")
            } else {
                format!("study of gene JW{i:04}")
            };
            let a = store.add_annotation(Annotation::new(text));
            store.attach(a, AttachmentTarget::tuple(*id)).unwrap();
        }
        (db, store)
    }

    #[test]
    fn learns_id_and_name_not_family() {
        let (db, store) = setup();
        let learned = learn_referencing_columns(
            &db,
            &store,
            &LearnConfig { min_support: 2, ..Default::default() },
        );
        let cols: Vec<(&str, &str)> =
            learned.iter().map(|lc| (lc.table.as_str(), lc.column.as_str())).collect();
        assert!(cols.contains(&("gene", "gid")));
        assert!(cols.contains(&("gene", "name")));
        assert!(!cols.contains(&("gene", "family")), "short `F1` is below min length");
        // gid support (8) exceeds name support (4); ordering reflects it.
        let gid = learned.iter().find(|l| l.column == "gid").unwrap();
        let name = learned.iter().find(|l| l.column == "name").unwrap();
        assert_eq!(gid.support, 8);
        assert_eq!(name.support, 4);
        assert!((gid.coverage - 1.0).abs() < 1e-12);
    }

    #[test]
    fn support_threshold_filters() {
        let (db, store) = setup();
        let learned = learn_referencing_columns(
            &db,
            &store,
            &LearnConfig { min_support: 5, ..Default::default() },
        );
        assert!(learned.iter().all(|l| l.support >= 5));
        assert!(learned.iter().any(|l| l.column == "gid"));
        assert!(!learned.iter().any(|l| l.column == "name"));
    }

    #[test]
    fn learned_meta_drives_discovery() {
        let (db, store) = setup();
        let (meta, learned) =
            learn_concept_refs(&db, &store, &LearnConfig { min_support: 2, ..Default::default() });
        assert!(!learned.is_empty());
        assert_eq!(meta.concepts().len(), 1);
        assert_eq!(meta.concepts()[0].concept, "Gene");
        // The learned meta resolves target columns against the db.
        assert!(!meta.target_columns(&db).is_empty());
    }

    #[test]
    fn empty_store_learns_nothing() {
        let (db, _) = setup();
        let empty = AnnotationStore::new();
        let (meta, learned) = learn_concept_refs(&db, &empty, &LearnConfig::default());
        assert!(learned.is_empty());
        assert!(meta.concepts().is_empty());
    }

    #[test]
    fn sampling_limits_work() {
        let (db, store) = setup();
        let learned = learn_referencing_columns(
            &db,
            &store,
            &LearnConfig { min_support: 1, min_coverage: 0.0, sample: 2 },
        );
        let gid = learned.iter().find(|l| l.column == "gid").unwrap();
        assert!(gid.support <= 2);
    }
}

//! Context-based weight adjustment (paper §5.2.2, Appendix Figure 17).
//!
//! The `ContextBasedAdjustment()` function walks every word `w` of the
//! Context-Map, forms an *influence range* of α words on each side, and
//! rewards each of `w`'s mappings according to the strongest *matching
//! type* it can form with its neighbors' mappings:
//!
//! - **Type-1** (strongest): table + column + value, mutually consistent
//!   — e.g. `{"gene", "Id", "JW0018"}` — reward β₁% per match;
//! - **Type-2**: table + value (no column) — `{"gene", "yaaB"}` — β₂%;
//! - **Type-3** (weakest): column + value (no table) — β₃%;
//!
//! with β₃ < β₂ < β₁. Only the strongest achievable type rewards a given
//! mapping (the pseudocode's if/else-if chain), once per distinct match.

use crate::meta::ConceptTarget;
use crate::sigmap::ContextMap;
use relstore::schema::{ColumnId, TableId};

/// Parameters of the adjustment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdjustParams {
    /// Influence-range radius in words (α).
    pub alpha: usize,
    /// Reward for a Type-1 match, as a fraction (β₁).
    pub beta1: f64,
    /// Reward for a Type-2 match (β₂).
    pub beta2: f64,
    /// Reward for a Type-3 match (β₃).
    pub beta3: f64,
}

impl Default for AdjustParams {
    fn default() -> Self {
        // β₃ < β₂ < β₁ per Figure 4(c).
        AdjustParams { alpha: 4, beta1: 0.3, beta2: 0.2, beta3: 0.1 }
    }
}

/// What the neighborhood of one word offers, per table / column.
#[derive(Debug, Default, Clone)]
struct Neighborhood {
    tables: Vec<TableId>,
    columns: Vec<(TableId, ColumnId)>,
    values: Vec<(TableId, ColumnId)>,
}

impl Neighborhood {
    fn has_table(&self, t: TableId) -> bool {
        self.tables.contains(&t)
    }
    fn has_column(&self, t: TableId, c: ColumnId) -> bool {
        self.columns.contains(&(t, c))
    }
    fn has_value(&self, t: TableId, c: ColumnId) -> bool {
        self.values.contains(&(t, c))
    }
    fn has_value_in_table(&self, t: TableId) -> bool {
        self.values.iter().any(|(vt, _)| *vt == t)
    }
    fn count_value_columns(&self, t: TableId) -> usize {
        self.values.iter().filter(|(vt, _)| *vt == t).count()
    }
}

/// Collect the mappings visible from `center` within radius α, excluding
/// the center word itself.
fn neighborhood(map: &ContextMap, center: usize, alpha: usize) -> Neighborhood {
    let lo = center.saturating_sub(alpha);
    let hi = (center + alpha).min(map.entries.len().saturating_sub(1));
    let mut n = Neighborhood::default();
    for (i, entry) in map.entries.iter().enumerate().take(hi + 1).skip(lo) {
        if i == center {
            continue;
        }
        for cm in &entry.concepts {
            match cm.target {
                ConceptTarget::Table(t) => n.tables.push(t),
                ConceptTarget::Column(t, c) => n.columns.push((t, c)),
            }
        }
        for vm in &entry.values {
            n.values.push((vm.table, vm.column));
        }
    }
    n
}

/// Apply the context-based adjustment in place. Weights are multiplied by
/// `(1 + β)` once per match of the strongest achievable type, capped at
/// 1.0.
pub fn context_based_adjustment(map: &mut ContextMap, params: &AdjustParams) {
    let snapshots: Vec<Neighborhood> =
        (0..map.entries.len()).map(|i| neighborhood(map, i, params.alpha)).collect();

    for (i, entry) in map.entries.iter_mut().enumerate() {
        let n = &snapshots[i];
        for cm in &mut entry.concepts {
            let (matches, beta) = match cm.target {
                ConceptTarget::Table(t) => {
                    // Type-1: some column of t and a value in that column
                    // are both in range.
                    let type1 = n
                        .columns
                        .iter()
                        .filter(|(ct, cc)| *ct == t && n.has_value(*ct, *cc))
                        .count();
                    if type1 > 0 {
                        (type1, params.beta1)
                    } else {
                        // Type-2: a value of t (any column) in range.
                        let type2 = n.count_value_columns(t);
                        (type2, params.beta2)
                    }
                }
                ConceptTarget::Column(t, c) => {
                    let value_here = n.has_value(t, c);
                    if value_here && n.has_table(t) {
                        // Type-1: the table word and a consistent value.
                        (1, params.beta1)
                    } else if value_here {
                        // Type-3: column + value without the table word.
                        (1, params.beta3)
                    } else {
                        (0, 0.0)
                    }
                }
            };
            reward(&mut cm.weight, beta, matches);
        }
        for vm in &mut entry.values {
            let (t, c) = (vm.table, vm.column);
            let (matches, beta) = if n.has_table(t) && n.has_column(t, c) {
                (1, params.beta1)
            } else if n.has_table(t) {
                (1, params.beta2)
            } else if n.has_column(t, c) {
                (1, params.beta3)
            } else if n.has_value_in_table(t) {
                // A weak sibling effect: other values of the same table in
                // range corroborate, at the weakest reward level.
                (1, params.beta3)
            } else {
                (0, 0.0)
            };
            reward(&mut vm.weight, beta, matches);
        }
    }
}

fn reward(weight: &mut f64, beta: f64, matches: usize) {
    for _ in 0..matches {
        *weight = (*weight * (1.0 + beta)).min(1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::{ConceptRef, NebulaMeta};
    use crate::patterns::Pattern;
    use crate::sigmap::{generate_concept_map, generate_value_map, overlay, split_annotation};
    use relstore::{DataType, Database, TableSchema, Value};

    fn setup() -> (Database, NebulaMeta) {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("gene")
                .column("gid", DataType::Text)
                .column("name", DataType::Text)
                .primary_key("gid")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert("gene", vec![Value::text("JW0013"), Value::text("grpC")]).unwrap();
        let mut meta = NebulaMeta::new();
        meta.add_concept(ConceptRef {
            concept: "Gene".into(),
            table: "gene".into(),
            referenced_by: vec![vec!["gid".into()], vec!["name".into()]],
        });
        meta.add_column_equivalent("id", "gene", "gid");
        meta.set_pattern("gene", "gid", Pattern::compile("JW[0-9]{4}").unwrap());
        meta.set_pattern("gene", "name", Pattern::compile("[a-z]{3}[A-Z]").unwrap());
        (db, meta)
    }

    fn build_map(db: &Database, meta: &NebulaMeta, text: &str, eps: f64) -> ContextMap {
        let words = split_annotation(text);
        let cmap = generate_concept_map(db, meta, &words, eps);
        let vmap = generate_value_map(db, meta, &words, eps);
        overlay(&words, cmap, vmap)
    }

    #[test]
    fn type1_rewards_full_triple() {
        let (db, meta) = setup();
        let mut map = build_map(&db, &meta, "gene id JW0018", 0.6);
        let before: f64 = map.entries[2].values[0].weight;
        context_based_adjustment(&mut map, &AdjustParams::default());
        let after = map.entries[2].values[0].weight;
        assert!(after > before, "value word rewarded by Type-1 context");
        // Table word also rewarded.
        assert!(map.entries[0].concepts[0].weight >= 0.95);
    }

    #[test]
    fn type2_weaker_than_type1() {
        let (db, meta) = setup();
        let p = AdjustParams::default();

        let mut t1 = build_map(&db, &meta, "gene id JW0018", 0.6);
        context_based_adjustment(&mut t1, &p);
        let w1 = t1.entries[2].values[0].weight;

        let mut t2 = build_map(&db, &meta, "gene JW0018", 0.6);
        context_based_adjustment(&mut t2, &p);
        let w2 = t2.entries[1].values[0].weight;

        // Both capped at 1.0 would mask the difference; use the raw check
        // only if uncapped.
        assert!(w1 >= w2);
    }

    #[test]
    fn no_context_no_change() {
        let (db, meta) = setup();
        let mut map = build_map(&db, &meta, "JW0018", 0.6);
        let before = map.entries[0].values[0].weight;
        context_based_adjustment(&mut map, &AdjustParams::default());
        assert_eq!(map.entries[0].values[0].weight, before);
    }

    #[test]
    fn out_of_range_context_ignored() {
        let (db, meta) = setup();
        // 6 filler words between "gene" and the id — beyond α = 4.
        let mut map = build_map(&db, &meta, "gene mmmm nnnn oooo pppp qqqq rrrr JW0018", 0.6);
        let idx = map.entries.len() - 1;
        let before = map.entries[idx].values[0].weight;
        context_based_adjustment(&mut map, &AdjustParams { alpha: 4, ..Default::default() });
        assert_eq!(map.entries[idx].values[0].weight, before);
    }

    #[test]
    fn weights_capped_at_one() {
        let (db, meta) = setup();
        let mut map = build_map(&db, &meta, "gene id JW0018 gene id", 0.6);
        context_based_adjustment(
            &mut map,
            &AdjustParams { alpha: 4, beta1: 5.0, beta2: 3.0, beta3: 1.0 },
        );
        for e in &map.entries {
            for c in &e.concepts {
                assert!(c.weight <= 1.0);
            }
            for v in &e.values {
                assert!(v.weight <= 1.0);
            }
        }
    }

    #[test]
    fn sibling_values_get_weak_reward() {
        let (db, meta) = setup();
        // Two gene names adjacent, no concept words: each gets the weak
        // sibling (β₃) reward.
        let mut map = build_map(&db, &meta, "grpC yaaB", 0.6);
        let before = map.entries[0].values[0].weight;
        context_based_adjustment(&mut map, &AdjustParams::default());
        assert!(map.entries[0].values[0].weight > before);
    }
}

//! The engine ↔ durability boundary: logged mutations and the sink trait.
//!
//! The proactive pipeline mutates the annotation layer at a handful of
//! well-defined points (register, attach, accept, reject, curate to a cell,
//! tuple deletion). Each point is described by a [`Mutation`] and offered to
//! an optional [`MutationSink`] **before** it is applied — write-ahead
//! semantics — so a sink that persists the mutations (the `nebula-durable`
//! WAL) can reconstruct the exact in-memory state after a crash.
//!
//! The trait lives in `nebula-core` so the engine does not depend on any
//! concrete durability implementation; `nebula-durable` depends on core and
//! implements the trait, and the facade wires the two together.

use annostore::{Annotation, AnnotationId, AnnotationStore};
use relstore::{ColumnId, Database, TupleId};
use std::fmt;

/// One annotation-layer mutation, offered to the sink before it is applied.
///
/// Borrows from the pipeline's working state; sinks that persist mutations
/// serialize what they need and return.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mutation<'a> {
    /// A new annotation is about to be inserted. `expected` is the id the
    /// store will assign (ids are dense, in insertion order); replay
    /// verifies the assignment to catch checkpoint/log mismatches.
    AddAnnotation {
        /// The id the store will assign.
        expected: AnnotationId,
        /// The annotation being inserted.
        annotation: &'a Annotation,
    },
    /// A true (focal or verified) attachment to a whole tuple.
    AttachTuple {
        /// The attaching annotation.
        annotation: AnnotationId,
        /// The target tuple.
        tuple: TupleId,
    },
    /// A curated attachment refined to one cell of a tuple.
    AttachCell {
        /// The attaching annotation.
        annotation: AnnotationId,
        /// The target tuple.
        tuple: TupleId,
        /// The target column within the tuple.
        column: ColumnId,
    },
    /// A predicted attachment entering the pending-verification band.
    AttachPredicted {
        /// The attaching annotation.
        annotation: AnnotationId,
        /// The predicted target tuple.
        tuple: TupleId,
        /// Prediction confidence.
        confidence: f64,
    },
    /// A predicted edge is accepted (auto-accept or expert verification)
    /// and becomes a true attachment.
    AcceptEdge {
        /// The attaching annotation.
        annotation: AnnotationId,
        /// The accepted target tuple.
        tuple: TupleId,
    },
    /// A predicted edge is rejected and discarded.
    RejectEdge {
        /// The attaching annotation.
        annotation: AnnotationId,
        /// The rejected target tuple.
        tuple: TupleId,
    },
    /// A tuple is deleted from the relational store; the annotation layer
    /// drops every attachment to it.
    TupleDeleted {
        /// The deleted tuple.
        tuple: TupleId,
    },
}

/// How a sink decides a recorded mutation counts as *committed*.
///
/// The plain WAL sink commits on local append ([`CommitRule::Local`]); a
/// replicated sink can additionally demand acknowledgements from a quorum
/// of replicas before the write is considered safe against losing the
/// primary node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitRule {
    /// The local WAL append suffices (ack-none).
    Local,
    /// At least this many replicas must acknowledge the LSN (ack-quorum).
    Quorum(usize),
}

impl fmt::Display for CommitRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitRule::Local => write!(f, "ack-none"),
            CommitRule::Quorum(q) => write!(f, "ack-quorum({q})"),
        }
    }
}

/// The replication posture a sink reports after its most recent record.
///
/// Non-replicated sinks report nothing; the ingest pool feeds this into
/// the health machine and the replication circuit breaker, and the shell
/// renders it for `SHOW REPLICATION`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationStatus {
    /// The primary's current fencing epoch.
    pub epoch: u64,
    /// The commit rule in force.
    pub rule: CommitRule,
    /// Attached replicas (wedged ones included).
    pub replicas: usize,
    /// Replicas wedged by divergence detection.
    pub wedged_replicas: usize,
    /// Largest acknowledgement lag across live replicas, in LSNs.
    pub max_lag: u64,
    /// Did the most recent record exhaust its lag budget before the
    /// commit rule was satisfied?
    pub lag_budget_exceeded: bool,
}

/// A sink failed to record or persist a mutation.
///
/// Carries only a rendered message: the engine treats any sink failure the
/// same way (the mutation is *not* applied and the annotation is
/// quarantined), so structure would buy nothing at this boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkError(pub String);

impl fmt::Display for SinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SinkError {}

/// Receives every annotation-layer mutation before it is applied.
///
/// Implementations must honor write-ahead semantics: when [`record`]
/// returns `Ok`, the mutation is (or will deterministically become)
/// recoverable; when it returns `Err`, the engine does **not** apply the
/// mutation, so the persisted log never runs ahead of the in-memory state
/// on the error path and never lags it on the success path.
///
/// Sinks are `Send` so a worker pool can drive the engine (and its
/// installed sink) from whichever thread holds the commit turn.
///
/// [`record`]: MutationSink::record
pub trait MutationSink: fmt::Debug + Send {
    /// Persist one mutation. Returns its log sequence number.
    fn record(&mut self, mutation: &Mutation<'_>) -> Result<u64, SinkError>;

    /// Should the engine take a checkpoint now? Consulted between batch
    /// items; the default sink never asks for one.
    fn checkpoint_due(&self) -> bool {
        false
    }

    /// Write a checkpoint of the full state and truncate the log. Returns
    /// the sequence watermark the checkpoint covers.
    fn checkpoint(&mut self, db: &Database, store: &AnnotationStore) -> Result<u64, SinkError>;

    /// Flush any buffered state to stable storage (end of a batch).
    fn flush(&mut self) -> Result<(), SinkError> {
        Ok(())
    }

    /// One-line status for `SHOW DURABILITY`.
    fn describe(&self) -> String {
        String::new()
    }

    /// The commit rule this sink enforces. Non-replicated sinks commit on
    /// local append.
    fn commit_rule(&self) -> CommitRule {
        CommitRule::Local
    }

    /// Replication posture after the most recent record, if this sink
    /// replicates. The ingest pool polls this each commit turn to feed the
    /// health machine and the replication breaker.
    fn replication(&self) -> Option<ReplicationStatus> {
        None
    }

    /// Is the sink currently able to accept writes? A wedged durability
    /// layer answers `false`; recovery probes consult this before lifting
    /// a Wedged health state. The default sink is always writable.
    fn healthy(&self) -> bool {
        true
    }

    /// Start archiving sealed WAL segments into `dir` so `BACKUP` can
    /// bundle a restorable history. Sinks that own no write-ahead log
    /// refuse — archiving needs real segments to seal.
    fn set_archive(&mut self, dir: &std::path::Path) -> Result<(), SinkError> {
        let _ = dir;
        Err(SinkError("this sink has no write-ahead log to archive".into()))
    }

    /// The directory this sink archives sealed segments into, when
    /// archiving is enabled.
    fn archive_dir(&self) -> Option<std::path::PathBuf> {
        None
    }
}

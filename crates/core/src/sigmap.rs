//! Signature maps (paper §5.2.1, Steps 1–3 of `QueryGeneration()`).
//!
//! Given an annotation's text, Nebula builds two *signature maps*:
//!
//! - the **Concept-Map** highlights words likely to reference a table name
//!   (*rectangle* shape) or column name (*triangle* shape) from the
//!   `ConceptRefs` auxiliary table, weighted by `p(w, c)`;
//! - the **Value-Map** highlights words likely to be a *value* of one of
//!   the target columns (*hexagon* shape), weighted by `d(w, c)`.
//!
//! Words whose best weight falls below the cutoff threshold ε are dropped
//! (replaced by `—` in the paper's illustration). The two maps are then
//! **overlaid** into the **Context-Map**, which keeps, per word position,
//! both kinds of mappings side by side so the context-based adjustment and
//! query generation can reason about neighborhoods.

use crate::meta::{ConceptTarget, NebulaMeta};
use relstore::schema::{ColumnId, TableId};
use relstore::Database;

/// One word of the annotation with its position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Word {
    /// Normalized form (lower-cased, outer punctuation stripped).
    pub text: String,
    /// The raw token as it appeared.
    pub raw: String,
    /// Word index within the annotation.
    pub position: usize,
}

/// A *rectangle*/*triangle* mapping: the word may reference a schema
/// object, with weight `p(w, c)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConceptMapping {
    /// The referenced schema object.
    pub target: ConceptTarget,
    /// `p(w, c)` after any context adjustment.
    pub weight: f64,
}

/// A *hexagon* mapping: the word may be a value of `table.column`, with
/// weight `d(w, c)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueMapping {
    /// The table of the candidate column.
    pub table: TableId,
    /// The candidate column.
    pub column: ColumnId,
    /// `d(w, c)` after any context adjustment.
    pub weight: f64,
}

/// The per-word overlay entry of the Context-Map.
#[derive(Debug, Clone, PartialEq)]
pub struct ContextEntry {
    /// The word itself.
    pub word: Word,
    /// Concept (schema) mappings that survived the ε cutoff.
    pub concepts: Vec<ConceptMapping>,
    /// Value mappings that survived the ε cutoff.
    pub values: Vec<ValueMapping>,
}

impl ContextEntry {
    /// True when the word carries no mapping at all (`—` in the paper).
    pub fn is_blank(&self) -> bool {
        self.concepts.is_empty() && self.values.is_empty()
    }

    /// The word's single best mapping weight, if any.
    pub fn best_weight(&self) -> Option<f64> {
        self.concepts
            .iter()
            .map(|m| m.weight)
            .chain(self.values.iter().map(|m| m.weight))
            .max_by(f64::total_cmp)
    }
}

/// The overlaid Context-Map.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ContextMap {
    /// One entry per word of the annotation, in order.
    pub entries: Vec<ContextEntry>,
}

impl ContextMap {
    /// Number of words.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the annotation had no words.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Count of words carrying at least one mapping.
    pub fn emphasized(&self) -> usize {
        self.entries.iter().filter(|e| !e.is_blank()).count()
    }
}

/// Split annotation text into [`Word`]s (normalization preserves
/// positions; stopword-like words are *kept* because positions matter for
/// influence ranges — the ε cutoff is what suppresses them).
pub fn split_annotation(text: &str) -> Vec<Word> {
    text.split_whitespace()
        .enumerate()
        .filter_map(|(position, raw)| {
            let text = textsearch::normalize(raw);
            if text.is_empty() {
                None
            } else {
                Some(Word { text, raw: raw.to_string(), position })
            }
        })
        .enumerate()
        .map(|(i, mut w)| {
            // Re-number densely after dropping pure-punctuation tokens.
            w.position = i;
            w
        })
        .collect()
}

/// Step 1: the Concept-Map — per word, the schema mappings with
/// `p(w, c) ≥ ε`.
pub fn generate_concept_map(
    db: &Database,
    meta: &NebulaMeta,
    words: &[Word],
    epsilon: f64,
) -> Vec<Vec<ConceptMapping>> {
    words
        .iter()
        .map(|w| {
            meta.match_concepts(db, &w.text)
                .into_iter()
                .filter(|(_, weight)| *weight >= epsilon)
                .map(|(target, weight)| ConceptMapping { target, weight })
                .collect()
        })
        .collect()
}

/// Step 2: the Value-Map — per word, the domain mappings with
/// `d(w, c) ≥ ε`. Stopwords are never value candidates; everything else
/// is scored by the NebulaMeta domain knowledge (which is what makes the
/// low ε = 0.4 threshold noisy, exactly as the paper reports).
pub fn generate_value_map(
    db: &Database,
    meta: &NebulaMeta,
    words: &[Word],
    epsilon: f64,
) -> Vec<Vec<ValueMapping>> {
    words
        .iter()
        .map(|w| {
            if textsearch::is_stopword(&w.text) {
                return Vec::new();
            }
            meta.match_domains(db, &w.raw_for_matching())
                .into_iter()
                .filter(|(_, _, weight)| *weight >= epsilon)
                .map(|(table, column, weight)| ValueMapping { table, column, weight })
                .collect()
        })
        .collect()
}

impl Word {
    /// The form used for domain matching: the raw token with outer
    /// punctuation stripped but **case preserved**, because syntactic
    /// patterns are case-sensitive (`JW0013` vs `jw0013`).
    pub fn raw_for_matching(&self) -> String {
        self.raw.trim_matches(|c: char| !c.is_alphanumeric()).to_string()
    }
}

/// Step 3: overlay the two maps into the Context-Map.
pub fn overlay(
    words: &[Word],
    concept_map: Vec<Vec<ConceptMapping>>,
    value_map: Vec<Vec<ValueMapping>>,
) -> ContextMap {
    debug_assert_eq!(words.len(), concept_map.len());
    debug_assert_eq!(words.len(), value_map.len());
    let entries = words
        .iter()
        .zip(concept_map)
        .zip(value_map)
        .map(|((word, concepts), values)| ContextEntry { word: word.clone(), concepts, values })
        .collect();
    ContextMap { entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::{concept_weights, ConceptRef};
    use crate::patterns::Pattern;
    use relstore::{DataType, TableSchema, Value};

    fn setup() -> (Database, NebulaMeta) {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("gene")
                .column("gid", DataType::Text)
                .column("name", DataType::Text)
                .primary_key("gid")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert("gene", vec![Value::text("JW0013"), Value::text("grpC")]).unwrap();
        let mut meta = NebulaMeta::new();
        meta.add_concept(ConceptRef {
            concept: "Gene".into(),
            table: "gene".into(),
            referenced_by: vec![vec!["gid".into()], vec!["name".into()]],
        });
        meta.set_pattern("gene", "gid", Pattern::compile("JW[0-9]{4}").unwrap());
        meta.set_pattern("gene", "name", Pattern::compile("[a-z]{3}[A-Z]").unwrap());
        (db, meta)
    }

    #[test]
    fn split_annotation_normalizes_and_renumbers() {
        let words = split_annotation("From the exp, it seems  ... gene JW0014!");
        let texts: Vec<&str> = words.iter().map(|w| w.text.as_str()).collect();
        assert_eq!(texts, vec!["from", "the", "exp", "it", "seems", "gene", "jw0014"]);
        assert_eq!(words.last().unwrap().position, 6);
        assert_eq!(words.last().unwrap().raw, "JW0014!");
        assert_eq!(words.last().unwrap().raw_for_matching(), "JW0014");
    }

    #[test]
    fn concept_map_highlights_schema_words() {
        let (db, meta) = setup();
        let words = split_annotation("this gene is interesting");
        let cmap = generate_concept_map(&db, &meta, &words, 0.6);
        assert!(cmap[0].is_empty(), "`this` is not a concept");
        assert_eq!(cmap[1].len(), 1, "`gene` maps to the gene table");
        assert_eq!(cmap[1][0].weight, concept_weights::EXACT);
    }

    #[test]
    fn value_map_highlights_pattern_words() {
        let (db, meta) = setup();
        let words = split_annotation("correlated to JW0014 maybe");
        let vmap = generate_value_map(&db, &meta, &words, 0.6);
        assert!(vmap[0].is_empty());
        assert_eq!(vmap[2].len(), 1, "JW0014 matches the gid pattern");
        assert!(vmap[2][0].weight >= 0.9);
    }

    #[test]
    fn epsilon_cutoff_filters() {
        let (db, meta) = setup();
        let words = split_annotation("JW0014");
        let strict = generate_value_map(&db, &meta, &words, 0.95);
        assert!(strict[0].is_empty(), "0.9 pattern match fails ε=0.95");
        let loose = generate_value_map(&db, &meta, &words, 0.5);
        assert!(!loose[0].is_empty());
    }

    #[test]
    fn case_matters_for_value_matching() {
        let (db, meta) = setup();
        let words = split_annotation("jw0014");
        let vmap = generate_value_map(&db, &meta, &words, 0.6);
        assert!(vmap[0].is_empty(), "lowercased id fails the case-sensitive pattern");
    }

    #[test]
    fn overlay_combines_maps() {
        let (db, meta) = setup();
        let words = split_annotation("gene JW0014");
        let cmap = generate_concept_map(&db, &meta, &words, 0.6);
        let vmap = generate_value_map(&db, &meta, &words, 0.6);
        let ctx = overlay(&words, cmap, vmap);
        assert_eq!(ctx.len(), 2);
        assert_eq!(ctx.emphasized(), 2);
        assert!(!ctx.entries[0].concepts.is_empty());
        assert!(!ctx.entries[1].values.is_empty());
        assert!(ctx.entries[0].best_weight().unwrap() > 0.9);
    }

    #[test]
    fn blank_entries_detected() {
        let (db, meta) = setup();
        let words = split_annotation("nothing matches here");
        let cmap = generate_concept_map(&db, &meta, &words, 0.6);
        let vmap = generate_value_map(&db, &meta, &words, 0.6);
        let ctx = overlay(&words, cmap, vmap);
        assert_eq!(ctx.emphasized(), 0);
        assert!(ctx.entries.iter().all(ContextEntry::is_blank));
        assert!(ctx.entries[0].best_weight().is_none());
    }
}

//! Property-based tests for nebula-core's data structures and invariants.

use nebula_core::{
    assess_predictions, AssessmentCounts, AssessmentReport, Candidate, Decision, HopProfile,
    Pattern, VerificationBounds,
};
use proptest::prelude::*;
use relstore::schema::TableId;
use relstore::TupleId;

fn t(row: u64) -> TupleId {
    TupleId::new(TableId(0), row)
}

proptest! {
    /// Strings built from the gene-id shape always match the gene-id
    /// pattern; case-mangled ones never do.
    #[test]
    fn gene_id_pattern_complete(digits in proptest::collection::vec(0u8..10, 4)) {
        let p = Pattern::compile("JW[0-9]{4}").unwrap();
        let s: String =
            format!("JW{}", digits.iter().map(|d| (b'0' + d) as char).collect::<String>());
        prop_assert!(p.matches(&s));
        prop_assert!(!p.matches(&s.to_lowercase()));
        prop_assert!(!p.matches(&s[..5]));
        let extended = format!("{s}0");
        prop_assert!(!p.matches(&extended));
    }

    /// Counted repetition accepts exactly the advertised lengths.
    #[test]
    fn counted_repetition_exact(lo in 0u32..4, extra in 0u32..4, n in 0u32..12) {
        let hi = lo + extra;
        let p = Pattern::compile(&format!("a{{{lo},{hi}}}")).unwrap();
        let s = "a".repeat(n as usize);
        prop_assert_eq!(p.matches(&s), n >= lo && n <= hi);
    }

    /// `decide` partitions the confidence axis into three monotone bands.
    #[test]
    fn bounds_decide_monotone(
        lower in 0.0f64..=1.0,
        upper in 0.0f64..=1.0,
        c1 in 0.0f64..=1.0,
        c2 in 0.0f64..=1.0,
    ) {
        let b = VerificationBounds::new(lower, upper);
        prop_assert!(b.lower <= b.upper);
        let rank = |d: Decision| match d {
            Decision::AutoReject => 0,
            Decision::Pending => 1,
            Decision::AutoAccept => 2,
        };
        let (small, big) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        prop_assert!(rank(b.decide(small)) <= rank(b.decide(big)));
    }

    /// Hop-profile coverage is a monotone CDF reaching 1.0, and select_k
    /// returns the smallest sufficient radius.
    #[test]
    fn profile_coverage_cdf(
        hops in proptest::collection::vec(0usize..12, 1..60),
        target in 0.01f64..=1.0,
    ) {
        let mut p = HopProfile::new();
        for h in &hops {
            p.record(*h);
        }
        prop_assert_eq!(p.total() as usize, hops.len());
        let mut prev = 0.0;
        for k in 0..20 {
            let c = p.coverage(k);
            prop_assert!(c >= prev - 1e-12);
            prev = c;
        }
        prop_assert!((p.coverage(16) - 1.0).abs() < 1e-12);
        let k = p.select_k(target).expect("reachable target");
        prop_assert!(p.coverage(k) >= target);
        if k > 0 {
            prop_assert!(p.coverage(k - 1) < target);
        }
    }

    /// Assessment identities: counts partition the candidates; the four
    /// criteria stay in range; experts-only FP sources hold.
    #[test]
    fn assessment_invariants(
        confs in proptest::collection::vec(0.0f64..=1.0, 0..30),
        ideal_rows in proptest::collection::vec(0u64..40, 0..20),
        lower in 0.0f64..=1.0,
        upper in 0.0f64..=1.0,
    ) {
        let bounds = VerificationBounds::new(lower, upper);
        let candidates: Vec<Candidate> = confs
            .iter()
            .enumerate()
            .map(|(i, &c)| Candidate { tuple: t(i as u64), confidence: c, evidence: vec![] })
            .collect();
        let ideal: Vec<TupleId> = {
            let mut v: Vec<TupleId> = ideal_rows.iter().map(|r| t(*r)).collect();
            v.sort();
            v.dedup();
            v
        };
        let focal: Vec<TupleId> = ideal.first().copied().into_iter().collect();
        let (counts, report) = assess_predictions(&candidates, &bounds, &ideal, &focal);

        // Counts partition the candidates.
        prop_assert_eq!(
            counts.n_reject + counts.n_verify() + counts.n_accept(),
            candidates.len()
        );
        // Ranges.
        prop_assert!((0.0..=1.0).contains(&report.f_n));
        prop_assert!((0.0..=1.0).contains(&report.f_p));
        prop_assert!((0.0..=1.0).contains(&report.m_h) || report.m_f == 0.0);
        prop_assert!(report.m_f >= 0.0);
        // Only auto-accepts can produce false positives.
        if counts.n_accept_f == 0 {
            prop_assert_eq!(report.f_p, 0.0);
        }
        // With β_upper pinned to 1.0 nothing auto-accepts (conf ≤ 1).
        if bounds.upper >= 1.0 {
            prop_assert_eq!(counts.n_accept(), 0);
        }
    }

    /// Averaging reports preserves ranges.
    #[test]
    fn average_report_in_range(
        reports in proptest::collection::vec(
            (0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=40.0, 0.0f64..=1.0),
            0..10
        )
    ) {
        let rs: Vec<AssessmentReport> = reports
            .iter()
            .map(|&(f_n, f_p, m_f, m_h)| AssessmentReport { f_n, f_p, m_f, m_h })
            .collect();
        let avg = AssessmentReport::average(&rs);
        prop_assert!((0.0..=1.0).contains(&avg.f_n));
        prop_assert!((0.0..=1.0).contains(&avg.f_p));
        prop_assert!((0.0..=40.0).contains(&avg.m_f));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `from_counts` agrees with the closed-form Definition 7.2 formulas.
    #[test]
    fn from_counts_formulas(
        n_ideal in 0usize..30,
        n_focal in 0usize..5,
        n_reject in 0usize..10,
        n_verify_t in 0usize..10,
        n_verify_f in 0usize..10,
        n_accept_t in 0usize..10,
        n_accept_f in 0usize..10,
    ) {
        let c = AssessmentCounts {
            n_ideal, n_focal, n_reject, n_verify_t, n_verify_f, n_accept_t, n_accept_f,
        };
        let r = AssessmentReport::from_counts(&c);
        if n_ideal > 0 {
            let expected =
                n_ideal.saturating_sub(n_verify_t + n_accept_t + n_focal) as f64 / n_ideal as f64;
            prop_assert!((r.f_n - expected).abs() < 1e-12);
        }
        let denom = n_verify_t + n_accept_t + n_accept_f + n_focal;
        if denom > 0 {
            prop_assert!((r.f_p - n_accept_f as f64 / denom as f64).abs() < 1e-12);
        }
        prop_assert_eq!(r.m_f, (n_verify_t + n_verify_f) as f64);
    }
}

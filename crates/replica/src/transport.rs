//! Transports: how frames move between nodes.
//!
//! Nodes are addressed by small integers — the initial primary is node 0,
//! replicas are 1..=N — and addresses survive promotion: roles change,
//! addresses do not, which is exactly what lets a deposed primary keep
//! talking (and get fenced) after failover.
//!
//! [`SimTransport`] is the deterministic in-process network: per-node
//! FIFO inboxes with faults injected from `nebula-govern`'s seeded
//! stream. The transport owns its **own** [`FaultPlan`] instance rather
//! than the thread-local governor, so transport draws never perturb the
//! engine's fault stream (and vice versa) — the same seed replays the
//! same loss pattern regardless of what the engine is doing.

use nebula_govern::{FaultPlan, FaultSite, NetFault};
use std::collections::VecDeque;
use std::time::Duration;

use crate::counters;

/// Moves encoded frames between nodes. Point-to-point, unreliable,
/// unordered across links (a single link may also reorder under fault
/// injection).
pub trait Transport: std::fmt::Debug + Send {
    /// Enqueue `frame` from node `from` toward node `to`. Delivery is
    /// best-effort: the transport may drop, delay, reorder, or duplicate.
    fn send(&mut self, from: usize, to: usize, frame: Vec<u8>);

    /// Receive the next frame addressed to node `at`, if one is ready.
    /// A held (delayed) head-of-line frame returns `None` and gets one
    /// tick closer to delivery.
    fn recv(&mut self, at: usize) -> Option<(usize, Vec<u8>)>;

    /// Cut or restore all links to `node`. Default: transport has no
    /// partition support and ignores the request.
    fn set_partitioned(&mut self, _node: usize, _on: bool) {}

    /// Is `node` currently partitioned away? Default: never.
    fn is_partitioned(&self, _node: usize) -> bool {
        false
    }

    /// One-line status for `SHOW REPLICATION`.
    fn describe(&self) -> String;
}

/// Delivery statistics a [`SimTransport`] accumulates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Frames enqueued for delivery (duplicates counted).
    pub delivered: u64,
    /// Frames dropped by injected loss.
    pub dropped: u64,
    /// Frames held back by injected delay.
    pub delayed: u64,
    /// Frames delivered ahead of queue order.
    pub reordered: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
    /// Frames blackholed by a partition (manual or flapping).
    pub partition_drops: u64,
}

#[derive(Debug)]
struct InFlight {
    from: usize,
    /// Remaining delay ticks; the head of an inbox is only handed out
    /// once its hold reaches zero (each failed `recv` pays one tick).
    hold: u32,
    bytes: Vec<u8>,
}

/// The deterministic simulated network.
///
/// Fault decisions come from the owned [`FaultPlan`]'s seeded stream, in
/// a fixed draw order per send (drop, delay, reorder, duplicate), so a
/// given seed replays the identical delivery schedule. Partition checks
/// happen **before** any draw, so cutting a link mid-run does not shift
/// the fault stream for traffic on other links.
#[derive(Debug)]
pub struct SimTransport {
    plan: FaultPlan,
    inboxes: Vec<VecDeque<InFlight>>,
    partitioned: Vec<bool>,
    /// `Some(period)` drives a deterministic link-flap schedule: node `n`
    /// is unreachable whenever `(send_tick / period + n) % 3 == 0`, i.e.
    /// each node is dark for about a third of the run, staggered so the
    /// cluster as a whole keeps making progress.
    flap_period: Option<u64>,
    sends: u64,
    stats: TransportStats,
}

impl SimTransport {
    /// A transport over `nodes` nodes with faults drawn from `plan`'s
    /// `net` rates (see [`FaultPlan::with_net`]).
    pub fn new(nodes: usize, plan: FaultPlan) -> SimTransport {
        SimTransport {
            plan,
            inboxes: (0..nodes).map(|_| VecDeque::new()).collect(),
            partitioned: vec![false; nodes],
            flap_period: None,
            sends: 0,
            stats: TransportStats::default(),
        }
    }

    /// A fault-free transport (still deterministic, still FIFO).
    pub fn reliable(nodes: usize) -> SimTransport {
        SimTransport::new(nodes, FaultPlan::new(0))
    }

    /// Enable the deterministic flap schedule: every `period` sends the
    /// schedule window advances and a different subset of nodes goes
    /// dark. See [`SimTransport::flap_down`].
    pub fn with_flap(mut self, period: u64) -> SimTransport {
        self.flap_period = Some(period.max(1));
        self
    }

    /// Is `node` dark under the flap schedule at send-tick `tick`?
    pub fn flap_down(&self, node: usize, tick: u64) -> bool {
        match self.flap_period {
            // Node 0 (the initial primary) is exempt: flapping models
            // replica-side link trouble, and a dark primary would only
            // stall the whole run.
            Some(period) if node != 0 => (tick / period + node as u64).is_multiple_of(3),
            _ => false,
        }
    }

    /// Delivery statistics so far.
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// Frames currently queued for node `at` (held ones included).
    pub fn pending(&self, at: usize) -> usize {
        self.inboxes.get(at).map_or(0, VecDeque::len)
    }
}

impl Transport for SimTransport {
    fn send(&mut self, from: usize, to: usize, frame: Vec<u8>) {
        let tick = self.sends;
        self.sends += 1;
        if to >= self.inboxes.len() || from >= self.inboxes.len() {
            return;
        }
        let cut = self.partitioned[from]
            || self.partitioned[to]
            || self.flap_down(from, tick)
            || self.flap_down(to, tick);
        if cut {
            self.stats.partition_drops += 1;
            nebula_obs::counter_add(counters::FRAMES_DROPPED, 1);
            return;
        }
        // Fixed draw order and count per delivered send: whether a fault
        // fires never shifts the stream for later sends.
        let dropped = self.plan.roll_net(FaultSite::NetDrop).is_some();
        let hold = match self.plan.roll_net(FaultSite::NetDelay) {
            Some(NetFault::Delay { ticks }) => ticks,
            _ => 0,
        };
        let reorder = self.plan.roll_net(FaultSite::NetReorder).is_some();
        let duplicate = self.plan.roll_net(FaultSite::NetDuplicate).is_some();

        if dropped {
            self.stats.dropped += 1;
            nebula_obs::counter_add(counters::FRAMES_DROPPED, 1);
            return;
        }
        if hold > 0 {
            self.stats.delayed += 1;
            nebula_obs::counter_add(counters::FRAMES_DELAYED, 1);
            // Under the virtual clock this advances simulated time, so
            // delay behavior shows up in latency telemetry too.
            nebula_govern::clock::sleep(Duration::from_micros(50 * u64::from(hold)));
        }
        let item = InFlight { from, hold, bytes: frame };
        if duplicate {
            self.stats.duplicated += 1;
            nebula_obs::counter_add(counters::FRAMES_DUPLICATED, 1);
            self.inboxes[to].push_back(InFlight { from, hold, bytes: item.bytes.clone() });
            self.stats.delivered += 1;
        }
        if reorder {
            self.stats.reordered += 1;
            nebula_obs::counter_add(counters::FRAMES_REORDERED, 1);
            self.inboxes[to].push_front(item);
        } else {
            self.inboxes[to].push_back(item);
        }
        self.stats.delivered += 1;
    }

    fn recv(&mut self, at: usize) -> Option<(usize, Vec<u8>)> {
        let inbox = self.inboxes.get_mut(at)?;
        let head = inbox.front_mut()?;
        if head.hold > 0 {
            head.hold -= 1;
            return None;
        }
        let item = inbox.pop_front()?;
        Some((item.from, item.bytes))
    }

    fn set_partitioned(&mut self, node: usize, on: bool) {
        if let Some(slot) = self.partitioned.get_mut(node) {
            *slot = on;
        }
    }

    fn is_partitioned(&self, node: usize) -> bool {
        self.partitioned.get(node).copied().unwrap_or(false)
    }

    fn describe(&self) -> String {
        let s = self.stats;
        format!(
            "sim nodes={} sends={} delivered={} dropped={} delayed={} reordered={} dup={} \
             partition_drops={}{}",
            self.inboxes.len(),
            self.sends,
            s.delivered,
            s.dropped,
            s.delayed,
            s.reordered,
            s.duplicated,
            s.partition_drops,
            if self.flap_period.is_some() { " flapping" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_transport_is_fifo() {
        let mut t = SimTransport::reliable(2);
        t.send(0, 1, vec![1]);
        t.send(0, 1, vec![2]);
        assert_eq!(t.recv(1), Some((0, vec![1])));
        assert_eq!(t.recv(1), Some((0, vec![2])));
        assert_eq!(t.recv(1), None);
    }

    #[test]
    fn same_seed_replays_the_same_delivery_schedule() {
        let run = || {
            let plan = FaultPlan::new(0xFEED).with_net(0.2, 0.2, 0.2, 0.2);
            let mut t = SimTransport::new(2, plan);
            for i in 0..200u8 {
                t.send(0, 1, vec![i]);
            }
            let mut got = Vec::new();
            for _ in 0..2000 {
                if let Some((_, b)) = t.recv(1) {
                    got.push(b[0]);
                }
            }
            (t.stats(), got)
        };
        assert_eq!(run(), run());
        let (stats, _) = run();
        assert!(stats.dropped > 0 && stats.delayed > 0);
        assert!(stats.reordered > 0 && stats.duplicated > 0);
    }

    #[test]
    fn partition_blackholes_without_consuming_draws() {
        let plan = FaultPlan::new(7).with_net(0.5, 0.0, 0.0, 0.0);
        let mut faulty = SimTransport::new(2, plan);
        // Reference: the drop pattern with no partition interference.
        let mut pattern = Vec::new();
        for i in 0..20u8 {
            faulty.send(0, 1, vec![i]);
        }
        while let Some((_, b)) = faulty.recv(1) {
            pattern.push(b[0]);
        }

        let plan = FaultPlan::new(7).with_net(0.5, 0.0, 0.0, 0.0);
        let mut t = SimTransport::new(2, plan);
        t.set_partitioned(1, true);
        for i in 100..110u8 {
            t.send(0, 1, vec![i]); // blackholed, no draws consumed
        }
        t.set_partitioned(1, false);
        assert!(!t.is_partitioned(1));
        for i in 0..20u8 {
            t.send(0, 1, vec![i]);
        }
        let mut got = Vec::new();
        while let Some((_, b)) = t.recv(1) {
            got.push(b[0]);
        }
        assert_eq!(got, pattern, "partitioned sends must not shift the fault stream");
        assert_eq!(t.stats().partition_drops, 10);
    }

    #[test]
    fn delayed_head_takes_ticks_to_arrive() {
        let plan = FaultPlan::new(3).with_net(0.0, 1.0, 0.0, 0.0);
        let mut t = SimTransport::new(2, plan);
        t.send(0, 1, vec![9]);
        let mut attempts = 0;
        while t.recv(1).is_none() {
            attempts += 1;
            assert!(attempts < 10, "delay must be bounded");
        }
        assert!(attempts >= 1, "a guaranteed delay must cost at least one tick");
    }

    #[test]
    fn flap_schedule_darkens_each_replica_a_third_of_the_time() {
        let t = SimTransport::reliable(4).with_flap(10);
        for node in 1..4usize {
            let dark = (0..300).filter(|&tick| t.flap_down(node, tick)).count();
            assert_eq!(dark, 100, "node {node}");
        }
        assert_eq!((0..300).filter(|&tick| t.flap_down(0, tick)).count(), 0);
    }
}

//! The cluster: one primary, N replicas, a transport, and a commit rule.
//!
//! [`Cluster`] owns the whole replication topology and drives it
//! synchronously and deterministically: every [`Cluster::record`] appends
//! on the primary, ships, then **pumps** the transport a bounded number
//! of rounds until the configured commit rule (ack-none / ack-quorum) is
//! satisfied. A rule that cannot be satisfied inside the pump budget is
//! not an error — the record is locally durable — but a **typed
//! degradation**: [`ReplicationStatus::lag_budget_exceeded`] is raised,
//! which the ingest pool feeds into its replication breaker and health
//! machine.
//!
//! [`Cluster::promote`] is deterministic failover: pick a live replica,
//! bump the epoch, root a fresh WAL at its applied LSN
//! ([`Durability::begin_at`]), and resync the remaining replicas from the
//! new primary's checkpoint. The old primary is retained as *deposed* —
//! its writes after promotion are fenced by epoch nacks, which is what
//! the failover tests assert.
//!
//! [`ClusterSink`] adapts a shared cluster handle to
//! [`nebula_core::MutationSink`], so the engine and ingest pool write
//! through replication exactly as they write through a plain WAL.

use annostore::AnnotationStore;
use nebula_core::{CommitRule, Mutation, MutationSink, ReplicationStatus, SinkError};
use nebula_durable::wal::WalOp;
use nebula_durable::{Durability, DurabilityOptions, ScrubReport};
use relstore::Database;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::counters;
use crate::frame::Frame;
use crate::primary::Primary;
use crate::repair;
use crate::replica::Replica;
use crate::transport::Transport;
use crate::ReplicaError;

/// Tuning knobs for a [`Cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// When a record counts as committed.
    pub rule: CommitRule,
    /// Largest tolerated acknowledgement lag (LSNs) before a record is
    /// flagged as a lag degradation even under ack-none.
    pub lag_budget: u64,
    /// Transport pump rounds attempted per record before giving up on
    /// the commit rule for that record.
    pub pump_rounds: usize,
    /// Options for the primary's local WAL.
    pub options: DurabilityOptions,
    /// Governed-clock cadence for automatic anti-entropy scrubs (and
    /// repair of whatever they find). `None` leaves scrubbing to the
    /// operator's `SCRUB`. Measured against the virtual clock when one is
    /// installed, wall time otherwise.
    pub scrub_interval: Option<Duration>,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            rule: CommitRule::Local,
            lag_budget: 64,
            pump_rounds: 8,
            options: DurabilityOptions::default(),
            scrub_interval: None,
        }
    }
}

/// The cluster-level findings of one anti-entropy scrub pass.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScrubSummary {
    /// The primary LSN the scrub ran at.
    pub at_lsn: u64,
    /// On-disk WAL/checkpoint CRC findings for the primary's directory.
    pub media: ScrubReport,
    /// Was found media rot healed by re-checkpointing from the shadow?
    pub media_healed: bool,
    /// Replicas whose digest ladder disagreed with the primary's.
    pub diverged: Vec<usize>,
    /// Replicas already wedged (fenced) when the scrub ran.
    pub wedged: Vec<usize>,
    /// Ladder range-digest probes spent across all replicas.
    pub probes: u64,
}

impl ScrubSummary {
    /// Nothing wrong anywhere?
    pub fn is_clean(&self) -> bool {
        self.media.is_clean() && self.diverged.is_empty() && self.wedged.is_empty()
    }
}

/// One completed replica repair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairOutcome {
    /// The repaired replica's node id.
    pub replica: usize,
    /// The last LSN the ladder proved both sides agreed on.
    pub agreed: u64,
    /// Diverged suffix LSNs the replica discarded (divergence depth).
    pub rewound: u64,
    /// Ladder range-digest probes spent locating the agreed LSN.
    pub probes: u64,
    /// LSNs re-applied to bring the replica back to the primary's tip.
    pub resynced: u64,
    /// Transport pump rounds the resync took.
    pub rounds: usize,
    /// Did the replica reconverge to the primary's digest?
    pub converged: bool,
}

/// One deposed primary demoted and re-admitted as a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RejoinOutcome {
    /// The rejoining node's id.
    pub node: usize,
    /// The epoch it rejoined into.
    pub epoch: u64,
    /// The last LSN the ladder proved both epochs agreed on — the rewind
    /// point.
    pub agreed: u64,
    /// Un-acked suffix LSNs from its deposed epoch, rewound and accounted
    /// exactly once (these writes were fenced, never committed).
    pub rewound: u64,
    /// Ladder probes spent locating the rewind point.
    pub probes: u64,
    /// Did the rejoined replica reconverge to the new primary's digest?
    pub converged: bool,
}

/// Aggregate repair posture for `SHOW REPAIR`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RepairStatus {
    /// Scrub passes run (manual + cadence).
    pub scrubs: u64,
    /// Primary LSN of the most recent scrub.
    pub last_scrub_lsn: Option<u64>,
    /// Replicas currently needing repair (wedged or ladder-diverged).
    pub pending: Vec<usize>,
    /// Replica repairs completed.
    pub repairs: u64,
    /// Deposed-primary rejoins completed.
    pub rejoins: u64,
    /// Total diverged/un-acked suffix LSNs discarded across repairs and
    /// rejoins.
    pub total_rewound: u64,
    /// Deepest single divergence repaired.
    pub max_divergence: u64,
    /// Ladder range-digest probes spent in total.
    pub ladder_probes: u64,
}

/// A full replication topology, pumped deterministically in-process.
#[derive(Debug)]
pub struct Cluster {
    transport: Box<dyn Transport>,
    primary: Primary,
    replicas: Vec<Replica>,
    deposed: Vec<Primary>,
    config: ClusterConfig,
    base_dir: PathBuf,
    lag_exceeded: bool,
    /// Repair bookkeeping: completed repairs/rejoins and the most recent
    /// scrub, surfaced through [`Cluster::repair_status`].
    repairs: Vec<RepairOutcome>,
    rejoins: Vec<RejoinOutcome>,
    last_scrub: Option<ScrubSummary>,
    scrubs: u64,
    /// Wall-clock base for the scrub cadence when no virtual clock is
    /// installed.
    scrub_base: Instant,
    last_scrub_ns: u64,
}

impl Cluster {
    /// Build a cluster: the primary (node 0, epoch 1) starts durability
    /// in `base_dir/epoch-1` over `db`/`store`, and `replica_count`
    /// replicas (nodes 1..=N) bootstrap from its initial checkpoint.
    pub fn new(
        base_dir: &Path,
        db: &Database,
        store: &AnnotationStore,
        replica_count: usize,
        transport: Box<dyn Transport>,
        config: ClusterConfig,
    ) -> Result<Cluster, ReplicaError> {
        let dir = base_dir.join("epoch-1");
        let wal = Durability::begin(&dir, db, store, config.options)?;
        let primary = Primary::new(0, 1, wal, db, store)?;
        let mut cluster = Cluster {
            transport,
            primary,
            replicas: (1..=replica_count).map(Replica::new).collect(),
            deposed: Vec::new(),
            config,
            base_dir: base_dir.to_path_buf(),
            lag_exceeded: false,
            repairs: Vec::new(),
            rejoins: Vec::new(),
            last_scrub: None,
            scrubs: 0,
            scrub_base: Instant::now(),
            last_scrub_ns: 0,
        };
        for id in 1..=replica_count {
            cluster.primary.attach(id, &mut *cluster.transport);
        }
        cluster.pump(2);
        Ok(cluster)
    }

    /// Cold-start a whole cluster from a verified backup bundle: the
    /// primary restores the bundle and roots a fresh WAL at the restored
    /// LSN + 1, and every replica is seeded from the same restored state
    /// — no checkpoint transfer, and no load on whatever cluster the
    /// bundle was taken from.
    pub fn seed_from_bundle(
        bundle_dir: &Path,
        base_dir: &Path,
        replica_count: usize,
        transport: Box<dyn Transport>,
        config: ClusterConfig,
    ) -> Result<Cluster, ReplicaError> {
        let restored = nebula_backup::restore(bundle_dir, None)
            .map_err(|e| ReplicaError::Seed(e.to_string()))?;
        let epoch = restored.epoch.max(1);
        let dir = base_dir.join(format!("epoch-{epoch}"));
        let wal = Durability::begin_at(
            &dir,
            &restored.db,
            &restored.store,
            config.options,
            restored.applied + 1,
        )?;
        let primary = Primary::new(0, epoch, wal, &restored.db, &restored.store)?;
        let image =
            nebula_durable::checkpoint::encode(restored.applied, &restored.db, &restored.store);
        let mut replicas = Vec::with_capacity(replica_count);
        for id in 1..=replica_count {
            let (w, db, store) = nebula_durable::checkpoint::decode(&image)?;
            replicas.push(Replica::seed(id, db, store, w, epoch));
        }
        let mut cluster = Cluster {
            transport,
            primary,
            replicas,
            deposed: Vec::new(),
            config,
            base_dir: base_dir.to_path_buf(),
            lag_exceeded: false,
            repairs: Vec::new(),
            rejoins: Vec::new(),
            last_scrub: None,
            scrubs: 0,
            scrub_base: Instant::now(),
            last_scrub_ns: 0,
        };
        for id in 1..=replica_count {
            cluster.primary.attach(id, &mut *cluster.transport);
        }
        cluster.pump(2);
        Ok(cluster)
    }

    /// Seed one **new** replica from a backup bundle and attach it to
    /// this running cluster. The bundle, not the primary, provides the
    /// bulk of the state; normal catch-up shipping covers only the delta
    /// past the bundle's head. Returns the LSN the bundle seeded up to.
    pub fn attach_seeded_replica(
        &mut self,
        id: usize,
        bundle_dir: &Path,
    ) -> Result<u64, ReplicaError> {
        if id == self.primary.node()
            || self.replica(id).is_some()
            || self.deposed.iter().any(|d| d.node() == id)
        {
            return Err(ReplicaError::Seed(format!("node {id} already exists in the cluster")));
        }
        let restored = nebula_backup::restore(bundle_dir, None)
            .map_err(|e| ReplicaError::Seed(e.to_string()))?;
        // A bundle from a newer epoch, or one whose head is past the
        // primary's log, would seed a replica *ahead* of the cluster —
        // a state catch-up shipping can never reconcile. Refuse it.
        if restored.epoch > self.primary.epoch() {
            return Err(ReplicaError::Seed(format!(
                "bundle epoch {} is newer than the cluster epoch {}",
                restored.epoch,
                self.primary.epoch()
            )));
        }
        if restored.applied > self.primary.last_lsn() {
            return Err(ReplicaError::Seed(format!(
                "bundle head lsn {} is ahead of the primary's last lsn {}",
                restored.applied,
                self.primary.last_lsn()
            )));
        }
        let seeded_to = restored.applied;
        // Seed under the current epoch so the primary's segments are
        // accepted immediately (the bundle's epoch is no newer — checked
        // above).
        self.replicas.push(Replica::seed(
            id,
            restored.db,
            restored.store,
            restored.applied,
            self.primary.epoch(),
        ));
        self.replicas.sort_by_key(Replica::id);
        self.primary.attach(id, &mut *self.transport);
        self.pump(self.config.pump_rounds.max(4));
        Ok(seeded_to)
    }

    /// Record one operation through the primary, then pump until the
    /// commit rule is satisfied or the pump budget runs out (a typed lag
    /// degradation, not an error). Returns the assigned LSN.
    pub fn record(&mut self, op: &WalOp) -> Result<u64, ReplicaError> {
        let lsn = self.primary.record(op, &mut *self.transport)?;
        let needed = match self.config.rule {
            CommitRule::Local => 0,
            CommitRule::Quorum(q) => q,
        };
        let quorum_span = nebula_obs::trace::span("repl.quorum");
        let mut satisfied = false;
        let mut rounds = 0usize;
        for _ in 0..self.config.pump_rounds.max(1) {
            self.pump(1);
            rounds += 1;
            if self.primary.acks_at(lsn) >= needed {
                satisfied = true;
                break;
            }
        }
        if quorum_span.is_active() {
            quorum_span.detail(format!(
                "need={needed} acks={} rounds={rounds}{}",
                self.primary.acks_at(lsn),
                if satisfied { "" } else { " unsatisfied" }
            ));
        }
        drop(quorum_span);
        self.lag_exceeded = !satisfied || self.primary.max_lag() > self.config.lag_budget;
        if self.lag_exceeded {
            nebula_obs::counter_add(counters::LAG_BUDGET_EXCEEDED, 1);
        }
        nebula_obs::gauge_set(counters::MAX_LAG, self.primary.max_lag());
        self.maybe_scrub();
        Ok(lsn)
    }

    /// Nanoseconds on the governed clock: the virtual clock when one is
    /// installed (deterministic tests), wall time otherwise.
    fn clock_ns(&self) -> u64 {
        if nebula_govern::clock::is_virtual() {
            nebula_govern::clock::virtual_ns()
        } else {
            self.scrub_base.elapsed().as_nanos() as u64
        }
    }

    /// Run the scrub cadence: when `scrub_interval` has elapsed on the
    /// governed clock, scrub and repair whatever the scrub found.
    fn maybe_scrub(&mut self) {
        let Some(interval) = self.config.scrub_interval else { return };
        let now = self.clock_ns();
        if now.saturating_sub(self.last_scrub_ns) < interval.as_nanos() as u64 {
            return;
        }
        self.last_scrub_ns = now;
        let summary = self.scrub();
        for id in summary.wedged.iter().chain(summary.diverged.iter()) {
            let _ = self.repair_replica(*id);
        }
    }

    /// One anti-entropy scrub pass: CRC-verify the primary's on-disk WAL
    /// and checkpoint (healing found rot by re-checkpointing from the
    /// shadow), then ladder-compare every live replica's digest chain
    /// against the primary's. Detection only for replicas — call
    /// [`Cluster::repair_replica`] (or let the cadence do it) to heal.
    pub fn scrub(&mut self) -> ScrubSummary {
        let at_lsn = self.primary.last_lsn();
        let dir = self.primary.wal().dir().to_path_buf();
        let media = nebula_durable::scrub(&dir).unwrap_or_else(|e| ScrubReport {
            wal_reason: Some(format!("scrub i/o failure: {e}")),
            wal_dropped: 1,
            ..ScrubReport::default()
        });
        let mut media_healed = false;
        if !media.is_clean() {
            media_healed = self.primary.checkpoint_from_shadow().is_ok();
            nebula_obs::trace::flight_event(
                "scrub",
                format!("media rot at lsn {at_lsn}: {media}; healed={media_healed}"),
            );
        }
        let mut diverged = Vec::new();
        let mut wedged = Vec::new();
        let mut probes = 0u64;
        for r in &self.replicas {
            if r.is_wedged() {
                wedged.push(r.id());
                continue;
            }
            let out = repair::last_agreed(self.primary.digests(), r.digests(), at_lsn);
            probes += out.probes;
            if out.diverged {
                diverged.push(r.id());
                nebula_obs::trace::flight_event(
                    "scrub",
                    format!(
                        "ladder divergence: replica {} agrees only to lsn {}",
                        r.id(),
                        out.agreed
                    ),
                );
            }
        }
        nebula_obs::counter_add(counters::LADDER_PROBES, probes);
        nebula_obs::gauge_set(counters::LAST_SCRUB_LSN, at_lsn);
        let summary = ScrubSummary { at_lsn, media, media_healed, diverged, wedged, probes };
        nebula_obs::gauge_set(
            counters::PENDING_REPAIRS,
            (summary.diverged.len() + summary.wedged.len()) as u64,
        );
        self.scrubs += 1;
        self.last_scrub = Some(summary.clone());
        summary
    }

    /// Repair a diverged or fenced replica: binary-search the range-digest
    /// ladder to the last agreed LSN, truncate the replica's suffix past
    /// it, unfence both sides, and resync through the normal checkpoint
    /// catch-up path until the replica matches the primary's digest again.
    pub fn repair_replica(&mut self, id: usize) -> Result<RepairOutcome, ReplicaError> {
        let idx = self
            .replicas
            .iter()
            .position(|r| r.id() == id)
            .ok_or(ReplicaError::UnknownReplica(id))?;
        let target = self.primary.last_lsn();
        let ladder =
            repair::last_agreed(self.primary.digests(), self.replicas[idx].digests(), target);
        let rewound = self.replicas[idx].prepare_resync(ladder.agreed);
        // The wholesale reload must carry the head, not the (possibly
        // long-truncated) durable image, or the repair spends its pump
        // budget replaying the gap.
        self.primary.refresh_catchup_image();
        self.primary.unwedge_peer(id);
        nebula_obs::trace::flight_event(
            "repair",
            format!(
                "replica {id}: agreed lsn {} rewound {rewound} probes {}",
                ladder.agreed, ladder.probes
            ),
        );
        let expected = self.primary.shadow_digest();
        let mut rounds = 0usize;
        let mut converged = false;
        for _ in 0..self.config.pump_rounds.max(4) * 8 {
            self.pump(1);
            rounds += 1;
            let r = &self.replicas[idx];
            if !r.is_wedged() && r.applied() >= target && r.digest() == expected {
                converged = true;
                break;
            }
        }
        let resynced = target.saturating_sub(ladder.agreed);
        let outcome = RepairOutcome {
            replica: id,
            agreed: ladder.agreed,
            rewound,
            probes: ladder.probes,
            resynced: if converged { resynced } else { 0 },
            rounds,
            converged,
        };
        nebula_obs::counter_add(counters::REPAIRS, 1);
        nebula_obs::counter_add(counters::LADDER_PROBES, ladder.probes);
        if converged {
            nebula_obs::counter_add(counters::RECORDS_RESYNCED, resynced);
        }
        nebula_obs::trace::flight_event(
            "repair",
            format!("replica {id}: converged={converged} after {rounds} round(s)"),
        );
        self.repairs.push(outcome);
        Ok(outcome)
    }

    /// Re-admit a deposed primary as a replica of the current epoch: its
    /// un-acked suffix (writes that were fenced, never committed) is
    /// rewound and accounted exactly once, its durability handle for the
    /// old epoch is retired, and a fresh replica at the same node id
    /// bootstraps from the new primary's checkpoint — the prefix both
    /// epochs agreed on is never forked.
    pub fn rejoin(&mut self, node: usize) -> Result<RejoinOutcome, ReplicaError> {
        let idx = self
            .deposed
            .iter()
            .position(|d| d.node() == node)
            .ok_or(ReplicaError::UnknownReplica(node))?;
        let old = self.deposed.remove(idx);
        let hi = old.last_lsn().min(self.primary.last_lsn());
        let ladder = repair::last_agreed(self.primary.digests(), old.digests(), hi);
        // With no comparable entries (both sides pruned past each other)
        // the checkpoint watermark the new primary took over at is the
        // best provable agreement point.
        let agreed = if ladder.compared == 0 {
            self.primary.ckpt_watermark().min(old.last_lsn())
        } else {
            ladder.agreed
        };
        let rewound = old.last_lsn().saturating_sub(agreed);
        let epoch = self.primary.epoch();
        drop(old);
        nebula_obs::trace::flight_event(
            "rejoin",
            format!("node {node} demoted into epoch {epoch}: rewound {rewound} un-acked lsn(s)"),
        );
        self.replicas.push(Replica::new(node));
        self.replicas.sort_by_key(Replica::id);
        // Bootstrap from the head, not a stale durable image (see
        // `repair_replica`): the fresh replica loads current state
        // wholesale instead of replaying the truncated gap.
        self.primary.refresh_catchup_image();
        self.primary.attach(node, &mut *self.transport);
        let expected = self.primary.shadow_digest();
        let target = self.primary.last_lsn();
        let mut converged = false;
        for _ in 0..self.config.pump_rounds.max(4) * 8 {
            self.pump(1);
            let Some(r) = self.replicas.iter().find(|r| r.id() == node) else { break };
            if !r.is_wedged() && r.applied() >= target && r.digest() == expected {
                converged = true;
                break;
            }
        }
        let outcome =
            RejoinOutcome { node, epoch, agreed, rewound, probes: ladder.probes, converged };
        nebula_obs::counter_add(counters::REJOINS, 1);
        nebula_obs::counter_add(counters::LADDER_PROBES, ladder.probes);
        nebula_obs::trace::flight_event(
            "rejoin",
            format!("node {node}: converged={converged} at epoch {epoch}"),
        );
        self.rejoins.push(outcome);
        Ok(outcome)
    }

    /// Replicas currently needing repair: wedged now, or flagged as
    /// diverged by the most recent scrub.
    pub fn pending_repairs(&self) -> Vec<usize> {
        let mut pending: Vec<usize> =
            self.replicas.iter().filter(|r| r.is_wedged()).map(Replica::id).collect();
        if let Some(s) = &self.last_scrub {
            for id in &s.diverged {
                if !pending.contains(id) && self.replica(*id).is_some() {
                    pending.push(*id);
                }
            }
        }
        pending.sort_unstable();
        pending
    }

    /// Aggregate repair posture for `SHOW REPAIR`.
    pub fn repair_status(&self) -> RepairStatus {
        let total_rewound = self.repairs.iter().map(|r| r.rewound).sum::<u64>()
            + self.rejoins.iter().map(|r| r.rewound).sum::<u64>();
        RepairStatus {
            scrubs: self.scrubs,
            last_scrub_lsn: self.last_scrub.as_ref().map(|s| s.at_lsn),
            pending: self.pending_repairs(),
            repairs: self.repairs.len() as u64,
            rejoins: self.rejoins.len() as u64,
            total_rewound,
            max_divergence: self
                .repairs
                .iter()
                .map(|r| r.rewound)
                .chain(self.rejoins.iter().map(|r| r.rewound))
                .max()
                .unwrap_or(0),
            ladder_probes: self.repairs.iter().map(|r| r.probes).sum::<u64>()
                + self.rejoins.iter().map(|r| r.probes).sum::<u64>()
                + self.last_scrub.as_ref().map_or(0, |s| s.probes),
        }
    }

    /// The most recent scrub's findings, if any scrub has run.
    pub fn last_scrub(&self) -> Option<&ScrubSummary> {
        self.last_scrub.as_ref()
    }

    /// Node ids of deposed primaries eligible for `REJOIN`.
    pub fn deposed_nodes(&self) -> Vec<usize> {
        self.deposed.iter().map(Primary::node).collect()
    }

    /// Chaos hook: deterministically corrupt replica `id`'s in-memory
    /// state (see [`Replica::chaos_corrupt`]) so divergence detection and
    /// repair can be exercised end to end.
    pub fn chaos_corrupt_replica(&mut self, id: usize) -> Result<(), ReplicaError> {
        self.replicas
            .iter_mut()
            .find(|r| r.id() == id)
            .map(Replica::chaos_corrupt)
            .ok_or(ReplicaError::UnknownReplica(id))
    }

    /// Record through a **deposed** primary (post-failover), pumping so
    /// its peers' epoch nacks come back. Succeeds only if the deposed
    /// primary still believes it leads *and* no fencing nack arrives —
    /// with a connected transport this deterministically returns
    /// [`ReplicaError::Fenced`].
    pub fn record_on_deposed(&mut self, which: usize, op: &WalOp) -> Result<u64, ReplicaError> {
        let deposed_count = self.deposed.len();
        let d = self.deposed.get_mut(which).ok_or(ReplicaError::UnknownReplica(deposed_count))?;
        let lsn = d.record(op, &mut *self.transport)?;
        for _ in 0..self.config.pump_rounds.max(2) {
            self.pump(1);
            if let Some(d) = self.deposed.get_mut(which) {
                d.drain(&mut *self.transport);
                if d.is_fenced() {
                    let (epoch, newer) = (d.epoch(), d.fenced_by().unwrap_or(d.epoch() + 1));
                    return Err(ReplicaError::Fenced { epoch, newer });
                }
            }
        }
        Ok(lsn)
    }

    /// One delivery sweep: every replica drains its inbox and replies;
    /// then the primary drains acks and runs its catch-up shipping pass.
    fn pump_once(&mut self) {
        for r in &mut self.replicas {
            while let Some((from, bytes)) = self.transport.recv(r.id()) {
                let Ok(frame) = Frame::decode(&bytes) else { continue };
                if let Some(reply) = r.handle(&frame) {
                    self.transport.send(r.id(), from, reply.encode());
                }
            }
        }
        self.primary.drain(&mut *self.transport);
    }

    /// Pump `rounds` delivery sweeps (public so tests can heal a
    /// partition and converge the cluster).
    pub fn pump(&mut self, rounds: usize) {
        for _ in 0..rounds {
            self.pump_once();
        }
    }

    /// Deterministic failover: promote replica `id` to primary.
    ///
    /// The new primary starts a fresh WAL at `epoch-{N}` rooted at the
    /// replica's applied LSN (no renumbering), bumps the epoch, and
    /// resyncs the remaining replicas from its checkpoint — any suffix a
    /// replica replayed beyond the promoted state (a fork candidate) is
    /// discarded by the higher-epoch checkpoint load. The old primary
    /// moves to the deposed list; it learns of its fencing lazily, from
    /// epoch nacks, the first time it ships again.
    pub fn promote(&mut self, id: usize) -> Result<(), ReplicaError> {
        let idx = self
            .replicas
            .iter()
            .position(|r| r.id() == id)
            .ok_or(ReplicaError::UnknownReplica(id))?;
        if self.replicas[idx].is_wedged() {
            return Err(ReplicaError::NotPromotable(format!(
                "replica {id} is wedged: {}",
                self.replicas[idx].wedge_reason().unwrap_or("unknown")
            )));
        }
        let new_epoch = self.primary.epoch() + 1;
        let dir = self.base_dir.join(format!("epoch-{new_epoch}"));
        let (db, store, applied) = {
            let r = &self.replicas[idx];
            (r.db(), r.store(), r.applied())
        };
        let wal = Durability::begin_at(&dir, db, store, self.config.options, applied + 1)?;
        let mut new_primary = Primary::new(id, new_epoch, wal, db, store)?;
        // Archiving survives failover: the new primary adopts the same
        // archive directory, and its opening base (stamped with the new
        // epoch) seals the restorable chain at the handover watermark.
        if let Some(adir) = self.primary.wal().archive_dir().map(Path::to_path_buf) {
            new_primary.wal_mut().set_archive(&adir, new_epoch)?;
        }
        let old = std::mem::replace(&mut self.primary, new_primary);
        self.deposed.push(old);
        self.replicas.remove(idx);
        let ids: Vec<usize> = self.replicas.iter().map(Replica::id).collect();
        for rid in ids {
            self.primary.attach(rid, &mut *self.transport);
        }
        nebula_obs::counter_add(counters::PROMOTIONS, 1);
        self.pump(2);
        Ok(())
    }

    /// The best failover target: the live replica with the highest
    /// applied LSN (lowest id breaks ties). `None` if every replica is
    /// wedged or detached.
    pub fn best_failover_candidate(&self) -> Option<usize> {
        self.replicas
            .iter()
            .filter(|r| !r.is_wedged())
            .max_by(|a, b| a.applied().cmp(&b.applied()).then(b.id().cmp(&a.id())))
            .map(Replica::id)
    }

    /// The replication posture after the most recent record.
    pub fn status(&self) -> ReplicationStatus {
        ReplicationStatus {
            epoch: self.primary.epoch(),
            rule: self.config.rule,
            replicas: self.replicas.len(),
            wedged_replicas: self.replicas.iter().filter(|r| r.is_wedged()).count(),
            max_lag: self.primary.max_lag(),
            lag_budget_exceeded: self.lag_exceeded,
        }
    }

    /// Checkpoint the primary (persist + truncate its WAL, refresh the
    /// catch-up image).
    pub fn checkpoint(
        &mut self,
        db: &Database,
        store: &AnnotationStore,
    ) -> Result<u64, ReplicaError> {
        self.primary.checkpoint(db, store)
    }

    /// Should the primary checkpoint now?
    pub fn checkpoint_due(&self) -> bool {
        self.primary.checkpoint_due()
    }

    /// Flush the primary's WAL (batch-sync policy).
    pub fn flush(&mut self) -> Result<(), ReplicaError> {
        self.primary.flush()
    }

    /// A bounded-staleness read against replica `id`: runs `f` if the
    /// replica is live and within `bound` LSNs of the primary.
    pub fn read_replica<T>(
        &self,
        id: usize,
        bound: u64,
        f: impl FnOnce(&Database, &AnnotationStore) -> T,
    ) -> Result<T, ReplicaError> {
        let r =
            self.replicas.iter().find(|r| r.id() == id).ok_or(ReplicaError::UnknownReplica(id))?;
        r.read(self.primary.last_lsn(), bound, f)
    }

    /// The current primary.
    pub fn primary(&self) -> &Primary {
        &self.primary
    }

    /// The attached replicas.
    pub fn replicas(&self) -> &[Replica] {
        &self.replicas
    }

    /// One replica by node id.
    pub fn replica(&self, id: usize) -> Option<&Replica> {
        self.replicas.iter().find(|r| r.id() == id)
    }

    /// Deposed primaries, oldest first.
    pub fn deposed(&self) -> &[Primary] {
        &self.deposed
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Did the most recent record exceed its commit rule or lag budget?
    pub fn lag_exceeded(&self) -> bool {
        self.lag_exceeded
    }

    /// Cut or restore all transport links to `node`.
    pub fn set_partitioned(&mut self, node: usize, on: bool) {
        self.transport.set_partitioned(node, on);
    }

    /// Start archiving the primary's sealed WAL segments into `dir`,
    /// stamped with the current epoch, so `BACKUP` can bundle a
    /// restorable history of the replicated log.
    pub fn set_archive(&mut self, dir: &Path) -> Result<(), ReplicaError> {
        let epoch = self.primary.epoch();
        self.primary.wal_mut().set_archive(dir, epoch).map_err(ReplicaError::from)
    }

    /// The primary WAL's archive directory, when archiving is enabled.
    pub fn archive_dir(&self) -> Option<PathBuf> {
        self.primary.wal().archive_dir().map(Path::to_path_buf)
    }

    /// One-line transport status.
    pub fn describe_transport(&self) -> String {
        self.transport.describe()
    }
}

/// A cloneable [`MutationSink`] over a shared [`Cluster`], so the engine
/// (or the ingest pool) writes through replication while the shell keeps
/// a handle for `PROMOTE` / `SHOW REPLICATION`.
#[derive(Debug, Clone)]
pub struct ClusterSink {
    inner: Arc<Mutex<Cluster>>,
}

impl ClusterSink {
    /// Wrap a cluster for sharing.
    pub fn new(cluster: Cluster) -> ClusterSink {
        ClusterSink { inner: Arc::new(Mutex::new(cluster)) }
    }

    /// A second handle to the same cluster.
    pub fn handle(&self) -> ClusterSink {
        ClusterSink { inner: Arc::clone(&self.inner) }
    }

    /// Lock the cluster (poison-tolerant: replication state is guarded
    /// by its own invariants, not by the panic that poisoned the lock).
    pub fn lock(&self) -> MutexGuard<'_, Cluster> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl MutationSink for ClusterSink {
    fn record(&mut self, mutation: &Mutation<'_>) -> Result<u64, SinkError> {
        let op = WalOp::from_mutation(mutation);
        self.lock().record(&op).map_err(|e| SinkError(e.to_string()))
    }

    fn checkpoint_due(&self) -> bool {
        self.lock().checkpoint_due()
    }

    fn checkpoint(&mut self, db: &Database, store: &AnnotationStore) -> Result<u64, SinkError> {
        self.lock().checkpoint(db, store).map_err(|e| SinkError(e.to_string()))
    }

    fn flush(&mut self) -> Result<(), SinkError> {
        self.lock().flush().map_err(|e| SinkError(e.to_string()))
    }

    fn describe(&self) -> String {
        let cluster = self.lock();
        let st = cluster.status();
        format!(
            "replicated epoch={} rule={} replicas={} wedged={} max_lag={}{} | {}",
            st.epoch,
            st.rule,
            st.replicas,
            st.wedged_replicas,
            st.max_lag,
            if st.lag_budget_exceeded { " LAGGING" } else { "" },
            cluster.describe_transport(),
        )
    }

    fn commit_rule(&self) -> CommitRule {
        self.lock().config().rule
    }

    fn healthy(&self) -> bool {
        !self.lock().primary().wal().is_wedged()
    }

    fn replication(&self) -> Option<ReplicationStatus> {
        Some(self.lock().status())
    }

    fn set_archive(&mut self, dir: &Path) -> Result<(), SinkError> {
        self.lock().set_archive(dir).map_err(|e| SinkError(e.to_string()))
    }

    fn archive_dir(&self) -> Option<PathBuf> {
        self.lock().archive_dir()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::SimTransport;
    use annostore::AnnotationId;
    use nebula_govern::FaultPlan;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nebula-cluster-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn op(n: u64) -> WalOp {
        WalOp::AddAnnotation {
            expected: AnnotationId(n),
            text: format!("note {n}"),
            author: None,
            kind: None,
        }
    }

    fn fresh(
        tag: &str,
        replicas: usize,
        transport: Box<dyn Transport>,
        rule: CommitRule,
    ) -> Cluster {
        let db = Database::new();
        let store = AnnotationStore::new();
        let config = ClusterConfig { rule, ..ClusterConfig::default() };
        Cluster::new(&temp_dir(tag), &db, &store, replicas, transport, config).unwrap()
    }

    #[test]
    fn quorum_commits_and_replicas_match_primary_digest() {
        let mut c = fresh("quorum", 2, Box::new(SimTransport::reliable(3)), CommitRule::Quorum(2));
        for i in 0..10 {
            c.record(&op(i)).unwrap();
        }
        assert!(!c.lag_exceeded());
        let expected = c.primary().shadow_digest();
        for r in c.replicas() {
            assert_eq!(r.applied(), 10);
            assert_eq!(r.digest(), expected);
        }
        assert_eq!(c.status().max_lag, 0);
    }

    #[test]
    fn lossy_transport_converges_under_quorum() {
        let plan = FaultPlan::new(0xC0FFEE).with_net(0.15, 0.15, 0.1, 0.1);
        let mut c = fresh("lossy", 2, Box::new(SimTransport::new(3, plan)), CommitRule::Quorum(1));
        for i in 0..50 {
            c.record(&op(i)).unwrap();
        }
        c.pump(50);
        let expected = c.primary().shadow_digest();
        for r in c.replicas() {
            assert_eq!(r.applied(), 50, "replica {}", r.id());
            assert_eq!(r.digest(), expected, "replica {}", r.id());
            assert_eq!(r.records_replayed() + r.applied_via_checkpoint(), r.applied());
        }
        assert!(c.primary().divergences().is_empty());
    }

    #[test]
    fn partition_breaks_quorum_as_a_typed_degradation_not_an_error() {
        let mut c =
            fresh("partition", 1, Box::new(SimTransport::reliable(2)), CommitRule::Quorum(1));
        c.set_partitioned(1, true);
        c.record(&op(0)).unwrap();
        assert!(c.lag_exceeded());
        assert!(c.status().lag_budget_exceeded);
        c.set_partitioned(1, false);
        c.record(&op(1)).unwrap();
        assert!(!c.lag_exceeded(), "healed partition restores the commit rule");
    }

    #[test]
    fn promotion_fences_the_deposed_primary() {
        let mut c =
            fresh("failover", 2, Box::new(SimTransport::reliable(3)), CommitRule::Quorum(2));
        for i in 0..5 {
            c.record(&op(i)).unwrap();
        }
        let target = c.best_failover_candidate().unwrap();
        c.promote(target).unwrap();
        assert_eq!(c.primary().epoch(), 2);
        assert_eq!(c.primary().node(), target);
        // The new primary continues the LSN sequence without renumbering.
        c.record(&op(5)).unwrap();
        assert_eq!(c.primary().last_lsn(), 6);
        // The deposed primary's writes are rejected by epoch fencing.
        let err = c.record_on_deposed(0, &op(5)).unwrap_err();
        assert!(matches!(err, ReplicaError::Fenced { epoch: 1, newer: 2 }), "{err:?}");
        // And every later write fails immediately.
        let err = c.record_on_deposed(0, &op(6)).unwrap_err();
        assert!(matches!(err, ReplicaError::Fenced { .. }));
        // The surviving replica follows the new chain.
        let expected = c.primary().shadow_digest();
        c.pump(5);
        for r in c.replicas() {
            assert_eq!(r.applied(), 6);
            assert_eq!(r.digest(), expected);
        }
    }

    #[test]
    fn corrupted_replica_is_fenced_then_repaired_to_byte_identity() {
        let mut c = fresh("repair", 2, Box::new(SimTransport::reliable(3)), CommitRule::Quorum(2));
        for i in 0..12 {
            c.record(&op(i)).unwrap();
        }
        // Poison replica 1 and write once more: its ack now carries the
        // wrong digest, divergence detection fences it.
        c.chaos_corrupt_replica(1).unwrap();
        c.record(&op(12)).unwrap();
        c.pump(4);
        assert_eq!(c.primary().wedged_count(), 1);
        assert!(c.replica(1).unwrap().is_wedged());
        let scrub = c.scrub();
        assert_eq!(scrub.wedged, vec![1]);
        assert_eq!(c.pending_repairs(), vec![1]);
        // Repair: ladder to the agreed LSN, truncate, resync.
        let outcome = c.repair_replica(1).unwrap();
        assert!(outcome.converged, "{outcome:?}");
        assert!(outcome.rewound >= 1, "the poisoned suffix must be discarded");
        assert_eq!(c.primary().wedged_count(), 0);
        assert!(c.pending_repairs().is_empty());
        let expected = c.primary().shadow_digest();
        assert_eq!(c.replica(1).unwrap().digest(), expected);
        // The repaired replica keeps replicating new writes.
        c.record(&op(13)).unwrap();
        c.pump(4);
        assert_eq!(c.replica(1).unwrap().applied(), 14);
        assert_eq!(c.replica(1).unwrap().digest(), c.primary().shadow_digest());
    }

    #[test]
    fn deposed_primary_rejoins_the_new_epoch_as_a_replica() {
        let mut c = fresh("rejoin", 2, Box::new(SimTransport::reliable(3)), CommitRule::Quorum(2));
        for i in 0..8 {
            c.record(&op(i)).unwrap();
        }
        let target = c.best_failover_candidate().unwrap();
        c.promote(target).unwrap();
        assert_eq!(c.deposed_nodes(), vec![0]);
        // The new epoch moves on without the old primary.
        for i in 8..12 {
            c.record(&op(i)).unwrap();
        }
        // Rejoin: node 0 demotes to replica and reconverges byte-for-byte.
        let outcome = c.rejoin(0).unwrap();
        assert!(outcome.converged, "{outcome:?}");
        assert_eq!(outcome.epoch, 2);
        assert_eq!(c.deposed_nodes(), Vec::<usize>::new());
        assert_eq!(c.replicas().len(), 2);
        let expected = c.primary().shadow_digest();
        let r0 = c.replica(0).unwrap();
        assert_eq!(r0.applied(), 12);
        assert_eq!(r0.digest(), expected);
        // And it tracks the new chain from here on.
        c.record(&op(12)).unwrap();
        c.pump(4);
        assert_eq!(c.replica(0).unwrap().digest(), c.primary().shadow_digest());
        assert_eq!(c.repair_status().rejoins, 1);
    }

    #[test]
    fn media_rot_is_found_and_healed_by_the_scrub() {
        let mut c = fresh("mediarot", 1, Box::new(SimTransport::reliable(2)), CommitRule::Local);
        for i in 0..6 {
            c.record(&op(i)).unwrap();
        }
        nebula_govern::set_fault_plan(Some(FaultPlan::new(31).with_bit_rot(1.0, 1.0)));
        let dir = c.primary().wal().dir().to_path_buf();
        let rot = nebula_durable::inject_rot(&dir).unwrap();
        nebula_govern::set_fault_plan(None);
        assert!(rot.any(), "bit rot must fire at rate 1.0");
        let summary = c.scrub();
        assert!(!summary.media.is_clean(), "scrub must find the rot");
        assert!(summary.media_healed, "re-checkpoint from shadow must heal it");
        // A second scrub over the rewritten artifacts is clean.
        assert!(c.scrub().media.is_clean());
    }

    #[test]
    fn scrub_cadence_fires_on_the_virtual_clock() {
        nebula_govern::clock::set_virtual(true);
        let config = ClusterConfig {
            scrub_interval: Some(std::time::Duration::from_millis(1)),
            ..ClusterConfig::default()
        };
        let db = Database::new();
        let store = AnnotationStore::new();
        let mut c = Cluster::new(
            &temp_dir("cadence"),
            &db,
            &store,
            1,
            Box::new(SimTransport::reliable(2)),
            config,
        )
        .unwrap();
        assert_eq!(c.repair_status().scrubs, 0);
        nebula_govern::clock::sleep(std::time::Duration::from_millis(2));
        c.record(&op(0)).unwrap();
        let after_first = c.repair_status().scrubs;
        assert!(after_first >= 1, "cadence scrub must fire after the interval elapses");
        // No further virtual time passes: no further scrubs.
        c.record(&op(1)).unwrap();
        assert_eq!(c.repair_status().scrubs, after_first);
        nebula_govern::clock::set_virtual(false);
    }

    /// An `n`-record archived history (stamped `epoch`) + bundle under
    /// `root`.
    fn bundled_history_at(root: &Path, epoch: u64, n: u64) -> (Database, AnnotationStore) {
        let db0 = Database::new();
        let store0 = AnnotationStore::new();
        let mut d =
            Durability::begin(&root.join("data"), &db0, &store0, DurabilityOptions::default())
                .unwrap();
        d.set_archive(&root.join("archive"), epoch).unwrap();
        let mut db = Database::new();
        let mut store = AnnotationStore::new();
        for i in 0..n {
            let o = op(i);
            d.append(&o).unwrap();
            nebula_durable::replay_op(&mut db, &mut store, &o).unwrap();
        }
        d.checkpoint(&db, &store).unwrap();
        nebula_backup::create_bundle(&nebula_backup::BundleSpec {
            archive_dir: root.join("archive"),
            bundle_dir: root.join("bundle"),
            pages: None,
            created_seq: 1,
        })
        .unwrap();
        (db, store)
    }

    /// A 9-record archived history + bundle under `root`; returns the
    /// source state the bundle captures.
    fn bundled_history(root: &Path) -> (Database, AnnotationStore) {
        let db0 = Database::new();
        let store0 = AnnotationStore::new();
        let mut d =
            Durability::begin(&root.join("data"), &db0, &store0, DurabilityOptions::default())
                .unwrap();
        d.set_archive(&root.join("archive"), 1).unwrap();
        let mut db = Database::new();
        let mut store = AnnotationStore::new();
        for i in 0..9 {
            let o = op(i);
            d.append(&o).unwrap();
            nebula_durable::replay_op(&mut db, &mut store, &o).unwrap();
            if i % 3 == 2 {
                d.checkpoint(&db, &store).unwrap();
            }
        }
        nebula_backup::create_bundle(&nebula_backup::BundleSpec {
            archive_dir: root.join("archive"),
            bundle_dir: root.join("bundle"),
            pages: None,
            created_seq: 1,
        })
        .unwrap();
        (db, store)
    }

    #[test]
    fn a_cluster_cold_starts_from_a_bundle_and_converges_byte_for_byte() {
        let root = temp_dir("seedbundle");
        let (db, store) = bundled_history(&root);
        // Cold-start: the source cluster/store is never contacted.
        let mut c = Cluster::seed_from_bundle(
            &root.join("bundle"),
            &root.join("cluster"),
            2,
            Box::new(SimTransport::reliable(3)),
            ClusterConfig::default(),
        )
        .unwrap();
        assert_eq!(c.primary().last_lsn(), 9);
        let expected = nebula_durable::state_digest(&db, &store);
        for r in c.replicas() {
            assert_eq!(r.applied(), 9);
            assert_eq!(r.digest(), expected, "replica {} must match the source", r.id());
        }
        // And the seeded cluster keeps replicating past the bundle head.
        c.record(&op(9)).unwrap();
        c.pump(4);
        for r in c.replicas() {
            assert_eq!(r.applied(), 10);
            assert_eq!(r.digest(), c.primary().shadow_digest());
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn a_new_replica_seeds_from_a_bundle_and_catches_up_over_the_wire() {
        let root = temp_dir("seedattach");
        bundled_history(&root);
        let mut c = Cluster::seed_from_bundle(
            &root.join("bundle"),
            &root.join("cluster"),
            1,
            Box::new(SimTransport::reliable(3)),
            ClusterConfig::default(),
        )
        .unwrap();
        for i in 9..14 {
            c.record(&op(i)).unwrap();
        }
        // Node 2 bootstraps from the bundle; the primary ships only the
        // delta past the bundle's head.
        let seeded_to = c.attach_seeded_replica(2, &root.join("bundle")).unwrap();
        assert_eq!(seeded_to, 9);
        c.pump(8);
        let r = c.replica(2).unwrap();
        assert_eq!(r.applied(), 14);
        assert_eq!(r.digest(), c.primary().shadow_digest());
        assert!(
            r.records_replayed() <= 5,
            "the bundle, not the wire, must provide the first 9 records (replayed {})",
            r.records_replayed()
        );
        // Ids already in the cluster are refused.
        assert!(matches!(
            c.attach_seeded_replica(1, &root.join("bundle")),
            Err(ReplicaError::Seed(_))
        ));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn a_bundle_ahead_of_the_cluster_is_refused_for_seeding() {
        // A bundle whose head LSN is past the primary's log: the seeded
        // replica would start ahead of the cluster, which catch-up
        // shipping can never reconcile.
        let root = temp_dir("seedahead");
        bundled_history_at(&root, 1, 9);
        let mut c = fresh("seedahead-c", 1, Box::new(SimTransport::reliable(3)), CommitRule::Local);
        for i in 0..3 {
            c.record(&op(i)).unwrap();
        }
        let err = c.attach_seeded_replica(2, &root.join("bundle")).unwrap_err();
        assert!(
            matches!(err, ReplicaError::Seed(ref m) if m.contains("ahead of the primary")),
            "{err:?}"
        );

        // A bundle stamped with a newer epoch than the cluster's.
        let newer = temp_dir("seedahead-epoch");
        bundled_history_at(&newer, 3, 2);
        let err = c.attach_seeded_replica(2, &newer.join("bundle")).unwrap_err();
        assert!(
            matches!(err, ReplicaError::Seed(ref m) if m.contains("newer than the cluster epoch")),
            "{err:?}"
        );
        assert!(c.replica(2).is_none(), "a refused seed must not attach a replica");

        // A bundle at or behind the primary still seeds fine.
        for i in 3..12 {
            c.record(&op(i)).unwrap();
        }
        let seeded_to = c.attach_seeded_replica(2, &root.join("bundle")).unwrap();
        assert_eq!(seeded_to, 9);
        c.pump(8);
        assert_eq!(c.replica(2).unwrap().applied(), 12);
        let _ = std::fs::remove_dir_all(&root);
        let _ = std::fs::remove_dir_all(&newer);
    }

    #[test]
    fn sink_reports_replication_status_and_bounded_reads_work() {
        let c = fresh("sink", 1, Box::new(SimTransport::reliable(2)), CommitRule::Local);
        let sink = ClusterSink::new(c);
        let mut sink2 = sink.handle();
        use nebula_core::Mutation;
        let ann = annostore::Annotation { text: "x".into(), author: None, kind: None };
        let m = Mutation::AddAnnotation { expected: AnnotationId(0), annotation: &ann };
        let lsn = MutationSink::record(&mut sink2, &m).unwrap();
        assert_eq!(lsn, 1);
        let st = sink.replication().unwrap();
        assert_eq!(st.epoch, 1);
        assert_eq!(st.replicas, 1);
        assert_eq!(sink.commit_rule(), CommitRule::Local);
        let count = sink.lock().read_replica(1, 0, |_, s| s.annotation_count()).unwrap();
        assert_eq!(count, 1);
        assert!(sink.describe().contains("replicated epoch=1"));
    }
}

//! The anti-entropy range-digest ladder.
//!
//! Both the primary and every replica keep a chain of per-LSN state
//! digests. Comparing the chains digest-by-digest would cost O(n) per
//! scrub; the ladder instead compares **range digests** (a CRC over a
//! contiguous run of per-LSN digests) and binary-searches the first
//! disagreeing prefix — O(log n) range probes to locate the exact last
//! LSN two nodes provably agree on, which is where repair truncates the
//! diverged suffix.
//!
//! The comparison is restricted to the LSNs *both* chains still hold:
//! checkpoint transfers let a replica skip LSNs wholesale and both sides
//! prune old entries, so the common domain — not either chain alone — is
//! what can be meaningfully compared.

use nebula_durable::crc32c::crc32c;
use std::collections::BTreeMap;

/// The result of one ladder comparison between two digest chains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LadderOutcome {
    /// The highest common LSN at which the chains provably agree
    /// (0 when they disagree from the very first common entry).
    pub agreed: u64,
    /// Range-digest comparisons spent locating it.
    pub probes: u64,
    /// Did any common entry disagree at all?
    pub diverged: bool,
    /// Common entries compared (the ladder's search space).
    pub compared: usize,
}

/// CRC over a run of `(lsn, digest)` entries — one rung of the ladder.
fn range_digest(entries: &[(u64, (u32, u32))]) -> u32 {
    let mut bytes = Vec::with_capacity(entries.len() * 16);
    for (lsn, (d0, d1)) in entries {
        bytes.extend_from_slice(&lsn.to_le_bytes());
        bytes.extend_from_slice(&d0.to_le_bytes());
        bytes.extend_from_slice(&d1.to_le_bytes());
    }
    crc32c(&bytes)
}

/// Compare two per-LSN digest chains up to `hi` and locate the last LSN
/// they agree on, by binary-searching range digests over their common
/// domain.
pub fn last_agreed(
    primary: &BTreeMap<u64, (u32, u32)>,
    replica: &BTreeMap<u64, (u32, u32)>,
    hi: u64,
) -> LadderOutcome {
    let mut ours: Vec<(u64, (u32, u32))> = Vec::new();
    let mut theirs: Vec<(u64, (u32, u32))> = Vec::new();
    for (&lsn, &pd) in primary.range(..=hi) {
        if let Some(&rd) = replica.get(&lsn) {
            ours.push((lsn, pd));
            theirs.push((lsn, rd));
        }
    }
    let n = ours.len();
    let mut probes = 0u64;
    let mut agree_prefix = |m: usize| {
        probes += 1;
        range_digest(&ours[..m]) == range_digest(&theirs[..m])
    };
    if n == 0 {
        return LadderOutcome::default();
    }
    if agree_prefix(n) {
        return LadderOutcome { agreed: ours[n - 1].0, probes, diverged: false, compared: n };
    }
    // Invariant: the empty prefix agrees, the full prefix does not.
    let (mut lo, mut hi_i) = (0usize, n);
    while hi_i - lo > 1 {
        let mid = lo + (hi_i - lo) / 2;
        if agree_prefix(mid) {
            lo = mid;
        } else {
            hi_i = mid;
        }
    }
    let agreed = if lo == 0 { 0 } else { ours[lo - 1].0 };
    LadderOutcome { agreed, probes, diverged: true, compared: n }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(pairs: &[(u64, u32)]) -> BTreeMap<u64, (u32, u32)> {
        pairs.iter().map(|&(l, d)| (l, (d, d.wrapping_mul(7)))).collect()
    }

    #[test]
    fn identical_chains_agree_at_the_top_in_one_probe() {
        let a = chain(&[(1, 10), (2, 20), (3, 30)]);
        let out = last_agreed(&a, &a, 3);
        assert!(!out.diverged);
        assert_eq!(out.agreed, 3);
        assert_eq!(out.probes, 1);
    }

    #[test]
    fn divergence_midway_is_located_exactly() {
        let a = chain(&[(1, 10), (2, 20), (3, 30), (4, 40), (5, 50)]);
        let mut b = a.clone();
        b.insert(4, (99, 99)); // diverges at 4
        b.insert(5, (98, 98));
        let out = last_agreed(&a, &b, 5);
        assert!(out.diverged);
        assert_eq!(out.agreed, 3);
    }

    #[test]
    fn divergence_at_the_first_entry_agrees_nowhere() {
        let a = chain(&[(1, 10), (2, 20)]);
        let b = chain(&[(1, 11), (2, 21)]);
        let out = last_agreed(&a, &b, 2);
        assert!(out.diverged);
        assert_eq!(out.agreed, 0);
    }

    #[test]
    fn comparison_is_restricted_to_the_common_domain() {
        // The replica skipped 1..=3 via a checkpoint transfer; only 4..=6
        // are comparable, and they agree.
        let a = chain(&[(1, 10), (2, 20), (3, 30), (4, 40), (5, 50), (6, 60)]);
        let b = chain(&[(4, 40), (5, 50), (6, 60)]);
        let out = last_agreed(&a, &b, 6);
        assert!(!out.diverged);
        assert_eq!(out.agreed, 6);
        assert_eq!(out.compared, 3);
    }

    #[test]
    fn hi_bound_truncates_the_search() {
        let a = chain(&[(1, 10), (2, 20), (3, 30)]);
        let mut b = a.clone();
        b.insert(3, (99, 99));
        let out = last_agreed(&a, &b, 2);
        assert!(!out.diverged, "divergence past hi is out of scope");
        assert_eq!(out.agreed, 2);
    }

    #[test]
    fn probe_count_is_logarithmic() {
        let n = 1024u64;
        let a: BTreeMap<u64, (u32, u32)> = (1..=n).map(|l| (l, (l as u32, 0))).collect();
        let mut b = a.clone();
        for l in 700..=n {
            b.insert(l, (0xDEAD, 0xBEEF));
        }
        let out = last_agreed(&a, &b, n);
        assert_eq!(out.agreed, 699);
        assert!(out.probes <= 12, "{} probes for n=1024", out.probes);
    }

    #[test]
    fn empty_common_domain_is_not_divergence() {
        let a = chain(&[(1, 10)]);
        let b = chain(&[(2, 20)]);
        let out = last_agreed(&a, &b, 10);
        assert!(!out.diverged);
        assert_eq!(out.agreed, 0);
        assert_eq!(out.compared, 0);
    }
}

//! # nebula-replica — WAL-shipping replication for the annotation engine
//!
//! Single-primary, multi-replica replication built on deterministic
//! in-process infrastructure:
//!
//! - [`frame`] — the wire protocol: shipped WAL segments and checkpoint
//!   transfers (both the epoch-stamped payloads from
//!   `nebula_durable::segment`), plus acks, nacks, and fence messages.
//! - [`transport`] — the [`Transport`] abstraction carrying frames between
//!   nodes, and [`SimTransport`], a simulated network backed by
//!   `nebula-govern`'s seeded fault stream and virtual clock: drop, delay,
//!   reorder, duplication, and partitions, all replayable from a seed.
//! - [`primary`] — the [`Primary`]: wraps the existing
//!   [`nebula_durable::Durability`] WAL manager, ships appended records to
//!   its peers, tracks acknowledgements, detects **divergence** by
//!   comparing per-LSN state digests, and fences diverged replicas.
//! - [`replica`] — the [`Replica`] state machine: replays shipped segments
//!   through the same idempotent [`nebula_durable::replay_op`] path
//!   recovery uses, loads checkpoint transfers to catch up past a
//!   truncated primary log, and answers reads with an explicit staleness
//!   bound.
//! - [`cluster`] — the [`Cluster`]: one primary plus N replicas wired
//!   through a transport, with the configurable commit rule (ack-none /
//!   ack-quorum), epoch-fenced **failover** ([`Cluster::promote`]), and
//!   [`ClusterSink`], the [`nebula_core::MutationSink`] adapter that lets
//!   the engine and the ingest pool write through the cluster.
//!
//! ## Epoch fencing
//!
//! Every shipped frame carries the primary's **epoch**. Promotion bumps
//! the epoch; replicas adopt the higher epoch on first contact and answer
//! any older primary with a nack carrying the new epoch. A deposed
//! primary that keeps writing learns it is fenced from those nacks and
//! its writes are rejected — the surviving history is always a prefix of
//! a single chain, never a fork.
//!
//! All activity is reported through `nebula-obs` under `repl.*` names.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::fmt;

pub mod cluster;
pub mod frame;
pub mod nemesis;
pub mod primary;
pub mod repair;
pub mod replica;
pub mod transport;

pub use cluster::{
    Cluster, ClusterConfig, ClusterSink, RejoinOutcome, RepairOutcome, RepairStatus, ScrubSummary,
};
pub use frame::Frame;
pub use nemesis::{
    compose_schedule, compose_schedule_with_backup, compose_schedule_with_disk,
    compose_schedule_with_shards, NemesisEvent, NemesisPlan,
};
pub use primary::{DivergenceReport, Primary};
pub use repair::{last_agreed, LadderOutcome};
pub use replica::Replica;
pub use transport::{SimTransport, Transport, TransportStats};

use nebula_durable::DurableError;

/// Counter and gauge names this crate publishes to `nebula-obs`.
pub mod counters {
    /// Acknowledgements received by a primary.
    pub const ACKS: &str = "repl.acks";
    /// Checkpoint transfers shipped to lagging replicas.
    pub const CATCHUP_CHECKPOINTS: &str = "repl.catchup_checkpoints";
    /// Divergences detected (replica digest ≠ primary digest at an LSN).
    pub const DIVERGENCES: &str = "repl.divergences";
    /// Frames a stale-epoch sender had rejected by a receiver.
    pub const EPOCH_REJECTIONS: &str = "repl.epoch_rejections";
    /// Frames the simulated transport held back (injected delay).
    pub const FRAMES_DELAYED: &str = "repl.frames_delayed";
    /// Frames the simulated transport dropped (injected loss + partitions).
    pub const FRAMES_DROPPED: &str = "repl.frames_dropped";
    /// Frames the simulated transport delivered twice.
    pub const FRAMES_DUPLICATED: &str = "repl.frames_duplicated";
    /// Frames the simulated transport delivered ahead of queue order.
    pub const FRAMES_REORDERED: &str = "repl.frames_reordered";
    /// Records whose commit rule or lag budget was not met in time.
    pub const LAG_BUDGET_EXCEEDED: &str = "repl.lag_budget_exceeded";
    /// Failover promotions performed.
    pub const PROMOTIONS: &str = "repl.promotions";
    /// Records replayed by replicas.
    pub const RECORDS_REPLAYED: &str = "repl.records_replayed";
    /// Records shipped inside segments.
    pub const RECORDS_SHIPPED: &str = "repl.records_shipped";
    /// Duplicate records replicas skipped (exactly-once replay).
    pub const RECORDS_SKIPPED: &str = "repl.records_skipped";
    /// Segments shipped to replicas.
    pub const SEGMENTS_SHIPPED: &str = "repl.segments_shipped";
    /// Ladder range-digest probes spent locating divergence points.
    pub const LADDER_PROBES: &str = "repair.ladder_probes";
    /// Diverged suffix LSNs re-applied by completed repairs.
    pub const RECORDS_RESYNCED: &str = "repair.records_resynced";
    /// Deposed primaries re-admitted as replicas.
    pub const REJOINS: &str = "repair.rejoins";
    /// Replica repairs completed.
    pub const REPAIRS: &str = "repair.repairs";
    /// Gauge: primary LSN of the most recent anti-entropy scrub.
    pub const LAST_SCRUB_LSN: &str = "repair.last_scrub_lsn";
    /// Gauge: replicas currently pending repair.
    pub const PENDING_REPAIRS: &str = "repair.pending";
    /// Gauge: the primary's current epoch.
    pub const EPOCH: &str = "repl.epoch";
    /// Gauge: largest acknowledgement lag across live replicas, in LSNs.
    pub const MAX_LAG: &str = "repl.max_lag";
    /// Gauge: attached replicas.
    pub const REPLICAS: &str = "repl.replicas";
}

/// Errors from the replication layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplicaError {
    /// The underlying durability layer failed (WAL append, checkpoint,
    /// recovery).
    Durable(DurableError),
    /// A write was rejected because this primary was deposed: a peer
    /// holds a newer epoch.
    Fenced {
        /// The deposed primary's epoch.
        epoch: u64,
        /// The newer epoch that fenced it.
        newer: u64,
    },
    /// The replica is wedged (divergence detected or fenced) and refuses
    /// to serve until rebuilt.
    Wedged(String),
    /// A bounded-staleness read found the replica lagging past its bound.
    StaleRead {
        /// The replica's lag behind the primary, in LSNs.
        lag: u64,
        /// The caller's staleness bound.
        bound: u64,
    },
    /// No replica with this id is attached.
    UnknownReplica(usize),
    /// A wire frame failed to decode.
    Codec(String),
    /// The requested failover target cannot be promoted.
    NotPromotable(String),
    /// Seeding a node from a backup bundle failed (verification,
    /// restore, or the bundle is incompatible with the cluster).
    Seed(String),
}

impl fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicaError::Durable(e) => write!(f, "durability: {e}"),
            ReplicaError::Fenced { epoch, newer } => {
                write!(f, "fenced: this primary's epoch {epoch} was deposed by epoch {newer}")
            }
            ReplicaError::Wedged(why) => write!(f, "replica wedged: {why}"),
            ReplicaError::StaleRead { lag, bound } => {
                write!(f, "stale read: replica lags {lag} LSN(s), bound is {bound}")
            }
            ReplicaError::UnknownReplica(id) => write!(f, "no replica with id {id}"),
            ReplicaError::Codec(msg) => write!(f, "frame codec: {msg}"),
            ReplicaError::NotPromotable(why) => write!(f, "cannot promote: {why}"),
            ReplicaError::Seed(why) => write!(f, "bundle seed failed: {why}"),
        }
    }
}

impl std::error::Error for ReplicaError {}

impl From<DurableError> for ReplicaError {
    fn from(e: DurableError) -> ReplicaError {
        ReplicaError::Durable(e)
    }
}

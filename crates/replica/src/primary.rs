//! The primary: WAL appends, segment shipping, ack tracking, and
//! divergence detection.
//!
//! The primary wraps the existing [`Durability`] manager — every record
//! is appended (and fsynced per its policy) locally first — and mirrors
//! each append into an in-memory **shadow** copy of the state, recording
//! a [`state_digest`] at every LSN. Replica acknowledgements carry the
//! replica's own digest at its applied LSN; a mismatch is **divergence**
//! (same log, different state) and the offending replica is fenced and
//! wedged rather than allowed to drift further.
//!
//! Shipping is pull-free and self-healing: each record ships the unacked
//! tail as one segment (capped per frame), and a replica whose next
//! needed LSN has been pruned from the ship buffer (the primary
//! checkpointed and truncated its WAL) is caught up with a full
//! checkpoint transfer instead.

use annostore::AnnotationStore;
use nebula_durable::checkpoint;
use nebula_durable::segment::{encode_checkpoint_frame, encode_segment};
use nebula_durable::wal::{encode_record, WalOp};
use nebula_durable::{replay_op, state_digest, Durability};
use relstore::Database;
use std::collections::{BTreeMap, VecDeque};

use crate::counters;
use crate::frame::Frame;
use crate::transport::Transport;
use crate::ReplicaError;

/// Records per shipped segment frame.
const SEGMENT_CAP: u64 = 32;
/// Ship rounds to wait before re-shipping a checkpoint to the same peer.
const CKPT_COOLDOWN: u32 = 2;

/// A detected divergence: a replica acknowledged an LSN with a state
/// digest different from the primary's at the same LSN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DivergenceReport {
    /// The offending replica's node id.
    pub replica: usize,
    /// The LSN where the states disagree.
    pub lsn: u64,
    /// The primary's digest at that LSN.
    pub expected: (u32, u32),
    /// The replica's reported digest.
    pub observed: (u32, u32),
    /// The epoch under which the divergence was detected.
    pub epoch: u64,
}

/// One attached replica as the primary sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerRow {
    /// The replica's node id.
    pub id: usize,
    /// Highest LSN the replica has acknowledged.
    pub acked: u64,
    /// Highest LSN shipped toward it.
    pub shipped: u64,
    /// Wedged by divergence detection?
    pub wedged: bool,
}

#[derive(Debug)]
struct PeerTracker {
    acked: u64,
    shipped: u64,
    wedged: bool,
    cooldown: u32,
    /// The peer nacked at our epoch: it cannot use segments (it never
    /// bootstrapped, or its state predates our buffer) and needs the
    /// checkpoint image re-shipped.
    needs_ckpt: bool,
}

/// The replication primary.
#[derive(Debug)]
pub struct Primary {
    node: usize,
    epoch: u64,
    wal: Durability,
    shadow_db: Database,
    shadow_store: AnnotationStore,
    /// Per-LSN shadow digests, pruned below the peers' ack floor.
    digests: BTreeMap<u64, (u32, u32)>,
    /// Encoded records above the checkpoint watermark, ready to ship.
    buffer: VecDeque<(u64, Vec<u8>)>,
    /// Latest checkpoint image (the catch-up payload) and its watermark.
    ckpt_image: Vec<u8>,
    ckpt_watermark: u64,
    peers: BTreeMap<usize, PeerTracker>,
    /// `Some(newer)` once a peer with a newer epoch rejected us.
    fenced: Option<u64>,
    divergences: Vec<DivergenceReport>,
}

impl Primary {
    /// Wrap an open [`Durability`] manager as the primary at `node` under
    /// `epoch`. `db`/`store` must be the state the manager's newest
    /// checkpoint covers (which [`Durability::begin`]/`begin_at` just
    /// wrote); the shadow copy is cloned from them via the checkpoint
    /// codec.
    pub fn new(
        node: usize,
        epoch: u64,
        wal: Durability,
        db: &Database,
        store: &AnnotationStore,
    ) -> Result<Primary, ReplicaError> {
        let ckpt_watermark = wal.watermark();
        let ckpt_image = checkpoint::encode(ckpt_watermark, db, store);
        let (_, shadow_db, shadow_store) = checkpoint::decode(&ckpt_image)?;
        let mut digests = BTreeMap::new();
        if ckpt_watermark > 0 {
            digests.insert(ckpt_watermark, state_digest(&shadow_db, &shadow_store));
        }
        nebula_obs::gauge_set(counters::EPOCH, epoch);
        Ok(Primary {
            node,
            epoch,
            wal,
            shadow_db,
            shadow_store,
            digests,
            buffer: VecDeque::new(),
            ckpt_image,
            ckpt_watermark,
            peers: BTreeMap::new(),
            fenced: None,
            divergences: Vec::new(),
        })
    }

    /// Attach a replica at node `id` and ship it the bootstrap
    /// checkpoint. Idempotent on the tracker; re-ships the image.
    pub fn attach(&mut self, id: usize, t: &mut dyn Transport) {
        self.peers.entry(id).or_insert(PeerTracker {
            acked: 0,
            shipped: 0,
            wedged: false,
            cooldown: 0,
            needs_ckpt: false,
        });
        let frame = Frame::Checkpoint(encode_checkpoint_frame(self.epoch, &self.ckpt_image));
        t.send(self.node, id, frame.encode());
        if let Some(tr) = self.peers.get_mut(&id) {
            tr.shipped = self.ckpt_watermark;
            tr.cooldown = CKPT_COOLDOWN;
        }
        nebula_obs::gauge_set(counters::REPLICAS, self.peers.len() as u64);
    }

    /// Append one operation, mirror it into the shadow, and ship the
    /// unacked tail to every live peer. Returns the assigned LSN.
    ///
    /// Fails with [`ReplicaError::Fenced`] once a newer epoch has been
    /// observed: a deposed primary's writes are rejected, not forked.
    pub fn record(&mut self, op: &WalOp, t: &mut dyn Transport) -> Result<u64, ReplicaError> {
        nebula_obs::trace::note_epoch(self.epoch);
        self.drain(t);
        if let Some(newer) = self.fenced {
            return Err(ReplicaError::Fenced { epoch: self.epoch, newer });
        }
        let lsn = self.wal.append(op)?;
        replay_op(&mut self.shadow_db, &mut self.shadow_store, op)?;
        self.digests.insert(lsn, state_digest(&self.shadow_db, &self.shadow_store));
        self.buffer.push_back((lsn, encode_record(lsn, op)));
        let ids: Vec<usize> = self.peers.keys().copied().collect();
        for id in ids {
            self.ship_to(id, t);
        }
        Ok(lsn)
    }

    /// Drain this primary's inbox — acks, epoch rejections, fences — and
    /// run a catch-up shipping pass over lagging peers.
    pub fn drain(&mut self, t: &mut dyn Transport) {
        while let Some((from, bytes)) = t.recv(self.node) {
            let Ok(frame) = Frame::decode(&bytes) else { continue };
            match frame {
                Frame::Ack { epoch, lsn, digest } => {
                    nebula_obs::counter_add(counters::ACKS, 1);
                    if epoch > self.epoch {
                        self.fence(epoch);
                        continue;
                    }
                    let tspan = nebula_obs::trace::span("repl.ack");
                    if tspan.is_active() {
                        tspan.detail(format!("peer={from} lsn={lsn}"));
                    }
                    self.on_ack(from, lsn, digest, t);
                }
                Frame::Nack { epoch, .. } => {
                    if epoch > self.epoch {
                        self.fence(epoch);
                    } else if let Some(tr) = self.peers.get_mut(&from) {
                        // A same-epoch nack means the peer cannot apply
                        // our segments (e.g. its bootstrap checkpoint was
                        // lost on the wire): re-ship the checkpoint.
                        tr.needs_ckpt = true;
                    }
                }
                Frame::Fence { epoch, .. } => {
                    if epoch > self.epoch {
                        self.fence(epoch);
                    }
                }
                // Bulk payloads are replica-bound; a primary ignores them.
                Frame::Segment(_) | Frame::Checkpoint(_) => {}
            }
        }
        let ids: Vec<usize> = self.peers.keys().copied().collect();
        for id in ids {
            self.ship_to(id, t);
        }
    }

    fn on_ack(&mut self, from: usize, lsn: u64, digest: (u32, u32), t: &mut dyn Transport) {
        // Divergence check: the replica's digest at `lsn` must equal the
        // shadow's. LSN 0 is pre-bootstrap (nothing applied) and LSNs
        // pruned from the digest map are already acked by everyone.
        if lsn > 0 {
            if let Some(&expected) = self.digests.get(&lsn) {
                if expected != digest {
                    let report = DivergenceReport {
                        replica: from,
                        lsn,
                        expected,
                        observed: digest,
                        epoch: self.epoch,
                    };
                    self.divergences.push(report);
                    nebula_obs::counter_add(counters::DIVERGENCES, 1);
                    nebula_obs::trace::flight_event(
                        "divergence",
                        format!("replica={from} lsn={lsn} epoch={}", self.epoch),
                    );
                    nebula_obs::trace::flight_dump("repl.divergence");
                    let fence = Frame::Fence {
                        epoch: self.epoch,
                        reason: format!("state digest mismatch at lsn {lsn}"),
                    };
                    t.send(self.node, from, fence.encode());
                    if let Some(tr) = self.peers.get_mut(&from) {
                        tr.wedged = true;
                    }
                    return;
                }
            }
        }
        if let Some(tr) = self.peers.get_mut(&from) {
            if tr.wedged {
                return;
            }
            tr.acked = tr.acked.max(lsn);
            // Re-ship everything unacked: a dropped segment would
            // otherwise leave `shipped` ahead of the replica forever.
            tr.shipped = tr.acked;
        }
    }

    /// Depose this primary: a peer proved a newer epoch exists. The first
    /// observation is a flight-recorder post-mortem trigger; repeats only
    /// refresh the recorded epoch.
    fn fence(&mut self, newer: u64) {
        if self.fenced.is_none() {
            nebula_obs::trace::flight_event(
                "fence",
                format!("epoch {newer} deposed primary at epoch {}", self.epoch),
            );
            nebula_obs::trace::flight_dump("repl.fenced");
        }
        self.fenced = Some(newer);
    }

    /// Ship the next chunk toward peer `id`: a segment from its unacked
    /// tail, or a checkpoint transfer when the tail was pruned by a local
    /// checkpoint (the replica fell behind the truncated WAL).
    fn ship_to(&mut self, id: usize, t: &mut dyn Transport) {
        let last = self.last_lsn();
        let buffer_front = self.buffer.front().map(|(l, _)| *l);
        let Some(tr) = self.peers.get_mut(&id) else { return };
        if tr.wedged {
            return;
        }
        if tr.shipped >= last && tr.acked < last {
            // Fully shipped but unacknowledged: the tail may have been
            // lost on the wire. Rewind to the ack after a short cooldown
            // so a silent replica is eventually re-fed without flooding.
            if tr.cooldown > 0 {
                tr.cooldown -= 1;
                return;
            }
            tr.shipped = tr.acked;
            tr.cooldown = CKPT_COOLDOWN;
        }
        let start = tr.shipped + 1;
        if start > last && !tr.needs_ckpt {
            return;
        }
        let needs_checkpoint = tr.needs_ckpt || buffer_front.is_none_or(|front| start < front);
        if needs_checkpoint {
            if tr.cooldown > 0 {
                tr.cooldown -= 1;
                return;
            }
            tr.needs_ckpt = false;
            tr.shipped = self.ckpt_watermark;
            tr.cooldown = CKPT_COOLDOWN;
            let frame = Frame::Checkpoint(encode_checkpoint_frame(self.epoch, &self.ckpt_image));
            t.send(self.node, id, frame.encode());
            return;
        }
        let front = buffer_front.unwrap_or(start);
        let end = last.min(start + SEGMENT_CAP - 1);
        let mut bytes = Vec::new();
        for lsn in start..=end {
            let idx = (lsn - front) as usize;
            if let Some((_, rec)) = self.buffer.get(idx) {
                bytes.extend_from_slice(rec);
            }
        }
        let count = (end - start + 1) as u32;
        tr.shipped = end;
        let tspan = nebula_obs::trace::span("repl.ship");
        if tspan.is_active() {
            tspan.detail(format!("peer={id} records={count}"));
        }
        let frame = Frame::Segment(encode_segment(self.epoch, start, count, &bytes));
        t.send(self.node, id, frame.encode());
        drop(tspan);
        nebula_obs::counter_add(counters::SEGMENTS_SHIPPED, 1);
        nebula_obs::counter_add(counters::RECORDS_SHIPPED, u64::from(count));
    }

    /// Checkpoint through the wrapped manager (persist + truncate WAL),
    /// refresh the catch-up image from the shadow, and prune the ship
    /// buffer and digest map.
    pub fn checkpoint(
        &mut self,
        db: &Database,
        store: &AnnotationStore,
    ) -> Result<u64, ReplicaError> {
        let watermark = self.wal.checkpoint(db, store)?;
        // The catch-up image is encoded from the shadow so replica
        // digests stay comparable against the shadow digest chain.
        self.ckpt_image = checkpoint::encode(watermark, &self.shadow_db, &self.shadow_store);
        self.ckpt_watermark = watermark;
        while self.buffer.front().is_some_and(|(l, _)| *l <= watermark) {
            self.buffer.pop_front();
        }
        let floor = self
            .peers
            .values()
            .filter(|tr| !tr.wedged)
            .map(|tr| tr.acked)
            .min()
            .unwrap_or(watermark)
            .min(watermark);
        self.digests.retain(|l, _| *l >= floor);
        Ok(watermark)
    }

    /// The LSN of the most recent append (0 before the first).
    pub fn last_lsn(&self) -> u64 {
        self.wal.next_lsn() - 1
    }

    /// Live (non-wedged) peers that have acknowledged `lsn` or beyond.
    pub fn acks_at(&self, lsn: u64) -> usize {
        self.peers.values().filter(|tr| !tr.wedged && tr.acked >= lsn).count()
    }

    /// Largest acknowledgement lag across live peers, in LSNs (0 with no
    /// live peers).
    pub fn max_lag(&self) -> u64 {
        let last = self.last_lsn();
        self.peers
            .values()
            .filter(|tr| !tr.wedged)
            .map(|tr| last.saturating_sub(tr.acked))
            .max()
            .unwrap_or(0)
    }

    /// Attached peers (wedged included).
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Peers wedged by divergence detection.
    pub fn wedged_count(&self) -> usize {
        self.peers.values().filter(|tr| tr.wedged).count()
    }

    /// Per-peer detail rows for `SHOW REPLICATION`.
    pub fn peer_rows(&self) -> Vec<PeerRow> {
        self.peers
            .iter()
            .map(|(&id, tr)| PeerRow {
                id,
                acked: tr.acked,
                shipped: tr.shipped,
                wedged: tr.wedged,
            })
            .collect()
    }

    /// The highest LSN every live peer has acknowledged.
    pub fn min_acked(&self) -> u64 {
        self.peers
            .values()
            .filter(|tr| !tr.wedged)
            .map(|tr| tr.acked)
            .min()
            .unwrap_or_else(|| self.last_lsn())
    }

    /// This primary's node address.
    pub fn node(&self) -> usize {
        self.node
    }

    /// This primary's fencing epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Has a newer epoch deposed this primary?
    pub fn is_fenced(&self) -> bool {
        self.fenced.is_some()
    }

    /// The epoch that deposed this primary, if any.
    pub fn fenced_by(&self) -> Option<u64> {
        self.fenced
    }

    /// Every divergence detected so far.
    pub fn divergences(&self) -> &[DivergenceReport] {
        &self.divergences
    }

    /// Should the wrapped manager take a checkpoint now?
    pub fn checkpoint_due(&self) -> bool {
        use nebula_core::MutationSink as _;
        self.wal.checkpoint_due()
    }

    /// Flush the wrapped manager's WAL (batch-sync policy).
    pub fn flush(&mut self) -> Result<(), ReplicaError> {
        self.wal.sync().map_err(ReplicaError::from)
    }

    /// The shadow state's digest at the newest LSN.
    pub fn shadow_digest(&self) -> (u32, u32) {
        state_digest(&self.shadow_db, &self.shadow_store)
    }

    /// The primary's per-LSN digest chain (its half of the anti-entropy
    /// ladder).
    pub fn digests(&self) -> &BTreeMap<u64, (u32, u32)> {
        &self.digests
    }

    /// The watermark of the current catch-up checkpoint image.
    pub fn ckpt_watermark(&self) -> u64 {
        self.ckpt_watermark
    }

    /// Refresh the in-memory catch-up image from the shadow at the
    /// current head, without persisting anything. Once checkpoints
    /// truncate the WAL mid-run (the backup archiving path), the durable
    /// image can trail the head by thousands of records; a repair that
    /// re-ships it would then have to replay that whole gap segment by
    /// segment. The shadow *is* the state at the head, so repairs load
    /// it wholesale instead.
    pub fn refresh_catchup_image(&mut self) {
        let head = self.last_lsn();
        self.ckpt_image = checkpoint::encode(head, &self.shadow_db, &self.shadow_store);
        self.ckpt_watermark = head;
    }

    /// Forgive a wedged (diverged) peer after repair: reset its tracker to
    /// the repaired replica's agreed position and force a checkpoint
    /// re-ship so its next state load is wholesale.
    pub fn unwedge_peer(&mut self, id: usize) {
        if let Some(tr) = self.peers.get_mut(&id) {
            tr.wedged = false;
            tr.acked = 0;
            tr.shipped = 0;
            tr.cooldown = 0;
            tr.needs_ckpt = true;
        }
    }

    /// Checkpoint from the shadow state: persist a fresh checkpoint image
    /// and truncated WAL derived from the primary's own mirror of the log.
    /// This rewrites both on-disk artifacts, which is how media rot found
    /// by the scrubber is healed — and, as a checkpoint, it also clears a
    /// wedged WAL manager once its failure domain stopped injecting.
    pub fn checkpoint_from_shadow(&mut self) -> Result<u64, ReplicaError> {
        let Primary {
            wal,
            shadow_db,
            shadow_store,
            ckpt_image,
            ckpt_watermark,
            buffer,
            digests,
            peers,
            ..
        } = self;
        let watermark = wal.checkpoint(shadow_db, shadow_store)?;
        *ckpt_image = checkpoint::encode(watermark, shadow_db, shadow_store);
        *ckpt_watermark = watermark;
        while buffer.front().is_some_and(|(l, _)| *l <= watermark) {
            buffer.pop_front();
        }
        let floor = peers
            .values()
            .filter(|tr| !tr.wedged)
            .map(|tr| tr.acked)
            .min()
            .unwrap_or(watermark)
            .min(watermark);
        digests.retain(|l, _| *l >= floor);
        Ok(watermark)
    }

    /// The shadow state (read-only).
    pub fn shadow(&self) -> (&Database, &AnnotationStore) {
        (&self.shadow_db, &self.shadow_store)
    }

    /// The wrapped durability manager (read-only).
    pub fn wal(&self) -> &Durability {
        &self.wal
    }

    /// Mutable access to the primary's durability manager — the shell
    /// uses this to enable WAL archiving (`SET DURABILITY ... ARCHIVE`)
    /// on a replicated sink.
    pub fn wal_mut(&mut self) -> &mut Durability {
        &mut self.wal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::Replica;
    use crate::transport::SimTransport;
    use annostore::AnnotationId;
    use nebula_durable::DurabilityOptions;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nebula-replica-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn op(n: u64) -> WalOp {
        WalOp::AddAnnotation {
            expected: AnnotationId(n),
            text: format!("note {n}"),
            author: None,
            kind: None,
        }
    }

    fn fresh_primary(tag: &str) -> Primary {
        let db = Database::new();
        let store = AnnotationStore::new();
        let wal =
            Durability::begin(&temp_dir(tag), &db, &store, DurabilityOptions::default()).unwrap();
        Primary::new(0, 1, wal, &db, &store).unwrap()
    }

    fn pump(p: &mut Primary, r: &mut Replica, t: &mut SimTransport, rounds: usize) {
        for _ in 0..rounds {
            while let Some((from, bytes)) = t.recv(r.id()) {
                if let Ok(frame) = Frame::decode(&bytes) {
                    if let Some(reply) = r.handle(&frame) {
                        t.send(r.id(), from, reply.encode());
                    }
                }
            }
            p.drain(t);
        }
    }

    #[test]
    fn records_ship_and_acks_advance_the_tracker() {
        let mut t = SimTransport::reliable(2);
        let mut p = fresh_primary("ship");
        let mut r = Replica::new(1);
        p.attach(1, &mut t);
        for i in 0..5 {
            p.record(&op(i), &mut t).unwrap();
        }
        pump(&mut p, &mut r, &mut t, 3);
        assert_eq!(r.applied(), 5);
        assert_eq!(p.acks_at(5), 1);
        assert_eq!(p.max_lag(), 0);
        assert_eq!(r.digest(), p.shadow_digest());
        assert!(p.divergences().is_empty());
    }

    #[test]
    fn a_lapped_replica_catches_up_via_checkpoint_transfer() {
        let mut t = SimTransport::reliable(3);
        let mut p = fresh_primary("lap");
        let mut r = Replica::new(1);
        p.attach(1, &mut t);
        pump(&mut p, &mut r, &mut t, 2);
        // Cut the link, advance, and checkpoint so the ship buffer is
        // truncated past the replica's position.
        t.set_partitioned(1, true);
        for i in 0..6 {
            p.record(&op(i), &mut t).unwrap();
        }
        let image = checkpoint::encode(0, p.shadow().0, p.shadow().1);
        let (_, db, store) = checkpoint::decode(&image).unwrap();
        p.checkpoint(&db, &store).unwrap();
        assert_eq!(p.last_lsn(), 6);
        t.set_partitioned(1, false);
        pump(&mut p, &mut r, &mut t, 10);
        assert_eq!(r.applied(), 6);
        assert!(r.checkpoint_loads() >= 1, "catch-up must use a checkpoint transfer");
        assert_eq!(r.digest(), p.shadow_digest());
    }

    #[test]
    fn divergent_ack_is_detected_fenced_and_wedged() {
        let mut t = SimTransport::reliable(2);
        let mut p = fresh_primary("diverge");
        let mut r = Replica::new(1);
        p.attach(1, &mut t);
        p.record(&op(0), &mut t).unwrap();
        // Forge a wrong digest at lsn 1.
        t.send(1, 0, Frame::Ack { epoch: 1, lsn: 1, digest: (1, 2) }.encode());
        p.drain(&mut t);
        assert_eq!(p.divergences().len(), 1);
        let d = p.divergences()[0];
        assert_eq!((d.replica, d.lsn), (1, 1));
        assert_eq!(p.wedged_count(), 1);
        // The fence reaches the replica and wedges it.
        pump(&mut p, &mut r, &mut t, 2);
        assert!(r.is_wedged());
    }

    #[test]
    fn a_lost_bootstrap_checkpoint_heals_via_nack() {
        let mut t = SimTransport::reliable(2);
        let mut p = fresh_primary("bootstrap-loss");
        let mut r = Replica::new(1);
        // Attach while the replica is dark: the bootstrap checkpoint is
        // blackholed, leaving the replica uninitialized.
        t.set_partitioned(1, true);
        p.attach(1, &mut t);
        t.set_partitioned(1, false);
        for i in 0..4 {
            p.record(&op(i), &mut t).unwrap();
        }
        // Segments reach an uninitialized replica: it nacks, the primary
        // re-ships its checkpoint, and replay then proceeds normally.
        pump(&mut p, &mut r, &mut t, 12);
        assert_eq!(r.applied(), 4, "replica must converge after losing its bootstrap");
        assert!(!r.is_wedged());
        assert!(r.checkpoint_loads() >= 1, "healing must go through a checkpoint re-ship");
        assert_eq!(r.digest(), p.shadow_digest());
        assert_eq!(p.acks_at(4), 1);
        assert!(p.divergences().is_empty());
    }

    #[test]
    fn a_newer_epoch_fences_the_primary() {
        let mut t = SimTransport::reliable(2);
        let mut p = fresh_primary("fence");
        p.attach(1, &mut t);
        p.record(&op(0), &mut t).unwrap();
        t.send(1, 0, Frame::Nack { epoch: 2, lsn: 1 }.encode());
        assert!(matches!(
            p.record(&op(1), &mut t),
            Err(ReplicaError::Fenced { epoch: 1, newer: 2 })
        ));
        assert!(p.is_fenced());
    }
}

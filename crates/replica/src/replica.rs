//! The replica state machine.
//!
//! A replica holds a full copy of the relational and annotation stores
//! and advances it by replaying shipped WAL segments through the same
//! idempotent [`replay_op`] path crash recovery uses — so a replica's
//! state at LSN `n` is byte-identical to a primary recovered at `n`.
//!
//! Replay is **exactly-once** in effect under an at-least-once transport:
//! records at or below the applied watermark are counted as skipped
//! duplicates, a gap stops replay (the primary re-ships from the ack),
//! and `records_replayed + applied_via_checkpoint == applied` holds
//! whenever history has not been rewritten under the replica by a
//! higher-epoch checkpoint.

use annostore::AnnotationStore;
use nebula_durable::checkpoint;
use nebula_durable::segment::{decode_checkpoint_frame, decode_segment};
use nebula_durable::{replay_op, state_digest};
use relstore::Database;
use std::collections::BTreeMap;

use crate::counters;
use crate::frame::Frame;
use crate::ReplicaError;

/// Most per-LSN digests a replica retains for the anti-entropy ladder.
const DIGEST_KEEP: usize = 4096;

/// One replica: a node id, an epoch, and a replayed copy of the state.
#[derive(Debug)]
pub struct Replica {
    id: usize,
    epoch: u64,
    db: Database,
    store: AnnotationStore,
    applied: u64,
    /// Has any checkpoint transfer landed? Until one does, this replica
    /// has no base state to replay onto, so segments are nacked rather
    /// than replayed (losing the bootstrap checkpoint to the wire must
    /// not wedge the replica forever).
    initialized: bool,
    wedged: Option<String>,
    records_replayed: u64,
    records_skipped: u64,
    applied_via_checkpoint: u64,
    checkpoint_loads: u64,
    /// Per-LSN state digests (bounded), the replica's half of the
    /// anti-entropy range-digest ladder.
    digests: BTreeMap<u64, (u32, u32)>,
    /// Suffix LSNs discarded by repair resyncs (divergence depth total).
    rewound: u64,
}

impl Replica {
    /// An empty replica at node `id`, epoch 0, nothing applied. It
    /// bootstraps from the first checkpoint transfer the primary ships.
    pub fn new(id: usize) -> Replica {
        Replica {
            id,
            epoch: 0,
            db: Database::new(),
            store: AnnotationStore::new(),
            applied: 0,
            initialized: false,
            wedged: None,
            records_replayed: 0,
            records_skipped: 0,
            applied_via_checkpoint: 0,
            checkpoint_loads: 0,
            digests: BTreeMap::new(),
            rewound: 0,
        }
    }

    /// A replica pre-seeded from a restored backup bundle: already
    /// initialized at `applied` under `epoch`, so it cold-starts without
    /// a checkpoint transfer from the primary — the bundle provides the
    /// bulk of the state, the primary only ships the delta past it.
    pub fn seed(
        id: usize,
        db: Database,
        store: AnnotationStore,
        applied: u64,
        epoch: u64,
    ) -> Replica {
        let mut r = Replica {
            id,
            epoch,
            db,
            store,
            applied,
            initialized: true,
            wedged: None,
            records_replayed: 0,
            records_skipped: 0,
            // The seeded prefix is accounted like a checkpoint load so
            // `records_replayed + applied_via_checkpoint == applied`
            // keeps holding.
            applied_via_checkpoint: applied,
            checkpoint_loads: 0,
            digests: BTreeMap::new(),
            rewound: 0,
        };
        r.note_digest(applied);
        r
    }

    /// Record the current state digest at `lsn`, bounded to
    /// [`DIGEST_KEEP`] entries.
    fn note_digest(&mut self, lsn: u64) {
        self.digests.insert(lsn, state_digest(&self.db, &self.store));
        while self.digests.len() > DIGEST_KEEP {
            self.digests.pop_first();
        }
    }

    /// Handle one inbound frame; returns the reply to send back to the
    /// sender, if any. A wedged replica answers nothing.
    pub fn handle(&mut self, frame: &Frame) -> Option<Frame> {
        if self.wedged.is_some() {
            // Only a fence is meaningful now, and we are already down.
            return None;
        }
        match frame {
            Frame::Segment(bytes) => self.handle_segment(bytes),
            Frame::Checkpoint(bytes) => self.handle_checkpoint(bytes),
            Frame::Fence { epoch, reason } => {
                if *epoch >= self.epoch {
                    self.wedged = Some(format!("fenced at epoch {epoch}: {reason}"));
                }
                None
            }
            // Control frames addressed to primaries; ignore.
            Frame::Ack { .. } | Frame::Nack { .. } => None,
        }
    }

    fn handle_segment(&mut self, bytes: &[u8]) -> Option<Frame> {
        let seg = match decode_segment(bytes) {
            Ok(seg) => seg,
            // A frame mangled on the wire is just loss; report progress
            // so the primary re-ships.
            Err(_) => return Some(self.ack()),
        };
        if seg.epoch < self.epoch {
            nebula_obs::counter_add(counters::EPOCH_REJECTIONS, 1);
            return Some(Frame::Nack { epoch: self.epoch, lsn: self.applied });
        }
        if !self.initialized {
            // The bootstrap checkpoint never arrived (lost on the wire):
            // there is no base state to replay onto. Nack so the primary
            // re-ships its checkpoint instead of more segments.
            return Some(Frame::Nack { epoch: self.epoch, lsn: self.applied });
        }
        self.epoch = seg.epoch;
        for rec in &seg.records {
            if rec.lsn <= self.applied {
                self.records_skipped += 1;
                nebula_obs::counter_add(counters::RECORDS_SKIPPED, 1);
                continue;
            }
            if rec.lsn != self.applied + 1 {
                // A gap: stop and ack what we have; the primary re-ships
                // from our ack.
                break;
            }
            if let Err(e) = replay_op(&mut self.db, &mut self.store, &rec.op) {
                self.wedged = Some(format!("replay failed at lsn {}: {e}", rec.lsn));
                return None;
            }
            self.applied = rec.lsn;
            self.records_replayed += 1;
            self.note_digest(rec.lsn);
            nebula_obs::counter_add(counters::RECORDS_REPLAYED, 1);
        }
        Some(self.ack())
    }

    fn handle_checkpoint(&mut self, bytes: &[u8]) -> Option<Frame> {
        let frame = match decode_checkpoint_frame(bytes) {
            Ok(f) => f,
            Err(_) => return Some(self.ack()),
        };
        if frame.epoch < self.epoch {
            nebula_obs::counter_add(counters::EPOCH_REJECTIONS, 1);
            return Some(Frame::Nack { epoch: self.epoch, lsn: self.applied });
        }
        // Load when it moves us forward, or unconditionally when a newer
        // epoch rewrites history under us (a fork we must discard).
        let rewrite = frame.epoch > self.epoch;
        let (watermark, db, store) = match checkpoint::decode(&frame.image) {
            Ok(parts) => parts,
            Err(_) => return Some(self.ack()),
        };
        if rewrite || watermark >= self.applied || !self.initialized {
            self.applied_via_checkpoint += watermark.saturating_sub(self.applied);
            self.db = db;
            self.store = store;
            self.applied = watermark;
            self.initialized = true;
            self.checkpoint_loads += 1;
            // A rewrite replaces history under us: old-epoch digests no
            // longer describe this chain. A same-epoch load invalidates
            // anything past the loaded watermark.
            if rewrite {
                self.digests.clear();
            } else {
                self.digests.retain(|l, _| *l < watermark);
            }
            if watermark > 0 {
                self.note_digest(watermark);
            }
            nebula_obs::counter_add(counters::CATCHUP_CHECKPOINTS, 1);
        }
        self.epoch = frame.epoch;
        Some(self.ack())
    }

    fn ack(&self) -> Frame {
        Frame::Ack {
            epoch: self.epoch,
            lsn: self.applied,
            digest: state_digest(&self.db, &self.store),
        }
    }

    /// A bounded-staleness read: runs `f` over the replica state if this
    /// replica is live and within `bound` LSNs of `primary_lsn`.
    pub fn read<T>(
        &self,
        primary_lsn: u64,
        bound: u64,
        f: impl FnOnce(&Database, &AnnotationStore) -> T,
    ) -> Result<T, ReplicaError> {
        if let Some(why) = &self.wedged {
            return Err(ReplicaError::Wedged(why.clone()));
        }
        let lag = primary_lsn.saturating_sub(self.applied);
        if lag > bound {
            return Err(ReplicaError::StaleRead { lag, bound });
        }
        Ok(f(&self.db, &self.store))
    }

    /// This replica's node id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The epoch this replica last adopted.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Highest contiguously applied LSN.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Is this replica wedged (fenced or failed replay)?
    pub fn is_wedged(&self) -> bool {
        self.wedged.is_some()
    }

    /// Why the replica is wedged, if it is.
    pub fn wedge_reason(&self) -> Option<&str> {
        self.wedged.as_deref()
    }

    /// `nebula_durable::state_digest` of the current replica state.
    pub fn digest(&self) -> (u32, u32) {
        state_digest(&self.db, &self.store)
    }

    /// The replica's relational store (read-only).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The replica's annotation store (read-only).
    pub fn store(&self) -> &AnnotationStore {
        &self.store
    }

    /// Records replayed one-by-one from shipped segments.
    pub fn records_replayed(&self) -> u64 {
        self.records_replayed
    }

    /// Duplicate records skipped (at-least-once transport, exactly-once
    /// effect).
    pub fn records_skipped(&self) -> u64 {
        self.records_skipped
    }

    /// LSNs covered by checkpoint transfers instead of replay.
    pub fn applied_via_checkpoint(&self) -> u64 {
        self.applied_via_checkpoint
    }

    /// Checkpoint transfers loaded.
    pub fn checkpoint_loads(&self) -> u64 {
        self.checkpoint_loads
    }

    /// Consume the replica, yielding its state — promotion hands these to
    /// the new primary's WAL.
    pub fn into_state(self) -> (Database, AnnotationStore, u64, u64) {
        (self.db, self.store, self.applied, self.epoch)
    }

    /// The replica's per-LSN digest chain (its half of the anti-entropy
    /// ladder).
    pub fn digests(&self) -> &BTreeMap<u64, (u32, u32)> {
        &self.digests
    }

    /// Total suffix LSNs this replica has discarded across repair resyncs.
    pub fn rewound(&self) -> u64 {
        self.rewound
    }

    /// Rewind this replica to the last LSN it provably agreed on with the
    /// primary and arm it for a wholesale resync: the digest suffix past
    /// `agreed` is truncated, the wedge (if any) is cleared, and the
    /// replica is de-initialized so the next checkpoint transfer replaces
    /// its state outright instead of being skipped as stale. Returns the
    /// number of suffix LSNs discarded.
    pub fn prepare_resync(&mut self, agreed: u64) -> u64 {
        let discarded = self.applied.saturating_sub(agreed);
        self.digests.retain(|l, _| *l <= agreed);
        self.applied = agreed;
        self.initialized = false;
        self.wedged = None;
        self.rewound += discarded;
        discarded
    }

    /// Deterministically corrupt this replica's in-memory state (a phantom
    /// annotation the primary never logged) and refresh its digest at the
    /// applied LSN — the chaos nemesis's stand-in for silent memory or
    /// replay corruption. The next ack carries the poisoned digest, so
    /// divergence detection must fire.
    pub fn chaos_corrupt(&mut self) {
        self.store.add_annotation(annostore::Annotation::new("chaos: phantom annotation"));
        if self.applied > 0 {
            let d = state_digest(&self.db, &self.store);
            self.digests.insert(self.applied, d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use annostore::AnnotationId;
    use nebula_durable::segment::{encode_checkpoint_frame, encode_segment};
    use nebula_durable::wal::{encode_record, WalOp};

    fn op(n: u64) -> WalOp {
        WalOp::AddAnnotation {
            expected: AnnotationId(n),
            text: format!("note {n}"),
            author: None,
            kind: None,
        }
    }

    fn segment(epoch: u64, base: u64, ids: &[u64]) -> Frame {
        let mut bytes = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            bytes.extend_from_slice(&encode_record(base + i as u64, &op(*id)));
        }
        Frame::Segment(encode_segment(epoch, base, ids.len() as u32, &bytes))
    }

    /// A replica bootstrapped from an empty checkpoint at watermark 0,
    /// ready to replay segments from LSN 1.
    fn bootstrapped(id: usize, epoch: u64) -> Replica {
        let image = checkpoint::encode(0, &Database::new(), &AnnotationStore::new());
        let mut r = Replica::new(id);
        r.handle(&Frame::Checkpoint(encode_checkpoint_frame(epoch, &image)));
        r
    }

    #[test]
    fn uninitialized_replica_nacks_segments_until_a_checkpoint_lands() {
        let mut r = Replica::new(1);
        // The bootstrap checkpoint was lost on the wire: segments must be
        // nacked (not replayed onto a missing base state, not a wedge).
        let reply = r.handle(&segment(1, 1, &[0])).unwrap();
        assert!(matches!(reply, Frame::Nack { lsn: 0, .. }), "{reply:?}");
        assert_eq!(r.applied(), 0);
        assert!(!r.is_wedged());
        // Once a checkpoint lands, the same segment replays normally.
        let image = checkpoint::encode(0, &Database::new(), &AnnotationStore::new());
        r.handle(&Frame::Checkpoint(encode_checkpoint_frame(1, &image)));
        let reply = r.handle(&segment(1, 1, &[0])).unwrap();
        assert!(matches!(reply, Frame::Ack { lsn: 1, .. }), "{reply:?}");
    }

    #[test]
    fn replays_in_order_and_skips_duplicates() {
        let mut r = bootstrapped(1, 1);
        let reply = r.handle(&segment(1, 1, &[0, 1])).unwrap();
        assert!(matches!(reply, Frame::Ack { lsn: 2, .. }));
        // The same segment again: both records are duplicates.
        r.handle(&segment(1, 1, &[0, 1]));
        assert_eq!(r.records_replayed(), 2);
        assert_eq!(r.records_skipped(), 2);
        assert_eq!(r.applied(), 2);
    }

    #[test]
    fn a_gap_stops_replay_and_acks_progress() {
        let mut r = bootstrapped(1, 1);
        r.handle(&segment(1, 1, &[0]));
        let reply = r.handle(&segment(1, 3, &[2, 3])).unwrap();
        assert!(matches!(reply, Frame::Ack { lsn: 1, .. }), "gap must not be applied");
        assert_eq!(r.applied(), 1);
    }

    #[test]
    fn stale_epoch_segments_are_nacked() {
        let mut r = bootstrapped(1, 3);
        r.handle(&segment(3, 1, &[0]));
        let reply = r.handle(&segment(2, 2, &[1])).unwrap();
        assert!(matches!(reply, Frame::Nack { epoch: 3, lsn: 1 }));
        assert_eq!(r.applied(), 1, "stale-epoch records must not apply");
    }

    #[test]
    fn checkpoint_bootstrap_then_segments() {
        let mut db = Database::new();
        let mut store = AnnotationStore::new();
        for i in 0..3 {
            replay_op(&mut db, &mut store, &op(i)).unwrap();
        }
        let image = checkpoint::encode(3, &db, &store);
        let mut r = Replica::new(2);
        r.handle(&Frame::Checkpoint(encode_checkpoint_frame(1, &image)));
        assert_eq!(r.applied(), 3);
        assert_eq!(r.applied_via_checkpoint(), 3);
        r.handle(&segment(1, 4, &[3]));
        assert_eq!(r.applied(), 4);
        assert_eq!(r.records_replayed() + r.applied_via_checkpoint(), r.applied());
    }

    #[test]
    fn fence_wedges_and_reads_are_refused() {
        let mut r = bootstrapped(1, 1);
        r.handle(&segment(1, 1, &[0]));
        assert!(r.read(1, 0, |_, s| s.annotation_count()).is_ok());
        assert!(matches!(
            r.read(5, 2, |_, s| s.annotation_count()),
            Err(ReplicaError::StaleRead { lag: 4, bound: 2 })
        ));
        r.handle(&Frame::Fence { epoch: 1, reason: "diverged".into() });
        assert!(r.is_wedged());
        assert!(matches!(r.read(1, 10, |_, _| ()), Err(ReplicaError::Wedged(_))));
        assert!(r.handle(&segment(1, 2, &[1])).is_none(), "wedged replicas stay silent");
    }
}

//! The deterministic chaos nemesis: a seeded schedule composer.
//!
//! A nemesis run interleaves every fault dimension the stack already has —
//! crash/overload pressure (ingest bursts), network partitions, in-memory
//! replica corruption, on-disk bit-rot, and failovers — into one soak
//! schedule. The composer is **pure**: same seed, same schedule, no clock
//! and no I/O. The driver (tests/chaos.rs, the bench harness) executes the
//! events against a live [`crate::Cluster`] and asserts that the cluster
//! reconverges byte-identically afterwards, with nothing lost or
//! duplicated.
//!
//! Schedules are self-closing by construction: every `Partition` is
//! followed by a matching `Heal`, every disruption is eventually followed
//! by a `Scrub` (which repairs what it finds), and the schedule ends with
//! heal-everything / rejoin-everyone / scrub — so a run that does *not*
//! converge indicates a repair bug, never an unfinished schedule.

/// One step of a nemesis schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NemesisEvent {
    /// Ingest the next `n` annotations through the cluster.
    Ingest(u32),
    /// Cut every transport link to `node`.
    Partition {
        /// The node to isolate.
        node: usize,
    },
    /// Restore every transport link to `node`.
    Heal {
        /// The node to reconnect.
        node: usize,
    },
    /// Corrupt replica `replica`'s in-memory state
    /// ([`crate::Replica::chaos_corrupt`]).
    Corrupt {
        /// The replica to poison.
        replica: usize,
    },
    /// Roll the seeded bit-rot sites against the primary's durability
    /// directory ([`nebula_durable::inject_rot`]).
    BitRot,
    /// Run an anti-entropy scrub and repair everything it finds.
    Scrub,
    /// Quiesce, then promote the best failover candidate (epoch bump;
    /// the old primary is deposed).
    Failover,
    /// Re-admit every deposed primary as a replica of the current epoch.
    Rejoin,
    /// Ingest `n` annotations as one unthrottled burst (overload
    /// pressure for the admission-control path).
    Burst(u32),
    /// Cut every scatter-gather link to `shard` of a sharded cluster
    /// (probes time out; the shard's breaker trips; ingest degrades to
    /// typed partial results).
    ShardPartition {
        /// The shard to isolate.
        shard: usize,
    },
    /// Restore the links to `shard` and replay its missed batches.
    ShardHeal {
        /// The shard to reconnect.
        shard: usize,
    },
    /// Corrupt a single shard's replica state; the next `Scrub` must
    /// localize and repair it.
    ShardBitRot {
        /// The shard to poison.
        shard: usize,
    },
    /// Crash `shard` and promote a replacement rebuilt from the durable
    /// history under a bumped fencing epoch.
    ShardFailover {
        /// The shard to crash and rebuild.
        shard: usize,
    },
    /// Flip one at-rest bit in the paged store's page file. The `Scrub`
    /// that follows must detect it with zero false positives and heal it
    /// in place (single-bit rot corrects via CRC linearity).
    PageRot,
    /// Flush the paged store while `PageFsync`/`PageWrite` faults are
    /// armed: the failed shadow commit must leave the old on-disk image
    /// intact, and the retry after the plan clears must land every page.
    PageFsyncFail,
    /// Sweep every live record in the paged store through a buffer pool
    /// smaller than the file, driving the clock hand through full
    /// eviction churn while reads stay byte-correct.
    EvictStorm,
    /// Checkpoint the primary's log (sealing the live WAL run into the
    /// archive) and capture a verified bundle, recording the state digest
    /// at the bundle's head LSN for a later [`NemesisEvent::RestoreCheck`].
    Backup,
    /// Flip at-rest bits in the archived history (the seeded
    /// `ArchiveRot` site). The [`NemesisEvent::BackupScrub`] that follows
    /// must find every flip before any restore trusts the files.
    ArchiveRot,
    /// Re-derive every digest in the archive and the newest bundle; the
    /// driver asserts the scrub finds exactly the injected rot (100%
    /// detection, zero false positives) and re-captures a clean bundle.
    BackupScrub,
    /// Restore the most recent clean bundle into a scratch engine and
    /// assert its digest matches the one recorded at capture time —
    /// point-in-time recovery proven mid-soak, not just at the end.
    RestoreCheck,
}

/// A composed schedule plus the seed that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NemesisPlan {
    /// The composing seed.
    pub seed: u64,
    /// Replica count the schedule was composed for.
    pub replicas: usize,
    /// Shard count the schedule was composed for (0 = unsharded; no
    /// shard events are composed).
    pub shards: usize,
    /// Whether the disk dimension (page rot, fsync failure, eviction
    /// storms against a paged store) was composed in.
    pub disk: bool,
    /// Whether the backup dimension (bundle capture, archive rot,
    /// backup scrub, restore checks) was composed in.
    pub backup: bool,
    /// Total annotations across all `Ingest`/`Burst` events.
    pub total_ops: u64,
    /// The schedule, in execution order.
    pub events: Vec<NemesisEvent>,
}

impl NemesisPlan {
    /// How many events of each disruptive kind the plan holds, for
    /// asserting a soak actually exercised every dimension.
    pub fn disruption_counts(&self) -> (usize, usize, usize, usize, usize) {
        let mut partitions = 0;
        let mut corruptions = 0;
        let mut rots = 0;
        let mut failovers = 0;
        let mut bursts = 0;
        for e in &self.events {
            match e {
                NemesisEvent::Partition { .. } => partitions += 1,
                NemesisEvent::Corrupt { .. } => corruptions += 1,
                NemesisEvent::BitRot => rots += 1,
                NemesisEvent::Failover => failovers += 1,
                NemesisEvent::Burst(_) => bursts += 1,
                _ => {}
            }
        }
        (partitions, corruptions, rots, failovers, bursts)
    }

    /// How many shard-dimension disruptions the plan holds:
    /// `(shard_partitions, shard_rots, shard_failovers)`.
    pub fn shard_disruption_counts(&self) -> (usize, usize, usize) {
        let mut partitions = 0;
        let mut rots = 0;
        let mut failovers = 0;
        for e in &self.events {
            match e {
                NemesisEvent::ShardPartition { .. } => partitions += 1,
                NemesisEvent::ShardBitRot { .. } => rots += 1,
                NemesisEvent::ShardFailover { .. } => failovers += 1,
                _ => {}
            }
        }
        (partitions, rots, failovers)
    }

    /// How many backup-dimension events the plan holds:
    /// `(backups, archive_rots, backup_scrubs, restore_checks)`.
    pub fn backup_disruption_counts(&self) -> (usize, usize, usize, usize) {
        let mut backups = 0;
        let mut rots = 0;
        let mut scrubs = 0;
        let mut checks = 0;
        for e in &self.events {
            match e {
                NemesisEvent::Backup => backups += 1,
                NemesisEvent::ArchiveRot => rots += 1,
                NemesisEvent::BackupScrub => scrubs += 1,
                NemesisEvent::RestoreCheck => checks += 1,
                _ => {}
            }
        }
        (backups, rots, scrubs, checks)
    }

    /// How many disk-dimension disruptions the plan holds:
    /// `(page_rots, fsync_fails, evict_storms)`.
    pub fn disk_disruption_counts(&self) -> (usize, usize, usize) {
        let mut rots = 0;
        let mut fsyncs = 0;
        let mut storms = 0;
        for e in &self.events {
            match e {
                NemesisEvent::PageRot => rots += 1,
                NemesisEvent::PageFsyncFail => fsyncs += 1,
                NemesisEvent::EvictStorm => storms += 1,
                _ => {}
            }
        }
        (rots, fsyncs, storms)
    }
}

/// xorshift64* — the same tiny deterministic generator the fault plans
/// use, reimplemented here so the composer stays clock- and plan-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Compose a deterministic chaos schedule for a cluster with `replicas`
/// replicas, ingesting `total_ops` annotations in all. Pure: same inputs,
/// same schedule. Equivalent to
/// [`compose_schedule_with_shards`]`(seed, replicas, 0, total_ops)`.
pub fn compose_schedule(seed: u64, replicas: usize, total_ops: u64) -> NemesisPlan {
    compose_schedule_with_shards(seed, replicas, 0, total_ops)
}

/// Compose a deterministic chaos schedule that also disrupts a sharded
/// engine: with `shards > 0` the event dimensions grow by shard
/// partition/heal pairs, single-shard bit-rot, and epoch-fenced shard
/// failovers. With `shards == 0` the schedule is byte-identical to
/// [`compose_schedule`]'s. Pure and self-closing either way: every
/// `ShardPartition` is healed, every disruption is followed by a `Scrub`,
/// and the schedule ends heal-everything / rejoin / scrub. Equivalent to
/// [`compose_schedule_with_disk`]`(seed, replicas, shards, false,
/// total_ops)`.
pub fn compose_schedule_with_shards(
    seed: u64,
    replicas: usize,
    shards: usize,
    total_ops: u64,
) -> NemesisPlan {
    compose_schedule_with_disk(seed, replicas, shards, false, total_ops)
}

/// Compose a deterministic chaos schedule that also disrupts the paged
/// storage layer: with `disk = true` the event dimensions grow by
/// at-rest page rot, fsync-failed shadow commits, and eviction storms.
/// Every `PageRot` is followed by a `Scrub` (which must heal it), so the
/// schedule stays self-closing; with `disk = false` the schedule is
/// byte-identical to [`compose_schedule_with_shards`]'s. Equivalent to
/// [`compose_schedule_with_backup`]`(seed, replicas, shards, disk,
/// false, total_ops)`.
pub fn compose_schedule_with_disk(
    seed: u64,
    replicas: usize,
    shards: usize,
    disk: bool,
    total_ops: u64,
) -> NemesisPlan {
    compose_schedule_with_backup(seed, replicas, shards, disk, false, total_ops)
}

/// Compose a deterministic chaos schedule that also exercises disaster
/// recovery: with `backup = true` the event dimensions grow by bundle
/// captures, at-rest archive rot, backup scrubs, and mid-soak restore
/// checks. Self-closing rules: the rot and restore slots compose a
/// `Backup` first if none exists yet, every `ArchiveRot` is followed by a
/// `BackupScrub`, and a schedule that captured any bundle ends with a
/// final `BackupScrub` + `RestoreCheck` after convergence. With
/// `backup = false` the schedule is byte-identical to
/// [`compose_schedule_with_disk`]'s.
pub fn compose_schedule_with_backup(
    seed: u64,
    replicas: usize,
    shards: usize,
    disk: bool,
    backup: bool,
    total_ops: u64,
) -> NemesisPlan {
    let mut rng = Rng(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut events = Vec::new();
    let mut remaining = total_ops;
    let mut open_partition: Option<usize> = None;
    let mut open_shard: Option<usize> = None;
    let mut deposed_pending = false;
    let mut backup_taken = false;
    // Dimension layout: 0..8 core, then 3 shard dims when sharded, then
    // 3 disk dims when paged, then 3 backup dims when archiving. Keeping
    // the earlier indices fixed is what makes each flag's `false` case
    // byte-identical to the older composers.
    let base_dims: u64 = if shards > 0 { 11 } else { 8 };
    let disk_dims = base_dims + if disk { 3 } else { 0 };
    let dims = disk_dims + if backup { 3 } else { 0 };

    // Reserve a calm tail so the final convergence runs over real traffic.
    let tail = (total_ops / 10).clamp(10, 50).min(total_ops);
    while remaining > tail {
        let chunk = (20 + rng.below(41)).min(remaining - tail) as u32;
        events.push(NemesisEvent::Ingest(chunk));
        remaining -= u64::from(chunk);
        if remaining <= tail {
            break;
        }
        match rng.below(dims) {
            0 | 1 => {
                // Partition a replica for the next chunk, then heal it.
                if open_partition.is_none() && replicas > 0 {
                    let node = 1 + rng.below(replicas as u64) as usize;
                    events.push(NemesisEvent::Partition { node });
                    open_partition = Some(node);
                } else if let Some(node) = open_partition.take() {
                    events.push(NemesisEvent::Heal { node });
                    events.push(NemesisEvent::Scrub);
                }
            }
            2 if replicas > 0 => {
                let replica = 1 + rng.below(replicas as u64) as usize;
                // Never poison the partitioned node: its divergence
                // would go undetected until after the heal, crossing
                // wires with the partition's own repair.
                if open_partition != Some(replica) {
                    events.push(NemesisEvent::Corrupt { replica });
                    events.push(NemesisEvent::Scrub);
                }
            }
            3 => {
                events.push(NemesisEvent::BitRot);
                events.push(NemesisEvent::Scrub);
            }
            4 => {
                // A failover needs every link up to quiesce cleanly.
                if let Some(node) = open_partition.take() {
                    events.push(NemesisEvent::Heal { node });
                }
                events.push(NemesisEvent::Failover);
                deposed_pending = true;
            }
            5 if deposed_pending => {
                events.push(NemesisEvent::Rejoin);
                deposed_pending = false;
            }
            6 => {
                let n = (30 + rng.below(31)).min(remaining - tail) as u32;
                if n > 0 {
                    events.push(NemesisEvent::Burst(n));
                    remaining -= u64::from(n);
                }
            }
            // A single-shard cluster has no inter-shard links to cut, so
            // partitions only compose at shards >= 2.
            8 | 9 if shards > 1 => {
                // Partition a shard for the next chunk, then heal it.
                if open_shard.is_none() {
                    let shard = rng.below(shards as u64) as usize;
                    events.push(NemesisEvent::ShardPartition { shard });
                    open_shard = Some(shard);
                } else if let Some(shard) = open_shard.take() {
                    events.push(NemesisEvent::ShardHeal { shard });
                    events.push(NemesisEvent::Scrub);
                }
            }
            10 if shards > 0 => {
                let shard = rng.below(shards as u64) as usize;
                if rng.below(2) == 0 {
                    // Never poison the partitioned shard: its missed
                    // batches and its rot would tangle the same repair.
                    if open_shard != Some(shard) {
                        events.push(NemesisEvent::ShardBitRot { shard });
                        events.push(NemesisEvent::Scrub);
                    }
                } else {
                    // A shard failover rebuilds from the durable history;
                    // heal first so the replay fabric is fully connected.
                    if let Some(open) = open_shard.take() {
                        events.push(NemesisEvent::ShardHeal { shard: open });
                    }
                    events.push(NemesisEvent::ShardFailover { shard });
                }
            }
            n if disk && n == base_dims => {
                events.push(NemesisEvent::PageRot);
                events.push(NemesisEvent::Scrub);
            }
            n if disk && n == base_dims + 1 => {
                events.push(NemesisEvent::PageFsyncFail);
            }
            n if disk && n == base_dims + 2 => {
                events.push(NemesisEvent::EvictStorm);
            }
            n if backup && n == disk_dims => {
                events.push(NemesisEvent::Backup);
                backup_taken = true;
            }
            n if backup && n == disk_dims + 1 => {
                // Rot needs archived bytes to damage; capture first.
                if !backup_taken {
                    events.push(NemesisEvent::Backup);
                    backup_taken = true;
                }
                events.push(NemesisEvent::ArchiveRot);
                events.push(NemesisEvent::BackupScrub);
            }
            n if backup && n == disk_dims + 2 => {
                if !backup_taken {
                    events.push(NemesisEvent::Backup);
                    backup_taken = true;
                }
                events.push(NemesisEvent::RestoreCheck);
            }
            _ => {} // calm stretch
        }
    }

    // Close the schedule: heal, re-admit, scrub, and drain the tail.
    if let Some(node) = open_partition.take() {
        events.push(NemesisEvent::Heal { node });
    }
    if let Some(shard) = open_shard.take() {
        events.push(NemesisEvent::ShardHeal { shard });
    }
    events.push(NemesisEvent::Rejoin);
    events.push(NemesisEvent::Scrub);
    if remaining > 0 {
        events.push(NemesisEvent::Ingest(remaining as u32));
    }
    events.push(NemesisEvent::Scrub);
    // A soak that captured any bundle proves recovery end-to-end: scrub
    // the archive one last time, then restore and compare digests.
    if backup && backup_taken {
        events.push(NemesisEvent::BackupScrub);
        events.push(NemesisEvent::RestoreCheck);
    }

    NemesisPlan { seed, replicas, shards, disk, backup, total_ops, events }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = compose_schedule(0xF00D, 2, 500);
        let b = compose_schedule(0xF00D, 2, 500);
        assert_eq!(a, b);
        let c = compose_schedule(0xF00E, 2, 500);
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn ingest_totals_are_exact() {
        for seed in [1u64, 0xF00D, 0xBAD5EED, 12345] {
            let plan = compose_schedule(seed, 3, 500);
            let total: u64 = plan
                .events
                .iter()
                .map(|e| match e {
                    NemesisEvent::Ingest(n) | NemesisEvent::Burst(n) => u64::from(*n),
                    _ => 0,
                })
                .sum();
            assert_eq!(total, 500, "seed {seed:#x}");
        }
    }

    #[test]
    fn partitions_are_always_healed_and_schedule_self_closes() {
        for seed in [7u64, 0xF00D, 0xBAD5EED, 12345, 999] {
            let plan = compose_schedule(seed, 2, 600);
            let mut open: Option<usize> = None;
            for e in &plan.events {
                match e {
                    NemesisEvent::Partition { node } => {
                        assert!(open.is_none(), "seed {seed:#x}: overlapping partitions");
                        open = Some(*node);
                    }
                    NemesisEvent::Heal { node } => {
                        assert_eq!(open, Some(*node), "seed {seed:#x}: heal without partition");
                        open = None;
                    }
                    NemesisEvent::Failover => {
                        assert!(open.is_none(), "seed {seed:#x}: failover under partition");
                    }
                    _ => {}
                }
            }
            assert!(open.is_none(), "seed {seed:#x}: schedule ends partitioned");
            // Every schedule ends with rejoin + scrub before/after the tail.
            assert!(plan.events.iter().any(|e| matches!(e, NemesisEvent::Rejoin)));
            assert!(matches!(plan.events.last(), Some(NemesisEvent::Scrub)));
        }
    }

    #[test]
    fn unsharded_schedule_is_identical_through_both_entry_points() {
        for seed in [1u64, 0xF00D, 0xBAD5EED] {
            let a = compose_schedule(seed, 2, 600);
            let b = compose_schedule_with_shards(seed, 2, 0, 600);
            assert_eq!(a, b, "seed {seed:#x}: shards=0 must not perturb the schedule");
            assert!(a.events.iter().all(|e| !matches!(
                e,
                NemesisEvent::ShardPartition { .. }
                    | NemesisEvent::ShardHeal { .. }
                    | NemesisEvent::ShardBitRot { .. }
                    | NemesisEvent::ShardFailover { .. }
            )));
        }
    }

    #[test]
    fn sharded_schedules_self_close_and_stay_in_range() {
        for seed in [7u64, 0xF00D, 0xBAD5EED, 12345, 999] {
            let plan = compose_schedule_with_shards(seed, 0, 3, 800);
            assert_eq!(plan.shards, 3);
            let mut open: Option<usize> = None;
            for e in &plan.events {
                match e {
                    NemesisEvent::ShardPartition { shard } => {
                        assert!(*shard < 3, "seed {seed:#x}: shard out of range");
                        assert!(open.is_none(), "seed {seed:#x}: overlapping shard partitions");
                        open = Some(*shard);
                    }
                    NemesisEvent::ShardHeal { shard } => {
                        assert_eq!(open, Some(*shard), "seed {seed:#x}: heal without partition");
                        open = None;
                    }
                    NemesisEvent::ShardBitRot { shard } => {
                        assert!(*shard < 3);
                        assert_ne!(open, Some(*shard), "seed {seed:#x}: rot on the dark shard");
                    }
                    NemesisEvent::ShardFailover { shard } => {
                        assert!(*shard < 3);
                        assert!(open.is_none(), "seed {seed:#x}: failover under shard partition");
                    }
                    _ => {}
                }
            }
            assert!(open.is_none(), "seed {seed:#x}: schedule ends shard-partitioned");
            assert!(matches!(plan.events.last(), Some(NemesisEvent::Scrub)));
            let total: u64 = plan
                .events
                .iter()
                .map(|e| match e {
                    NemesisEvent::Ingest(n) | NemesisEvent::Burst(n) => u64::from(*n),
                    _ => 0,
                })
                .sum();
            assert_eq!(total, 800, "seed {seed:#x}: ingest total drifted");
        }
    }

    #[test]
    fn sharded_soaks_exercise_the_shard_dimension() {
        let plan = compose_schedule_with_shards(0xF00D, 0, 3, 2000);
        let (partitions, rots, failovers) = plan.shard_disruption_counts();
        assert!(partitions > 0, "no shard partitions composed");
        assert!(rots > 0, "no shard bit-rot composed");
        assert!(failovers > 0, "no shard failovers composed");
    }

    #[test]
    fn single_shard_schedules_never_partition_the_only_shard() {
        for seed in [1u64, 0xF00D, 0xBAD5EED, 12345] {
            let plan = compose_schedule_with_shards(seed, 0, 1, 1000);
            let (partitions, _, _) = plan.shard_disruption_counts();
            assert_eq!(partitions, 0, "seed {seed:#x}: partitioning 1 shard is total outage");
        }
    }

    #[test]
    fn disk_off_schedule_is_identical_through_every_entry_point() {
        for seed in [1u64, 0xF00D, 0xBAD5EED] {
            let a = compose_schedule_with_shards(seed, 2, 0, 600);
            let b = compose_schedule_with_disk(seed, 2, 0, false, 600);
            assert_eq!(a, b, "seed {seed:#x}: disk=false must not perturb the schedule");
            let c = compose_schedule_with_shards(seed, 2, 3, 600);
            let d = compose_schedule_with_disk(seed, 2, 3, false, 600);
            assert_eq!(c, d, "seed {seed:#x}: disk=false must not perturb sharded plans");
            assert!(a.events.iter().chain(&c.events).all(|e| !matches!(
                e,
                NemesisEvent::PageRot | NemesisEvent::PageFsyncFail | NemesisEvent::EvictStorm
            )));
        }
    }

    #[test]
    fn disk_schedules_self_close_every_page_rot_with_a_scrub() {
        for seed in [7u64, 0xF00D, 0xBAD5EED, 12345, 999] {
            let plan = compose_schedule_with_disk(seed, 2, 0, true, 1500);
            assert!(plan.disk);
            let mut pending_rot = false;
            for e in &plan.events {
                match e {
                    NemesisEvent::PageRot => pending_rot = true,
                    NemesisEvent::Scrub => pending_rot = false,
                    _ => {}
                }
            }
            assert!(!pending_rot, "seed {seed:#x}: schedule ends with unhealed page rot");
            let total: u64 = plan
                .events
                .iter()
                .map(|e| match e {
                    NemesisEvent::Ingest(n) | NemesisEvent::Burst(n) => u64::from(*n),
                    _ => 0,
                })
                .sum();
            assert_eq!(total, 1500, "seed {seed:#x}: ingest total drifted");
        }
    }

    #[test]
    fn disk_soaks_exercise_the_disk_dimension() {
        let plan = compose_schedule_with_disk(0xF00D, 2, 0, true, 2500);
        let (rots, fsyncs, storms) = plan.disk_disruption_counts();
        assert!(rots > 0, "no page rot composed");
        assert!(fsyncs > 0, "no fsync failures composed");
        assert!(storms > 0, "no eviction storms composed");
        // The core dimensions keep firing alongside the disk ones.
        let (partitions, corruptions, wal_rots, failovers, bursts) = plan.disruption_counts();
        assert!(partitions > 0 && corruptions > 0 && wal_rots > 0);
        assert!(failovers > 0 && bursts > 0);
    }

    #[test]
    fn backup_off_schedule_is_identical_through_every_entry_point() {
        for seed in [1u64, 0xF00D, 0xBAD5EED] {
            let a = compose_schedule_with_disk(seed, 2, 0, true, 600);
            let b = compose_schedule_with_backup(seed, 2, 0, true, false, 600);
            assert_eq!(a, b, "seed {seed:#x}: backup=false must not perturb the schedule");
            let c = compose_schedule_with_shards(seed, 2, 3, 600);
            let d = compose_schedule_with_backup(seed, 2, 3, false, false, 600);
            assert_eq!(c, d, "seed {seed:#x}: backup=false must not perturb sharded plans");
            assert!(a.events.iter().chain(&c.events).all(|e| !matches!(
                e,
                NemesisEvent::Backup
                    | NemesisEvent::ArchiveRot
                    | NemesisEvent::BackupScrub
                    | NemesisEvent::RestoreCheck
            )));
        }
    }

    #[test]
    fn backup_schedules_self_close_and_prove_recovery() {
        for seed in [7u64, 0xF00D, 0xBAD5EED, 12345, 999] {
            let plan = compose_schedule_with_backup(seed, 2, 0, false, true, 1500);
            assert!(plan.backup);
            let mut backups = 0;
            let mut pending_rot = false;
            for e in &plan.events {
                match e {
                    NemesisEvent::Backup => backups += 1,
                    NemesisEvent::ArchiveRot => {
                        assert!(backups > 0, "seed {seed:#x}: rot before any bundle exists");
                        pending_rot = true;
                    }
                    NemesisEvent::BackupScrub => pending_rot = false,
                    NemesisEvent::RestoreCheck => {
                        assert!(backups > 0, "seed {seed:#x}: restore before any bundle exists");
                    }
                    _ => {}
                }
            }
            assert!(!pending_rot, "seed {seed:#x}: schedule ends with unscrubbed archive rot");
            if backups > 0 {
                assert!(
                    matches!(plan.events.last(), Some(NemesisEvent::RestoreCheck)),
                    "seed {seed:#x}: a soak that captured bundles must end by restoring one"
                );
            }
            let total: u64 = plan
                .events
                .iter()
                .map(|e| match e {
                    NemesisEvent::Ingest(n) | NemesisEvent::Burst(n) => u64::from(*n),
                    _ => 0,
                })
                .sum();
            assert_eq!(total, 1500, "seed {seed:#x}: ingest total drifted");
        }
    }

    #[test]
    fn backup_soaks_exercise_the_backup_dimension() {
        let plan = compose_schedule_with_backup(0xF00D, 2, 0, true, true, 2500);
        let (backups, rots, scrubs, checks) = plan.backup_disruption_counts();
        assert!(backups > 0, "no bundle captures composed");
        assert!(rots > 0, "no archive rot composed");
        assert!(scrubs >= rots, "every rot needs a scrub");
        assert!(checks > 0, "no restore checks composed");
        // The core and disk dimensions keep firing alongside.
        let (partitions, corruptions, wal_rots, failovers, bursts) = plan.disruption_counts();
        assert!(partitions > 0 && corruptions > 0 && wal_rots > 0);
        assert!(failovers > 0 && bursts > 0);
        let (page_rots, fsyncs, storms) = plan.disk_disruption_counts();
        assert!(page_rots > 0 && fsyncs > 0 && storms > 0);
    }

    #[test]
    fn long_soaks_exercise_every_dimension() {
        let plan = compose_schedule(0xF00D, 2, 2000);
        let (partitions, corruptions, rots, failovers, bursts) = plan.disruption_counts();
        assert!(partitions > 0, "no partitions composed");
        assert!(corruptions > 0, "no corruptions composed");
        assert!(rots > 0, "no bit-rot composed");
        assert!(failovers > 0, "no failovers composed");
        assert!(bursts > 0, "no bursts composed");
    }
}

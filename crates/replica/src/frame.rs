//! The replication wire protocol.
//!
//! One [`Frame`] per transport message. The two bulk payloads — shipped
//! WAL segments and checkpoint transfers — are the already-validated,
//! epoch-stamped envelopes from [`nebula_durable::segment`]; this layer
//! only adds a kind tag and the small control frames (ack, nack, fence).
//!
//! Every control frame carries the sender's **epoch** so receivers can
//! fence stale senders without decoding a payload.

use crate::ReplicaError;

/// One replication message.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A shipped WAL segment (`NEBSEG01` bytes; decode with
    /// [`nebula_durable::segment::decode_segment`]).
    Segment(Vec<u8>),
    /// A checkpoint transfer (`NEBSCP01` bytes; decode with
    /// [`nebula_durable::segment::decode_checkpoint_frame`]).
    Checkpoint(Vec<u8>),
    /// Wedge the receiver: it diverged or belongs to a deposed epoch.
    Fence {
        /// The sender's epoch.
        epoch: u64,
        /// Human-readable cause, kept for the wedge report.
        reason: String,
    },
    /// A replica's progress report: everything up to `lsn` is applied and
    /// the replica's state digest at that point is `digest`.
    Ack {
        /// The replica's current epoch.
        epoch: u64,
        /// Highest contiguously applied LSN.
        lsn: u64,
        /// `nebula_durable::state_digest` of the replica state at `lsn`.
        digest: (u32, u32),
    },
    /// An epoch rejection: the receiver holds `epoch` (newer than the
    /// sender's) and has applied up to `lsn`. A primary receiving this
    /// learns it was deposed.
    Nack {
        /// The rejecting node's (newer) epoch.
        epoch: u64,
        /// The rejecting node's applied LSN.
        lsn: u64,
    },
}

const KIND_SEGMENT: u8 = 1;
const KIND_CHECKPOINT: u8 = 2;
const KIND_FENCE: u8 = 3;
const KIND_ACK: u8 = 4;
const KIND_NACK: u8 = 5;

impl Frame {
    /// Serialize for the wire.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Frame::Segment(bytes) => {
                let mut out = Vec::with_capacity(1 + bytes.len());
                out.push(KIND_SEGMENT);
                out.extend_from_slice(bytes);
                out
            }
            Frame::Checkpoint(bytes) => {
                let mut out = Vec::with_capacity(1 + bytes.len());
                out.push(KIND_CHECKPOINT);
                out.extend_from_slice(bytes);
                out
            }
            Frame::Fence { epoch, reason } => {
                let mut out = Vec::with_capacity(9 + reason.len());
                out.push(KIND_FENCE);
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(reason.as_bytes());
                out
            }
            Frame::Ack { epoch, lsn, digest } => {
                let mut out = Vec::with_capacity(25);
                out.push(KIND_ACK);
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&lsn.to_le_bytes());
                out.extend_from_slice(&digest.0.to_le_bytes());
                out.extend_from_slice(&digest.1.to_le_bytes());
                out
            }
            Frame::Nack { epoch, lsn } => {
                let mut out = Vec::with_capacity(17);
                out.push(KIND_NACK);
                out.extend_from_slice(&epoch.to_le_bytes());
                out.extend_from_slice(&lsn.to_le_bytes());
                out
            }
        }
    }

    /// Deserialize from the wire.
    pub fn decode(bytes: &[u8]) -> Result<Frame, ReplicaError> {
        let (&kind, rest) =
            bytes.split_first().ok_or_else(|| ReplicaError::Codec("empty frame".into()))?;
        match kind {
            KIND_SEGMENT => Ok(Frame::Segment(rest.to_vec())),
            KIND_CHECKPOINT => Ok(Frame::Checkpoint(rest.to_vec())),
            KIND_FENCE => {
                let (epoch, rest) = take_u64(rest, "fence epoch")?;
                let reason = String::from_utf8_lossy(rest).into_owned();
                Ok(Frame::Fence { epoch, reason })
            }
            KIND_ACK => {
                let (epoch, rest) = take_u64(rest, "ack epoch")?;
                let (lsn, rest) = take_u64(rest, "ack lsn")?;
                let (d0, rest) = take_u32(rest, "ack digest")?;
                let (d1, _) = take_u32(rest, "ack digest")?;
                Ok(Frame::Ack { epoch, lsn, digest: (d0, d1) })
            }
            KIND_NACK => {
                let (epoch, rest) = take_u64(rest, "nack epoch")?;
                let (lsn, _) = take_u64(rest, "nack lsn")?;
                Ok(Frame::Nack { epoch, lsn })
            }
            other => Err(ReplicaError::Codec(format!("unknown frame kind {other}"))),
        }
    }
}

fn take_u64<'a>(bytes: &'a [u8], what: &str) -> Result<(u64, &'a [u8]), ReplicaError> {
    if bytes.len() < 8 {
        return Err(ReplicaError::Codec(format!("{what}: truncated")));
    }
    let (head, rest) = bytes.split_at(8);
    Ok((u64::from_le_bytes(head.try_into().expect("8 bytes")), rest))
}

fn take_u32<'a>(bytes: &'a [u8], what: &str) -> Result<(u32, &'a [u8]), ReplicaError> {
    if bytes.len() < 4 {
        return Err(ReplicaError::Codec(format!("{what}: truncated")));
    }
    let (head, rest) = bytes.split_at(4);
    Ok((u32::from_le_bytes(head.try_into().expect("4 bytes")), rest))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_roundtrips() {
        let frames = vec![
            Frame::Segment(vec![9, 8, 7]),
            Frame::Checkpoint(vec![1, 2]),
            Frame::Fence { epoch: 3, reason: "diverged at lsn 7".into() },
            Frame::Ack { epoch: 2, lsn: 41, digest: (0xDEAD, 0xBEEF) },
            Frame::Nack { epoch: 5, lsn: 40 },
        ];
        for f in frames {
            assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
        }
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        assert!(Frame::decode(&[]).is_err());
        assert!(Frame::decode(&[42]).is_err());
        assert!(Frame::decode(&[KIND_ACK, 1, 2]).is_err());
    }
}

//! Property-based tests for the relational engine's core invariants.

use proptest::prelude::*;
use relstore::{ConjunctiveQuery, DataType, Database, Predicate, TableSchema, TupleId, Value};

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::text),
    ]
}

proptest! {
    /// Value ordering is a total order: antisymmetric, transitive via
    /// sort stability, and consistent with equality.
    #[test]
    fn value_ordering_total(a in value_strategy(), b in value_strategy(), c in value_strategy()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        match a.cmp(&b) {
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
            Ordering::Equal => {
                prop_assert_eq!(b.cmp(&a), Ordering::Equal);
                prop_assert_eq!(&a, &b);
            }
        }
        // Transitivity.
        if a.cmp(&b) != Ordering::Greater && b.cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.cmp(&c), Ordering::Greater);
        }
    }

    /// Hash consistency: equal values hash equally.
    #[test]
    fn value_hash_consistent(a in value_strategy()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let b = a.clone();
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        prop_assert_eq!(ha.finish(), hb.finish());
    }
}

/// Build a one-table database from generated rows.
fn build_db(rows: &[(String, i64)]) -> (Database, Vec<TupleId>) {
    let mut db = Database::new();
    db.create_table(
        TableSchema::builder("t")
            .column("id", DataType::Int)
            .column("text", DataType::Text)
            .indexed_column("num", DataType::Int)
            .primary_key("id")
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut ids = Vec::new();
    for (i, (text, num)) in rows.iter().enumerate() {
        ids.push(
            db.insert("t", vec![Value::Int(i as i64), Value::text(text.clone()), Value::Int(*num)])
                .unwrap(),
        );
    }
    (db, ids)
}

proptest! {
    /// Indexed lookup agrees with a full scan for every value that exists.
    #[test]
    fn index_agrees_with_scan(
        rows in proptest::collection::vec(("[a-c ]{0,6}", -3i64..3), 0..24)
    ) {
        let (db, _) = build_db(&rows);
        let t = db.table_by_name("t").unwrap();
        let num = t.schema().column_id("num").unwrap();
        for v in -3i64..3 {
            let via_index: Vec<TupleId> = {
                let mut x = t.lookup(num, &Value::Int(v));
                x.sort();
                x
            };
            let via_scan: Vec<TupleId> = t
                .scan()
                .filter(|tp| tp.get(num) == Some(&Value::Int(v)))
                .map(|tp| tp.id)
                .collect();
            prop_assert_eq!(via_index, via_scan);
        }
    }

    /// The inverted index finds exactly the rows whose text contains the
    /// token.
    #[test]
    fn inverted_index_complete_and_sound(
        rows in proptest::collection::vec(("[a-c]{1,3}( [a-c]{1,3}){0,2}", 0i64..5), 1..20),
        probe in "[a-c]{1,3}",
    ) {
        let (db, _) = build_db(&rows);
        let t = db.table_by_name("t").unwrap();
        let text_col = t.schema().column_id("text").unwrap();
        let q = ConjunctiveQuery::scan(t.id())
            .with_predicate(Predicate::ContainsToken(text_col, probe.clone()));
        let result = q.execute(&db).unwrap();
        let expected: Vec<TupleId> = t
            .scan()
            .filter(|tp| {
                tp.get(text_col)
                    .and_then(Value::as_text)
                    .map(|s| s.split_whitespace().any(|w| w == probe))
                    .unwrap_or(false)
            })
            .map(|tp| tp.id)
            .collect();
        prop_assert_eq!(result.tuples, expected);
    }

    /// Deleting rows removes them from every access path.
    #[test]
    fn delete_removes_everywhere(
        rows in proptest::collection::vec(("[a-c]{1,4}", 0i64..4), 1..16),
        victim in 0usize..16,
    ) {
        let (mut db, ids) = build_db(&rows);
        let victim = victim % ids.len();
        let tid = ids[victim];
        prop_assert!(db.delete(tid));
        prop_assert!(db.get(tid).is_none());
        let t = db.table_by_name("t").unwrap();
        prop_assert_eq!(t.len(), ids.len() - 1);
        prop_assert!(t.scan().all(|tp| tp.id != tid));
        prop_assert!(db
            .inverted_index()
            .lookup(&rows[victim].0)
            .iter()
            .all(|p| p.tuple != tid));
    }

    /// `materialize_subset` is faithful: every surviving row's values are
    /// identical and its searchable text is re-indexed.
    #[test]
    fn subset_is_faithful(
        rows in proptest::collection::vec(("[a-d]{1,4}", 0i64..4), 1..16),
        pick in proptest::collection::vec(any::<prop::sample::Index>(), 1..6),
    ) {
        let (db, ids) = build_db(&rows);
        let chosen: Vec<TupleId> = pick.iter().map(|ix| ids[ix.index(ids.len())]).collect();
        let (mini, back) = db.materialize_subset(&chosen);
        let mut unique = chosen.clone();
        unique.sort();
        unique.dedup();
        prop_assert_eq!(mini.total_tuples(), unique.len());
        for (mini_id, orig) in &back {
            prop_assert_eq!(
                mini.get(*mini_id).unwrap().values,
                db.get(*orig).unwrap().values
            );
        }
    }
}

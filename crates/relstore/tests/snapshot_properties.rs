//! Property tests for the snapshot format: arbitrary databases round-trip
//! losslessly, and corrupted inputs never panic.

use proptest::prelude::*;
use relstore::{snapshot, DataType, Database, TableSchema, Value};

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-zA-Z0-9 àé]{0,10}".prop_map(Value::text),
    ]
}

fn build_db(rows: &[(i64, Value, Value)], delete_every: usize) -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::builder("t")
            .column("id", DataType::Int)
            .column("a", DataType::Text)
            .indexed_column("b", DataType::Int)
            .primary_key("id")
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut ids = Vec::new();
    for (i, (_, a, b)) in rows.iter().enumerate() {
        // Coerce generated values into the column types.
        let a = match a {
            Value::Text(_) | Value::Null => a.clone(),
            other => Value::text(other.render()),
        };
        let b = match b {
            Value::Int(_) | Value::Null => b.clone(),
            Value::Float(x) => Value::Int(*x as i64),
            Value::Text(s) => Value::Int(s.len() as i64),
        };
        ids.push(db.insert("t", vec![Value::Int(i as i64), a, b]).unwrap());
    }
    if delete_every > 0 {
        for (i, tid) in ids.iter().enumerate() {
            if i % delete_every == delete_every - 1 {
                db.delete(*tid);
            }
        }
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// save → load reproduces every live row (same ids, same values),
    /// keeps tombstoned slots dead, and rebuilds working indexes.
    #[test]
    fn roundtrip_lossless(
        rows in proptest::collection::vec(
            (any::<i64>(), value_strategy(), value_strategy()),
            0..20
        ),
        delete_every in 0usize..4,
    ) {
        let db = build_db(&rows, delete_every);
        let restored = snapshot::load(&snapshot::save(&db)).unwrap();

        prop_assert_eq!(restored.total_tuples(), db.total_tuples());
        let a = db.table_by_name("t").unwrap();
        let b = restored.table_by_name("t").unwrap();
        for (x, y) in a.scan().zip(b.scan()) {
            prop_assert_eq!(x.id, y.id);
            prop_assert_eq!(&x.values, &y.values);
            // PK index agrees.
            prop_assert_eq!(b.lookup_key(x.key().unwrap()), Some(x.id));
        }
        // Inverted index: every searchable token of a live row resolves.
        for tuple in a.scan() {
            if let Some(text) = tuple.get_by_name("a").and_then(Value::as_text) {
                for token in relstore::index::tokenize(text) {
                    prop_assert!(
                        restored
                            .inverted_index()
                            .lookup(&token)
                            .iter()
                            .any(|p| p.tuple == tuple.id),
                        "token `{token}` of {} must be indexed",
                        tuple.id
                    );
                }
            }
        }
    }

    /// Arbitrary byte garbage and truncations are rejected, never panic.
    #[test]
    fn hostile_input_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = snapshot::load(&bytes);
    }

    /// Tombstoned slots survive the round-trip exactly: deleted ids stay
    /// dead, live ids keep their slots, secondary/inverted indexes agree
    /// with the live database, and post-restore row allocation continues
    /// from the same high-water mark.
    #[test]
    fn tombstones_roundtrip_with_stable_ids(
        n in 4usize..24,
        delete_every in 2usize..5,
    ) {
        let rows: Vec<(i64, Value, Value)> = (0..n)
            .map(|i| (i as i64, Value::text(format!("tok{i}")), Value::Int((i % 3) as i64)))
            .collect();
        let mut db = build_db(&rows, 0);
        let all: Vec<_> = db.table_by_name("t").unwrap().scan().map(|t| t.id).collect();
        let deleted: Vec<_> =
            all.iter().copied().filter(|tid| (tid.row as usize).is_multiple_of(delete_every)).collect();
        for tid in &deleted {
            prop_assert!(db.delete(*tid));
        }

        let mut restored = snapshot::load(&snapshot::save(&db)).unwrap();
        let table = db.table_by_name("t").unwrap();
        let rtable = restored.table_by_name("t").unwrap();

        // Dead slots stay dead; live slots keep ids and values.
        for tid in &deleted {
            prop_assert!(!rtable.is_live(*tid), "{tid} must stay tombstoned");
            prop_assert_eq!(restored.get(*tid), None);
        }
        for tuple in table.scan() {
            prop_assert!(rtable.is_live(tuple.id));
            prop_assert_eq!(restored.get(tuple.id).unwrap().values, tuple.values);
        }

        // Rebuilt indexes are equivalent to the live ones: PK, secondary,
        // and inverted lookups return the same tuple sets.
        for tuple in table.scan() {
            prop_assert_eq!(rtable.lookup_key(tuple.key().unwrap()), Some(tuple.id));
        }
        let b_col = table.schema().column_id("b").unwrap();
        for probe in 0..3i64 {
            let mut live = table.lookup(b_col, &Value::Int(probe));
            let mut back = rtable.lookup(b_col, &Value::Int(probe));
            live.sort();
            back.sort();
            prop_assert_eq!(live, back, "secondary index for b={probe}");
        }
        for tid in &deleted {
            let tok = format!("tok{}", tid.row);
            prop_assert!(
                !restored.inverted_index().lookup(&tok).iter().any(|p| p.tuple == *tid),
                "deleted row's token `{tok}` must not be indexed"
            );
        }

        // Row allocation continues from the same high-water mark on both
        // sides: the next insert yields the same TupleId.
        let next = |d: &mut Database| {
            d.insert("t", vec![Value::Int(9999), Value::text("fresh"), Value::Int(7)]).unwrap()
        };
        prop_assert_eq!(next(&mut db), next(&mut restored));
    }

    /// Bit-flips in a valid snapshot are rejected or produce a decodable
    /// database — but never panic.
    #[test]
    fn bitflips_never_panic(
        rows in proptest::collection::vec(
            (any::<i64>(), value_strategy(), value_strategy()),
            1..8
        ),
        flip in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let db = build_db(&rows, 0);
        let mut bytes = snapshot::save(&db).to_vec();
        let i = flip.index(bytes.len());
        bytes[i] ^= xor;
        let _ = snapshot::load(&bytes);
    }
}

//! Table schemas: column definitions, primary keys, and builders.

use crate::error::{Error, Result};
use crate::value::DataType;
use std::fmt;

/// Stable identifier of a table within a [`crate::Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u32);

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Index of a column within its table schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnId(pub u32);

impl ColumnId {
    /// The column's positional index in a row.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ColumnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Definition of a single column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name, unique within the table (case-insensitive).
    pub name: String,
    /// Declared type.
    pub data_type: DataType,
    /// Whether an exact-match hash index should be maintained.
    pub indexed: bool,
    /// Whether text values in this column are fed to the inverted index.
    pub searchable: bool,
}

impl ColumnDef {
    /// A plain (unindexed, searchable-if-text) column.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnDef { name: name.into(), data_type, indexed: false, searchable: true }
    }
}

/// Schema of a table: named, typed columns plus an optional primary key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name, unique in the catalog (case-insensitive).
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
    /// Position of the primary-key column, if declared.
    pub primary_key: Option<ColumnId>,
}

impl TableSchema {
    /// Start building a schema for table `name`.
    pub fn builder(name: impl Into<String>) -> TableSchemaBuilder {
        TableSchemaBuilder {
            name: name.into(),
            columns: Vec::new(),
            primary_key: None,
            error: None,
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Look up a column by (case-insensitive) name.
    pub fn column_id(&self, name: &str) -> Option<ColumnId> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
            .map(|i| ColumnId(i as u32))
    }

    /// The definition of column `id`, if in range.
    pub fn column(&self, id: ColumnId) -> Option<&ColumnDef> {
        self.columns.get(id.index())
    }

    /// Resolve a column name, returning a crate error on failure.
    pub fn require_column(&self, name: &str) -> Result<ColumnId> {
        self.column_id(name).ok_or_else(|| Error::UnknownColumn {
            table: self.name.clone(),
            column: name.to_string(),
        })
    }

    /// Iterate `(ColumnId, &ColumnDef)` pairs in positional order.
    pub fn iter_columns(&self) -> impl Iterator<Item = (ColumnId, &ColumnDef)> {
        self.columns.iter().enumerate().map(|(i, c)| (ColumnId(i as u32), c))
    }
}

/// Fluent builder for [`TableSchema`].
#[derive(Debug)]
pub struct TableSchemaBuilder {
    name: String,
    columns: Vec<ColumnDef>,
    primary_key: Option<String>,
    error: Option<Error>,
}

impl TableSchemaBuilder {
    /// Append a plain column.
    pub fn column(mut self, name: impl Into<String>, ty: DataType) -> Self {
        self.columns.push(ColumnDef::new(name, ty));
        self
    }

    /// Append a column with an exact-match hash index.
    pub fn indexed_column(mut self, name: impl Into<String>, ty: DataType) -> Self {
        let mut def = ColumnDef::new(name, ty);
        def.indexed = true;
        self.columns.push(def);
        self
    }

    /// Append a column that is excluded from the inverted (keyword) index —
    /// e.g. long raw sequences that should not pollute keyword search.
    pub fn unsearchable_column(mut self, name: impl Into<String>, ty: DataType) -> Self {
        let mut def = ColumnDef::new(name, ty);
        def.searchable = false;
        self.columns.push(def);
        self
    }

    /// Declare the primary-key column (must already be appended).
    pub fn primary_key(mut self, name: impl Into<String>) -> Self {
        self.primary_key = Some(name.into());
        self
    }

    /// Finish, validating name uniqueness and key resolution.
    pub fn build(self) -> Result<TableSchema> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.name.trim().is_empty() {
            return Err(Error::InvalidSchema("table name must be non-empty".into()));
        }
        if self.columns.is_empty() {
            return Err(Error::InvalidSchema(format!(
                "table `{}` must have at least one column",
                self.name
            )));
        }
        for (i, a) in self.columns.iter().enumerate() {
            if a.name.trim().is_empty() {
                return Err(Error::InvalidSchema(format!(
                    "table `{}` has an empty column name at position {i}",
                    self.name
                )));
            }
            for b in &self.columns[i + 1..] {
                if a.name.eq_ignore_ascii_case(&b.name) {
                    return Err(Error::InvalidSchema(format!(
                        "duplicate column `{}` in table `{}`",
                        a.name, self.name
                    )));
                }
            }
        }
        let mut schema = TableSchema { name: self.name, columns: self.columns, primary_key: None };
        if let Some(pk) = self.primary_key {
            let id = schema.require_column(&pk)?;
            // The PK column gets a hash index for free: lookups by key are
            // the hot path for FK joins.
            schema.columns[id.index()].indexed = true;
            schema.primary_key = Some(id);
        }
        Ok(schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gene_schema() -> TableSchema {
        TableSchema::builder("gene")
            .column("gid", DataType::Text)
            .column("name", DataType::Text)
            .column("length", DataType::Int)
            .primary_key("gid")
            .build()
            .unwrap()
    }

    #[test]
    fn builder_builds_and_resolves_columns() {
        let s = gene_schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.column_id("name"), Some(ColumnId(1)));
        assert_eq!(s.column_id("NAME"), Some(ColumnId(1)), "lookup is case-insensitive");
        assert_eq!(s.column_id("nope"), None);
        assert_eq!(s.primary_key, Some(ColumnId(0)));
    }

    #[test]
    fn primary_key_column_is_auto_indexed() {
        let s = gene_schema();
        assert!(s.column(ColumnId(0)).unwrap().indexed);
        assert!(!s.column(ColumnId(1)).unwrap().indexed);
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = TableSchema::builder("t")
            .column("a", DataType::Int)
            .column("A", DataType::Text)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidSchema(_)));
    }

    #[test]
    fn unknown_primary_key_rejected() {
        let err = TableSchema::builder("t")
            .column("a", DataType::Int)
            .primary_key("b")
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::UnknownColumn { .. }));
    }

    #[test]
    fn empty_schema_rejected() {
        assert!(TableSchema::builder("t").build().is_err());
        assert!(TableSchema::builder("").column("a", DataType::Int).build().is_err());
    }

    #[test]
    fn unsearchable_column_flag() {
        let s = TableSchema::builder("protein")
            .column("pid", DataType::Text)
            .unsearchable_column("seq", DataType::Text)
            .build()
            .unwrap();
        assert!(s.column(ColumnId(0)).unwrap().searchable);
        assert!(!s.column(ColumnId(1)).unwrap().searchable);
    }

    #[test]
    fn require_column_error_names_table() {
        let s = gene_schema();
        let err = s.require_column("zzz").unwrap_err();
        assert_eq!(err, Error::UnknownColumn { table: "gene".into(), column: "zzz".into() });
    }
}

//! Pluggable byte-record storage behind the relational store.
//!
//! The row heap of every [`crate::Table`] and the posting blocks of the
//! [`crate::InvertedIndex`] read and write opaque byte records through the
//! [`StorageBackend`] trait. The default backend keeps records in RAM
//! (`Mem`); the `nebula-pagestore` crate provides a disk-backed
//! implementation (`Paged`) that hosts the same records in a checksummed,
//! buffer-pooled page file. Because every caller goes through this trait,
//! the two backends are digest-identical: the logical database bytes
//! ([`crate::snapshot::save`]) cannot depend on which backend holds them.
//!
//! Record ids are opaque `u64`s minted by the backend. An update may move
//! a record (a paged backend relocates records that outgrow their slot),
//! so [`StorageBackend::update`] returns the possibly-new id and the
//! caller must refresh its mapping.

use crate::snapshot::SnapshotError;
use crate::value::Value;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// An error from a storage backend — an I/O failure, a checksum mismatch,
/// or a record that failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageError(pub String);

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "storage error: {}", self.0)
    }
}

impl std::error::Error for StorageError {}

/// One namespace of opaque byte records (a table's row heap, or the
/// inverted index's posting blocks).
///
/// Implementations must be deterministic: the same sequence of calls
/// mints the same ids and produces the same on-medium bytes, regardless
/// of wall clock or thread scheduling.
pub trait StorageBackend: fmt::Debug + Send + Sync {
    /// Store a new record, returning its id.
    fn insert(&self, bytes: &[u8]) -> Result<u64, StorageError>;

    /// Fetch a record by id. `Ok(None)` means the id is unknown or the
    /// record was deleted.
    fn get(&self, id: u64) -> Result<Option<Vec<u8>>, StorageError>;

    /// Replace record `id`, returning the (possibly new) id. The old id
    /// is invalid afterwards unless it is the one returned.
    fn update(&self, id: u64, bytes: &[u8]) -> Result<u64, StorageError>;

    /// Delete a record. Unknown ids are a no-op.
    fn delete(&self, id: u64) -> Result<(), StorageError>;

    /// Short human-readable description (for `SHOW STORAGE`).
    fn label(&self) -> String;
}

/// Opens one [`StorageBackend`] per namespace. A `Database` built with a
/// factory routes every table's rows and the inverted index's posting
/// blocks through backends the factory opens.
pub trait StorageFactory: fmt::Debug + Send + Sync {
    /// Open (or create) the backend for a namespace. Namespaces are
    /// assigned deterministically: table id `t` uses namespace `t`, the
    /// inverted index uses [`POSTINGS_NAMESPACE`].
    fn open(&self, namespace: u32) -> Box<dyn StorageBackend>;

    /// Ask every open backend to persist outstanding state.
    fn flush(&self) -> Result<(), StorageError>;

    /// Short human-readable description (for `SHOW STORAGE`).
    fn describe(&self) -> String;
}

/// The namespace the inverted index's posting blocks live in. Table
/// namespaces are table ids, which start at zero and stay far below this.
pub const POSTINGS_NAMESPACE: u32 = u32::MAX;

/// Encode one row as an opaque byte record: each value in the snapshot
/// value encoding (tag byte + payload), concatenated in column order. The
/// arity comes from the schema, so no count prefix is needed.
pub fn encode_row(values: &[Value]) -> Vec<u8> {
    let mut buf = BytesMut::new();
    for v in values {
        crate::snapshot::put_value(&mut buf, v);
    }
    buf.to_vec()
}

/// Decode a row record written by [`encode_row`]. Fails cleanly on
/// truncated or hostile bytes; never panics, never over-allocates (the
/// per-value decoder validates lengths against the remaining buffer).
pub fn decode_row(bytes: &[u8], arity: usize) -> Result<Vec<Value>, SnapshotError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    let mut values = Vec::with_capacity(arity.min(bytes.len() + 1));
    for _ in 0..arity {
        values.push(crate::snapshot::get_value(&mut buf)?);
    }
    if buf.remaining() > 0 {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing bytes after row of arity {arity}",
            buf.remaining()
        )));
    }
    Ok(values)
}

/// Encode one posting block: `u32` count, then per posting the table id,
/// column id (LEB128 varints) and the tuple row as a zigzag varint delta
/// from the previous posting's row. Postings within a block share the
/// delta chain; the first delta is against row 0.
pub fn encode_posting_block(postings: &[crate::Posting]) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_u32_le(postings.len() as u32);
    let mut prev_row: i64 = 0;
    for p in postings {
        put_varint(&mut buf, u64::from(p.table.0));
        put_varint(&mut buf, u64::from(p.column.0));
        let row = p.tuple.row as i64;
        put_varint(&mut buf, zigzag(row.wrapping_sub(prev_row)));
        prev_row = row;
    }
    buf.to_vec()
}

/// Decode a posting block written by [`encode_posting_block`]. Fails
/// cleanly on hostile bytes: the count is validated against the smallest
/// possible per-posting cost before any allocation.
pub fn decode_posting_block(bytes: &[u8]) -> Result<Vec<crate::Posting>, SnapshotError> {
    use crate::schema::{ColumnId, TableId};
    use crate::tuple::TupleId;
    let mut buf = Bytes::copy_from_slice(bytes);
    if buf.remaining() < 4 {
        return Err(SnapshotError::Truncated("posting count"));
    }
    let count = buf.get_u32_le() as usize;
    // Each posting costs at least three varint bytes.
    if count > buf.remaining() / 3 {
        return Err(SnapshotError::Corrupt(format!("implausible posting count {count}")));
    }
    let mut out = Vec::with_capacity(count);
    let mut prev_row: i64 = 0;
    for _ in 0..count {
        let table = get_varint(&mut buf)?;
        let column = get_varint(&mut buf)?;
        let delta = unzigzag(get_varint(&mut buf)?);
        let row = prev_row.wrapping_add(delta);
        prev_row = row;
        let table = u32::try_from(table)
            .map_err(|_| SnapshotError::Corrupt(format!("posting table id {table} overflows")))?;
        let column = u32::try_from(column)
            .map_err(|_| SnapshotError::Corrupt(format!("posting column id {column} overflows")))?;
        out.push(crate::Posting {
            table: TableId(table),
            column: ColumnId(column),
            tuple: TupleId::new(TableId(table), row as u64),
        });
    }
    if buf.remaining() > 0 {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing bytes after posting block",
            buf.remaining()
        )));
    }
    Ok(out)
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> Result<u64, SnapshotError> {
    let mut v: u64 = 0;
    for shift in (0..64).step_by(7) {
        if buf.remaining() < 1 {
            return Err(SnapshotError::Truncated("varint"));
        }
        let byte = buf.get_u8();
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(SnapshotError::Corrupt("varint longer than 10 bytes".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnId, TableId};
    use crate::tuple::TupleId;
    use crate::Posting;

    #[test]
    fn row_codec_roundtrips() {
        let rows: Vec<Vec<Value>> = vec![
            vec![],
            vec![Value::Null],
            vec![Value::Int(i64::MIN), Value::Float(f64::NAN), Value::text("naïve ünïcode")],
            vec![Value::text(""), Value::Int(0)],
        ];
        for row in rows {
            let bytes = encode_row(&row);
            let back = decode_row(&bytes, row.len()).expect("roundtrip");
            for (a, b) in row.iter().zip(&back) {
                match (a, b) {
                    (Value::Float(x), Value::Float(y)) => assert_eq!(x.to_bits(), y.to_bits()),
                    _ => assert_eq!(a, b),
                }
            }
        }
    }

    #[test]
    fn row_codec_rejects_hostile_bytes() {
        assert!(decode_row(&[], 1).is_err());
        assert!(decode_row(&[9], 1).is_err(), "bad tag");
        assert!(decode_row(&[1, 0, 0], 1).is_err(), "truncated int");
        assert!(decode_row(&[3, 0xff, 0xff, 0xff, 0xff, b'x'], 1).is_err(), "hostile length");
        let extra = encode_row(&[Value::Int(1), Value::Int(2)]);
        assert!(decode_row(&extra, 1).is_err(), "trailing bytes rejected");
    }

    #[test]
    fn posting_block_roundtrips() {
        let postings: Vec<Posting> = (0..100)
            .map(|i| Posting {
                table: TableId(i % 3),
                column: ColumnId(i % 5),
                tuple: TupleId::new(TableId(i % 3), u64::from(i * 37 % 50)),
            })
            .collect();
        let bytes = encode_posting_block(&postings);
        assert_eq!(decode_posting_block(&bytes).expect("roundtrip"), postings);
        // Delta coding keeps blocks compact: well under 4 bytes/posting
        // for small ids.
        assert!(bytes.len() < 4 + postings.len() * 4, "block is {} bytes", bytes.len());
    }

    #[test]
    fn posting_block_rejects_hostile_bytes() {
        assert!(decode_posting_block(&[]).is_err());
        assert!(decode_posting_block(&[0xff, 0xff, 0xff, 0xff]).is_err(), "hostile count");
        let mut bytes = encode_posting_block(&[Posting {
            table: TableId(0),
            column: ColumnId(0),
            tuple: TupleId::new(TableId(0), 7),
        }]);
        bytes.push(0);
        assert!(decode_posting_block(&bytes).is_err(), "trailing bytes rejected");
        assert!(decode_posting_block(&bytes[..bytes.len() - 2]).is_err(), "truncated");
    }
}

//! Secondary indexes: exact-match hash indexes and a tokenized inverted
//! index used by keyword search.

use crate::schema::{ColumnId, TableId};
use crate::tuple::TupleId;
use crate::value::Value;
use std::collections::HashMap;

/// Exact-match hash index mapping a value to the tuple ids holding it.
#[derive(Debug, Default)]
pub struct HashIndex {
    map: HashMap<Value, Vec<TupleId>>,
}

impl HashIndex {
    /// Add a `(value, tuple)` entry.
    pub fn insert(&mut self, value: Value, tid: TupleId) {
        self.map.entry(value).or_default().push(tid);
    }

    /// Remove one `(value, tuple)` entry, if present.
    pub fn remove(&mut self, value: &Value, tid: TupleId) {
        if let Some(list) = self.map.get_mut(value) {
            list.retain(|t| *t != tid);
            if list.is_empty() {
                self.map.remove(value);
            }
        }
    }

    /// Tuple ids with exactly this value (empty slice if none).
    pub fn get(&self, value: &Value) -> &[TupleId] {
        self.map.get(value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct values indexed.
    pub fn distinct(&self) -> usize {
        self.map.len()
    }
}

/// One hit in the inverted index: which table/column/tuple the token
/// occurred in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Posting {
    /// Owning table.
    pub table: TableId,
    /// Column the token occurred in.
    pub column: ColumnId,
    /// Row the token occurred in.
    pub tuple: TupleId,
}

/// Tokenized inverted index over text columns of the whole database.
///
/// Tokens are lower-cased words; the tokenizer splits on any
/// non-alphanumeric character and keeps digits so identifiers such as
/// `JW0013` survive intact.
#[derive(Debug, Default)]
pub struct InvertedIndex {
    postings: HashMap<String, Vec<Posting>>,
    documents: u64,
}

/// Split text into lower-cased alphanumeric tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

impl InvertedIndex {
    /// Index one cell's text.
    pub fn add_cell(&mut self, table: TableId, column: ColumnId, tuple: TupleId, text: &str) {
        self.documents += 1;
        let posting = Posting { table, column, tuple };
        for token in tokenize(text) {
            let list = self.postings.entry(token).or_default();
            // A token may repeat within one cell; store each posting once.
            if list.last() != Some(&posting) {
                list.push(posting);
            }
        }
    }

    /// Remove every posting for the given tuple (used on delete).
    pub fn remove_tuple(&mut self, tuple: TupleId) {
        self.postings.retain(|_, list| {
            list.retain(|p| p.tuple != tuple);
            !list.is_empty()
        });
    }

    /// All postings for a token (exact match, case-insensitive).
    pub fn lookup(&self, token: &str) -> &[Posting] {
        nebula_obs::counter_add("relstore.index_probes", 1);
        self.postings.get(&token.to_lowercase()).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Document frequency of a token — the number of postings, used for
    /// IDF-style weighting by the search layer.
    pub fn doc_frequency(&self, token: &str) -> usize {
        self.lookup(token).len()
    }

    /// Total number of indexed cells.
    pub fn documents(&self) -> u64 {
        self.documents
    }

    /// Number of distinct tokens.
    pub fn vocabulary(&self) -> usize {
        self.postings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(row: u64) -> TupleId {
        TupleId::new(TableId(0), row)
    }

    #[test]
    fn hash_index_insert_get_remove() {
        let mut idx = HashIndex::default();
        idx.insert(Value::text("F1"), tid(0));
        idx.insert(Value::text("F1"), tid(1));
        idx.insert(Value::text("F2"), tid(2));
        assert_eq!(idx.get(&Value::text("F1")), &[tid(0), tid(1)]);
        assert_eq!(idx.distinct(), 2);
        idx.remove(&Value::text("F1"), tid(0));
        assert_eq!(idx.get(&Value::text("F1")), &[tid(1)]);
        idx.remove(&Value::text("F1"), tid(1));
        assert!(idx.get(&Value::text("F1")).is_empty());
        assert_eq!(idx.distinct(), 1);
    }

    #[test]
    fn tokenizer_keeps_identifiers() {
        assert_eq!(tokenize("gene JW0013, grpC!"), vec!["gene", "jw0013", "grpc"]);
        assert_eq!(tokenize("G-Actin"), vec!["g", "actin"]);
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("   ,,, "), Vec::<String>::new());
    }

    #[test]
    fn tokenizer_handles_unicode() {
        assert_eq!(tokenize("Naïve café"), vec!["naïve", "café"]);
    }

    #[test]
    fn inverted_index_lookup_case_insensitive() {
        let mut idx = InvertedIndex::default();
        idx.add_cell(TableId(0), ColumnId(1), tid(3), "grpC heat-shock");
        assert_eq!(idx.lookup("GRPC").len(), 1);
        assert_eq!(idx.lookup("heat").len(), 1);
        assert_eq!(idx.lookup("shock")[0].tuple, tid(3));
        assert_eq!(idx.lookup("missing").len(), 0);
        assert_eq!(idx.documents(), 1);
        assert!(idx.vocabulary() >= 3);
    }

    #[test]
    fn repeated_token_in_one_cell_stored_once() {
        let mut idx = InvertedIndex::default();
        idx.add_cell(TableId(0), ColumnId(0), tid(0), "aaa aaa aaa");
        assert_eq!(idx.lookup("aaa").len(), 1);
    }

    #[test]
    fn remove_tuple_clears_postings() {
        let mut idx = InvertedIndex::default();
        idx.add_cell(TableId(0), ColumnId(0), tid(0), "alpha beta");
        idx.add_cell(TableId(0), ColumnId(0), tid(1), "alpha");
        idx.remove_tuple(tid(0));
        assert_eq!(idx.lookup("alpha").len(), 1);
        assert_eq!(idx.lookup("beta").len(), 0);
    }

    #[test]
    fn doc_frequency_counts_postings() {
        let mut idx = InvertedIndex::default();
        for row in 0..5 {
            idx.add_cell(TableId(0), ColumnId(0), tid(row), "f1");
        }
        assert_eq!(idx.doc_frequency("F1"), 5);
    }
}

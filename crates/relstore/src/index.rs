//! Secondary indexes: exact-match hash indexes and a tokenized inverted
//! index used by keyword search.

use crate::schema::{ColumnId, TableId};
use crate::storage::{decode_posting_block, encode_posting_block, StorageBackend};
use crate::tuple::TupleId;
use crate::value::Value;
use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap};

/// Exact-match hash index mapping a value to the tuple ids holding it.
#[derive(Debug, Default)]
pub struct HashIndex {
    map: HashMap<Value, Vec<TupleId>>,
}

impl HashIndex {
    /// Add a `(value, tuple)` entry.
    pub fn insert(&mut self, value: Value, tid: TupleId) {
        self.map.entry(value).or_default().push(tid);
    }

    /// Remove one `(value, tuple)` entry, if present.
    pub fn remove(&mut self, value: &Value, tid: TupleId) {
        if let Some(list) = self.map.get_mut(value) {
            list.retain(|t| *t != tid);
            if list.is_empty() {
                self.map.remove(value);
            }
        }
    }

    /// Tuple ids with exactly this value (empty slice if none).
    pub fn get(&self, value: &Value) -> &[TupleId] {
        self.map.get(value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct values indexed.
    pub fn distinct(&self) -> usize {
        self.map.len()
    }
}

/// One hit in the inverted index: which table/column/tuple the token
/// occurred in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Posting {
    /// Owning table.
    pub table: TableId,
    /// Column the token occurred in.
    pub column: ColumnId,
    /// Row the token occurred in.
    pub tuple: TupleId,
}

/// How many postings one paged block holds before a new block starts.
/// Blocks are delta-compressed ([`encode_posting_block`]), so 128
/// postings stay far below a page's payload capacity.
const BLOCK_POSTINGS: usize = 128;

/// Where the posting lists live. `Mem` keeps decoded lists in a map;
/// `Paged` keeps delta-compressed blocks in a [`StorageBackend`] with a
/// RAM-resident term directory (token → block record ids). The directory
/// is a `BTreeMap` so every mutation path walks terms in sorted order —
/// page-access order, and therefore the page file bytes, stay
/// deterministic for a fixed operation sequence.
#[derive(Debug)]
enum Postings {
    Mem(HashMap<String, Vec<Posting>>),
    Paged { backend: Box<dyn StorageBackend>, dir: BTreeMap<String, Vec<u64>> },
}

/// Tokenized inverted index over text columns of the whole database.
///
/// Tokens are lower-cased words; the tokenizer splits on any
/// non-alphanumeric character and keeps digits so identifiers such as
/// `JW0013` survive intact.
#[derive(Debug)]
pub struct InvertedIndex {
    postings: Postings,
    documents: u64,
}

impl Default for InvertedIndex {
    fn default() -> Self {
        InvertedIndex { postings: Postings::Mem(HashMap::new()), documents: 0 }
    }
}

/// Split text into lower-cased alphanumeric tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

impl InvertedIndex {
    /// An index whose posting blocks live in `backend` (the term
    /// directory stays in RAM).
    pub fn with_backend(backend: Box<dyn StorageBackend>) -> Self {
        InvertedIndex { postings: Postings::Paged { backend, dir: BTreeMap::new() }, documents: 0 }
    }

    /// Index one cell's text.
    pub fn add_cell(&mut self, table: TableId, column: ColumnId, tuple: TupleId, text: &str) {
        self.documents += 1;
        let posting = Posting { table, column, tuple };
        for token in tokenize(text) {
            match &mut self.postings {
                Postings::Mem(map) => {
                    let list = map.entry(token).or_default();
                    // A token may repeat within one cell; store each
                    // posting once.
                    if list.last() != Some(&posting) {
                        list.push(posting);
                    }
                }
                Postings::Paged { backend, dir } => {
                    let blocks = dir.entry(token).or_default();
                    let tail = match blocks.last() {
                        Some(&id) => match read_block(backend.as_ref(), id) {
                            Some(postings) => Some((id, postings)),
                            None => continue, // unreadable tail: drop the cell
                        },
                        None => None,
                    };
                    match tail {
                        Some((_, tail_postings)) if tail_postings.last() == Some(&posting) => {}
                        Some((id, mut tail_postings)) if tail_postings.len() < BLOCK_POSTINGS => {
                            tail_postings.push(posting);
                            if let Ok(new_id) =
                                backend.update(id, &encode_posting_block(&tail_postings))
                            {
                                if let Some(last) = blocks.last_mut() {
                                    *last = new_id;
                                }
                            } else {
                                nebula_obs::counter_add("relstore.storage_errors", 1);
                            }
                        }
                        _ => {
                            // No tail yet, or the tail block is full:
                            // start a fresh block.
                            match backend.insert(&encode_posting_block(&[posting])) {
                                Ok(id) => blocks.push(id),
                                Err(_) => {
                                    nebula_obs::counter_add("relstore.storage_errors", 1);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Remove every posting for the given tuple (used on delete).
    pub fn remove_tuple(&mut self, tuple: TupleId) {
        match &mut self.postings {
            Postings::Mem(map) => {
                map.retain(|_, list| {
                    list.retain(|p| p.tuple != tuple);
                    !list.is_empty()
                });
            }
            Postings::Paged { backend, dir } => {
                // Sorted term walk keeps the page-access order (and so
                // the file bytes) deterministic.
                let mut empty_terms = Vec::new();
                for (token, blocks) in dir.iter_mut() {
                    blocks.retain_mut(|id| {
                        let Some(postings) = read_block(backend.as_ref(), *id) else {
                            return true; // unreadable: keep for the scrubber
                        };
                        if !postings.iter().any(|p| p.tuple == tuple) {
                            return true;
                        }
                        let kept: Vec<Posting> =
                            postings.into_iter().filter(|p| p.tuple != tuple).collect();
                        if kept.is_empty() {
                            if backend.delete(*id).is_err() {
                                nebula_obs::counter_add("relstore.storage_errors", 1);
                            }
                            false
                        } else {
                            match backend.update(*id, &encode_posting_block(&kept)) {
                                Ok(new_id) => *id = new_id,
                                Err(_) => {
                                    nebula_obs::counter_add("relstore.storage_errors", 1);
                                }
                            }
                            true
                        }
                    });
                    if blocks.is_empty() {
                        empty_terms.push(token.clone());
                    }
                }
                for token in empty_terms {
                    dir.remove(&token);
                }
            }
        }
    }

    /// All postings for a token (exact match, case-insensitive). The
    /// `Mem` backend borrows its list; the `Paged` backend decodes the
    /// token's blocks into an owned list.
    pub fn lookup(&self, token: &str) -> Cow<'_, [Posting]> {
        nebula_obs::counter_add("relstore.index_probes", 1);
        match &self.postings {
            Postings::Mem(map) => {
                Cow::Borrowed(map.get(&token.to_lowercase()).map(Vec::as_slice).unwrap_or(&[]))
            }
            Postings::Paged { backend, dir } => {
                let Some(blocks) = dir.get(&token.to_lowercase()) else {
                    return Cow::Owned(Vec::new());
                };
                let mut out = Vec::new();
                for &id in blocks {
                    if let Some(postings) = read_block(backend.as_ref(), id) {
                        out.extend(postings);
                    }
                }
                Cow::Owned(out)
            }
        }
    }

    /// Document frequency of a token — the number of postings, used for
    /// IDF-style weighting by the search layer.
    pub fn doc_frequency(&self, token: &str) -> usize {
        self.lookup(token).len()
    }

    /// Total number of indexed cells.
    pub fn documents(&self) -> u64 {
        self.documents
    }

    /// Number of distinct tokens.
    pub fn vocabulary(&self) -> usize {
        match &self.postings {
            Postings::Mem(map) => map.len(),
            Postings::Paged { dir, .. } => dir.len(),
        }
    }
}

/// Fetch and decode one posting block, degrading to `None` (plus the
/// storage-error counter) on I/O or codec failure.
fn read_block(backend: &dyn StorageBackend, id: u64) -> Option<Vec<Posting>> {
    match backend.get(id) {
        Ok(Some(bytes)) => match decode_posting_block(&bytes) {
            Ok(postings) => Some(postings),
            Err(_) => {
                nebula_obs::counter_add("relstore.storage_errors", 1);
                None
            }
        },
        _ => {
            nebula_obs::counter_add("relstore.storage_errors", 1);
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tid(row: u64) -> TupleId {
        TupleId::new(TableId(0), row)
    }

    #[test]
    fn hash_index_insert_get_remove() {
        let mut idx = HashIndex::default();
        idx.insert(Value::text("F1"), tid(0));
        idx.insert(Value::text("F1"), tid(1));
        idx.insert(Value::text("F2"), tid(2));
        assert_eq!(idx.get(&Value::text("F1")), &[tid(0), tid(1)]);
        assert_eq!(idx.distinct(), 2);
        idx.remove(&Value::text("F1"), tid(0));
        assert_eq!(idx.get(&Value::text("F1")), &[tid(1)]);
        idx.remove(&Value::text("F1"), tid(1));
        assert!(idx.get(&Value::text("F1")).is_empty());
        assert_eq!(idx.distinct(), 1);
    }

    #[test]
    fn tokenizer_keeps_identifiers() {
        assert_eq!(tokenize("gene JW0013, grpC!"), vec!["gene", "jw0013", "grpc"]);
        assert_eq!(tokenize("G-Actin"), vec!["g", "actin"]);
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("   ,,, "), Vec::<String>::new());
    }

    #[test]
    fn tokenizer_handles_unicode() {
        assert_eq!(tokenize("Naïve café"), vec!["naïve", "café"]);
    }

    #[test]
    fn inverted_index_lookup_case_insensitive() {
        let mut idx = InvertedIndex::default();
        idx.add_cell(TableId(0), ColumnId(1), tid(3), "grpC heat-shock");
        assert_eq!(idx.lookup("GRPC").len(), 1);
        assert_eq!(idx.lookup("heat").len(), 1);
        assert_eq!(idx.lookup("shock")[0].tuple, tid(3));
        assert_eq!(idx.lookup("missing").len(), 0);
        assert_eq!(idx.documents(), 1);
        assert!(idx.vocabulary() >= 3);
    }

    #[test]
    fn repeated_token_in_one_cell_stored_once() {
        let mut idx = InvertedIndex::default();
        idx.add_cell(TableId(0), ColumnId(0), tid(0), "aaa aaa aaa");
        assert_eq!(idx.lookup("aaa").len(), 1);
    }

    #[test]
    fn remove_tuple_clears_postings() {
        let mut idx = InvertedIndex::default();
        idx.add_cell(TableId(0), ColumnId(0), tid(0), "alpha beta");
        idx.add_cell(TableId(0), ColumnId(0), tid(1), "alpha");
        idx.remove_tuple(tid(0));
        assert_eq!(idx.lookup("alpha").len(), 1);
        assert_eq!(idx.lookup("beta").len(), 0);
    }

    #[test]
    fn doc_frequency_counts_postings() {
        let mut idx = InvertedIndex::default();
        for row in 0..5 {
            idx.add_cell(TableId(0), ColumnId(0), tid(row), "f1");
        }
        assert_eq!(idx.doc_frequency("F1"), 5);
    }
}

//! Tuples (rows) and their stable identifiers.

use crate::schema::{ColumnId, TableId, TableSchema};
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Globally unique, stable identifier of a row: `(table, row slot)`.
///
/// `TupleId`s never change once assigned and are never reused, which makes
/// them safe to store in annotation attachments and in the ACG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId {
    /// Owning table.
    pub table: TableId,
    /// Row slot within the table (dense, append-ordered).
    pub row: u64,
}

impl TupleId {
    /// Construct a tuple id.
    pub fn new(table: TableId, row: u64) -> Self {
        TupleId { table, row }
    }
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.table, self.row)
    }
}

/// A materialized row: its id, schema handle, and values.
#[derive(Debug, Clone)]
pub struct Tuple {
    /// Stable identity.
    pub id: TupleId,
    /// Schema of the owning table (shared).
    pub schema: Arc<TableSchema>,
    /// Cell values in schema column order.
    pub values: Vec<Value>,
}

impl Tuple {
    /// Value of column `col`, if in range.
    pub fn get(&self, col: ColumnId) -> Option<&Value> {
        self.values.get(col.index())
    }

    /// Value of the named column.
    pub fn get_by_name(&self, name: &str) -> Option<&Value> {
        self.schema.column_id(name).and_then(|c| self.get(c))
    }

    /// The primary-key value, if the table has a primary key.
    pub fn key(&self) -> Option<&Value> {
        self.schema.primary_key.and_then(|pk| self.get(pk))
    }

    /// Render the row as `table(col=val, ...)` for logs and evidence strings.
    pub fn render(&self) -> String {
        let cols: Vec<String> = self
            .schema
            .iter_columns()
            .zip(&self.values)
            .map(|((_, def), v)| format!("{}={}", def.name, v))
            .collect();
        format!("{}({})", self.schema.name, cols.join(", "))
    }
}

impl PartialEq for Tuple {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for Tuple {}

impl std::hash::Hash for Tuple {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn sample() -> Tuple {
        let schema = Arc::new(
            TableSchema::builder("gene")
                .column("gid", DataType::Text)
                .column("length", DataType::Int)
                .primary_key("gid")
                .build()
                .unwrap(),
        );
        Tuple {
            id: TupleId::new(TableId(1), 7),
            schema,
            values: vec![Value::text("JW0013"), Value::Int(1130)],
        }
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.get(ColumnId(0)), Some(&Value::text("JW0013")));
        assert_eq!(t.get_by_name("length"), Some(&Value::Int(1130)));
        assert_eq!(t.get_by_name("nope"), None);
        assert_eq!(t.key(), Some(&Value::text("JW0013")));
    }

    #[test]
    fn identity_semantics() {
        let a = sample();
        let mut b = sample();
        b.values[1] = Value::Int(999);
        // Equality is identity-based: same TupleId, different contents.
        assert_eq!(a, b);
        let mut c = sample();
        c.id = TupleId::new(TableId(1), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn render_contains_all_cells() {
        let r = sample().render();
        assert!(r.contains("gene("));
        assert!(r.contains("gid=JW0013"));
        assert!(r.contains("length=1130"));
    }

    #[test]
    fn tuple_id_display() {
        assert_eq!(TupleId::new(TableId(2), 5).to_string(), "T2:5");
    }
}

//! `SELECT` statements: projection, ordering, and limits on top of the
//! conjunctive-query executor.
//!
//! [`ConjunctiveQuery`] decides *which* tuples qualify;
//! [`SelectStatement`] decides what the caller sees — which columns
//! survive (the projection that drives cell-level annotation propagation),
//! in what order, and how many rows.

use crate::database::Database;
use crate::error::{Error, Result};
use crate::query::ConjunctiveQuery;
use crate::schema::ColumnId;
use crate::tuple::TupleId;
use crate::value::Value;

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Ascending (NULLs first — `Value`'s total order).
    Asc,
    /// Descending.
    Desc,
}

/// A full select statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStatement {
    /// The qualifying condition.
    pub query: ConjunctiveQuery,
    /// Columns to keep, in output order; `None` = all columns.
    pub projection: Option<Vec<ColumnId>>,
    /// Optional ordering column and direction.
    pub order_by: Option<(ColumnId, Order)>,
    /// Optional row cap, applied after ordering.
    pub limit: Option<usize>,
}

/// One output row: the source tuple id plus the projected values.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectRow {
    /// The underlying tuple (annotations propagate against this id).
    pub tuple: TupleId,
    /// Projected values in projection order.
    pub values: Vec<Value>,
}

/// The result of a select: header names plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectResult {
    /// Output column names, in order.
    pub columns: Vec<String>,
    /// The projection as column ids (for annotation propagation).
    pub projection: Option<Vec<ColumnId>>,
    /// Output rows.
    pub rows: Vec<SelectRow>,
}

impl SelectStatement {
    /// Plain `SELECT * FROM <query>`.
    pub fn new(query: ConjunctiveQuery) -> Self {
        SelectStatement { query, projection: None, order_by: None, limit: None }
    }

    /// Keep only these columns.
    pub fn project(mut self, columns: Vec<ColumnId>) -> Self {
        self.projection = Some(columns);
        self
    }

    /// Order by a column.
    pub fn order_by(mut self, column: ColumnId, order: Order) -> Self {
        self.order_by = Some((column, order));
        self
    }

    /// Cap the number of rows.
    pub fn limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Execute against the database.
    pub fn execute(&self, db: &Database) -> Result<SelectResult> {
        let table = db
            .table(self.query.base)
            .ok_or_else(|| Error::InvalidQuery(format!("unknown table {}", self.query.base)))?;
        let schema = table.schema().clone();
        // Validate projection and ordering columns up front.
        if let Some(proj) = &self.projection {
            for c in proj {
                if schema.column(*c).is_none() {
                    return Err(Error::InvalidQuery(format!(
                        "projection column {c} out of range for `{}`",
                        schema.name
                    )));
                }
            }
        }
        if let Some((c, _)) = self.order_by {
            if schema.column(c).is_none() {
                return Err(Error::InvalidQuery(format!(
                    "order-by column {c} out of range for `{}`",
                    schema.name
                )));
            }
        }

        let qualifying = self.query.execute(db)?;
        let mut tuples: Vec<crate::tuple::Tuple> =
            qualifying.tuples.iter().filter_map(|tid| db.get(*tid)).collect();
        if let Some((col, order)) = self.order_by {
            tuples.sort_by(|a, b| {
                let cmp = a.get(col).cmp(&b.get(col));
                match order {
                    Order::Asc => cmp,
                    Order::Desc => cmp.reverse(),
                }
            });
        }
        if let Some(n) = self.limit {
            tuples.truncate(n);
        }

        let columns: Vec<String> = match &self.projection {
            Some(proj) => {
                proj.iter().map(|c| schema.column(*c).expect("validated").name.clone()).collect()
            }
            None => schema.iter_columns().map(|(_, d)| d.name.clone()).collect(),
        };
        let rows = tuples
            .into_iter()
            .map(|t| {
                let values = match &self.projection {
                    Some(proj) => {
                        proj.iter().map(|c| t.get(*c).cloned().unwrap_or(Value::Null)).collect()
                    }
                    None => t.values.clone(),
                };
                SelectRow { tuple: t.id, values }
            })
            .collect();
        Ok(SelectResult { columns, projection: self.projection.clone(), rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Predicate;
    use crate::schema::TableSchema;
    use crate::value::DataType;

    fn db() -> (Database, crate::schema::TableId) {
        let mut db = Database::new();
        let gene = db
            .create_table(
                TableSchema::builder("gene")
                    .column("gid", DataType::Text)
                    .column("name", DataType::Text)
                    .column("length", DataType::Int)
                    .primary_key("gid")
                    .build()
                    .unwrap(),
            )
            .unwrap();
        for (gid, name, len) in
            [("JW0013", "grpC", 1130i64), ("JW0014", "groP", 1916), ("JW0019", "yaaB", 905)]
        {
            db.insert("gene", vec![Value::text(gid), Value::text(name), Value::Int(len)]).unwrap();
        }
        (db, gene)
    }

    #[test]
    fn select_star() {
        let (db, gene) = db();
        let r = SelectStatement::new(ConjunctiveQuery::scan(gene)).execute(&db).unwrap();
        assert_eq!(r.columns, vec!["gid", "name", "length"]);
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[0].values.len(), 3);
        assert!(r.projection.is_none());
    }

    #[test]
    fn projection_reorders_and_subsets() {
        let (db, gene) = db();
        let r = SelectStatement::new(ConjunctiveQuery::scan(gene))
            .project(vec![ColumnId(2), ColumnId(0)])
            .execute(&db)
            .unwrap();
        assert_eq!(r.columns, vec!["length", "gid"]);
        assert_eq!(r.rows[0].values, vec![Value::Int(1130), Value::text("JW0013")]);
    }

    #[test]
    fn order_by_and_limit() {
        let (db, gene) = db();
        let r = SelectStatement::new(ConjunctiveQuery::scan(gene))
            .order_by(ColumnId(2), Order::Desc)
            .limit(2)
            .execute(&db)
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0].values[0], Value::text("JW0014"), "longest gene first");
        let asc = SelectStatement::new(ConjunctiveQuery::scan(gene))
            .order_by(ColumnId(2), Order::Asc)
            .execute(&db)
            .unwrap();
        assert_eq!(asc.rows[0].values[0], Value::text("JW0019"));
    }

    #[test]
    fn where_plus_projection() {
        let (db, gene) = db();
        let name = ColumnId(1);
        let r = SelectStatement::new(
            ConjunctiveQuery::scan(gene)
                .with_predicate(Predicate::ContainsToken(name, "grpc".into())),
        )
        .project(vec![name])
        .execute(&db)
        .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].values, vec![Value::text("grpC")]);
    }

    #[test]
    fn invalid_columns_rejected() {
        let (db, gene) = db();
        assert!(SelectStatement::new(ConjunctiveQuery::scan(gene))
            .project(vec![ColumnId(9)])
            .execute(&db)
            .is_err());
        assert!(SelectStatement::new(ConjunctiveQuery::scan(gene))
            .order_by(ColumnId(9), Order::Asc)
            .execute(&db)
            .is_err());
    }

    #[test]
    fn projection_drives_annotation_propagation() {
        // The SelectResult carries the projection so annostore::propagate
        // can drop cell-level annotations of removed columns.
        let (db, gene) = db();
        let r = SelectStatement::new(ConjunctiveQuery::scan(gene))
            .project(vec![ColumnId(0)])
            .execute(&db)
            .unwrap();
        assert_eq!(r.projection, Some(vec![ColumnId(0)]));
        assert!(r.rows.iter().all(|row| db.get(row.tuple).is_some()));
    }
}

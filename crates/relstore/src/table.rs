//! Row storage for a single table.

use crate::error::{Error, Result};
use crate::index::HashIndex;
use crate::schema::{ColumnId, TableId, TableSchema};
use crate::storage::{decode_row, encode_row, StorageBackend};
use crate::tuple::{Tuple, TupleId};
use crate::value::Value;
use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::Arc;

/// Where a table's row payloads live. The slot structure (live flags,
/// `TupleId` assignment) is identical either way; only the value bytes
/// move: `Mem` holds decoded rows in a `Vec`, `Paged` holds one opaque
/// record per slot in a [`StorageBackend`] and keeps the 8-byte record
/// ids in RAM.
#[derive(Debug)]
enum Rows {
    Mem(Vec<Vec<Value>>),
    Paged { backend: Box<dyn StorageBackend>, ids: Vec<u64>, arity: usize },
}

impl Rows {
    fn len(&self) -> usize {
        match self {
            Rows::Mem(rows) => rows.len(),
            Rows::Paged { ids, .. } => ids.len(),
        }
    }

    /// Append a row slot. Paged backends can fail on real I/O errors or
    /// injected page faults; `Mem` never fails.
    fn push(&mut self, values: Vec<Value>) -> Result<()> {
        match self {
            Rows::Mem(rows) => {
                rows.push(values);
                Ok(())
            }
            Rows::Paged { backend, ids, .. } => {
                let id = backend.insert(&encode_row(&values)).map_err(Error::Storage)?;
                ids.push(id);
                Ok(())
            }
        }
    }

    /// Read one slot's values. Storage read failures degrade to `None`
    /// after bumping `relstore.storage_errors` — callers treat the row as
    /// unreadable rather than panicking; the page scrubber finds and
    /// repairs the damage out of band.
    fn row(&self, i: usize) -> Option<Cow<'_, [Value]>> {
        match self {
            Rows::Mem(rows) => rows.get(i).map(|r| Cow::Borrowed(r.as_slice())),
            Rows::Paged { backend, ids, arity } => {
                let id = *ids.get(i)?;
                let bytes = match backend.get(id) {
                    Ok(Some(bytes)) => bytes,
                    Ok(None) => {
                        nebula_obs::counter_add("relstore.storage_errors", 1);
                        return None;
                    }
                    Err(_) => {
                        nebula_obs::counter_add("relstore.storage_errors", 1);
                        return None;
                    }
                };
                match decode_row(&bytes, *arity) {
                    Ok(values) => Some(Cow::Owned(values)),
                    Err(_) => {
                        nebula_obs::counter_add("relstore.storage_errors", 1);
                        None
                    }
                }
            }
        }
    }

    /// Replace one slot's values in place (used by update; the slot keeps
    /// its position, a paged record may move to a new record id).
    fn set(&mut self, i: usize, values: Vec<Value>) -> Result<()> {
        match self {
            Rows::Mem(rows) => {
                rows[i] = values;
                Ok(())
            }
            Rows::Paged { backend, ids, .. } => {
                let new_id =
                    backend.update(ids[i], &encode_row(&values)).map_err(Error::Storage)?;
                ids[i] = new_id;
                Ok(())
            }
        }
    }
}

/// A single table: schema, append-only row storage, and per-column hash
/// indexes for every column flagged `indexed`.
#[derive(Debug)]
pub struct Table {
    id: TableId,
    schema: Arc<TableSchema>,
    rows: Rows,
    /// Live flags — rows are tombstoned rather than removed so `TupleId`s
    /// stay stable.
    live: Vec<bool>,
    live_count: usize,
    indexes: HashMap<ColumnId, HashIndex>,
}

impl Table {
    /// Create an empty table with the given id and schema, rows in RAM.
    pub fn new(id: TableId, schema: TableSchema) -> Self {
        Table::build(id, schema, None)
    }

    /// Create an empty table whose row payloads live in `backend`.
    pub fn with_backend(
        id: TableId,
        schema: TableSchema,
        backend: Box<dyn StorageBackend>,
    ) -> Self {
        Table::build(id, schema, Some(backend))
    }

    fn build(id: TableId, schema: TableSchema, backend: Option<Box<dyn StorageBackend>>) -> Self {
        let indexes = schema
            .iter_columns()
            .filter(|(_, def)| def.indexed)
            .map(|(cid, _)| (cid, HashIndex::default()))
            .collect();
        let arity = schema.arity();
        let rows = match backend {
            None => Rows::Mem(Vec::new()),
            Some(backend) => Rows::Paged { backend, ids: Vec::new(), arity },
        };
        Table { id, schema: Arc::new(schema), rows, live: Vec::new(), live_count: 0, indexes }
    }

    /// The table's catalog id.
    pub fn id(&self) -> TableId {
        self.id
    }

    /// Shared schema handle.
    pub fn schema(&self) -> &Arc<TableSchema> {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// True when the table holds no live rows.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Validate a row against the schema (arity, types, PK uniqueness).
    fn validate(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.schema.arity() {
            return Err(Error::ArityMismatch {
                table: self.schema.name.clone(),
                expected: self.schema.arity(),
                got: values.len(),
            });
        }
        for ((cid, def), v) in self.schema.iter_columns().zip(values) {
            if !v.conforms_to(def.data_type) {
                return Err(Error::TypeMismatch {
                    table: self.schema.name.clone(),
                    column: def.name.clone(),
                    expected: def.data_type,
                    got: v.data_type(),
                });
            }
            if Some(cid) == self.schema.primary_key {
                if v.is_null() {
                    return Err(Error::InvalidSchema(format!(
                        "NULL primary key in `{}`",
                        self.schema.name
                    )));
                }
                if self.lookup_key(v).is_some() {
                    return Err(Error::DuplicateKey {
                        table: self.schema.name.clone(),
                        key: v.render(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Insert a row, returning its stable id.
    pub fn insert(&mut self, values: Vec<Value>) -> Result<TupleId> {
        self.validate(&values)?;
        let row = self.rows.len() as u64;
        let tid = TupleId::new(self.id, row);
        for (cid, index) in self.indexes.iter_mut() {
            index.insert(values[cid.index()].clone(), tid);
        }
        self.rows.push(values)?;
        self.live.push(true);
        self.live_count += 1;
        Ok(tid)
    }

    /// Fetch a live row by id.
    pub fn get(&self, tid: TupleId) -> Option<Tuple> {
        if tid.table != self.id {
            return None;
        }
        let i = tid.row as usize;
        if !*self.live.get(i)? {
            return None;
        }
        let values = self.rows.row(i)?.into_owned();
        Some(Tuple { id: tid, schema: Arc::clone(&self.schema), values })
    }

    /// Replace a live row's values in place (the tuple id is preserved).
    /// Validates arity, types, and primary-key uniqueness (the row may
    /// keep its own key) and maintains the hash indexes.
    pub fn update(&mut self, tid: TupleId, values: Vec<Value>) -> Result<()> {
        if !self.is_live(tid) {
            return Err(Error::UnknownTuple(tid));
        }
        if values.len() != self.schema.arity() {
            return Err(Error::ArityMismatch {
                table: self.schema.name.clone(),
                expected: self.schema.arity(),
                got: values.len(),
            });
        }
        for ((cid, def), v) in self.schema.iter_columns().zip(&values) {
            if !v.conforms_to(def.data_type) {
                return Err(Error::TypeMismatch {
                    table: self.schema.name.clone(),
                    column: def.name.clone(),
                    expected: def.data_type,
                    got: v.data_type(),
                });
            }
            if Some(cid) == self.schema.primary_key {
                if v.is_null() {
                    return Err(Error::InvalidSchema(format!(
                        "NULL primary key in `{}`",
                        self.schema.name
                    )));
                }
                if let Some(holder) = self.lookup_key(v) {
                    if holder != tid {
                        return Err(Error::DuplicateKey {
                            table: self.schema.name.clone(),
                            key: v.render(),
                        });
                    }
                }
            }
        }
        let row = tid.row as usize;
        let old = self.rows.row(row).map(Cow::into_owned).unwrap_or_default();
        for (cid, index) in self.indexes.iter_mut() {
            if let Some(v) = old.get(cid.index()) {
                index.remove(v, tid);
            }
            index.insert(values[cid.index()].clone(), tid);
        }
        self.rows.set(row, values)?;
        Ok(())
    }

    /// Delete (tombstone) a row. Returns true if the row was live.
    ///
    /// The slot's values stay in storage (dead slots survive snapshots so
    /// `TupleId`s stay stable), only the live flag and indexes change.
    pub fn delete(&mut self, tid: TupleId) -> bool {
        if tid.table != self.id {
            return false;
        }
        let i = tid.row as usize;
        if i >= self.live.len() || !self.live[i] {
            return false;
        }
        self.live[i] = false;
        self.live_count -= 1;
        let old = self.rows.row(i).map(Cow::into_owned).unwrap_or_default();
        for (cid, index) in self.indexes.iter_mut() {
            if let Some(v) = old.get(cid.index()) {
                index.remove(v, tid);
            }
        }
        true
    }

    /// Iterate all live tuples in insertion order.
    pub fn scan(&self) -> impl Iterator<Item = Tuple> + '_ {
        (0..self.rows.len()).filter(|i| self.live[*i]).filter_map(move |i| {
            Some(Tuple {
                id: TupleId::new(self.id, i as u64),
                schema: Arc::clone(&self.schema),
                values: self.rows.row(i)?.into_owned(),
            })
        })
    }

    /// Exact-match lookup on the primary key (O(1) via the PK index).
    pub fn lookup_key(&self, key: &Value) -> Option<TupleId> {
        let pk = self.schema.primary_key?;
        self.indexes
            .get(&pk)
            .and_then(|idx| idx.get(key).iter().copied().find(|tid| self.is_live(*tid)))
    }

    /// Exact-match lookup on any indexed column; falls back to a scan for
    /// unindexed columns.
    pub fn lookup(&self, col: ColumnId, value: &Value) -> Vec<TupleId> {
        if let Some(idx) = self.indexes.get(&col) {
            return idx.get(value).iter().copied().filter(|t| self.is_live(*t)).collect();
        }
        (0..self.rows.len())
            .filter(|i| {
                self.live[*i]
                    && self.rows.row(*i).is_some_and(|row| row.get(col.index()) == Some(value))
            })
            .map(|i| TupleId::new(self.id, i as u64))
            .collect()
    }

    /// Whether the given id refers to a live row of this table.
    pub fn is_live(&self, tid: TupleId) -> bool {
        tid.table == self.id && self.live.get(tid.row as usize).copied().unwrap_or(false)
    }

    /// Raw slot iterator for snapshotting: `(live, values)` in slot order,
    /// including tombstoned rows (their slots must survive a
    /// save/load cycle so `TupleId`s stay stable). A paged slot whose
    /// record cannot be read degrades to a row of `Null`s (arity
    /// preserved) so the snapshot structure stays decodable; the error
    /// counter and the page scrubber report the damage.
    pub(crate) fn raw_slots(&self) -> impl Iterator<Item = (bool, Vec<Value>)> + '_ {
        let arity = self.schema.arity();
        self.live.iter().enumerate().map(move |(i, live)| {
            let values =
                self.rows.row(i).map(Cow::into_owned).unwrap_or_else(|| vec![Value::Null; arity]);
            (*live, values)
        })
    }

    /// Restore one slot during snapshot load, bypassing re-validation (the
    /// snapshot was valid when written) but maintaining the hash indexes
    /// for live rows. Returns the restored slot's tuple id.
    pub(crate) fn restore_slot(&mut self, live: bool, values: Vec<Value>) -> Result<TupleId> {
        let row = self.rows.len() as u64;
        let tid = TupleId::new(self.id, row);
        if live {
            for (cid, index) in self.indexes.iter_mut() {
                index.insert(values[cid.index()].clone(), tid);
            }
            self.live_count += 1;
        }
        self.rows.push(values)?;
        self.live.push(live);
        Ok(tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn table() -> Table {
        let schema = TableSchema::builder("gene")
            .column("gid", DataType::Text)
            .column("name", DataType::Text)
            .column("length", DataType::Int)
            .primary_key("gid")
            .build()
            .unwrap();
        Table::new(TableId(0), schema)
    }

    fn row(gid: &str, name: &str, len: i64) -> Vec<Value> {
        vec![Value::text(gid), Value::text(name), Value::Int(len)]
    }

    #[test]
    fn insert_get_scan() {
        let mut t = table();
        let a = t.insert(row("JW0013", "grpC", 1130)).unwrap();
        let b = t.insert(row("JW0014", "groP", 1916)).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(a).unwrap().get_by_name("name"), Some(&Value::text("grpC")));
        let ids: Vec<TupleId> = t.scan().map(|tp| tp.id).collect();
        assert_eq!(ids, vec![a, b]);
    }

    #[test]
    fn arity_and_type_checks() {
        let mut t = table();
        assert!(matches!(t.insert(vec![Value::text("JW0013")]), Err(Error::ArityMismatch { .. })));
        assert!(matches!(
            t.insert(vec![Value::text("JW0013"), Value::Int(3), Value::Int(4)]),
            Err(Error::TypeMismatch { .. })
        ));
    }

    #[test]
    fn nulls_allowed_except_primary_key() {
        let mut t = table();
        assert!(t.insert(vec![Value::text("JW0015"), Value::Null, Value::Null]).is_ok());
        assert!(t.insert(vec![Value::Null, Value::text("x"), Value::Int(1)]).is_err());
    }

    #[test]
    fn duplicate_keys_rejected() {
        let mut t = table();
        t.insert(row("JW0013", "grpC", 1130)).unwrap();
        assert!(matches!(t.insert(row("JW0013", "zzz", 1)), Err(Error::DuplicateKey { .. })));
    }

    #[test]
    fn delete_tombstones_and_frees_key() {
        let mut t = table();
        let a = t.insert(row("JW0013", "grpC", 1130)).unwrap();
        assert!(t.delete(a));
        assert!(!t.delete(a), "double delete is a no-op");
        assert_eq!(t.len(), 0);
        assert!(t.get(a).is_none());
        // Primary key can be reused after deletion.
        let b = t.insert(row("JW0013", "grpC2", 900)).unwrap();
        assert_ne!(a, b, "tuple ids are never reused");
        assert_eq!(t.lookup_key(&Value::text("JW0013")), Some(b));
    }

    #[test]
    fn lookup_indexed_and_unindexed() {
        let mut t = table();
        let a = t.insert(row("JW0013", "grpC", 1130)).unwrap();
        let b = t.insert(row("JW0014", "grpC", 1916)).unwrap();
        // PK (indexed)
        assert_eq!(t.lookup_key(&Value::text("JW0014")), Some(b));
        // name column is unindexed -> scan fallback
        let name_col = t.schema().column_id("name").unwrap();
        let mut hits = t.lookup(name_col, &Value::text("grpC"));
        hits.sort();
        assert_eq!(hits, vec![a, b]);
    }

    #[test]
    fn update_replaces_values_and_indexes() {
        let mut t = table();
        let a = t.insert(row("JW0013", "grpC", 1130)).unwrap();
        t.update(a, row("JW0013", "grpC2", 999)).unwrap();
        assert_eq!(t.get(a).unwrap().get_by_name("name"), Some(&Value::text("grpC2")));
        // Changing the primary key re-indexes it.
        t.update(a, row("JW0099", "grpC2", 999)).unwrap();
        assert_eq!(t.lookup_key(&Value::text("JW0099")), Some(a));
        assert_eq!(t.lookup_key(&Value::text("JW0013")), None);
    }

    #[test]
    fn update_validation() {
        let mut t = table();
        let a = t.insert(row("JW0013", "grpC", 1130)).unwrap();
        let b = t.insert(row("JW0014", "groP", 1916)).unwrap();
        // Stealing another row's key fails.
        assert!(matches!(t.update(a, row("JW0014", "x", 1)), Err(Error::DuplicateKey { .. })));
        // Keeping one's own key is fine.
        assert!(t.update(a, row("JW0013", "x", 1)).is_ok());
        // Arity and type checks apply.
        assert!(t.update(a, vec![Value::text("JW0013")]).is_err());
        assert!(t.update(a, vec![Value::text("JW0013"), Value::Int(1), Value::Int(1)]).is_err());
        // Dead rows cannot be updated.
        t.delete(b);
        assert!(matches!(t.update(b, row("JW0014", "y", 2)), Err(Error::UnknownTuple(_))));
    }

    #[test]
    fn get_from_wrong_table_is_none() {
        let t = table();
        assert!(t.get(TupleId::new(TableId(42), 0)).is_none());
    }
}

//! The `Database` facade: catalog + tables + the global inverted index.

use crate::catalog::{Catalog, ForeignKey};
use crate::error::{Error, Result};
use crate::index::InvertedIndex;
use crate::schema::{TableId, TableSchema};
use crate::storage::{StorageFactory, POSTINGS_NAMESPACE};
use crate::table::Table;
use crate::tuple::{Tuple, TupleId};
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// A relational database, RAM-resident or disk-paged.
///
/// Maintains a [`Catalog`], one [`Table`] per registered schema, and a
/// database-wide [`InvertedIndex`] over every searchable text column —
/// the index the keyword-search layer probes. When built with
/// [`Database::with_storage`], row payloads and posting blocks live in
/// backends the factory opens (one namespace per table plus one for the
/// index); otherwise everything stays in RAM.
#[derive(Debug, Default)]
pub struct Database {
    catalog: Catalog,
    tables: HashMap<TableId, Table>,
    inverted: InvertedIndex,
    storage: Option<Arc<dyn StorageFactory>>,
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Create an empty database whose row payloads and posting blocks
    /// live in backends opened by `factory`.
    pub fn with_storage(factory: Arc<dyn StorageFactory>) -> Self {
        Database {
            catalog: Catalog::default(),
            tables: HashMap::new(),
            inverted: InvertedIndex::with_backend(factory.open(POSTINGS_NAMESPACE)),
            storage: Some(factory),
        }
    }

    /// The storage factory behind this database, if it is disk-paged.
    pub fn storage_factory(&self) -> Option<&Arc<dyn StorageFactory>> {
        self.storage.as_ref()
    }

    /// One-line description of where the database's bytes live.
    pub fn storage_label(&self) -> String {
        match &self.storage {
            Some(f) => f.describe(),
            None => "mem".into(),
        }
    }

    /// Register a table from a schema. Fails if the name is taken.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<TableId> {
        let id = self.catalog.register(&schema.name)?;
        let table = match &self.storage {
            Some(factory) => Table::with_backend(id, schema, factory.open(id.0)),
            None => Table::new(id, schema),
        };
        self.tables.insert(id, table);
        Ok(id)
    }

    /// Declare a foreign key `from_table.from_column -> to_table` (which
    /// must have a primary key).
    pub fn add_foreign_key(
        &mut self,
        from_table: &str,
        from_column: &str,
        to_table: &str,
    ) -> Result<()> {
        let from = self.catalog.require(from_table)?;
        let to = self.catalog.require(to_table)?;
        let from_col = self.tables[&from].schema().require_column(from_column)?;
        if self.tables[&to].schema().primary_key.is_none() {
            return Err(Error::InvalidSchema(format!(
                "foreign key target `{to_table}` has no primary key"
            )));
        }
        self.catalog.add_foreign_key(ForeignKey {
            from_table: from,
            from_column: from_col,
            to_table: to,
        });
        Ok(())
    }

    /// The catalog (read-only).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The global inverted index (read-only).
    pub fn inverted_index(&self) -> &InvertedIndex {
        &self.inverted
    }

    /// Table handle by id.
    pub fn table(&self, id: TableId) -> Option<&Table> {
        self.tables.get(&id)
    }

    /// Table handle by name.
    pub fn table_by_name(&self, name: &str) -> Option<&Table> {
        self.catalog.resolve(name).and_then(|id| self.tables.get(&id))
    }

    /// Insert a row into the named table, indexing its text cells.
    pub fn insert(&mut self, table: &str, values: Vec<Value>) -> Result<TupleId> {
        let id = self.catalog.require(table)?;
        self.insert_into(id, values)
    }

    /// Insert a row into a table by id.
    pub fn insert_into(&mut self, table: TableId, values: Vec<Value>) -> Result<TupleId> {
        let t = self.tables.get_mut(&table).ok_or(Error::UnknownTable(format!("{table}")))?;
        // Snapshot searchable text cells before moving `values` into the table.
        let searchable: Vec<(crate::schema::ColumnId, String)> = t
            .schema()
            .iter_columns()
            .zip(values.iter())
            .filter(|((_, def), v)| def.searchable && v.as_text().is_some())
            .map(|((cid, _), v)| (cid, v.as_text().unwrap().to_string()))
            .collect();
        let tid = t.insert(values)?;
        for (cid, text) in searchable {
            self.inverted.add_cell(table, cid, tid, &text);
        }
        Ok(tid)
    }

    /// Restore one row slot during snapshot load: bypasses validation but
    /// rebuilds the inverted index for live searchable text cells.
    pub(crate) fn restore_slot(
        &mut self,
        table: TableId,
        live: bool,
        values: Vec<Value>,
    ) -> Result<()> {
        let Some(t) = self.tables.get_mut(&table) else { return Ok(()) };
        let searchable: Vec<(crate::schema::ColumnId, String)> = if live {
            t.schema()
                .iter_columns()
                .zip(values.iter())
                .filter(|((_, def), v)| def.searchable && v.as_text().is_some())
                .map(|((cid, _), v)| (cid, v.as_text().expect("filtered").to_string()))
                .collect()
        } else {
            Vec::new()
        };
        let tid = t.restore_slot(live, values)?;
        for (cid, text) in searchable {
            self.inverted.add_cell(table, cid, tid, &text);
        }
        Ok(())
    }

    /// Restore a foreign key during snapshot load, validating the
    /// referenced objects exist.
    pub(crate) fn restore_foreign_key(&mut self, fk: ForeignKey) -> Result<()> {
        let valid = self
            .tables
            .get(&fk.from_table)
            .map(|t| t.schema().column(fk.from_column).is_some())
            .unwrap_or(false)
            && self.tables.contains_key(&fk.to_table);
        if !valid {
            return Err(Error::InvalidSchema(format!(
                "snapshot foreign key references missing objects: {fk:?}"
            )));
        }
        self.catalog.add_foreign_key(fk);
        Ok(())
    }

    /// Fetch a live tuple by id.
    pub fn get(&self, tid: TupleId) -> Option<Tuple> {
        self.tables.get(&tid.table)?.get(tid)
    }

    /// Update a live tuple in place (id preserved), refreshing both the
    /// hash indexes and the inverted index.
    pub fn update(&mut self, tid: TupleId, values: Vec<Value>) -> Result<()> {
        let t = self.tables.get_mut(&tid.table).ok_or(Error::UnknownTuple(tid))?;
        let searchable: Vec<(crate::schema::ColumnId, String)> = t
            .schema()
            .iter_columns()
            .zip(values.iter())
            .filter(|((_, def), v)| def.searchable && v.as_text().is_some())
            .map(|((cid, _), v)| (cid, v.as_text().expect("filtered").to_string()))
            .collect();
        t.update(tid, values)?;
        self.inverted.remove_tuple(tid);
        for (cid, text) in searchable {
            self.inverted.add_cell(tid.table, cid, tid, &text);
        }
        Ok(())
    }

    /// Delete a tuple, cleaning its index entries. Returns true if it was live.
    pub fn delete(&mut self, tid: TupleId) -> bool {
        let Some(t) = self.tables.get_mut(&tid.table) else { return false };
        if t.delete(tid) {
            self.inverted.remove_tuple(tid);
            true
        } else {
            false
        }
    }

    /// Number of live tuples across all tables.
    pub fn total_tuples(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }

    /// Follow a foreign key from `tuple` to the referenced row, if any.
    pub fn follow_fk(&self, tuple: &Tuple, fk: &ForeignKey) -> Option<TupleId> {
        if tuple.id.table != fk.from_table {
            return None;
        }
        let key = tuple.get(fk.from_column)?;
        if key.is_null() {
            return None;
        }
        self.tables.get(&fk.to_table)?.lookup_key(key)
    }

    /// All tuples referencing `target` through any incoming foreign key.
    pub fn referencing(&self, target: TupleId) -> Vec<TupleId> {
        let Some(key_tuple) = self.get(target) else { return Vec::new() };
        let Some(key) = key_tuple.key() else { return Vec::new() };
        let mut out = Vec::new();
        for fk in self.catalog.incoming(target.table) {
            if let Some(t) = self.tables.get(&fk.from_table) {
                out.extend(t.lookup(fk.from_column, key));
            }
        }
        out
    }

    /// Materialize a restricted copy of this database containing only the
    /// given tuples (schemas, catalog and FKs are preserved; the inverted
    /// index covers only the surviving rows).
    ///
    /// This implements the *miniDB* of the paper's focal-based spreading
    /// search (§6.3): `KeywordSearch(q, miniDB)` runs unchanged over it.
    ///
    /// Note: tuple ids are **not** preserved — the returned map translates
    /// miniDB ids back to ids in `self`.
    pub fn materialize_subset(&self, tuples: &[TupleId]) -> (Database, HashMap<TupleId, TupleId>) {
        let mut mini = Database::new();
        // Recreate all tables so TableIds line up with the original catalog.
        for (tid, _name) in self.catalog.iter() {
            let schema = (**self.tables[&tid].schema()).clone();
            mini.create_table(schema).expect("fresh catalog cannot collide");
        }
        for fk in self.catalog.foreign_keys() {
            mini.catalog.add_foreign_key(*fk);
        }
        let mut back = HashMap::new();
        let mut sorted: Vec<TupleId> = tuples.to_vec();
        sorted.sort();
        sorted.dedup();
        for orig in sorted {
            if let Some(tuple) = self.get(orig) {
                // Skip rows whose PK already exists (duplicates collapse).
                match mini.insert_into(orig.table, tuple.values.clone()) {
                    Ok(new_id) => {
                        back.insert(new_id, orig);
                    }
                    Err(Error::DuplicateKey { .. }) => {}
                    Err(e) => unreachable!("subset insert cannot fail structurally: {e}"),
                }
            }
        }
        (mini, back)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::value::DataType;

    fn bio_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("gene")
                .column("gid", DataType::Text)
                .column("name", DataType::Text)
                .primary_key("gid")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("protein")
                .column("pid", DataType::Text)
                .column("pname", DataType::Text)
                .column("gene_id", DataType::Text)
                .primary_key("pid")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_foreign_key("protein", "gene_id", "gene").unwrap();
        db
    }

    #[test]
    fn create_insert_get() {
        let mut db = bio_db();
        let g = db.insert("gene", vec![Value::text("JW0013"), Value::text("grpC")]).unwrap();
        assert_eq!(db.get(g).unwrap().get_by_name("name"), Some(&Value::text("grpC")));
        assert_eq!(db.total_tuples(), 1);
    }

    #[test]
    fn inverted_index_tracks_inserts_and_deletes() {
        let mut db = bio_db();
        let g = db.insert("gene", vec![Value::text("JW0013"), Value::text("grpC")]).unwrap();
        assert_eq!(db.inverted_index().lookup("grpc").len(), 1);
        assert!(db.delete(g));
        assert_eq!(db.inverted_index().lookup("grpc").len(), 0);
    }

    #[test]
    fn update_refreshes_inverted_index() {
        let mut db = bio_db();
        let g = db.insert("gene", vec![Value::text("JW0013"), Value::text("grpC")]).unwrap();
        db.update(g, vec![Value::text("JW0013"), Value::text("renamedX")]).unwrap();
        assert_eq!(db.inverted_index().lookup("grpc").len(), 0, "old tokens gone");
        assert_eq!(db.inverted_index().lookup("renamedx").len(), 1);
        assert_eq!(db.get(g).unwrap().get_by_name("name"), Some(&Value::text("renamedX")));
    }

    #[test]
    fn follow_fk_and_referencing() {
        let mut db = bio_db();
        let g = db.insert("gene", vec![Value::text("JW0013"), Value::text("grpC")]).unwrap();
        let p = db
            .insert(
                "protein",
                vec![Value::text("P001"), Value::text("Actin"), Value::text("JW0013")],
            )
            .unwrap();
        let fk = db.catalog().foreign_keys()[0];
        let pt = db.get(p).unwrap();
        assert_eq!(db.follow_fk(&pt, &fk), Some(g));
        assert_eq!(db.referencing(g), vec![p]);
    }

    #[test]
    fn fk_to_table_without_pk_rejected() {
        let mut db = Database::new();
        db.create_table(TableSchema::builder("nopk").column("x", DataType::Int).build().unwrap())
            .unwrap();
        db.create_table(
            TableSchema::builder("src")
                .column("id", DataType::Int)
                .column("r", DataType::Int)
                .primary_key("id")
                .build()
                .unwrap(),
        )
        .unwrap();
        assert!(db.add_foreign_key("src", "r", "nopk").is_err());
    }

    #[test]
    fn materialize_subset_preserves_schema_and_maps_ids() {
        let mut db = bio_db();
        let g1 = db.insert("gene", vec![Value::text("JW0013"), Value::text("grpC")]).unwrap();
        let _g2 = db.insert("gene", vec![Value::text("JW0014"), Value::text("groP")]).unwrap();
        let p = db
            .insert(
                "protein",
                vec![Value::text("P001"), Value::text("Actin"), Value::text("JW0013")],
            )
            .unwrap();

        let (mini, back) = db.materialize_subset(&[g1, p, g1]);
        assert_eq!(mini.total_tuples(), 2, "duplicates collapse");
        assert_eq!(mini.catalog().len(), db.catalog().len());
        assert_eq!(mini.catalog().foreign_keys().len(), 1);
        // Every miniDB tuple maps back to a real tuple.
        for (mini_id, orig_id) in &back {
            let a = mini.get(*mini_id).unwrap();
            let b = db.get(*orig_id).unwrap();
            assert_eq!(a.values, b.values);
        }
        // The miniDB's inverted index only covers surviving rows.
        assert_eq!(mini.inverted_index().lookup("grpc").len(), 1);
        assert_eq!(mini.inverted_index().lookup("grop").len(), 0);
    }
}

//! # relstore — an in-memory relational storage engine
//!
//! `relstore` is the relational substrate the Nebula annotation engine runs
//! on. It provides:
//!
//! - typed [`Value`]s and [`DataType`]s ([`value`]),
//! - table [`schema`]s with primary keys and foreign-key relationships,
//! - row storage with stable [`TupleId`]s ([`table`]),
//! - a [`catalog`] tracking tables and the FK–PK graph,
//! - secondary [`index`]es: exact-match hash indexes and a tokenized
//!   inverted index used by keyword search,
//! - a small conjunctive-[`query`] layer (select / project / FK-join) that
//!   plays the role of the SQL engine keyword-search techniques generate
//!   queries against,
//! - a [`Database`] facade tying it all together.
//!
//! The engine is deliberately simple (single-node, in-memory, no
//! transactions) but complete enough that every experiment in the Nebula
//! paper runs against it unchanged.
//!
//! ## Quick example
//!
//! ```
//! use relstore::{Database, TableSchema, DataType, Value};
//!
//! let mut db = Database::new();
//! let schema = TableSchema::builder("gene")
//!     .column("gid", DataType::Text)
//!     .column("name", DataType::Text)
//!     .column("length", DataType::Int)
//!     .primary_key("gid")
//!     .build()
//!     .unwrap();
//! db.create_table(schema).unwrap();
//! let tid = db
//!     .insert("gene", vec![Value::text("JW0013"), Value::text("grpC"), Value::Int(1130)])
//!     .unwrap();
//! let tuple = db.get(tid).unwrap();
//! assert_eq!(tuple.get_by_name("name"), Some(&Value::text("grpC")));
//! ```

pub mod catalog;
pub mod database;
pub mod error;
pub mod index;
pub mod query;
pub mod schema;
pub mod select;
pub mod snapshot;
pub mod storage;
pub mod table;
pub mod tuple;
pub mod value;

pub use catalog::{Catalog, ForeignKey};
pub use database::Database;
pub use error::{Error, Result};
pub use index::{HashIndex, InvertedIndex, Posting};
pub use query::{ConjunctiveQuery, JoinStep, Predicate, QueryResult};
pub use schema::{ColumnDef, ColumnId, TableId, TableSchema, TableSchemaBuilder};
pub use select::{Order, SelectResult, SelectRow, SelectStatement};
pub use storage::{StorageBackend, StorageError, StorageFactory, POSTINGS_NAMESPACE};
pub use table::Table;
pub use tuple::{Tuple, TupleId};
pub use value::{DataType, Value};

//! Typed values stored in table cells.

use std::cmp::Ordering;
use std::fmt;

/// The data type of a column or value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float (totally ordered via IEEE total order for storage).
    Float,
    /// UTF-8 string.
    Text,
    /// Absence of a value; compatible with every column type.
    Null,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "int"),
            DataType::Float => write!(f, "float"),
            DataType::Text => write!(f, "text"),
            DataType::Null => write!(f, "null"),
        }
    }
}

/// A single cell value.
///
/// Values are ordered (floats via total ordering) and hashable so they can be
/// used as index keys. `Null` compares less than everything else and equals
/// only itself.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Text(String),
}

impl Value {
    /// Convenience constructor for text values.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// The runtime [`DataType`] of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Text(_) => DataType::Text,
        }
    }

    /// True when the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrow the inner string if this is a text value.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Return the inner integer if this is an int value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Return the inner float if this is a float value.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Whether this value can be stored in a column of type `ty`
    /// (`Null` is storable everywhere).
    pub fn conforms_to(&self, ty: DataType) -> bool {
        self.is_null() || self.data_type() == ty
    }

    /// Parse a string into the "best" value of the given type.
    ///
    /// Returns `None` when the string does not parse as `ty`.
    pub fn parse_as(s: &str, ty: DataType) -> Option<Value> {
        match ty {
            DataType::Int => s.parse::<i64>().ok().map(Value::Int),
            DataType::Float => s.parse::<f64>().ok().map(Value::Float),
            DataType::Text => Some(Value::text(s)),
            DataType::Null => None,
        }
    }

    /// Render the value as it would appear in annotation text / query output.
    /// `Null` renders as the empty string.
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Int(i) => i.to_string(),
            Value::Float(x) => format!("{x}"),
            Value::Text(s) => s.clone(),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Text(a), Value::Text(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        core::mem::discriminant(self).hash(state);
        match self {
            Value::Null => {}
            Value::Int(i) => i.hash(state),
            Value::Float(x) => x.to_bits().hash(state),
            Value::Text(s) => s.hash(state),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Int(_) => 1,
                Float(_) => 2,
                Text(_) => 3,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::text(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn data_types_roundtrip() {
        assert_eq!(Value::Int(7).data_type(), DataType::Int);
        assert_eq!(Value::Float(1.5).data_type(), DataType::Float);
        assert_eq!(Value::text("x").data_type(), DataType::Text);
        assert_eq!(Value::Null.data_type(), DataType::Null);
    }

    #[test]
    fn null_conforms_to_everything() {
        for ty in [DataType::Int, DataType::Float, DataType::Text] {
            assert!(Value::Null.conforms_to(ty));
        }
        assert!(Value::Int(1).conforms_to(DataType::Int));
        assert!(!Value::Int(1).conforms_to(DataType::Text));
    }

    #[test]
    fn parse_as_respects_type() {
        assert_eq!(Value::parse_as("42", DataType::Int), Some(Value::Int(42)));
        assert_eq!(Value::parse_as("4.5", DataType::Float), Some(Value::Float(4.5)));
        assert_eq!(Value::parse_as("abc", DataType::Int), None);
        assert_eq!(Value::parse_as("abc", DataType::Text), Some(Value::text("abc")));
        assert_eq!(Value::parse_as("x", DataType::Null), None);
    }

    #[test]
    fn float_equality_uses_bits() {
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert_ne!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(hash_of(&Value::Float(1.25)), hash_of(&Value::Float(1.25)));
    }

    #[test]
    fn ordering_is_total_and_null_first() {
        let mut vals = [
            Value::text("b"),
            Value::Int(3),
            Value::Null,
            Value::Float(2.5),
            Value::Int(-1),
            Value::text("a"),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Int(-1));
        assert_eq!(vals[2], Value::Int(3));
        assert_eq!(vals[3], Value::Float(2.5));
        assert_eq!(vals[4], Value::text("a"));
        assert_eq!(vals[5], Value::text("b"));
    }

    #[test]
    fn render_matches_display_for_non_null() {
        for v in [Value::Int(9), Value::Float(0.5), Value::text("yaaB")] {
            assert_eq!(v.render(), v.to_string());
        }
        assert_eq!(Value::Null.render(), "");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
        assert_eq!(Value::from("g"), Value::text("g"));
        assert_eq!(Value::from(String::from("g")), Value::text("g"));
    }
}

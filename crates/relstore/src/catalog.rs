//! The catalog: table registry plus the FK–PK relationship graph.

use crate::error::{Error, Result};
use crate::schema::{ColumnId, TableId};
use std::collections::HashMap;

/// A foreign-key relationship: `from_table.from_column` references
/// `to_table`'s primary key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ForeignKey {
    /// Referencing table.
    pub from_table: TableId,
    /// Referencing column.
    pub from_column: ColumnId,
    /// Referenced table (keyed by its primary key).
    pub to_table: TableId,
}

/// Catalog of table names/ids and declared foreign keys.
///
/// The keyword-search layer walks the FK graph to join tuples from related
/// tables into meaningful answers, so the catalog exposes neighbor queries
/// in both directions.
#[derive(Debug, Default)]
pub struct Catalog {
    by_name: HashMap<String, TableId>,
    names: Vec<String>,
    foreign_keys: Vec<ForeignKey>,
}

impl Catalog {
    /// Register a new table name, returning its id.
    pub fn register(&mut self, name: &str) -> Result<TableId> {
        let key = name.to_lowercase();
        if self.by_name.contains_key(&key) {
            return Err(Error::TableExists(name.to_string()));
        }
        let id = TableId(self.names.len() as u32);
        self.by_name.insert(key, id);
        self.names.push(name.to_string());
        Ok(id)
    }

    /// Resolve a table name (case-insensitive).
    pub fn resolve(&self, name: &str) -> Option<TableId> {
        self.by_name.get(&name.to_lowercase()).copied()
    }

    /// Resolve or error.
    pub fn require(&self, name: &str) -> Result<TableId> {
        self.resolve(name).ok_or_else(|| Error::UnknownTable(name.to_string()))
    }

    /// The display name of a table id.
    pub fn name(&self, id: TableId) -> Option<&str> {
        self.names.get(id.0 as usize).map(String::as_str)
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate `(TableId, name)`.
    pub fn iter(&self) -> impl Iterator<Item = (TableId, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (TableId(i as u32), n.as_str()))
    }

    /// Declare a foreign key.
    pub fn add_foreign_key(&mut self, fk: ForeignKey) {
        if !self.foreign_keys.contains(&fk) {
            self.foreign_keys.push(fk);
        }
    }

    /// All declared foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// Foreign keys whose referencing side is `table`.
    pub fn outgoing(&self, table: TableId) -> impl Iterator<Item = &ForeignKey> {
        self.foreign_keys.iter().filter(move |fk| fk.from_table == table)
    }

    /// Foreign keys whose referenced side is `table`.
    pub fn incoming(&self, table: TableId) -> impl Iterator<Item = &ForeignKey> {
        self.foreign_keys.iter().filter(move |fk| fk.to_table == table)
    }

    /// Tables adjacent to `table` in the FK graph (either direction),
    /// deduplicated.
    pub fn neighbors(&self, table: TableId) -> Vec<TableId> {
        let mut out: Vec<TableId> = self
            .outgoing(table)
            .map(|fk| fk.to_table)
            .chain(self.incoming(table).map(|fk| fk.from_table))
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_resolve() {
        let mut c = Catalog::default();
        let g = c.register("Gene").unwrap();
        let p = c.register("Protein").unwrap();
        assert_eq!(c.resolve("gene"), Some(g));
        assert_eq!(c.resolve("PROTEIN"), Some(p));
        assert_eq!(c.resolve("nope"), None);
        assert_eq!(c.name(g), Some("Gene"));
        assert_eq!(c.len(), 2);
        assert!(matches!(c.register("GENE"), Err(Error::TableExists(_))));
    }

    #[test]
    fn require_errors() {
        let c = Catalog::default();
        assert!(matches!(c.require("x"), Err(Error::UnknownTable(_))));
    }

    #[test]
    fn fk_graph_neighbors() {
        let mut c = Catalog::default();
        let gene = c.register("gene").unwrap();
        let protein = c.register("protein").unwrap();
        let publication = c.register("publication").unwrap();
        // protein.gene_id -> gene
        c.add_foreign_key(ForeignKey {
            from_table: protein,
            from_column: ColumnId(2),
            to_table: gene,
        });
        // publication_protein join is modeled as publication fk for the test
        c.add_foreign_key(ForeignKey {
            from_table: publication,
            from_column: ColumnId(1),
            to_table: protein,
        });

        assert_eq!(c.neighbors(protein), vec![gene, publication]);
        assert_eq!(c.neighbors(gene), vec![protein]);
        assert_eq!(c.outgoing(protein).count(), 1);
        assert_eq!(c.incoming(protein).count(), 1);
    }

    #[test]
    fn duplicate_fk_ignored() {
        let mut c = Catalog::default();
        let a = c.register("a").unwrap();
        let b = c.register("b").unwrap();
        let fk = ForeignKey { from_table: a, from_column: ColumnId(0), to_table: b };
        c.add_foreign_key(fk);
        c.add_foreign_key(fk);
        assert_eq!(c.foreign_keys().len(), 1);
    }
}

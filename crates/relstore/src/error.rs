//! Error types for the relational engine.

use std::fmt;

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the relational engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A table with this name already exists in the catalog.
    TableExists(String),
    /// The named table does not exist.
    UnknownTable(String),
    /// The named column does not exist in the given table.
    UnknownColumn { table: String, column: String },
    /// A row's arity does not match its table schema.
    ArityMismatch { table: String, expected: usize, got: usize },
    /// A value's type does not match the column's declared type.
    TypeMismatch {
        table: String,
        column: String,
        expected: crate::value::DataType,
        got: crate::value::DataType,
    },
    /// Insertion would violate the table's primary-key uniqueness.
    DuplicateKey { table: String, key: String },
    /// A foreign-key reference points at a missing row.
    ForeignKeyViolation { from: String, to: String, key: String },
    /// The tuple id does not resolve to a live row.
    UnknownTuple(crate::tuple::TupleId),
    /// Schema construction failed (e.g. duplicate column names).
    InvalidSchema(String),
    /// A query referenced tables/columns inconsistently.
    InvalidQuery(String),
    /// Execution tripped the installed resource budget.
    BudgetExceeded(nebula_govern::BudgetExceeded),
    /// A seeded fault plan injected a failure at a relstore site.
    FaultInjected(nebula_govern::InjectedFault),
    /// The storage backend behind a table or the inverted index failed.
    Storage(crate::storage::StorageError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::TableExists(name) => write!(f, "table `{name}` already exists"),
            Error::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            Error::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            Error::ArityMismatch { table, expected, got } => write!(
                f,
                "arity mismatch inserting into `{table}`: expected {expected} values, got {got}"
            ),
            Error::TypeMismatch { table, column, expected, got } => {
                write!(f, "type mismatch for `{table}.{column}`: expected {expected}, got {got}")
            }
            Error::DuplicateKey { table, key } => {
                write!(f, "duplicate primary key `{key}` in table `{table}`")
            }
            Error::ForeignKeyViolation { from, to, key } => {
                write!(f, "foreign key violation: `{from}` -> `{to}` key `{key}` not found")
            }
            Error::UnknownTuple(tid) => write!(f, "unknown tuple id {tid}"),
            Error::InvalidSchema(msg) => write!(f, "invalid schema: {msg}"),
            Error::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            Error::BudgetExceeded(b) => write!(f, "{b}"),
            Error::FaultInjected(fault) => write!(f, "{fault}"),
            Error::Storage(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<nebula_govern::BudgetExceeded> for Error {
    fn from(b: nebula_govern::BudgetExceeded) -> Error {
        Error::BudgetExceeded(b)
    }
}

impl From<nebula_govern::InjectedFault> for Error {
    fn from(fault: nebula_govern::InjectedFault) -> Error {
        Error::FaultInjected(fault)
    }
}

impl From<crate::storage::StorageError> for Error {
    fn from(e: crate::storage::StorageError) -> Error {
        Error::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::UnknownColumn { table: "gene".into(), column: "bogus".into() };
        assert!(e.to_string().contains("bogus"));
        assert!(e.to_string().contains("gene"));

        let e = Error::TypeMismatch {
            table: "gene".into(),
            column: "length".into(),
            expected: DataType::Int,
            got: DataType::Text,
        };
        assert!(e.to_string().contains("length"));
        assert!(e.to_string().contains("int"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::TableExists("t".into()), Error::TableExists("t".into()));
        assert_ne!(Error::TableExists("t".into()), Error::UnknownTable("t".into()));
    }
}

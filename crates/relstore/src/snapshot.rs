//! Database snapshots: a compact, self-describing binary format for
//! saving and restoring a whole [`Database`] — schemas, foreign keys,
//! every row slot (including tombstones, so [`crate::TupleId`]s survive a
//! round trip), with the hash and inverted indexes rebuilt on load.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "NEBREL1\0"
//! u32 table_count
//! per table:
//!   string name
//!   u32 column_count
//!   per column: string name, u8 type, u8 indexed, u8 searchable
//!   u8 has_pk (+ u32 pk column)
//!   u64 slot_count
//!   per slot: u8 live, per column: tagged value
//! u32 fk_count; per fk: u32 from_table, u32 from_column, u32 to_table
//! ```
//!
//! Value tags: 0 = Null, 1 = Int(i64), 2 = Float(f64 bits), 3 = Text.

use crate::catalog::ForeignKey;
use crate::database::Database;
use crate::schema::{ColumnId, TableId, TableSchema};
use crate::value::{DataType, Value};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

const MAGIC: &[u8; 8] = b"NEBREL1\0";

/// Errors from snapshot decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with the expected magic.
    BadMagic,
    /// The buffer ended before the structure was complete.
    Truncated(&'static str),
    /// An enum tag was out of range.
    BadTag(&'static str, u8),
    /// A string was not valid UTF-8.
    BadString,
    /// The decoded structure violates an invariant.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a relstore snapshot (bad magic)"),
            SnapshotError::Truncated(what) => write!(f, "snapshot truncated while reading {what}"),
            SnapshotError::BadTag(what, tag) => write!(f, "invalid {what} tag {tag}"),
            SnapshotError::BadString => write!(f, "invalid UTF-8 string in snapshot"),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_string(buf: &mut Bytes) -> Result<String, SnapshotError> {
    if buf.remaining() < 4 {
        return Err(SnapshotError::Truncated("string length"));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(SnapshotError::Truncated("string body"));
    }
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::BadString)
}

pub(crate) fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(0),
        Value::Int(i) => {
            buf.put_u8(1);
            buf.put_i64_le(*i);
        }
        Value::Float(x) => {
            buf.put_u8(2);
            buf.put_u64_le(x.to_bits());
        }
        Value::Text(s) => {
            buf.put_u8(3);
            put_string(buf, s);
        }
    }
}

pub(crate) fn get_value(buf: &mut Bytes) -> Result<Value, SnapshotError> {
    if buf.remaining() < 1 {
        return Err(SnapshotError::Truncated("value tag"));
    }
    match buf.get_u8() {
        0 => Ok(Value::Null),
        1 => {
            if buf.remaining() < 8 {
                return Err(SnapshotError::Truncated("int value"));
            }
            Ok(Value::Int(buf.get_i64_le()))
        }
        2 => {
            if buf.remaining() < 8 {
                return Err(SnapshotError::Truncated("float value"));
            }
            Ok(Value::Float(f64::from_bits(buf.get_u64_le())))
        }
        3 => Ok(Value::Text(get_string(buf)?)),
        tag => Err(SnapshotError::BadTag("value", tag)),
    }
}

fn type_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Text => 2,
        DataType::Null => 3,
    }
}

fn tag_type(tag: u8) -> Result<DataType, SnapshotError> {
    match tag {
        0 => Ok(DataType::Int),
        1 => Ok(DataType::Float),
        2 => Ok(DataType::Text),
        3 => Ok(DataType::Null),
        t => Err(SnapshotError::BadTag("data type", t)),
    }
}

/// A 64-bit FNV-1a fingerprint of the canonical snapshot encoding.
///
/// Two databases with identical logical content fingerprint identically
/// (the encoding is canonical); a shard deployment uses this to verify
/// cheaply that its full-database replicas have not diverged without
/// shipping the snapshots themselves.
pub fn fingerprint(db: &Database) -> u64 {
    let bytes = save(db);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes.as_ref() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serialize a database to bytes.
pub fn save(db: &Database) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    let tables: Vec<(TableId, &str)> = db.catalog().iter().collect();
    buf.put_u32_le(tables.len() as u32);
    for (tid, name) in &tables {
        let table = db.table(*tid).expect("catalog and tables agree");
        let schema = table.schema();
        put_string(&mut buf, name);
        buf.put_u32_le(schema.arity() as u32);
        for (_, def) in schema.iter_columns() {
            put_string(&mut buf, &def.name);
            buf.put_u8(type_tag(def.data_type));
            buf.put_u8(def.indexed as u8);
            buf.put_u8(def.searchable as u8);
        }
        match schema.primary_key {
            Some(pk) => {
                buf.put_u8(1);
                buf.put_u32_le(pk.0);
            }
            None => buf.put_u8(0),
        }
        let slots: Vec<(bool, Vec<Value>)> = table.raw_slots().collect();
        buf.put_u64_le(slots.len() as u64);
        for (live, values) in slots {
            buf.put_u8(live as u8);
            for v in &values {
                put_value(&mut buf, v);
            }
        }
    }
    let fks = db.catalog().foreign_keys();
    buf.put_u32_le(fks.len() as u32);
    for fk in fks {
        buf.put_u32_le(fk.from_table.0);
        buf.put_u32_le(fk.from_column.0);
        buf.put_u32_le(fk.to_table.0);
    }
    buf.freeze()
}

/// Restore a database from bytes produced by [`save`]. Tuple ids are
/// preserved exactly; all indexes (hash + inverted) are rebuilt.
pub fn load(bytes: &[u8]) -> Result<Database, SnapshotError> {
    load_with(bytes, None)
}

/// Restore a database from bytes produced by [`save`], routing row
/// payloads and posting blocks through backends opened by `factory`
/// (`None` keeps everything in RAM, exactly like [`load`]). The logical
/// content is identical either way — [`fingerprint`] cannot tell the
/// backends apart.
pub fn load_with(
    bytes: &[u8],
    factory: Option<std::sync::Arc<dyn crate::storage::StorageFactory>>,
) -> Result<Database, SnapshotError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    if buf.remaining() < MAGIC.len() || &buf.copy_to_bytes(MAGIC.len())[..] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let mut db = match factory {
        Some(factory) => Database::with_storage(factory),
        None => Database::new(),
    };
    if buf.remaining() < 4 {
        return Err(SnapshotError::Truncated("table count"));
    }
    let table_count = buf.get_u32_le();
    // Every table needs at least a name length, a column count, a pk
    // flag, and a slot count — a hostile count fails here instead of
    // spinning through the loop.
    if table_count as usize > buf.remaining() / 17 {
        return Err(SnapshotError::Corrupt(format!("implausible table count {table_count}")));
    }
    for _ in 0..table_count {
        let name = get_string(&mut buf)?;
        if buf.remaining() < 4 {
            return Err(SnapshotError::Truncated("column count"));
        }
        let column_count = buf.get_u32_le();
        // Each column costs at least a name length plus three flag bytes;
        // never pre-allocate from an unvalidated length field.
        if column_count as usize > buf.remaining() / 7 {
            return Err(SnapshotError::Corrupt(format!("implausible column count {column_count}")));
        }
        let mut builder = TableSchema::builder(&name);
        let mut column_names = Vec::with_capacity(column_count as usize);
        for _ in 0..column_count {
            let cname = get_string(&mut buf)?;
            if buf.remaining() < 3 {
                return Err(SnapshotError::Truncated("column flags"));
            }
            let ty = tag_type(buf.get_u8())?;
            let indexed = buf.get_u8() != 0;
            let searchable = buf.get_u8() != 0;
            builder = if indexed {
                builder.indexed_column(&cname, ty)
            } else if !searchable {
                builder.unsearchable_column(&cname, ty)
            } else {
                builder.column(&cname, ty)
            };
            column_names.push(cname);
        }
        if buf.remaining() < 1 {
            return Err(SnapshotError::Truncated("pk flag"));
        }
        if buf.get_u8() != 0 {
            if buf.remaining() < 4 {
                return Err(SnapshotError::Truncated("pk column"));
            }
            let pk = buf.get_u32_le() as usize;
            let pk_name = column_names
                .get(pk)
                .ok_or_else(|| SnapshotError::Corrupt(format!("pk column {pk} out of range")))?;
            builder = builder.primary_key(pk_name);
        }
        let schema = builder.build().map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
        let arity = schema.arity();
        let tid = db.create_table(schema).map_err(|e| SnapshotError::Corrupt(e.to_string()))?;

        if buf.remaining() < 8 {
            return Err(SnapshotError::Truncated("slot count"));
        }
        let slot_count = buf.get_u64_le();
        // Each slot costs at least its liveness byte plus one value tag
        // per column.
        if slot_count > (buf.remaining() / (1 + arity.max(1))) as u64 {
            return Err(SnapshotError::Corrupt(format!("implausible slot count {slot_count}")));
        }
        for _ in 0..slot_count {
            if buf.remaining() < 1 {
                return Err(SnapshotError::Truncated("slot liveness"));
            }
            let live = buf.get_u8() != 0;
            let mut values = Vec::with_capacity(arity);
            for _ in 0..arity {
                values.push(get_value(&mut buf)?);
            }
            db.restore_slot(tid, live, values)
                .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
        }
    }
    if buf.remaining() < 4 {
        return Err(SnapshotError::Truncated("fk count"));
    }
    let fk_count = buf.get_u32_le();
    if fk_count as usize > buf.remaining() / 12 {
        return Err(SnapshotError::Corrupt(format!("implausible foreign-key count {fk_count}")));
    }
    for _ in 0..fk_count {
        if buf.remaining() < 12 {
            return Err(SnapshotError::Truncated("foreign key"));
        }
        let fk = ForeignKey {
            from_table: TableId(buf.get_u32_le()),
            from_column: ColumnId(buf.get_u32_le()),
            to_table: TableId(buf.get_u32_le()),
        };
        db.restore_foreign_key(fk).map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("gene")
                .column("gid", DataType::Text)
                .column("name", DataType::Text)
                .indexed_column("family", DataType::Text)
                .column("length", DataType::Int)
                .unsearchable_column("seq", DataType::Text)
                .primary_key("gid")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("protein")
                .column("pid", DataType::Text)
                .column("gene_id", DataType::Text)
                .column("mass", DataType::Float)
                .primary_key("pid")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.add_foreign_key("protein", "gene_id", "gene").unwrap();
        for (gid, name, fam, len) in [
            ("JW0013", "grpC", "F1", 1130i64),
            ("JW0014", "groP", "F6", 1916),
            ("JW0019", "yaaB", "F3", 905),
        ] {
            db.insert(
                "gene",
                vec![
                    Value::text(gid),
                    Value::text(name),
                    Value::text(fam),
                    Value::Int(len),
                    Value::text("ACGT"),
                ],
            )
            .unwrap();
        }
        db.insert("protein", vec![Value::text("P1"), Value::text("JW0013"), Value::Float(42.5)])
            .unwrap();
        db
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let mut db = sample_db();
        // Tombstone a row so slot preservation is exercised.
        let victim = db.table_by_name("gene").unwrap().scan().nth(1).unwrap().id;
        db.delete(victim);

        let bytes = save(&db);
        let restored = load(&bytes).unwrap();

        assert_eq!(restored.total_tuples(), db.total_tuples());
        assert_eq!(restored.catalog().len(), db.catalog().len());
        assert_eq!(restored.catalog().foreign_keys(), db.catalog().foreign_keys());
        // Tuple ids and contents preserved.
        for table in ["gene", "protein"] {
            let a = db.table_by_name(table).unwrap();
            let b = restored.table_by_name(table).unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.scan().zip(b.scan()) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.values, y.values);
            }
        }
        // The tombstoned slot stays dead.
        assert!(restored.get(victim).is_none());
        // Indexes were rebuilt: PK lookup and inverted lookup work.
        let gene = restored.table_by_name("gene").unwrap();
        assert!(gene.lookup_key(&Value::text("JW0013")).is_some());
        assert_eq!(restored.inverted_index().lookup("grpc").len(), 1);
        // Unsearchable columns stay unindexed.
        assert_eq!(restored.inverted_index().lookup("acgt").len(), 0);
        // The freed primary key is reusable, and new rows continue the id
        // sequence after the restored slots.
        let mut restored = restored;
        let new_id = restored
            .insert(
                "gene",
                vec![
                    Value::text("JW0014"),
                    Value::text("groP2"),
                    Value::text("F6"),
                    Value::Int(1),
                    Value::text("A"),
                ],
            )
            .unwrap();
        assert_eq!(new_id.row, 3, "new rows append after restored slots");
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(load(b"garbage").unwrap_err(), SnapshotError::BadMagic);
        assert_eq!(load(b"").unwrap_err(), SnapshotError::BadMagic);
    }

    #[test]
    fn truncation_detected_everywhere() {
        let db = sample_db();
        let bytes = save(&db);
        // Every proper prefix must fail cleanly, never panic.
        for cut in [8usize, 9, 15, 30, 60, bytes.len() - 1] {
            let result = load(&bytes[..cut.min(bytes.len() - 1)]);
            assert!(result.is_err(), "prefix of {cut} bytes must be rejected");
        }
    }

    #[test]
    fn empty_database_roundtrips() {
        let db = Database::new();
        let restored = load(&save(&db)).unwrap();
        assert_eq!(restored.total_tuples(), 0);
        assert!(restored.catalog().is_empty());
    }

    #[test]
    fn special_values_survive() {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("t")
                .column("id", DataType::Int)
                .column("f", DataType::Float)
                .column("s", DataType::Text)
                .primary_key("id")
                .build()
                .unwrap(),
        )
        .unwrap();
        db.insert("t", vec![Value::Int(i64::MIN), Value::Float(f64::NAN), Value::text("")])
            .unwrap();
        db.insert("t", vec![Value::Int(i64::MAX), Value::Null, Value::text("naïve ünïcode")])
            .unwrap();
        let restored = load(&save(&db)).unwrap();
        let rows: Vec<_> = restored.table_by_name("t").unwrap().scan().collect();
        assert_eq!(rows[0].values[0], Value::Int(i64::MIN));
        assert_eq!(rows[0].values[1], Value::Float(f64::NAN), "NaN bit-preserved");
        assert_eq!(rows[1].values[1], Value::Null);
        assert_eq!(rows[1].values[2], Value::text("naïve ünïcode"));
    }
}

//! A small conjunctive-query layer.
//!
//! Keyword-search techniques over relational databases ultimately generate
//! *SQL queries* — conjunctive select/project/join plans. This module is
//! that target language: a [`ConjunctiveQuery`] names a base table, a set of
//! [`Predicate`]s over it, and a chain of FK [`JoinStep`]s whose predicates
//! constrain the joined tables.
//!
//! Execution is index-first: predicates that can be answered from a hash
//! index or the inverted index seed the candidate set; remaining predicates
//! are applied as filters.

use crate::database::Database;
use crate::error::{Error, Result};
use crate::schema::{ColumnId, TableId};
use crate::tuple::{Tuple, TupleId};
use crate::value::Value;
use std::collections::HashSet;
use std::fmt;

/// A single-column predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `col = value` (exact, typed).
    Eq(ColumnId, Value),
    /// The cell's tokenized text contains this token (case-insensitive).
    ContainsToken(ColumnId, String),
    /// `col` is not NULL.
    NotNull(ColumnId),
}

impl Predicate {
    /// Column the predicate constrains.
    pub fn column(&self) -> ColumnId {
        match self {
            Predicate::Eq(c, _) | Predicate::ContainsToken(c, _) | Predicate::NotNull(c) => *c,
        }
    }

    /// Evaluate against a tuple.
    pub fn matches(&self, tuple: &Tuple) -> bool {
        match self {
            Predicate::Eq(c, v) => tuple.get(*c) == Some(v),
            Predicate::ContainsToken(c, token) => tuple
                .get(*c)
                .and_then(Value::as_text)
                .map(|text| crate::index::tokenize(text).iter().any(|t| t == &token.to_lowercase()))
                .unwrap_or(false),
            Predicate::NotNull(c) => tuple.get(*c).map(|v| !v.is_null()).unwrap_or(false),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Eq(c, v) => write!(f, "{c} = '{v}'"),
            Predicate::ContainsToken(c, t) => write!(f, "{c} CONTAINS '{t}'"),
            Predicate::NotNull(c) => write!(f, "{c} IS NOT NULL"),
        }
    }
}

/// One hop of an FK join: from the current table along a foreign key
/// (in either direction) into `table`, with extra predicates on it.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinStep {
    /// The table joined in.
    pub table: TableId,
    /// Predicates over the joined table.
    pub predicates: Vec<Predicate>,
}

/// A conjunctive query: base table + predicates + optional FK-join chain.
#[derive(Debug, Clone, PartialEq)]
pub struct ConjunctiveQuery {
    /// The table whose tuples are returned.
    pub base: TableId,
    /// Conjunctive predicates on the base table.
    pub predicates: Vec<Predicate>,
    /// FK joins; a base tuple qualifies only if every join step finds at
    /// least one matching partner.
    pub joins: Vec<JoinStep>,
}

/// Result of executing a query: qualifying base-table tuples, plus a count
/// of index probes / tuples inspected (used by the benchmarks to report
/// work done rather than wall-clock alone).
#[derive(Debug, Clone, Default)]
pub struct QueryResult {
    /// Qualifying base-table tuple ids, in ascending order.
    pub tuples: Vec<TupleId>,
    /// Number of tuples the executor materialized and inspected.
    pub inspected: usize,
}

impl ConjunctiveQuery {
    /// A query over `base` with no predicates (full scan).
    pub fn scan(base: TableId) -> Self {
        ConjunctiveQuery { base, predicates: Vec::new(), joins: Vec::new() }
    }

    /// Add a predicate on the base table.
    pub fn with_predicate(mut self, p: Predicate) -> Self {
        self.predicates.push(p);
        self
    }

    /// Add a join step.
    pub fn with_join(mut self, j: JoinStep) -> Self {
        self.joins.push(j);
        self
    }

    /// Execute against `db`.
    pub fn execute(&self, db: &Database) -> Result<QueryResult> {
        let table = db
            .table(self.base)
            .ok_or_else(|| Error::InvalidQuery(format!("unknown base table {}", self.base)))?;
        for p in &self.predicates {
            if table.schema().column(p.column()).is_none() {
                return Err(Error::InvalidQuery(format!(
                    "predicate column {} out of range for table `{}`",
                    p.column(),
                    table.schema().name
                )));
            }
        }

        if let Some(fault) = nebula_govern::inject(nebula_govern::FaultSite::Query) {
            return Err(Error::FaultInjected(fault));
        }

        nebula_obs::counter_add("relstore.queries_executed", 1);
        let mut inspected = 0usize;

        // Seed the candidate set from the most selective indexable predicate.
        let seed: Option<Vec<TupleId>> = self.seed_candidates(db);
        let candidates: Vec<Tuple> = match seed {
            Some(ids) => ids.into_iter().filter_map(|tid| db.get(tid)).collect(),
            None => table.scan().collect(),
        };

        let mut out = Vec::new();
        for tuple in candidates {
            inspected += 1;
            nebula_govern::charge(nebula_govern::Resource::TuplesInspected, 1)?;
            if !self.predicates.iter().all(|p| p.matches(&tuple)) {
                continue;
            }
            if !self.joins.iter().all(|j| {
                let (ok, seen) = join_matches(db, &tuple, j);
                inspected += seen;
                ok
            }) {
                continue;
            }
            out.push(tuple.id);
        }
        out.sort();
        out.dedup();
        nebula_obs::counter_add("relstore.tuples_scanned", inspected as u64);
        Ok(QueryResult { tuples: out, inspected })
    }

    /// Try to answer one predicate from an index to seed candidates.
    fn seed_candidates(&self, db: &Database) -> Option<Vec<TupleId>> {
        // An injected index-probe failure degrades to the full-scan path,
        // which produces identical results — recovery without retry.
        if nebula_govern::inject(nebula_govern::FaultSite::IndexProbe).is_some() {
            nebula_govern::note_recovered(nebula_govern::FaultSite::IndexProbe);
            return None;
        }
        let table = db.table(self.base)?;
        // Prefer Eq on an indexed column, then ContainsToken via the
        // inverted index.
        for p in &self.predicates {
            if let Predicate::Eq(c, v) = p {
                let hits = table.lookup(*c, v);
                if table.schema().column(*c).map(|d| d.indexed).unwrap_or(false) {
                    // Inverted-index probes are counted inside `lookup`;
                    // key-index probes are counted here.
                    nebula_obs::counter_add("relstore.index_probes", 1);
                    return Some(hits);
                }
            }
        }
        for p in &self.predicates {
            if let Predicate::ContainsToken(c, token) = p {
                let ids: Vec<TupleId> = db
                    .inverted_index()
                    .lookup(token)
                    .iter()
                    .filter(|posting| posting.table == self.base && posting.column == *c)
                    .map(|posting| posting.tuple)
                    .collect();
                return Some(ids);
            }
        }
        None
    }
}

/// Does `tuple` have at least one join partner in `step.table` satisfying
/// the step's predicates? Returns `(matched, partners_inspected)`.
fn join_matches(db: &Database, tuple: &Tuple, step: &JoinStep) -> (bool, usize) {
    let mut inspected = 0usize;
    // Outgoing FKs: tuple.table -> step.table
    for fk in db.catalog().outgoing(tuple.id.table) {
        if fk.to_table != step.table {
            continue;
        }
        if let Some(partner_id) = db.follow_fk(tuple, fk) {
            if let Some(partner) = db.get(partner_id) {
                inspected += 1;
                if step.predicates.iter().all(|p| p.matches(&partner)) {
                    return (true, inspected);
                }
            }
        }
    }
    // Incoming FKs: step.table -> tuple.table
    for fk in db.catalog().incoming(tuple.id.table) {
        if fk.from_table != step.table {
            continue;
        }
        let Some(key) = tuple.key() else { continue };
        if let Some(t) = db.table(fk.from_table) {
            for partner_id in t.lookup(fk.from_column, key) {
                if let Some(partner) = db.get(partner_id) {
                    inspected += 1;
                    if step.predicates.iter().all(|p| p.matches(&partner)) {
                        return (true, inspected);
                    }
                }
            }
        }
    }
    (false, inspected)
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT * FROM {}", self.base)?;
        let mut first = true;
        for p in &self.predicates {
            write!(f, "{} {p}", if first { " WHERE" } else { " AND" })?;
            first = false;
        }
        for j in &self.joins {
            write!(f, " JOIN {}", j.table)?;
            for p in &j.predicates {
                write!(f, " ON {p}")?;
            }
        }
        Ok(())
    }
}

/// Deduplicate a batch of tuple ids preserving ascending order.
pub fn dedup_ids(ids: impl IntoIterator<Item = TupleId>) -> Vec<TupleId> {
    let set: HashSet<TupleId> = ids.into_iter().collect();
    let mut v: Vec<TupleId> = set.into_iter().collect();
    v.sort();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::value::DataType;

    fn db() -> (Database, TableId, TableId) {
        let mut db = Database::new();
        let gene = db
            .create_table(
                TableSchema::builder("gene")
                    .column("gid", DataType::Text)
                    .column("name", DataType::Text)
                    .indexed_column("family", DataType::Text)
                    .primary_key("gid")
                    .build()
                    .unwrap(),
            )
            .unwrap();
        let protein = db
            .create_table(
                TableSchema::builder("protein")
                    .column("pid", DataType::Text)
                    .column("pname", DataType::Text)
                    .column("gene_id", DataType::Text)
                    .primary_key("pid")
                    .build()
                    .unwrap(),
            )
            .unwrap();
        db.add_foreign_key("protein", "gene_id", "gene").unwrap();
        for (gid, name, fam) in [
            ("JW0013", "grpC", "F1"),
            ("JW0014", "groP", "F6"),
            ("JW0019", "yaaB", "F3"),
            ("JW0012", "yaaI", "F1"),
        ] {
            db.insert("gene", vec![Value::text(gid), Value::text(name), Value::text(fam)]).unwrap();
        }
        db.insert(
            "protein",
            vec![Value::text("P001"), Value::text("G-Actin"), Value::text("JW0013")],
        )
        .unwrap();
        (db, gene, protein)
    }

    #[test]
    fn eq_predicate_on_indexed_column() {
        let (db, gene, _) = db();
        let fam = db.table(gene).unwrap().schema().column_id("family").unwrap();
        let q = ConjunctiveQuery::scan(gene).with_predicate(Predicate::Eq(fam, Value::text("F1")));
        let r = q.execute(&db).unwrap();
        assert_eq!(r.tuples.len(), 2);
        // Index seeding: only the two F1 rows inspected, not all four.
        assert_eq!(r.inspected, 2);
    }

    #[test]
    fn contains_token_uses_inverted_index() {
        let (db, gene, _) = db();
        let name = db.table(gene).unwrap().schema().column_id("name").unwrap();
        let q = ConjunctiveQuery::scan(gene)
            .with_predicate(Predicate::ContainsToken(name, "GRPC".into()));
        let r = q.execute(&db).unwrap();
        assert_eq!(r.tuples.len(), 1);
        assert_eq!(r.inspected, 1);
    }

    #[test]
    fn conjunction_filters() {
        let (db, gene, _) = db();
        let schema = db.table(gene).unwrap().schema().clone();
        let fam = schema.column_id("family").unwrap();
        let name = schema.column_id("name").unwrap();
        let q = ConjunctiveQuery::scan(gene)
            .with_predicate(Predicate::Eq(fam, Value::text("F1")))
            .with_predicate(Predicate::ContainsToken(name, "yaai".into()));
        let r = q.execute(&db).unwrap();
        assert_eq!(r.tuples.len(), 1);
        let t = db.get(r.tuples[0]).unwrap();
        assert_eq!(t.get_by_name("gid"), Some(&Value::text("JW0012")));
    }

    #[test]
    fn full_scan_when_no_predicates() {
        let (db, gene, _) = db();
        let r = ConjunctiveQuery::scan(gene).execute(&db).unwrap();
        assert_eq!(r.tuples.len(), 4);
        assert_eq!(r.inspected, 4);
    }

    #[test]
    fn join_outgoing_direction() {
        let (db, gene, protein) = db();
        // proteins whose gene is in family F1
        let fam = db.table(gene).unwrap().schema().column_id("family").unwrap();
        let q = ConjunctiveQuery::scan(protein).with_join(JoinStep {
            table: gene,
            predicates: vec![Predicate::Eq(fam, Value::text("F1"))],
        });
        let r = q.execute(&db).unwrap();
        assert_eq!(r.tuples.len(), 1);
    }

    #[test]
    fn join_incoming_direction() {
        let (db, gene, protein) = db();
        // genes that have at least one protein named like "actin"
        let pname = db.table(protein).unwrap().schema().column_id("pname").unwrap();
        let q = ConjunctiveQuery::scan(gene).with_join(JoinStep {
            table: protein,
            predicates: vec![Predicate::ContainsToken(pname, "actin".into())],
        });
        let r = q.execute(&db).unwrap();
        assert_eq!(r.tuples.len(), 1);
        assert_eq!(db.get(r.tuples[0]).unwrap().get_by_name("gid"), Some(&Value::text("JW0013")));
    }

    #[test]
    fn join_with_no_partner_excludes_tuple() {
        let (db, gene, protein) = db();
        let pname = db.table(protein).unwrap().schema().column_id("pname").unwrap();
        let q = ConjunctiveQuery::scan(gene).with_join(JoinStep {
            table: protein,
            predicates: vec![Predicate::ContainsToken(pname, "nonexistent".into())],
        });
        assert!(q.execute(&db).unwrap().tuples.is_empty());
    }

    #[test]
    fn invalid_query_errors() {
        let (db, gene, _) = db();
        let q = ConjunctiveQuery::scan(TableId(99));
        assert!(q.execute(&db).is_err());
        let q = ConjunctiveQuery::scan(gene).with_predicate(Predicate::NotNull(ColumnId(99)));
        assert!(q.execute(&db).is_err());
    }

    #[test]
    fn not_null_predicate() {
        let (mut db, gene, _) = db();
        db.insert("gene", vec![Value::text("JW0999"), Value::Null, Value::Null]).unwrap();
        let name = db.table(gene).unwrap().schema().column_id("name").unwrap();
        let q = ConjunctiveQuery::scan(gene).with_predicate(Predicate::NotNull(name));
        assert_eq!(q.execute(&db).unwrap().tuples.len(), 4);
    }

    #[test]
    fn display_is_sql_like() {
        let (db, gene, _) = db();
        let fam = db.table(gene).unwrap().schema().column_id("family").unwrap();
        let q = ConjunctiveQuery::scan(gene).with_predicate(Predicate::Eq(fam, Value::text("F1")));
        let s = q.to_string();
        assert!(s.starts_with("SELECT * FROM"));
        assert!(s.contains("WHERE"));
    }

    #[test]
    fn dedup_ids_sorts_and_dedups() {
        let a = TupleId::new(TableId(0), 2);
        let b = TupleId::new(TableId(0), 1);
        assert_eq!(dedup_ids(vec![a, b, a]), vec![b, a]);
    }
}

//! nebula-ingest: overload-safe concurrent ingest for the Nebula engine.
//!
//! The paper evaluates the pipeline one annotation at a time; a
//! production front door has to survive bursts of expensive annotations
//! from many users without stalling, growing unbounded queues, or
//! cascading failures. This crate wraps `Nebula::process_batch`'s
//! per-item semantics in four cooperating mechanisms:
//!
//! - **Admission control** ([`admission`]): a bounded queue with three
//!   priority classes and reject-on-full semantics. An item that cannot
//!   be admitted is *shed* with a typed [`ShedReason`] — never silently
//!   dropped — and deadline-expired items are shed at dispatch instead
//!   of wasting a worker.
//! - **A turn-gated single-writer worker pool** ([`pool`]): N workers
//!   pull from the queue, but a commit gate serializes execution in
//!   dequeue order against the shared `Database`/`AnnotationStore`, and
//!   the governor's fault context migrates to whichever worker holds the
//!   turn. All mutations funnel through the engine's single
//!   [`MutationSink`](nebula_core::MutationSink) WAL writer, so for a
//!   fixed fault seed the resulting [`BatchReport`](nebula_core::BatchReport)
//!   — and the recovered on-disk state — is byte-identical to the
//!   sequential path at any worker count.
//! - **Circuit breakers** ([`breaker`]): per-failure-class
//!   closed → open → half-open breakers, counted deterministically in
//!   commit order; while a breaker is open, items shed instead of piling
//!   more work onto a failing stage.
//! - **A health state machine** ([`health`]): Healthy → Degraded →
//!   Shedding → Wedged, recomputed after every commit from a sliding
//!   window of outcomes and exported through `nebula-obs` as the
//!   `ingest.health` gauge (and `SHOW HEALTH` in the shell).

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod admission;
pub mod breaker;
pub mod health;
pub mod pool;
pub mod router;

pub use admission::{AdmissionQueue, Priority, ShedReason, ShedRecord};
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use health::{HealthMachine, HealthState};
pub use pool::{ingest_batch, IngestConfig, IngestItem, IngestReport};
pub use router::{slot_of, ShardHealth, ShardRouter, SLOTS};

/// Counter and gauge names this crate publishes to `nebula-obs`.
pub mod counters {
    /// Items accepted into the admission queue.
    pub const ADMITTED: &str = "ingest.admitted";
    /// Items that completed processing (any terminal batch status).
    pub const COMPLETED: &str = "ingest.completed";
    /// Items shed (all reasons).
    pub const SHED: &str = "ingest.shed";
    /// Sheds because the bounded queue was full.
    pub const SHED_QUEUE_FULL: &str = "ingest.shed_queue_full";
    /// Sheds because the item's deadline expired before dispatch.
    pub const SHED_DEADLINE: &str = "ingest.shed_deadline";
    /// Sheds because a circuit breaker was open.
    pub const SHED_CIRCUIT_OPEN: &str = "ingest.shed_circuit_open";
    /// Sheds because the engine was wedged.
    pub const SHED_WEDGED: &str = "ingest.shed_wedged";
    /// Guarded Wedged → Degraded recoveries (probe or operator).
    pub const RECOVERED: &str = "ingest.recovered";
    /// Breaker transitions into Open.
    pub const BREAKER_OPENED: &str = "ingest.breaker_opened";
    /// Breaker transitions into HalfOpen.
    pub const BREAKER_HALF_OPEN: &str = "ingest.breaker_half_open";
    /// Current health state (0 healthy … 3 wedged), as a gauge.
    pub const HEALTH_GAUGE: &str = "ingest.health";
    /// Configured worker count, as a gauge.
    pub const WORKERS_GAUGE: &str = "ingest.workers";
    /// Peak queue depth observed during the batch, as a gauge.
    pub const QUEUE_DEPTH_PEAK_GAUGE: &str = "ingest.queue_depth_peak";
    /// Per-item sojourn time (admission to commit), as a span histogram.
    pub const ITEM_SPAN: &str = "ingest.item";
}

//! Count-based circuit breakers.
//!
//! A breaker guards one failure class (the pool keeps one for search/
//! pipeline faults and one for WAL/sink failures). It is deliberately
//! **count-based, not time-based**: opening after N consecutive failures
//! and re-probing after shedding M items makes every transition a pure
//! function of the commit-ordered outcome sequence, so a fixed fault seed
//! produces the same breaker history at any worker count.
//!
//! Closed → (failure_threshold consecutive failures) → Open →
//! (open_shed_count items shed) → HalfOpen → one probe: success closes,
//! failure re-opens.

/// The classic three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation; failures are counted.
    Closed,
    /// Tripping: items are shed instead of executed.
    Open,
    /// Probing: the next item executes; its outcome decides.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        };
        write!(f, "{s}")
    }
}

/// Breaker tuning. Defaults trip after 5 consecutive failures and shed 8
/// items before probing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that open a closed breaker.
    pub failure_threshold: u32,
    /// Items shed while open before moving to half-open.
    pub open_shed_count: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { failure_threshold: 5, open_shed_count: 8 }
    }
}

impl BreakerConfig {
    /// A breaker that never trips (used by the determinism tests, where
    /// shedding would change which work runs).
    pub fn disabled() -> Self {
        BreakerConfig { failure_threshold: u32::MAX, open_shed_count: 0 }
    }
}

/// One count-based breaker. Drive it with [`record_success`] /
/// [`record_failure`] after each commit and consult [`allows`] before
/// dispatching; every call must happen in commit order for determinism
/// (the pool's turn gate guarantees that).
///
/// [`record_success`]: CircuitBreaker::record_success
/// [`record_failure`]: CircuitBreaker::record_failure
/// [`allows`]: CircuitBreaker::allows
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    shed_while_open: u32,
    /// Times this breaker has transitioned into Open.
    pub trips: u32,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            shed_while_open: 0,
            trips: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// May the next item execute? `false` means shed it — and counts the
    /// shed toward the open → half-open transition.
    pub fn allows(&mut self) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                self.shed_while_open += 1;
                if self.shed_while_open >= self.config.open_shed_count {
                    self.state = BreakerState::HalfOpen;
                    nebula_obs::counter_add(crate::counters::BREAKER_HALF_OPEN, 1);
                }
                false
            }
        }
    }

    /// Record a successful commit: closes a half-open breaker, clears the
    /// failure streak.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
        }
    }

    /// Record a failed commit: re-opens a half-open breaker immediately,
    /// opens a closed one once the streak reaches the threshold.
    pub fn record_failure(&mut self) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        match self.state {
            BreakerState::HalfOpen => self.trip(),
            BreakerState::Closed if self.consecutive_failures >= self.config.failure_threshold => {
                self.trip()
            }
            _ => {}
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.shed_while_open = 0;
        self.trips = self.trips.saturating_add(1);
        nebula_obs::counter_add(crate::counters::BREAKER_OPENED, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_consecutive_failures_only() {
        let mut b = CircuitBreaker::new(BreakerConfig { failure_threshold: 3, open_shed_count: 2 });
        b.record_failure();
        b.record_failure();
        b.record_success(); // streak broken
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips, 1);
    }

    #[test]
    fn full_cycle_closed_open_half_open_closed() {
        let mut b = CircuitBreaker::new(BreakerConfig { failure_threshold: 1, open_shed_count: 2 });
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allows(), "first shed while open");
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allows(), "second shed moves to half-open");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allows(), "half-open admits the probe");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_failure_reopens() {
        let mut b = CircuitBreaker::new(BreakerConfig { failure_threshold: 1, open_shed_count: 1 });
        b.record_failure();
        assert!(!b.allows());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips, 2);
    }

    #[test]
    fn disabled_breaker_never_trips() {
        let mut b = CircuitBreaker::new(BreakerConfig::disabled());
        for _ in 0..10_000 {
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allows());
        assert_eq!(b.trips, 0);
    }
}

//! Bounded admission queue with priority classes.
//!
//! The queue is the only place work waits. It is bounded — a full queue
//! *rejects* new work with [`ShedReason::QueueFull`] rather than growing —
//! and it is priority-aware: [`Priority::Interactive`] items dequeue before
//! [`Priority::Normal`], which dequeue before [`Priority::Background`].
//! Within a class, order is strictly FIFO, so a single-class batch drains
//! in exactly its submission order (the property the determinism tests
//! lean on).
//!
//! Dequeue assigns each item a dense **commit sequence number** under the
//! queue lock. That number is the total order the worker pool's turn gate
//! enforces, which is what makes N-worker execution replay the one-worker
//! (and therefore the sequential) history.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Admission priority class. Lower classes only dequeue when every higher
/// class is empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// User-facing work; dequeues first.
    Interactive,
    /// The default class.
    #[default]
    Normal,
    /// Backfill / maintenance work; dequeues last.
    Background,
}

impl Priority {
    fn class(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Normal => 1,
            Priority::Background => 2,
        }
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Priority::Interactive => "interactive",
            Priority::Normal => "normal",
            Priority::Background => "background",
        };
        write!(f, "{s}")
    }
}

/// Why an item was shed instead of processed. Shedding is always typed
/// and accounted — there is no silent-drop path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded admission queue was full at submission.
    QueueFull,
    /// The item's deadline expired before a worker could dispatch it.
    DeadlineExpired,
    /// A circuit breaker was open when the item's turn came.
    CircuitOpen,
    /// The engine health machine had declared the engine wedged.
    Wedged,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ShedReason::QueueFull => "queue-full",
            ShedReason::DeadlineExpired => "deadline-expired",
            ShedReason::CircuitOpen => "circuit-open",
            ShedReason::Wedged => "wedged",
        };
        write!(f, "{s}")
    }
}

/// One shed item: which input it was, and why it was turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedRecord {
    /// Position in the input batch.
    pub index: usize,
    /// The item's priority class.
    pub priority: Priority,
    /// Why it was shed.
    pub reason: ShedReason,
}

/// An item waiting in the queue: its input position plus the dispatch
/// metadata the pool needs.
#[derive(Debug)]
pub struct Queued {
    /// Position in the input batch.
    pub index: usize,
    /// Priority class it was admitted under.
    pub priority: Priority,
    /// Absolute dispatch deadline, if any.
    pub deadline: Option<Instant>,
    /// When the item entered the queue (for sojourn-time histograms).
    pub admitted_at: Instant,
}

struct Inner {
    classes: [VecDeque<Queued>; 3],
    len: usize,
    peak: usize,
    closed: bool,
    next_seq: u64,
}

/// The bounded, priority-classed admission queue. See the module docs.
pub struct AdmissionQueue {
    capacity: usize,
    inner: Mutex<Inner>,
    ready: Condvar,
}

impl AdmissionQueue {
    /// A queue admitting at most `capacity` items at a time (clamped to
    /// at least 1).
    pub fn new(capacity: usize) -> AdmissionQueue {
        AdmissionQueue {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                classes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                len: 0,
                peak: 0,
                closed: false,
                next_seq: 0,
            }),
            ready: Condvar::new(),
        }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Non-blocking admission: `Ok(())` if the item was queued,
    /// `Err(ShedReason::QueueFull)` if the queue is at capacity (or
    /// closed). Never blocks the submitter — backpressure is the typed
    /// rejection, not a stall.
    pub fn try_admit(&self, item: Queued) -> Result<(), ShedReason> {
        let mut inner = self.locked();
        if inner.closed || inner.len >= self.capacity {
            return Err(ShedReason::QueueFull);
        }
        let class = item.priority.class();
        inner.classes[class].push_back(item);
        inner.len += 1;
        inner.peak = inner.peak.max(inner.len);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking dequeue: the highest-priority non-empty class's front
    /// item, tagged with its dense commit sequence number. Returns `None`
    /// once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<(u64, Queued)> {
        let mut inner = self.locked();
        loop {
            if let Some(class) = inner.classes.iter().position(|c| !c.is_empty()) {
                let item = self.take_from(&mut inner, class);
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn take_from(&self, inner: &mut Inner, class: usize) -> (u64, Queued) {
        // The class was just observed non-empty under the same lock.
        let item = match inner.classes[class].pop_front() {
            Some(item) => item,
            None => unreachable!("class observed non-empty under the queue lock"),
        };
        inner.len -= 1;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        (seq, item)
    }

    /// Close the queue: further admissions fail and `pop` drains what
    /// remains, then returns `None`.
    pub fn close(&self) {
        self.locked().closed = true;
        self.ready.notify_all();
    }

    /// Items currently queued.
    pub fn depth(&self) -> usize {
        self.locked().len
    }

    /// Highest depth observed since creation.
    pub fn peak_depth(&self) -> usize {
        self.locked().peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queued(index: usize, priority: Priority) -> Queued {
        Queued { index, priority, deadline: None, admitted_at: Instant::now() }
    }

    #[test]
    fn fifo_within_a_class_and_dense_seqs() {
        let q = AdmissionQueue::new(8);
        for i in 0..5 {
            q.try_admit(queued(i, Priority::Normal)).expect("room");
        }
        for expect in 0..5u64 {
            let (seq, item) = q.pop().expect("queued");
            assert_eq!(seq, expect);
            assert_eq!(item.index, expect as usize);
        }
        q.close();
        assert!(q.pop().is_none());
    }

    #[test]
    fn higher_priority_classes_dequeue_first() {
        let q = AdmissionQueue::new(8);
        q.try_admit(queued(0, Priority::Background)).expect("room");
        q.try_admit(queued(1, Priority::Normal)).expect("room");
        q.try_admit(queued(2, Priority::Interactive)).expect("room");
        q.try_admit(queued(3, Priority::Interactive)).expect("room");
        let order: Vec<usize> = (0..4).map(|_| q.pop().expect("queued").1.index).collect();
        assert_eq!(order, vec![2, 3, 1, 0]);
    }

    #[test]
    fn full_queue_rejects_with_typed_shed() {
        let q = AdmissionQueue::new(2);
        q.try_admit(queued(0, Priority::Normal)).expect("room");
        q.try_admit(queued(1, Priority::Normal)).expect("room");
        let err = q.try_admit(queued(2, Priority::Normal)).expect_err("full");
        assert_eq!(err, ShedReason::QueueFull);
        assert_eq!(q.depth(), 2);
        assert_eq!(q.peak_depth(), 2);
        // Draining one makes room again.
        q.pop().expect("queued");
        q.try_admit(queued(2, Priority::Normal)).expect("room after drain");
    }

    #[test]
    fn closed_queue_rejects_and_drains() {
        let q = AdmissionQueue::new(4);
        q.try_admit(queued(0, Priority::Normal)).expect("room");
        q.close();
        assert!(q.try_admit(queued(1, Priority::Normal)).is_err());
        assert_eq!(q.pop().expect("drains the remainder").1.index, 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn pop_blocks_until_admission() {
        let q = std::sync::Arc::new(AdmissionQueue::new(4));
        let q2 = q.clone();
        let handle = std::thread::spawn(move || q2.pop().map(|(_, item)| item.index));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_admit(queued(7, Priority::Normal)).expect("room");
        assert_eq!(handle.join().expect("join"), Some(7));
    }
}

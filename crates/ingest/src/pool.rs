//! The turn-gated single-writer worker pool.
//!
//! N workers pull from the [`AdmissionQueue`], but execution against the
//! shared `Database`/`AnnotationStore` is serialized by a **commit turn
//! gate**: the queue assigns each dequeued item a dense sequence number,
//! and a worker may only touch the engine once the gate reaches its
//! number. The governor's fault context ([`nebula_govern::FaultContext`])
//! migrates to whichever worker holds the turn and back again, so the
//! seeded fault stream is consumed in exactly the sequential order.
//!
//! Why single-writer? Every stage of `process_annotation` reads and
//! writes shared engine state (the ACG, the hop profile, the verification
//! queue, the annotation store) and every mutation must reach the one
//! WAL writer in a deterministic order — PR 3's prefix-consistency
//! guarantee is an ordering guarantee. Serializing commits preserves all
//! of that *by construction*: for a fixed fault seed, the
//! [`BatchReport`] and the recovered on-disk state are byte-identical to
//! the sequential path at any worker count. What concurrency buys here is
//! the overload machinery around the writer — bounded admission, typed
//! shedding, circuit breakers, health tracking — plus dispatch-side work
//! (deadline checks, breaker bookkeeping) happening off the submitter's
//! thread. See DESIGN.md for the longer argument.

use crate::admission::{AdmissionQueue, Priority, Queued, ShedReason, ShedRecord};
use crate::breaker::{BreakerConfig, BreakerState, CircuitBreaker};
use crate::counters;
use crate::health::{HealthMachine, HealthSignal, HealthState};
use annostore::{Annotation, AnnotationStore};
use nebula_core::batch::{classify_outcome, panic_message, BatchEntry, BatchReport, BatchStatus};
use nebula_core::{Nebula, NebulaError, QuarantineReason};
use nebula_govern::FaultContext;
use relstore::{Database, TupleId};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// One unit of ingest work: an annotation, its focal attachments, and the
/// admission metadata.
#[derive(Debug, Clone)]
pub struct IngestItem {
    /// The annotation to process.
    pub annotation: Annotation,
    /// Its focal attachments.
    pub focal: Vec<TupleId>,
    /// Admission priority class.
    pub priority: Priority,
    /// Dispatch deadline relative to the batch start; an item still queued
    /// past its deadline is shed instead of executed.
    pub deadline: Option<Duration>,
}

impl IngestItem {
    /// A normal-priority item with no deadline.
    pub fn new(annotation: Annotation, focal: Vec<TupleId>) -> IngestItem {
        IngestItem { annotation, focal, priority: Priority::Normal, deadline: None }
    }

    /// Set the priority class.
    pub fn with_priority(mut self, priority: Priority) -> IngestItem {
        self.priority = priority;
        self
    }

    /// Set the dispatch deadline (relative to batch start).
    pub fn with_deadline(mut self, deadline: Duration) -> IngestItem {
        self.deadline = Some(deadline);
        self
    }
}

/// Worker-pool tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestConfig {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Admission queue capacity (clamped to at least 1). Arrivals beyond
    /// this are shed with [`ShedReason::QueueFull`].
    pub queue_capacity: usize,
    /// Circuit-breaker tuning (shared by the search and WAL breakers).
    pub breaker: BreakerConfig,
    /// Sliding-window size for the health machine.
    pub health_window: usize,
    /// WAL breaker trips after which the engine declares itself Wedged.
    pub wedge_after_wal_trips: u32,
    /// Pause between admissions — the arrival-rate knob of the overload
    /// experiment. `None` offers the whole batch as one burst. Uses the
    /// governed clock, so a virtual clock makes paced runs instantaneous.
    pub admit_gap: Option<Duration>,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            workers: 4,
            queue_capacity: 64,
            breaker: BreakerConfig::default(),
            health_window: 64,
            wedge_after_wal_trips: 3,
            admit_gap: None,
        }
    }
}

impl IngestConfig {
    /// A configuration whose results are byte-identical to the sequential
    /// path for `n`-item batches: capacity covers the whole burst, no
    /// breaker ever sheds, and (with a single priority class and no
    /// deadlines) commit order equals input order.
    pub fn deterministic(workers: usize, n: usize) -> IngestConfig {
        IngestConfig {
            workers,
            queue_capacity: n.max(1),
            breaker: BreakerConfig::disabled(),
            ..IngestConfig::default()
        }
    }
}

/// What came back from a concurrent ingest.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// Per-item results for everything that executed, entries in input
    /// order. For a fixed fault seed and a non-shedding configuration this
    /// is byte-identical to `Nebula::process_batch`'s report.
    pub batch: BatchReport,
    /// Everything that was shed, with typed reasons. Disjoint from
    /// `batch`: every input item lands in exactly one of the two.
    pub sheds: Vec<ShedRecord>,
    /// Final health state.
    pub health: HealthState,
    /// Peak admission-queue depth during the run.
    pub queue_depth_peak: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Per-item sojourn times (admission → commit), in commit order.
    /// Wall-clock, hence *not* part of the deterministic surface.
    pub latencies_ns: Vec<u64>,
}

impl IngestReport {
    /// Total items accounted for (executed + shed).
    pub fn total(&self) -> usize {
        self.batch.total() + self.sheds.len()
    }

    /// Fraction of items shed (0 when the batch was empty).
    pub fn shed_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.sheds.len() as f64 / self.total() as f64
        }
    }

    /// p99 sojourn time over executed items (0 when none executed).
    pub fn p99_latency_ns(&self) -> u64 {
        percentile_ns(&self.latencies_ns, 99)
    }
}

/// The `p`-th percentile (nearest-rank) of a latency sample.
pub fn percentile_ns(samples: &[u64], p: u32) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = (samples.len() * p as usize).div_ceil(100).max(1);
    sorted[rank - 1]
}

/// Everything the turn-holder mutates, behind one mutex. Only the worker
/// whose sequence number the gate has reached ever locks it (the
/// coordinator takes it briefly to record admission-side sheds).
struct EngineState<'a> {
    nebula: &'a mut Nebula,
    store: &'a mut AnnotationStore,
    fault_ctx: Option<FaultContext>,
    search_breaker: CircuitBreaker,
    wal_breaker: CircuitBreaker,
    repl_breaker: CircuitBreaker,
    health: HealthMachine,
    slots: Vec<Option<BatchEntry>>,
    sheds: Vec<ShedRecord>,
    latencies_ns: Vec<u64>,
}

struct Shared<'a> {
    engine: Mutex<EngineState<'a>>,
    next_commit: Mutex<u64>,
    commit_advanced: Condvar,
}

impl<'a> Shared<'a> {
    fn engine_locked(&self) -> std::sync::MutexGuard<'_, EngineState<'a>> {
        self.engine.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Block until the commit gate reaches `seq`.
    fn wait_turn(&self, seq: u64) {
        let mut next = self.next_commit.lock().unwrap_or_else(|e| e.into_inner());
        while *next != seq {
            next = self.commit_advanced.wait(next).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Release the gate to the next sequence number.
    fn advance_turn(&self) {
        let mut next = self.next_commit.lock().unwrap_or_else(|e| e.into_inner());
        *next += 1;
        drop(next);
        self.commit_advanced.notify_all();
    }
}

/// Run `items` through the engine with bounded admission, N workers, and
/// single-writer turn-gated commits. See the module docs for the
/// determinism argument; the short version is that for a single priority
/// class, no deadlines, and a non-tripping breaker configuration, the
/// returned [`IngestReport::batch`] is byte-identical to
/// `Nebula::process_batch` on the same inputs and fault seed.
pub fn ingest_batch(
    nebula: &mut Nebula,
    db: &Database,
    store: &mut AnnotationStore,
    items: &[IngestItem],
    config: &IngestConfig,
) -> IngestReport {
    let workers = config.workers.max(1);
    nebula_obs::gauge_set(counters::WORKERS_GAUGE, workers as u64);
    let queue = AdmissionQueue::new(config.queue_capacity);
    let start = Instant::now();
    let shared = Shared {
        engine: Mutex::new(EngineState {
            nebula,
            store,
            // The coordinator's fault stream migrates into the pool and
            // back out below, so callers observe the same plan/stats
            // evolution as a sequential run.
            fault_ctx: Some(nebula_govern::take_fault_context()),
            search_breaker: CircuitBreaker::new(config.breaker),
            wal_breaker: CircuitBreaker::new(config.breaker),
            repl_breaker: CircuitBreaker::new(config.breaker),
            health: HealthMachine::new(config.health_window, config.wedge_after_wal_trips),
            slots: vec![None; items.len()],
            sheds: Vec::new(),
            latencies_ns: Vec::new(),
        }),
        next_commit: Mutex::new(0),
        commit_advanced: Condvar::new(),
    };

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| worker_loop(&shared, &queue, db, items));
        }
        // The coordinator is the arrival process: admit in input order,
        // shedding (never blocking) when the bounded queue is full.
        for (index, item) in items.iter().enumerate() {
            if index > 0 {
                if let Some(gap) = config.admit_gap {
                    nebula_govern::clock::sleep(gap);
                }
            }
            let queued = Queued {
                index,
                priority: item.priority,
                deadline: item.deadline.map(|d| start + d),
                admitted_at: Instant::now(),
            };
            match queue.try_admit(queued) {
                Ok(()) => nebula_obs::counter_add(counters::ADMITTED, 1),
                Err(reason) => {
                    let mut state = shared.engine_locked();
                    record_shed(&mut state, ShedRecord { index, priority: item.priority, reason });
                }
            }
        }
        queue.close();
    });

    let state = shared.engine.into_inner().unwrap_or_else(|e| e.into_inner());
    nebula_govern::restore_fault_context(state.fault_ctx.unwrap_or_default());
    // End-of-batch flush, exactly as `process_batch` does it (this is the
    // group commit for SyncPolicy::Batch sinks).
    if let Some(sink) = state.nebula.mutation_sink_mut() {
        if sink.flush().is_err() {
            nebula_obs::counter_add("core.flush_failed", 1);
        }
    }
    let mut batch = BatchReport::default();
    for entry in state.slots.into_iter().flatten() {
        batch.push(entry);
    }
    let queue_depth_peak = queue.peak_depth();
    nebula_obs::gauge_set(counters::QUEUE_DEPTH_PEAK_GAUGE, queue_depth_peak as u64);
    IngestReport {
        batch,
        sheds: state.sheds,
        health: state.health.state(),
        queue_depth_peak,
        workers,
        latencies_ns: state.latencies_ns,
    }
}

fn worker_loop(shared: &Shared<'_>, queue: &AdmissionQueue, db: &Database, items: &[IngestItem]) {
    while let Some((seq, queued)) = queue.pop() {
        let turn_started = Instant::now();
        shared.wait_turn(seq);
        let turn_wait_ns = turn_started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        {
            let mut state = shared.engine_locked();
            dispatch(&mut state, db, items, &queued, turn_wait_ns);
        }
        shared.advance_turn();
    }
}

/// Everything that happens during one commit turn: dispatch-time checks
/// (wedged / deadline / breakers), governed execution with the migrated
/// fault context, breaker + health bookkeeping, and the periodic
/// checkpoint — all under the engine lock, in commit order.
fn dispatch(
    state: &mut EngineState<'_>,
    db: &Database,
    items: &[IngestItem],
    queued: &Queued,
    turn_wait_ns: u64,
) {
    let item = &items[queued.index];
    // Open the trace root for this commit attempt. Admission and
    // turn-gate time happened before the builder existed (off-thread), so
    // they attach as explicit-duration wait leaves; the root's duration
    // is extended by the same amounts so it still covers
    // admission → commit. A shed or quarantine abandons the trace (via
    // `record_shed` / the routing at the bottom) — only committed
    // annotations reach the ring.
    if nebula_obs::trace::start("ingest.item") {
        nebula_obs::trace::root_detail(format!("class={:?}", queued.priority));
        let sojourn_so_far = queued.admitted_at.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        nebula_obs::trace::wait(
            "ingest.queue_wait",
            String::new(),
            sojourn_so_far.saturating_sub(turn_wait_ns),
        );
        nebula_obs::trace::wait("ingest.turn_wait", String::new(), turn_wait_ns);
    }
    if state.health.state() == HealthState::Wedged {
        // Recovery probe: if the WAL breaker has left Open (its cooldown
        // elapsed) and the sink itself reports writable again — e.g. an
        // operator checkpoint or the cluster's scrub rebuilt the log — the
        // wedge is provably stale. Lift it to Degraded and let this item
        // run; otherwise shed as before.
        let wal_calm = state.wal_breaker.state() != BreakerState::Open;
        let sink_ok = {
            let EngineState { nebula, .. } = state;
            nebula.mutation_sink_mut().is_none_or(|sink| sink.healthy())
        };
        if !(wal_calm && sink_ok && state.health.try_recover()) {
            record_shed(
                state,
                ShedRecord {
                    index: queued.index,
                    priority: queued.priority,
                    reason: ShedReason::Wedged,
                },
            );
            return;
        }
    }
    if queued.deadline.is_some_and(|d| Instant::now() >= d) {
        record_shed(
            state,
            ShedRecord {
                index: queued.index,
                priority: queued.priority,
                reason: ShedReason::DeadlineExpired,
            },
        );
        return;
    }
    // All breakers must consent; each open breaker counts the shed
    // toward its own half-open transition, so no short-circuiting.
    let search_ok = state.search_breaker.allows();
    let wal_ok = state.wal_breaker.allows();
    let repl_ok = state.repl_breaker.allows();
    if !(search_ok && wal_ok && repl_ok) {
        record_shed(
            state,
            ShedRecord {
                index: queued.index,
                priority: queued.priority,
                reason: ShedReason::CircuitOpen,
            },
        );
        return;
    }

    nebula_govern::restore_fault_context(state.fault_ctx.take().unwrap_or_default());
    let EngineState { nebula, store, .. } = state;
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        nebula.process_annotation(db, store, &item.annotation, &item.focal)
    }));
    state.fault_ctx = Some(nebula_govern::take_fault_context());

    let entry = match attempt {
        Ok(Ok(outcome)) => BatchEntry {
            index: queued.index,
            status: classify_outcome(&outcome),
            outcome: Some(outcome),
            quarantine: None,
        },
        Ok(Err(e)) => BatchEntry {
            index: queued.index,
            status: BatchStatus::Quarantined,
            outcome: None,
            quarantine: Some(QuarantineReason::Error(e)),
        },
        Err(payload) => BatchEntry {
            index: queued.index,
            status: BatchStatus::Quarantined,
            outcome: None,
            quarantine: Some(QuarantineReason::Panic(panic_message(payload))),
        },
    };
    if entry.status == BatchStatus::Quarantined {
        nebula_obs::counter_add("core.quarantined", 1);
    }

    // Breaker + health bookkeeping, still in commit order.
    match &entry.quarantine {
        None => {
            state.search_breaker.record_success();
            state.wal_breaker.record_success();
        }
        Some(QuarantineReason::Error(NebulaError::Durability(_))) => {
            let trips_before = state.wal_breaker.trips;
            state.wal_breaker.record_failure();
            if state.wal_breaker.trips > trips_before {
                nebula_obs::trace::flight_event(
                    "breaker.trip",
                    format!("wal trips={}", state.wal_breaker.trips),
                );
                state.health.note_wal_trip();
            }
        }
        Some(_) => {
            let trips_before = state.search_breaker.trips;
            state.search_breaker.record_failure();
            if state.search_breaker.trips > trips_before {
                nebula_obs::trace::flight_event(
                    "breaker.trip",
                    format!("search trips={}", state.search_breaker.trips),
                );
            }
        }
    }
    // A replicated sink reports its posture after every record; feed the
    // lag signal into the replication breaker and the health machine.
    let repl_status = {
        let EngineState { nebula, .. } = state;
        nebula.mutation_sink_mut().and_then(|sink| sink.replication())
    };
    if let Some(repl) = repl_status {
        if repl.lag_budget_exceeded {
            let trips_before = state.repl_breaker.trips;
            state.repl_breaker.record_failure();
            if state.repl_breaker.trips > trips_before {
                nebula_obs::trace::flight_event(
                    "breaker.trip",
                    format!("replication trips={}", state.repl_breaker.trips),
                );
            }
        } else {
            state.repl_breaker.record_success();
        }
        state.health.set_replication_lagging(repl.lag_budget_exceeded);
    }
    state.health.set_breaker_not_closed(
        state.search_breaker.state() != BreakerState::Closed
            || state.wal_breaker.state() != BreakerState::Closed
            || state.repl_breaker.state() != BreakerState::Closed,
    );
    let signal = match entry.status {
        BatchStatus::Quarantined => HealthSignal::Failed,
        BatchStatus::Degraded => HealthSignal::Degraded,
        _ => HealthSignal::Clean,
    };
    state.health.observe(signal);

    let sojourn = queued.admitted_at.elapsed();
    nebula_obs::observe_ns(counters::ITEM_SPAN, sojourn.as_nanos().min(u64::MAX as u128) as u64);
    state.latencies_ns.push(sojourn.as_nanos().min(u64::MAX as u128) as u64);
    nebula_obs::counter_add(counters::COMPLETED, 1);
    let committed = entry.status != BatchStatus::Quarantined;
    state.slots[queued.index] = Some(entry);

    // Periodic checkpointing between items, mirroring `process_batch`:
    // the sink decides when one is due; a failure defers (the WAL still
    // covers everything). The checkpoint rolls I/O fault sites, so it
    // must run under the migrated fault context — otherwise its draws
    // vanish from the stream and the sequential twin diverges.
    nebula_govern::restore_fault_context(state.fault_ctx.take().unwrap_or_default());
    {
        let EngineState { nebula, store, .. } = state;
        if let Some(sink) = nebula.mutation_sink_mut() {
            if sink.checkpoint_due() && sink.checkpoint(db, store).is_err() {
                nebula_obs::counter_add("core.checkpoint_deferred", 1);
            }
        }
    }
    state.fault_ctx = Some(nebula_govern::take_fault_context());

    // Route the trace: a committed annotation's tree (including any
    // periodic checkpoint spans above) enters the ring; a quarantined
    // item's mutations never applied, so its partial trace is dropped.
    if committed {
        nebula_obs::trace::finish();
    } else {
        nebula_obs::trace::abandon();
    }
}

fn record_shed(state: &mut EngineState<'_>, shed: ShedRecord) {
    // A shed item never commits: drop any trace opened for its dispatch
    // (no-op on the coordinator thread, which never opens one) and leave
    // a flight-recorder event in its place.
    nebula_obs::trace::abandon();
    nebula_obs::trace::flight_event(
        "shed",
        format!("index={} reason={:?}", shed.index, shed.reason),
    );
    nebula_obs::counter_add(counters::SHED, 1);
    let reason_counter = match shed.reason {
        ShedReason::QueueFull => counters::SHED_QUEUE_FULL,
        ShedReason::DeadlineExpired => counters::SHED_DEADLINE,
        ShedReason::CircuitOpen => counters::SHED_CIRCUIT_OPEN,
        ShedReason::Wedged => counters::SHED_WEDGED,
    };
    nebula_obs::counter_add(reason_counter, 1);
    state.health.observe(HealthSignal::Shed);
    state.sheds.push(shed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_core::{ConceptRef, NebulaConfig, NebulaMeta, VerificationBounds};
    use relstore::{DataType, TableSchema, Value};

    fn setup() -> (Database, NebulaMeta, Vec<TupleId>) {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("gene")
                .column("gid", DataType::Text)
                .column("name", DataType::Text)
                .primary_key("gid")
                .build()
                .expect("schema"),
        )
        .expect("create table");
        let mut ids = Vec::new();
        for (gid, name) in [("JW0013", "grpC"), ("JW0014", "groP"), ("JW0019", "yaaB")] {
            ids.push(db.insert("gene", vec![Value::text(gid), Value::text(name)]).expect("insert"));
        }
        let mut meta = NebulaMeta::new();
        meta.add_concept(ConceptRef {
            concept: "Gene".into(),
            table: "gene".into(),
            referenced_by: vec![vec!["gid".into()], vec!["name".into()]],
        });
        (db, meta, ids)
    }

    fn engine(meta: NebulaMeta) -> Nebula {
        let config =
            NebulaConfig { bounds: VerificationBounds::new(0.0, 0.0), ..Default::default() };
        Nebula::new(config, meta)
    }

    fn items(ids: &[TupleId], n: usize) -> Vec<IngestItem> {
        (0..n)
            .map(|i| {
                IngestItem::new(
                    Annotation::new(format!("gene JW001{} observation {i}", i % 10)),
                    vec![ids[i % ids.len()]],
                )
            })
            .collect()
    }

    #[test]
    fn pool_matches_sequential_batch_without_faults() {
        let (db, meta, ids) = setup();
        let batch_items = items(&ids, 12);
        let plain: Vec<(Annotation, Vec<TupleId>)> =
            batch_items.iter().map(|i| (i.annotation.clone(), i.focal.clone())).collect();

        let mut store_seq = AnnotationStore::new();
        let seq = engine(meta.clone()).process_batch(&db, &mut store_seq, &plain);

        for workers in [1, 3] {
            let mut store_pool = AnnotationStore::new();
            let mut nebula = engine(meta.clone());
            let report = ingest_batch(
                &mut nebula,
                &db,
                &mut store_pool,
                &batch_items,
                &IngestConfig::deterministic(workers, batch_items.len()),
            );
            assert!(report.sheds.is_empty());
            assert_eq!(format!("{:?}", report.batch), format!("{seq:?}"), "workers={workers}");
            assert_eq!(report.health, HealthState::Healthy);
            assert_eq!(report.latencies_ns.len(), batch_items.len());
        }
    }

    #[test]
    fn full_queue_sheds_with_typed_reason_and_full_accounting() {
        let (db, meta, ids) = setup();
        let batch_items = items(&ids, 30);
        let mut store = AnnotationStore::new();
        let mut nebula = engine(meta);
        let config = IngestConfig {
            workers: 2,
            queue_capacity: 1,
            breaker: BreakerConfig::disabled(),
            ..IngestConfig::default()
        };
        let report = ingest_batch(&mut nebula, &db, &mut store, &batch_items, &config);
        assert_eq!(report.total(), batch_items.len(), "every item accounted");
        assert!(report.queue_depth_peak <= 1);
        assert!(report.sheds.iter().all(|s| s.reason == ShedReason::QueueFull));
        // Exactly-one-state: no index appears in both batch and sheds.
        let mut seen = vec![false; batch_items.len()];
        for e in &report.batch.entries {
            assert!(!seen[e.index]);
            seen[e.index] = true;
        }
        for s in &report.sheds {
            assert!(!seen[s.index]);
            seen[s.index] = true;
        }
        assert!(seen.iter().all(|&b| b));
        if !report.sheds.is_empty() {
            assert_eq!(report.health, HealthState::Shedding);
        }
    }

    #[test]
    fn expired_deadlines_shed_at_dispatch() {
        let (db, meta, ids) = setup();
        let batch_items: Vec<IngestItem> =
            items(&ids, 6).into_iter().map(|i| i.with_deadline(Duration::ZERO)).collect();
        let mut store = AnnotationStore::new();
        let mut nebula = engine(meta);
        let report = ingest_batch(
            &mut nebula,
            &db,
            &mut store,
            &batch_items,
            &IngestConfig::deterministic(2, batch_items.len()),
        );
        assert_eq!(report.total(), 6);
        assert!(report
            .sheds
            .iter()
            .all(|s| s.reason == ShedReason::DeadlineExpired || s.reason == ShedReason::QueueFull));
        assert_eq!(report.sheds.len(), 6, "zero deadlines expire before any dispatch");
        assert_eq!(report.batch.total(), 0);
    }

    #[test]
    fn priorities_dispatch_interactive_first_with_one_worker() {
        let (db, meta, ids) = setup();
        let mut batch_items = items(&ids, 4);
        batch_items[0].priority = Priority::Background;
        batch_items[1].priority = Priority::Background;
        batch_items[2].priority = Priority::Interactive;
        batch_items[3].priority = Priority::Interactive;
        let mut store = AnnotationStore::new();
        let mut nebula = engine(meta);
        let report = ingest_batch(
            &mut nebula,
            &db,
            &mut store,
            &batch_items,
            &IngestConfig::deterministic(1, batch_items.len()),
        );
        assert_eq!(report.batch.total(), 4);
        // Whatever order the classes committed in, entries are
        // reassembled in input order, so the report surface stays
        // deterministic even for mixed-priority batches.
        let indexes: Vec<usize> = report.batch.entries.iter().map(|e| e.index).collect();
        assert_eq!(indexes, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_batch_returns_empty_healthy_report() {
        let (db, meta, _ids) = setup();
        let mut store = AnnotationStore::new();
        let mut nebula = engine(meta);
        let report = ingest_batch(&mut nebula, &db, &mut store, &[], &IngestConfig::default());
        assert_eq!(report.total(), 0);
        assert_eq!(report.shed_rate(), 0.0);
        assert_eq!(report.p99_latency_ns(), 0);
        assert_eq!(report.health, HealthState::Healthy);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile_ns(&[], 99), 0);
        assert_eq!(percentile_ns(&[7], 99), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&v, 50), 50);
        assert_eq!(percentile_ns(&v, 99), 99);
        assert_eq!(percentile_ns(&v, 100), 100);
    }
}

//! The engine health state machine.
//!
//! Health is a *derived* signal: after every commit (or shed) the pool
//! feeds the outcome into a sliding window, and the machine recomputes
//! the state from what the window shows. The states are strictly
//! ordered:
//!
//! - **Healthy** — the window holds only clean commits.
//! - **Degraded** — something in the window degraded or failed, or a
//!   breaker is not closed, but nothing is being turned away.
//! - **Shedding** — work in the window was shed (queue-full, deadline,
//!   or open breaker); the engine is protecting itself by refusing load.
//! - **Wedged** — the durability layer has hard-failed repeatedly; the
//!   engine refuses all further work. Wedged is sticky against the
//!   window: no amount of clean observations leaves it. The only exit is
//!   the explicit, guarded [`HealthMachine::try_recover`] — taken when a
//!   recovery probe has proven the WAL breaker's failure domain healed,
//!   or by the operator's `RECOVER INGEST`.
//!
//! Because the window is fed in commit order, the health history is as
//! deterministic as everything else in the pool.

use std::collections::VecDeque;

/// Engine health, worst state last. `as u64` is exported as the
/// `ingest.health` gauge (0 = healthy … 3 = wedged).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Only clean commits in the window.
    Healthy,
    /// Degradations or contained failures, but no load refused.
    Degraded,
    /// Load is being shed.
    Shedding,
    /// The durability layer is broken; all work is refused. Sticky.
    Wedged,
}

impl HealthState {
    /// The gauge encoding (0 = healthy … 3 = wedged).
    pub fn as_gauge(self) -> u64 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded => 1,
            HealthState::Shedding => 2,
            HealthState::Wedged => 3,
        }
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Shedding => "shedding",
            HealthState::Wedged => "wedged",
        };
        write!(f, "{s}")
    }
}

/// One observed outcome, in commit order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthSignal {
    /// A clean commit (accepted / pending / rejected).
    Clean,
    /// A commit that degraded (reduced search, truncation, ...).
    Degraded,
    /// A contained failure (quarantine).
    Failed,
    /// An item shed instead of executed.
    Shed,
}

/// Sliding-window health machine. Feed it with [`observe`] after every
/// commit or shed; read the state with [`state`].
///
/// [`observe`]: HealthMachine::observe
/// [`state`]: HealthMachine::state
#[derive(Debug)]
pub struct HealthMachine {
    window: VecDeque<HealthSignal>,
    capacity: usize,
    wal_trips: u32,
    wedge_after_wal_trips: u32,
    breaker_not_closed: bool,
    replication_lagging: bool,
    state: HealthState,
}

impl HealthMachine {
    /// A healthy machine with a `window` -signal sliding window that
    /// wedges after `wedge_after_wal_trips` WAL breaker trips.
    pub fn new(window: usize, wedge_after_wal_trips: u32) -> HealthMachine {
        HealthMachine {
            window: VecDeque::new(),
            capacity: window.max(1),
            wal_trips: 0,
            wedge_after_wal_trips: wedge_after_wal_trips.max(1),
            breaker_not_closed: false,
            replication_lagging: false,
            state: HealthState::Healthy,
        }
    }

    /// Feed one outcome and return the recomputed state.
    pub fn observe(&mut self, signal: HealthSignal) -> HealthState {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(signal);
        self.recompute()
    }

    /// Record a WAL breaker trip (the path to Wedged).
    pub fn note_wal_trip(&mut self) -> HealthState {
        self.wal_trips = self.wal_trips.saturating_add(1);
        self.recompute()
    }

    /// Tell the machine whether any breaker is currently not closed
    /// (keeps the engine at least Degraded while a breaker recovers).
    pub fn set_breaker_not_closed(&mut self, open: bool) {
        self.breaker_not_closed = open;
    }

    /// Tell the machine whether the replication sink last reported a
    /// commit-rule or lag-budget miss (keeps the engine at least
    /// Degraded while replicas are behind).
    pub fn set_replication_lagging(&mut self, lagging: bool) {
        self.replication_lagging = lagging;
    }

    /// Current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// The guarded Wedged → Degraded exit. Callers must first prove the
    /// WAL's failure domain healed (the breaker left Open and the sink
    /// reports healthy, or an operator forced a successful checkpoint);
    /// this method only performs the transition. The accumulated WAL-trip
    /// count is forgiven so the next trip escalates afresh, and the
    /// machine re-enters at Degraded — never straight to Healthy — so the
    /// window must prove itself clean again. Returns whether a recovery
    /// actually happened (`false` when not Wedged).
    pub fn try_recover(&mut self) -> bool {
        if self.state != HealthState::Wedged {
            return false;
        }
        self.wal_trips = 0;
        self.state = HealthState::Degraded;
        nebula_obs::counter_add(crate::counters::RECOVERED, 1);
        nebula_obs::trace::flight_event("health", "wedged -> degraded (recovered)".to_string());
        nebula_obs::gauge_set(crate::counters::HEALTH_GAUGE, self.state.as_gauge());
        true
    }

    fn recompute(&mut self) -> HealthState {
        let before = self.state;
        self.state =
            if self.state == HealthState::Wedged || self.wal_trips >= self.wedge_after_wal_trips {
                HealthState::Wedged
            } else if self.window.contains(&HealthSignal::Shed) {
                HealthState::Shedding
            } else if self.breaker_not_closed
                || self.replication_lagging
                || self.window.contains(&HealthSignal::Degraded)
                || self.window.contains(&HealthSignal::Failed)
            {
                HealthState::Degraded
            } else {
                HealthState::Healthy
            };
        if self.state != before {
            nebula_obs::trace::flight_event("health", format!("{before} -> {}", self.state));
            if self.state == HealthState::Wedged {
                // Wedged is sticky, so this transition fires exactly once
                // per machine — the post-mortem trigger.
                nebula_obs::trace::flight_dump("ingest.wedged");
            }
        }
        nebula_obs::gauge_set(crate::counters::HEALTH_GAUGE, self.state.as_gauge());
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn states_escalate_and_recover_with_the_window() {
        let mut m = HealthMachine::new(4, 3);
        assert_eq!(m.state(), HealthState::Healthy);
        assert_eq!(m.observe(HealthSignal::Clean), HealthState::Healthy);
        assert_eq!(m.observe(HealthSignal::Degraded), HealthState::Degraded);
        assert_eq!(m.observe(HealthSignal::Shed), HealthState::Shedding);
        // The window (cap 4) flushes as clean commits arrive.
        for _ in 0..4 {
            m.observe(HealthSignal::Clean);
        }
        assert_eq!(m.state(), HealthState::Healthy);
    }

    #[test]
    fn failures_degrade_but_do_not_shed() {
        let mut m = HealthMachine::new(8, 3);
        assert_eq!(m.observe(HealthSignal::Failed), HealthState::Degraded);
        assert_eq!(m.observe(HealthSignal::Clean), HealthState::Degraded, "still in window");
    }

    #[test]
    fn open_breaker_pins_at_least_degraded() {
        let mut m = HealthMachine::new(2, 3);
        m.set_breaker_not_closed(true);
        assert_eq!(m.observe(HealthSignal::Clean), HealthState::Degraded);
        m.set_breaker_not_closed(false);
        assert_eq!(m.observe(HealthSignal::Clean), HealthState::Healthy);
    }

    #[test]
    fn replication_lag_pins_at_least_degraded() {
        let mut m = HealthMachine::new(2, 3);
        m.set_replication_lagging(true);
        assert_eq!(m.observe(HealthSignal::Clean), HealthState::Degraded);
        m.set_replication_lagging(false);
        assert_eq!(m.observe(HealthSignal::Clean), HealthState::Healthy);
    }

    #[test]
    fn wedged_is_sticky() {
        let mut m = HealthMachine::new(4, 2);
        assert_eq!(m.note_wal_trip(), HealthState::Healthy, "one trip is survivable");
        assert_eq!(m.note_wal_trip(), HealthState::Wedged);
        for _ in 0..16 {
            m.observe(HealthSignal::Clean);
        }
        assert_eq!(m.state(), HealthState::Wedged, "no recovery within a batch");
    }

    #[test]
    fn try_recover_is_the_only_exit_and_lands_on_degraded() {
        let mut m = HealthMachine::new(4, 2);
        assert!(!m.try_recover(), "not wedged: nothing to recover");
        m.note_wal_trip();
        m.note_wal_trip();
        assert_eq!(m.state(), HealthState::Wedged);
        assert!(m.try_recover());
        assert_eq!(m.state(), HealthState::Degraded, "recovery re-enters at Degraded");
        // The trip count was forgiven: it takes the full threshold to
        // wedge again (one trip is survivable, as on a fresh machine).
        assert_eq!(m.note_wal_trip(), HealthState::Healthy);
        assert_eq!(m.note_wal_trip(), HealthState::Wedged);
        // And the machine recovers a second time just the same.
        assert!(m.try_recover());
        for _ in 0..4 {
            m.observe(HealthSignal::Clean);
        }
        assert_eq!(m.state(), HealthState::Healthy);
    }

    #[test]
    fn gauge_encoding_is_ordered() {
        assert!(HealthState::Healthy < HealthState::Degraded);
        assert!(HealthState::Degraded < HealthState::Shedding);
        assert!(HealthState::Shedding < HealthState::Wedged);
        assert_eq!(HealthState::Healthy.as_gauge(), 0);
        assert_eq!(HealthState::Wedged.as_gauge(), 3);
    }
}

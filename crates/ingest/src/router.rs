//! The deterministic shard router that sits in front of the ingest path.
//!
//! Annotations are routed by their **first focal tuple**: the focal is
//! hashed into one of [`SLOTS`] fixed hash slots, and a slot→shard map
//! assigns each slot to a shard. Keeping the slot count fixed (and far
//! larger than any realistic shard count) gives rebalancing the classic
//! slot-migration property: growing from N to M shards reassigns whole
//! slots, so the only keys that move are the keys whose *slot* changed
//! owner — everything else stays put.
//!
//! Routing is a pure function of `(key, shard count)`: no clock, no
//! state, no I/O. The same focal always lands on the same shard for a
//! given shard count, which is what makes scatter-gather merges and
//! per-shard digest slices deterministic.

use relstore::TupleId;
use std::fmt;

use crate::breaker::BreakerState;

/// Number of fixed hash slots keys are mapped into. Shard counts must
/// not exceed this; 64 slots keeps the slot map tiny while still giving
/// a near-even spread for small shard counts.
pub const SLOTS: usize = 64;

/// Hash a tuple id into its slot. FNV-1a over the (table, row) pair —
/// stable across runs, platforms, and shard counts.
pub fn slot_of(key: TupleId) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.table.0.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for b in key.row.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % SLOTS as u64) as usize
}

/// The slot→shard assignment for a fixed shard count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
    /// `slot_map[slot]` = owning shard.
    slot_map: Vec<usize>,
}

impl ShardRouter {
    /// A router over `shards` shards (clamped to `1..=SLOTS`), with slots
    /// dealt round-robin: slot `s` belongs to shard `s % shards`.
    pub fn new(shards: usize) -> ShardRouter {
        let shards = shards.clamp(1, SLOTS);
        ShardRouter { shards, slot_map: (0..SLOTS).map(|s| s % shards).collect() }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning hash slot `slot`.
    pub fn shard_of_slot(&self, slot: usize) -> usize {
        self.slot_map[slot % SLOTS]
    }

    /// The shard owning tuple `key`.
    pub fn route_tuple(&self, key: TupleId) -> usize {
        self.slot_map[slot_of(key)]
    }

    /// Route an annotation by its focal list: the first focal tuple's
    /// slot decides the home shard. Focal-free annotations (no manual
    /// attachment to hash) all home on shard 0.
    pub fn route(&self, focal: &[TupleId]) -> usize {
        match focal.first() {
            Some(&key) => self.route_tuple(key),
            None => 0,
        }
    }

    /// A router for `to` shards plus the list of slots whose owner
    /// changed. Only keys hashing into a returned slot move; every other
    /// key keeps its shard.
    pub fn rebalance(&self, to: usize) -> (ShardRouter, Vec<usize>) {
        let next = ShardRouter::new(to);
        let moved = (0..SLOTS).filter(|&s| self.slot_map[s] != next.slot_map[s]).collect();
        (next, moved)
    }

    /// How many slots each shard owns (spread check for `SHOW SHARDS`).
    pub fn slots_per_shard(&self) -> Vec<usize> {
        let mut counts = vec![0; self.shards];
        for &s in &self.slot_map {
            counts[s] += 1;
        }
        counts
    }
}

/// One shard's health as the router sees it: its breaker posture plus
/// replication progress. One wedged shard trips its own breaker and
/// lags its own sequence; its siblings' rows stay green.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardHealth {
    /// The shard id.
    pub shard: usize,
    /// The shard's fencing epoch (bumped by failover promotes).
    pub epoch: u64,
    /// Highest replication sequence the shard has applied.
    pub applied_seq: u64,
    /// The shard's scatter-gather breaker state.
    pub breaker: BreakerState,
    /// Is the shard currently partitioned away from its siblings?
    pub partitioned: bool,
    /// Has the shard been failed (crashed) and not yet promoted over?
    pub failed: bool,
}

impl ShardHealth {
    /// Is this shard currently able to answer probes and applies?
    pub fn healthy(&self) -> bool {
        !self.partitioned && !self.failed && self.breaker == BreakerState::Closed
    }
}

impl fmt::Display for ShardHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = if self.failed {
            "failed"
        } else if self.partitioned {
            "partitioned"
        } else {
            match self.breaker {
                BreakerState::Closed => "healthy",
                BreakerState::Open => "breaker-open",
                BreakerState::HalfOpen => "breaker-half-open",
            }
        };
        write!(
            f,
            "shard {}: {} epoch={} applied={}",
            self.shard, state, self.epoch, self.applied_seq
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::schema::TableId;

    fn t(table: u32, row: u64) -> TupleId {
        TupleId::new(TableId(table), row)
    }

    #[test]
    fn routing_is_pure_and_in_range() {
        for shards in [1, 2, 3, 4, 7, 64] {
            let router = ShardRouter::new(shards);
            for row in 0..500 {
                let key = t(row as u32 % 5, row);
                let a = router.route_tuple(key);
                let b = router.route_tuple(key);
                assert_eq!(a, b);
                assert!(a < shards);
            }
        }
    }

    #[test]
    fn rebalance_moves_only_changed_slots() {
        let from = ShardRouter::new(2);
        let (to, moved) = from.rebalance(4);
        for row in 0..1000 {
            let key = t(1, row);
            if from.route_tuple(key) != to.route_tuple(key) {
                assert!(moved.contains(&slot_of(key)));
            }
        }
        // Slots retained by their shard keep every key.
        for slot in (0..SLOTS).filter(|s| !moved.contains(s)) {
            assert_eq!(from.shard_of_slot(slot), to.shard_of_slot(slot));
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let router = ShardRouter::new(1);
        assert_eq!(router.slots_per_shard(), vec![SLOTS]);
        assert_eq!(router.route(&[]), 0);
        assert_eq!(router.route(&[t(3, 99)]), 0);
    }

    #[test]
    fn spread_is_near_even() {
        for shards in [2, 4, 8] {
            let per = ShardRouter::new(shards).slots_per_shard();
            let (min, max) = (per.iter().min().unwrap(), per.iter().max().unwrap());
            assert!(max - min <= 1, "uneven slot deal for {shards} shards: {per:?}");
        }
    }
}

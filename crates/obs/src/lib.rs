//! In-tree telemetry for the Nebula engine.
//!
//! Three primitives, all dependency-free:
//!
//! - **Counters** — monotonic work counters with dotted hierarchical
//!   names (`relstore.tuples_scanned`, `core.accepted`, ...).
//! - **Histograms / spans** — latency distributions (min/mean/max plus
//!   fixed power-of-ten buckets). A [`SpanGuard`] times a scope and
//!   feeds the histogram named after it; the engine's pipeline stages
//!   use the `stage0.register` … `stage3.route` hierarchy.
//! - **Pipeline events** — a bounded ring buffer of per-annotation
//!   records (stage, duration, candidate counts, routing decision)
//!   backing `EXPLAIN ANNOTATION <id>` in the shell.
//!
//! Everything funnels through a [`MetricSink`]. The default global sink
//! is a [`RecordingSink`] guarded by an `AtomicBool`: when telemetry is
//! disabled (the default), every instrumentation call is a single
//! relaxed atomic load — no locks, no clock reads, no allocation — so
//! instrumented hot paths cost nothing measurable. Enable collection
//! with [`set_enabled`]`(true)`, read it back with [`snapshot`].
//!
//! Snapshots ([`TelemetrySnapshot`]) render deterministically as text or
//! JSON and support diffing against an earlier snapshot, which is how
//! the bench harness emits per-experiment metrics sidecars.
//!
//! The [`trace`] module builds on the same cost model: causally-linked
//! span trees with deterministic IDs covering the whole commit path
//! (admission → stages → WAL → replication ack), a critical-path
//! analyzer, and a bounded flight recorder that dumps deterministic
//! JSON post-mortems on terminal conditions.

mod event;
mod snapshot;
pub mod trace;

pub use event::PipelineEvent;
pub use snapshot::{HistogramSnapshot, TelemetrySnapshot, BUCKET_BOUNDS_NS};

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Canonical metric names, so the instrumented crates and the renderers
/// agree on spelling. Counters and histograms share one namespace.
pub mod names {
    /// Stage 0: registering the annotation and focal attachments.
    pub const STAGE0_REGISTER: &str = "stage0.register";
    /// Stage 1: annotation text → keyword queries.
    pub const STAGE1_QUERYGEN: &str = "stage1.querygen";
    /// Stage 2: query execution (full database or focal miniDB).
    pub const STAGE2_EXECUTE: &str = "stage2.execute";
    /// Stage 3: routing candidates through the β bounds.
    pub const STAGE3_ROUTE: &str = "stage3.route";
    /// The whole `process_annotation` pipeline.
    pub const PIPELINE: &str = "core.process_annotation";
    /// Degradation events emitted by the resource governor.
    pub const GOVERN_DEGRADE: &str = "govern.degrade";
}

/// The closed registry of metric names the engine is allowed to emit.
///
/// Every counter, gauge, and span name written anywhere in the workspace
/// must be listed here; `tests/telemetry.rs` runs the pipeline with
/// collection on and fails if a snapshot contains a name the registry
/// doesn't know. That keeps `SHOW METRICS` and the JSON sidecars a stable,
/// reviewable surface — a new metric is a deliberate one-line addition
/// here, never an accident of instrumentation.
pub mod registry {
    /// Every monotonic counter the engine emits.
    pub const KNOWN_COUNTERS: &[&str] = &[
        "annostore.annotations_registered",
        "annostore.edges_added",
        "annostore.propagation_fanout",
        "annostore.propagations",
        "backup.archive_failures",
        "backup.bases_archived",
        "backup.bundle_bytes",
        "backup.bundles_created",
        "backup.bytes_archived",
        "backup.gc_removed",
        "backup.restore_records_replayed",
        "backup.restores",
        "backup.rot_detected",
        "backup.rot_injected",
        "backup.scrubs",
        "backup.segments_archived",
        "backup.verify_failures",
        "core.accepted",
        "core.annotations_processed",
        "core.candidates",
        "core.checkpoint_deferred",
        "core.degraded_annotations",
        "core.flush_failed",
        "core.focal_spread_used",
        "core.pending_verification",
        "core.quarantined",
        "core.queries_generated",
        "core.rejected",
        "durable.append_failures",
        "durable.bytes_appended",
        "durable.checkpoint_failures",
        "durable.checkpoints",
        "durable.fsyncs",
        "durable.records_appended",
        "durable.records_dropped",
        "durable.records_replayed",
        "durable.records_skipped",
        "durable.recoveries",
        "durable.wal_truncations",
        "govern.budget_trips",
        "govern.faults_injected",
        "govern.faults_recovered",
        "govern.retries",
        "govern.truncated_candidates",
        "govern.truncated_configurations",
        "ingest.admitted",
        "ingest.breaker_half_open",
        "ingest.breaker_opened",
        "ingest.completed",
        "ingest.recovered",
        "ingest.shed",
        "ingest.shed_circuit_open",
        "ingest.shed_deadline",
        "ingest.shed_queue_full",
        "ingest.shed_wedged",
        "page.evictions",
        "page.faults_injected",
        "page.flushes",
        "page.hits",
        "page.misses",
        "page.retries",
        "page.scrub_corrupt",
        "page.scrub_pages",
        "page.write_backs",
        "relstore.index_probes",
        "relstore.queries_executed",
        "relstore.storage_errors",
        "relstore.tuples_scanned",
        "repair.bitrot_detected",
        "repair.bitrot_injected",
        "repair.ladder_probes",
        "repair.records_resynced",
        "repair.rejoins",
        "repair.repairs",
        "repair.scrubs",
        "repl.acks",
        "repl.catchup_checkpoints",
        "repl.divergences",
        "repl.epoch_rejections",
        "repl.frames_delayed",
        "repl.frames_dropped",
        "repl.frames_duplicated",
        "repl.frames_reordered",
        "repl.lag_budget_exceeded",
        "repl.promotions",
        "repl.records_replayed",
        "repl.records_shipped",
        "repl.records_skipped",
        "repl.segments_shipped",
        "shard.annotations_routed",
        "shard.applies_sent",
        "shard.apply_acks",
        "shard.apply_nacks",
        "shard.apply_retries",
        "shard.batches_applied",
        "shard.breaker_opened",
        "shard.digest_divergences",
        "shard.failovers",
        "shard.home_fallbacks",
        "shard.partial_results",
        "shard.probe_serve_errors",
        "shard.probes_answered",
        "shard.probes_sent",
        "shard.probes_skipped",
        "shard.probes_timed_out",
        "shard.repairs",
        "textsearch.compiled_queries",
        "textsearch.configurations",
        "textsearch.tuples_inspected",
        "trace.flight_dumps",
        "trace.flight_events",
        "trace.ring_evictions",
        "trace.spans",
        "trace.traces",
    ];

    /// Every last-value gauge the engine emits.
    pub const KNOWN_GAUGES: &[&str] = &[
        "ingest.health",
        "ingest.queue_depth_peak",
        "ingest.workers",
        "page.dirty_pages",
        "page.file_pages",
        "page.resident_pages",
        "repair.last_scrub_lsn",
        "repair.pending",
        "repl.epoch",
        "repl.max_lag",
        "repl.replicas",
        "shard.epoch",
        "shard.lagging",
        "shard.shards",
        "trace.ring_occupancy",
    ];

    /// Every span / histogram name the engine emits.
    pub const KNOWN_SPANS: &[&str] = &[
        "backup.restore",
        "core.process_annotation",
        "durable.append",
        "durable.checkpoint",
        "durable.recover",
        "ingest.item",
        "repair.scrub",
        "stage0.register",
        "stage1.querygen",
        "stage2.execute",
        "stage3.route",
    ];

    /// Is `name` a registered counter, gauge, or span name?
    pub fn is_known(name: &str) -> bool {
        KNOWN_COUNTERS.binary_search(&name).is_ok()
            || KNOWN_GAUGES.binary_search(&name).is_ok()
            || KNOWN_SPANS.binary_search(&name).is_ok()
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn registry_lists_are_sorted_and_unique() {
            for list in [KNOWN_COUNTERS, KNOWN_GAUGES, KNOWN_SPANS] {
                for pair in list.windows(2) {
                    assert!(pair[0] < pair[1], "{} must sort before {}", pair[0], pair[1]);
                }
            }
        }

        #[test]
        fn is_known_hits_and_misses() {
            assert!(is_known("core.checkpoint_deferred"));
            assert!(is_known("ingest.shed"));
            assert!(is_known("ingest.health"));
            assert!(is_known("repl.divergences"));
            assert!(is_known("repl.max_lag"));
            assert!(is_known("ingest.recovered"));
            assert!(is_known("repair.scrubs"));
            assert!(is_known("repair.last_scrub_lsn"));
            assert!(is_known("repair.scrub"));
            assert!(is_known("backup.segments_archived"));
            assert!(is_known("backup.restores"));
            assert!(is_known("backup.restore"));
            assert!(is_known("stage2.execute"));
            assert!(is_known("trace.spans"));
            assert!(is_known("trace.flight_dumps"));
            assert!(is_known("trace.ring_occupancy"));
            assert!(!is_known("core.made_up"));
        }
    }
}

/// Receives every telemetry record. Implementations must be cheap and
/// non-blocking — instrumentation sites call these inline.
pub trait MetricSink: Send + Sync {
    /// Add `delta` to the named monotonic counter.
    fn counter_add(&self, name: &'static str, delta: u64);
    /// Record one latency observation for the named histogram.
    fn observe_ns(&self, name: &'static str, ns: u64);
    /// Record one pipeline event (ring-buffered).
    fn event(&self, event: PipelineEvent);
    /// Set the named gauge to `value` (last-value-wins, e.g. queue depth
    /// or health state). Default: dropped, so counter-only sinks keep
    /// working.
    fn gauge_set(&self, _name: &'static str, _value: u64) {}
}

/// A sink that drops everything (the disabled path and a useful default
/// for embedding).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl MetricSink for NoopSink {
    fn counter_add(&self, _name: &'static str, _delta: u64) {}
    fn observe_ns(&self, _name: &'static str, _ns: u64) {}
    fn event(&self, _event: PipelineEvent) {}
}

/// How many pipeline events the ring buffer retains.
pub const EVENT_CAPACITY: usize = 256;

#[derive(Debug, Default)]
struct Recording {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, HistogramSnapshot>,
    events: VecDeque<PipelineEvent>,
}

/// The standard in-memory sink: counters + histograms + a bounded event
/// ring, all behind one mutex (instrumented sections are short).
#[derive(Debug, Default)]
pub struct RecordingSink {
    inner: Mutex<Recording>,
}

impl RecordingSink {
    /// Fresh, empty sink.
    pub fn new() -> RecordingSink {
        RecordingSink::default()
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, Recording> {
        // A panic while holding the lock poisons it; the data is plain
        // counters, so recovering the inner value is always safe.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Copy out the current state.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let inner = self.locked();
        TelemetrySnapshot {
            counters: inner.counters.iter().map(|(&k, &v)| (k.to_string(), v)).collect(),
            gauges: inner.gauges.iter().map(|(&k, &v)| (k.to_string(), v)).collect(),
            histograms: inner.histograms.iter().map(|(&k, v)| (k.to_string(), v.clone())).collect(),
            events: inner.events.iter().cloned().collect(),
        }
    }

    /// Drop all recorded state.
    pub fn reset(&self) {
        let mut inner = self.locked();
        *inner = Recording::default();
    }
}

impl MetricSink for RecordingSink {
    fn counter_add(&self, name: &'static str, delta: u64) {
        let mut inner = self.locked();
        let slot = inner.counters.entry(name).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    fn observe_ns(&self, name: &'static str, ns: u64) {
        let mut inner = self.locked();
        inner.histograms.entry(name).or_default().record(ns);
    }

    fn event(&self, event: PipelineEvent) {
        let mut inner = self.locked();
        if inner.events.len() == EVENT_CAPACITY {
            inner.events.pop_front();
        }
        inner.events.push_back(event);
    }

    fn gauge_set(&self, name: &'static str, value: u64) {
        self.locked().gauges.insert(name, value);
    }
}

/// A telemetry registry: an enabled flag in front of a [`MetricSink`].
///
/// Most code uses the process-global registry through the free functions
/// ([`counter_add`], [`span`], ...), but `Telemetry` values can also be
/// created standalone (e.g. with a custom sink) for embedding.
pub struct Telemetry {
    enabled: AtomicBool,
    sink: Arc<dyn MetricSink>,
    /// Set when `sink` is a [`RecordingSink`], so snapshots work without
    /// downcasting.
    recording: Option<Arc<RecordingSink>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .field("recording", &self.recording.is_some())
            .finish()
    }
}

impl Telemetry {
    /// Registry backed by a [`RecordingSink`], initially **disabled**.
    pub fn recording() -> Telemetry {
        let sink = Arc::new(RecordingSink::new());
        Telemetry { enabled: AtomicBool::new(false), recording: Some(sink.clone()), sink }
    }

    /// Registry forwarding to a custom sink, initially **enabled** (a
    /// custom sink that should start silent can be wrapped or toggled).
    pub fn with_sink(sink: Arc<dyn MetricSink>) -> Telemetry {
        Telemetry { enabled: AtomicBool::new(true), sink, recording: None }
    }

    /// Registry that never records anything.
    pub fn noop() -> Telemetry {
        Telemetry { enabled: AtomicBool::new(false), sink: Arc::new(NoopSink), recording: None }
    }

    /// Is collection on? A single relaxed load — this is the whole cost
    /// of an instrumentation site while disabled.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn collection on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Add to a monotonic counter.
    #[inline]
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        if self.is_enabled() {
            self.sink.counter_add(name, delta);
        }
    }

    /// Record one latency observation.
    #[inline]
    pub fn observe_ns(&self, name: &'static str, ns: u64) {
        if self.is_enabled() {
            self.sink.observe_ns(name, ns);
        }
    }

    /// Set a last-value gauge.
    #[inline]
    pub fn gauge_set(&self, name: &'static str, value: u64) {
        if self.is_enabled() {
            self.sink.gauge_set(name, value);
        }
    }

    /// Record one latency observation from a [`Duration`].
    #[inline]
    pub fn observe(&self, name: &'static str, d: Duration) {
        self.observe_ns(name, d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Start a timed span feeding the histogram `name` on drop. When
    /// disabled, the guard is inert (no clock read).
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        let target = self.is_enabled().then(|| (self, Instant::now()));
        SpanGuard { target, name }
    }

    /// Record one pipeline event.
    #[inline]
    pub fn record_event(&self, event: PipelineEvent) {
        if self.is_enabled() {
            self.sink.event(event);
        }
    }

    /// Snapshot the recorded state. Empty for non-recording sinks.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.recording.as_ref().map(|r| r.snapshot()).unwrap_or_default()
    }

    /// Drop all recorded state (the enabled flag is unchanged).
    pub fn reset(&self) {
        if let Some(r) = &self.recording {
            r.reset();
        }
    }
}

/// Times a scope; on drop, feeds the elapsed time into the histogram it
/// was created for. Obtain via [`Telemetry::span`] or the free [`span`].
#[must_use = "a span measures until dropped — binding to _ ends it immediately"]
pub struct SpanGuard<'a> {
    target: Option<(&'a Telemetry, Instant)>,
    name: &'static str,
}

impl SpanGuard<'_> {
    /// Nanoseconds elapsed so far; 0 when telemetry was disabled at
    /// creation.
    pub fn elapsed_ns(&self) -> u64 {
        self.target
            .as_ref()
            .map(|(_, start)| start.elapsed().as_nanos().min(u64::MAX as u128) as u64)
            .unwrap_or(0)
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((telemetry, start)) = self.target.take() {
            telemetry.observe(self.name, start.elapsed());
        }
    }
}

static GLOBAL: OnceLock<Telemetry> = OnceLock::new();

/// The process-global registry (a [`RecordingSink`], disabled until
/// [`set_enabled`]`(true)`).
pub fn global() -> &'static Telemetry {
    GLOBAL.get_or_init(Telemetry::recording)
}

/// Is global collection on? Never initializes the registry.
#[inline]
pub fn enabled() -> bool {
    GLOBAL.get().is_some_and(Telemetry::is_enabled)
}

/// Turn global collection on or off.
pub fn set_enabled(on: bool) {
    global().set_enabled(on);
}

/// Add to a global counter. While disabled this is one atomic load.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if let Some(t) = GLOBAL.get() {
        t.counter_add(name, delta);
    }
}

/// Record one latency observation globally.
#[inline]
pub fn observe_ns(name: &'static str, ns: u64) {
    if let Some(t) = GLOBAL.get() {
        t.observe_ns(name, ns);
    }
}

/// Set a global last-value gauge. While disabled this is one atomic load.
#[inline]
pub fn gauge_set(name: &'static str, value: u64) {
    if let Some(t) = GLOBAL.get() {
        t.gauge_set(name, value);
    }
}

/// Start a global timed span. Inert (no clock read) while disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard<'static> {
    match GLOBAL.get() {
        Some(t) => t.span(name),
        None => SpanGuard { target: None, name },
    }
}

/// Record one pipeline event globally.
#[inline]
pub fn record_event(event: PipelineEvent) {
    if let Some(t) = GLOBAL.get() {
        t.record_event(event);
    }
}

/// Snapshot the global registry.
pub fn snapshot() -> TelemetrySnapshot {
    global().snapshot()
}

/// Reset the global registry's recorded state.
pub fn reset() {
    global().reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let t = Telemetry::recording();
        t.counter_add("a", 1);
        t.observe_ns("h", 100);
        {
            let g = t.span("h");
            assert_eq!(g.elapsed_ns(), 0, "inert guard");
        }
        t.record_event(PipelineEvent {
            annotation_id: 1,
            stage: "s",
            duration_ns: 1,
            candidates: 0,
            decision: String::new(),
        });
        let snap = t.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.events.is_empty());
    }

    #[test]
    fn counters_accumulate_and_saturate() {
        let t = Telemetry::recording();
        t.set_enabled(true);
        t.counter_add("x", 2);
        t.counter_add("x", 3);
        t.counter_add("y", u64::MAX);
        t.counter_add("y", 10);
        let snap = t.snapshot();
        assert_eq!(snap.counters["x"], 5);
        assert_eq!(snap.counters["y"], u64::MAX);
    }

    #[test]
    fn spans_feed_histograms() {
        let t = Telemetry::recording();
        t.set_enabled(true);
        for _ in 0..3 {
            let g = t.span("work");
            std::hint::black_box((0..100).sum::<u64>());
            drop(g);
        }
        let snap = t.snapshot();
        let h = &snap.histograms["work"];
        assert_eq!(h.count, 3);
        assert!(h.min_ns <= h.max_ns);
        assert!(h.sum_ns >= h.max_ns);
        assert!(h.mean_ns() >= h.min_ns as f64 && h.mean_ns() <= h.max_ns as f64);
        assert_eq!(h.buckets.iter().sum::<u64>(), 3);
    }

    #[test]
    fn event_ring_is_bounded() {
        let t = Telemetry::recording();
        t.set_enabled(true);
        for i in 0..(EVENT_CAPACITY as u64 + 10) {
            t.record_event(PipelineEvent {
                annotation_id: i,
                stage: "s",
                duration_ns: i,
                candidates: 0,
                decision: String::new(),
            });
        }
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), EVENT_CAPACITY);
        assert_eq!(snap.events.first().unwrap().annotation_id, 10, "oldest evicted");
        assert_eq!(snap.events.last().unwrap().annotation_id, EVENT_CAPACITY as u64 + 9);
    }

    #[test]
    fn gauges_are_last_value_wins() {
        let t = Telemetry::recording();
        t.gauge_set("g", 10); // disabled: dropped
        t.set_enabled(true);
        t.gauge_set("g", 3);
        t.gauge_set("g", 7);
        t.gauge_set("g", 5);
        let snap = t.snapshot();
        assert_eq!(snap.gauges["g"], 5);
        assert!(snap.counters.is_empty(), "gauges don't leak into counters");
    }

    #[test]
    fn reset_clears_but_keeps_enabled() {
        let t = Telemetry::recording();
        t.set_enabled(true);
        t.counter_add("x", 1);
        t.reset();
        assert!(t.is_enabled());
        assert!(t.snapshot().counters.is_empty());
        t.counter_add("x", 1);
        assert_eq!(t.snapshot().counters["x"], 1);
    }

    #[test]
    fn custom_sink_receives_records() {
        #[derive(Default)]
        struct CountingSink(std::sync::atomic::AtomicU64);
        impl MetricSink for CountingSink {
            fn counter_add(&self, _: &'static str, d: u64) {
                self.0.fetch_add(d, Ordering::Relaxed);
            }
            fn observe_ns(&self, _: &'static str, _: u64) {}
            fn event(&self, _: PipelineEvent) {}
        }
        let sink = Arc::new(CountingSink::default());
        let t = Telemetry::with_sink(sink.clone());
        assert!(t.is_enabled(), "custom-sink registries start enabled");
        t.counter_add("k", 7);
        assert_eq!(sink.0.load(Ordering::Relaxed), 7);
        assert!(t.snapshot().counters.is_empty(), "non-recording snapshot is empty");
    }

    #[test]
    fn noop_registry_is_inert() {
        let t = Telemetry::noop();
        t.set_enabled(true); // even enabled, the sink drops everything
        t.counter_add("x", 1);
        assert!(t.snapshot().counters.is_empty());
    }
}

//! Point-in-time views of the telemetry state: histograms, snapshots,
//! diffing, and deterministic text / JSON rendering.

use crate::PipelineEvent;
use std::collections::BTreeMap;

/// Upper bounds (inclusive, in nanoseconds) of the fixed histogram
/// buckets: a log scale with two buckets per decade (100ns, ~316ns,
/// 1µs, ~3.16µs, ... 1s); an implicit +inf bucket catches the rest.
/// Whole-decade bounds proved too coarse — the checked-in pipeline
/// sample put every `core.process_annotation` observation in one
/// bucket — and half-decade steps resolve the per-stage means (stage0
/// at a few µs, stage1/stage2 around 100µs, the whole pipeline in the
/// 100µs–1ms band) into distinct buckets.
pub const BUCKET_BOUNDS_NS: [u64; 15] = [
    100,
    316,
    1_000,
    3_162,
    10_000,
    31_623,
    100_000,
    316_228,
    1_000_000,
    3_162_278,
    10_000_000,
    31_622_777,
    100_000_000,
    316_227_766,
    1_000_000_000,
];

/// A latency distribution: count, min/mean/max, and fixed log-scaled
/// buckets per [`BUCKET_BOUNDS_NS`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations (saturating).
    pub sum_ns: u64,
    /// Smallest observation (0 when empty).
    pub min_ns: u64,
    /// Largest observation (0 when empty).
    pub max_ns: u64,
    /// Observation counts per bucket; index `i` counts observations
    /// `<= BUCKET_BOUNDS_NS[i]`, the last entry is the overflow bucket.
    pub buckets: [u64; BUCKET_BOUNDS_NS.len() + 1],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum_ns: 0,
            min_ns: 0,
            max_ns: 0,
            buckets: [0; BUCKET_BOUNDS_NS.len() + 1],
        }
    }
}

impl HistogramSnapshot {
    /// Record one observation.
    pub fn record(&mut self, ns: u64) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        let bucket = BUCKET_BOUNDS_NS
            .iter()
            .position(|&bound| ns <= bound)
            .unwrap_or(BUCKET_BOUNDS_NS.len());
        self.buckets[bucket] += 1;
    }

    /// Mean observation; 0 when empty.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }
}

/// A point-in-time copy of everything a registry recorded.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-value gauges by name (queue depth, health state, ...).
    pub gauges: BTreeMap<String, u64>,
    /// Latency histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Ring-buffered pipeline events, oldest first.
    pub events: Vec<PipelineEvent>,
}

impl TelemetrySnapshot {
    /// The delta since `baseline`: counters, histogram counts/sums and
    /// buckets are subtracted (saturating); gauges keep this snapshot's
    /// values (a last-value gauge doesn't diff, its current reading *is*
    /// the report); min/max keep this snapshot's values (extrema don't
    /// diff); events keep only those not present in the baseline's ring.
    pub fn diff(&self, baseline: &TelemetrySnapshot) -> TelemetrySnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(name, &v)| {
                let base = baseline.counters.get(name).copied().unwrap_or(0);
                (name.clone(), v.saturating_sub(base))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, h)| {
                let mut d = h.clone();
                if let Some(base) = baseline.histograms.get(name) {
                    d.count = d.count.saturating_sub(base.count);
                    d.sum_ns = d.sum_ns.saturating_sub(base.sum_ns);
                    for (slot, b) in d.buckets.iter_mut().zip(base.buckets) {
                        *slot = slot.saturating_sub(b);
                    }
                }
                (name.clone(), d)
            })
            .collect();
        let events = self.events.iter().filter(|e| !baseline.events.contains(e)).cloned().collect();
        TelemetrySnapshot { counters, gauges: self.gauges.clone(), histograms, events }
    }

    /// The events recorded for one annotation, oldest first.
    pub fn events_for(&self, annotation_id: u64) -> Vec<&PipelineEvent> {
        self.events.iter().filter(|e| e.annotation_id == annotation_id).collect()
    }

    /// Fixed-format text report; iteration order is the `BTreeMap`'s, so
    /// output is deterministic.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("counters:\n");
        if self.counters.is_empty() {
            out.push_str("  (none)\n");
        }
        for (name, value) in &self.counters {
            out.push_str(&format!("  {name:<40} {value}\n"));
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, value) in &self.gauges {
                out.push_str(&format!("  {name:<40} {value}\n"));
            }
        }
        out.push_str("spans:\n");
        if self.histograms.is_empty() {
            out.push_str("  (none)\n");
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "  {name:<40} count {:<8} min {:>10}  mean {:>10}  max {:>10}\n",
                h.count,
                format_ns(h.min_ns),
                format_ns(h.mean_ns() as u64),
                format_ns(h.max_ns),
            ));
        }
        out.push_str(&format!("events ({} in ring, oldest first):\n", self.events.len()));
        for ev in &self.events {
            out.push_str("  ");
            out.push_str(&ev.render_line());
            out.push('\n');
        }
        out
    }

    /// Deterministic JSON rendering (stable key order, no trailing
    /// whitespace). Hand-rolled so the workspace stays dependency-free.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        push_entries(
            &mut out,
            self.counters.iter().map(|(name, v)| format!("{}: {v}", json_string(name))),
        );
        out.push_str("},\n  \"gauges\": {");
        push_entries(
            &mut out,
            self.gauges.iter().map(|(name, v)| format!("{}: {v}", json_string(name))),
        );
        out.push_str("},\n  \"histograms\": {");
        push_entries(
            &mut out,
            self.histograms.iter().map(|(name, h)| {
                let buckets = h.buckets.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
                format!(
                    "{}: {{\"count\": {}, \"sum_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
                 \"mean_ns\": {:.1}, \"buckets\": [{buckets}]}}",
                    json_string(name),
                    h.count,
                    h.sum_ns,
                    h.min_ns,
                    h.max_ns,
                    h.mean_ns(),
                )
            }),
        );
        out.push_str("},\n  \"events\": [");
        push_entries(
            &mut out,
            self.events.iter().map(|e| {
                format!(
                    "{{\"annotation_id\": {}, \"stage\": {}, \"duration_ns\": {}, \
                 \"candidates\": {}, \"decision\": {}}}",
                    e.annotation_id,
                    json_string(e.stage),
                    e.duration_ns,
                    e.candidates,
                    json_string(&e.decision),
                )
            }),
        );
        out.push_str("]\n}\n");
        out
    }
}

pub(crate) fn push_entries(out: &mut String, entries: impl Iterator<Item = String>) {
    let mut first = true;
    for entry in entries {
        if first {
            first = false;
        } else {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&entry);
    }
    if !first {
        out.push_str("\n  ");
    }
}

/// JSON string literal with escaping.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Human-readable nanoseconds: `999ns`, `1.50µs`, `2.30ms`, `1.20s`.
pub(crate) fn format_ns(ns: u64) -> String {
    let ns_f = ns as f64;
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns_f / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns_f / 1e6)
    } else {
        format!("{:.2}s", ns_f / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::default();
        snap.counters.insert("core.accepted".into(), 3);
        snap.counters.insert("relstore.tuples_scanned".into(), 120);
        let mut h = HistogramSnapshot::default();
        h.record(500);
        h.record(2_000);
        h.record(3_000_000);
        snap.histograms.insert("stage2.execute".into(), h);
        snap.events.push(PipelineEvent {
            annotation_id: 1,
            stage: "stage3.route",
            duration_ns: 42,
            candidates: 2,
            decision: "accepted=1 pending=1 rejected=0".into(),
        });
        snap
    }

    #[test]
    fn histogram_tracks_extrema_and_buckets() {
        let mut h = HistogramSnapshot::default();
        assert_eq!(h.mean_ns(), 0.0, "empty histogram mean is 0");
        h.record(500); // bucket 2 (≤1µs)
        h.record(2_000); // bucket 3 (≤3.16µs)
        h.record(5_000_000_000); // overflow bucket
        assert_eq!(h.count, 3);
        assert_eq!(h.min_ns, 500);
        assert_eq!(h.max_ns, 5_000_000_000);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[BUCKET_BOUNDS_NS.len()], 1);

        // Half-decade resolution separates the pipeline's stage means:
        // a ~5µs stage0, a ~100µs stage1, and a ~300µs pipeline land in
        // three distinct buckets instead of sharing the ≤1ms bucket.
        let mut stages = HistogramSnapshot::default();
        stages.record(5_000);
        stages.record(100_000);
        stages.record(300_000);
        assert_eq!(stages.buckets.iter().filter(|&&c| c == 1).count(), 3);
    }

    #[test]
    fn diff_subtracts_counters_and_keeps_new_events() {
        let base = sample();
        let mut later = sample();
        *later.counters.get_mut("core.accepted").unwrap() = 10;
        later.histograms.get_mut("stage2.execute").unwrap().record(700);
        later.events.push(PipelineEvent {
            annotation_id: 2,
            stage: "stage3.route",
            duration_ns: 11,
            candidates: 0,
            decision: "accepted=0 pending=0 rejected=0".into(),
        });
        let d = later.diff(&base);
        assert_eq!(d.counters["core.accepted"], 7);
        assert_eq!(d.counters["relstore.tuples_scanned"], 0);
        assert_eq!(d.histograms["stage2.execute"].count, 1);
        assert_eq!(d.events.len(), 1);
        assert_eq!(d.events[0].annotation_id, 2);
    }

    #[test]
    fn text_rendering_is_deterministic_and_complete() {
        let a = sample().render_text();
        let b = sample().render_text();
        assert_eq!(a, b);
        assert!(a.contains("core.accepted"));
        assert!(a.contains("stage2.execute"));
        assert!(a.contains("[ann 1]"));
        let empty = TelemetrySnapshot::default().render_text();
        assert!(empty.contains("(none)"));
    }

    #[test]
    fn json_rendering_is_valid_and_escaped() {
        let mut snap = sample();
        snap.events[0].decision = "say \"hi\"\nnewline\tand \\ backslash".into();
        let json = snap.render_json();
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"core.accepted\": 3"));
        assert!(json.contains("\\\"hi\\\"\\nnewline\\tand \\\\ backslash"));
        // Structural sanity: balanced braces/brackets outside strings.
        let (mut depth, mut in_str, mut escape) = (0i32, false, false);
        for c in json.chars() {
            if escape {
                escape = false;
                continue;
            }
            match c {
                '\\' if in_str => escape = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn gauges_render_and_keep_current_value_in_diff() {
        let mut base = sample();
        base.gauges.insert("ingest.queue_depth_peak".into(), 4);
        let mut later = base.clone();
        later.gauges.insert("ingest.queue_depth_peak".into(), 9);
        let d = later.diff(&base);
        assert_eq!(d.gauges["ingest.queue_depth_peak"], 9, "gauges keep the current reading");
        let text = later.render_text();
        assert!(text.contains("gauges:"));
        assert!(text.contains("ingest.queue_depth_peak"));
        let json = later.render_json();
        assert!(json.contains("\"gauges\""));
        assert!(json.contains("\"ingest.queue_depth_peak\": 9"));
        // Snapshots without gauges omit the text section entirely.
        assert!(!sample().render_text().contains("gauges:"));
    }

    #[test]
    fn events_for_filters_by_annotation() {
        let mut snap = sample();
        snap.events.push(PipelineEvent {
            annotation_id: 9,
            stage: "stage1.querygen",
            duration_ns: 5,
            candidates: 3,
            decision: String::new(),
        });
        assert_eq!(snap.events_for(1).len(), 1);
        assert_eq!(snap.events_for(9).len(), 1);
        assert!(snap.events_for(42).is_empty());
    }

    #[test]
    fn format_ns_units() {
        assert_eq!(format_ns(999), "999ns");
        assert_eq!(format_ns(1_500), "1.50µs");
        assert_eq!(format_ns(2_300_000), "2.30ms");
        assert_eq!(format_ns(1_200_000_000), "1.20s");
    }
}

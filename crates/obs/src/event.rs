//! Structured per-annotation pipeline events.

/// One record in the pipeline event ring: what a stage did for one
/// annotation. The engine emits one per stage plus a summary record, so
/// `EXPLAIN ANNOTATION <id>` can replay the pipeline after the fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineEvent {
    /// The annotation's store id.
    pub annotation_id: u64,
    /// The stage that produced this record (one of [`crate::names`]).
    pub stage: &'static str,
    /// Wall time the stage took.
    pub duration_ns: u64,
    /// Candidates flowing out of the stage (queries for stage 1,
    /// candidate tuples for stage 2, routed candidates for stage 3).
    pub candidates: u64,
    /// Human-readable outcome, e.g. `accepted=2 pending=1 rejected=0`.
    pub decision: String,
}

impl PipelineEvent {
    /// Render as one fixed-format text line (used by the shell).
    pub fn render_line(&self) -> String {
        format!(
            "[ann {}] {:<24} {:>12}  candidates={:<6} {}",
            self.annotation_id,
            self.stage,
            crate::snapshot::format_ns(self.duration_ns),
            self.candidates,
            self.decision
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_line_contains_all_fields() {
        let ev = PipelineEvent {
            annotation_id: 7,
            stage: "stage2.execute",
            duration_ns: 1_500,
            candidates: 4,
            decision: "accepted=1 pending=2 rejected=1".into(),
        };
        let line = ev.render_line();
        assert!(line.contains("[ann 7]"));
        assert!(line.contains("stage2.execute"));
        assert!(line.contains("1.50µs"));
        assert!(line.contains("candidates=4"));
        assert!(line.contains("accepted=1"));
    }
}

//! Deterministic end-to-end tracing: causal span trees, commit
//! critical-path attribution, and a bounded post-mortem flight recorder.
//!
//! A **trace** is one rooted span tree per committed annotation, covering
//! the whole commit path: the ingest pool opens the root at dispatch and
//! attaches the admission waits (queue sojourn, turn-gate wait), the core
//! pipeline attaches the stage0–stage3 spans with their routing
//! decisions, the durability layer attaches WAL append / fsync /
//! checkpoint spans, and the replication layer attaches per-peer ship /
//! ack spans.
//!
//! ## Determinism
//!
//! Span IDs are a pure function of `(annotation id, epoch, first LSN,
//! open sequence)` — no wall clock, no randomness — so for a fixed fault
//! seed the serialized trace *structure* (IDs, parentage, labels,
//! details) is byte-identical at any worker count: the ingest pool's
//! turn gate serializes engine-side work in admission order, which makes
//! the open sequence deterministic. Durations are measured through the
//! ambient time source ([`install_time_source`] lets `govern`'s virtual
//! clock take over where one is active) and are **excluded** from the
//! structure rendering; they only appear in the timing-bearing JSON and
//! in critical-path attribution.
//!
//! ## Cost model
//!
//! Like the parent telemetry registry, the whole module sits behind one
//! `AtomicBool`: while tracing is disabled every instrumentation call is
//! a single relaxed load. The active-trace state is thread-local, so
//! enabled-path bookkeeping is lock-free until a finished trace is
//! pushed into the bounded global ring.
//!
//! ## Flight recorder
//!
//! A bounded ring of operational events — completed commits, health
//! transitions, breaker trips, shed records, fence / divergence events —
//! with a global causal sequence number. When ingest reaches Wedged, a
//! primary is fenced, or divergence is detected, the instrumented site
//! calls [`flight_dump`], which snapshots the ring into a deterministic
//! JSON post-mortem retained in a small bounded list.

use crate::snapshot::{json_string, push_entries};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Metric names the tracing layer publishes into the parent registry.
pub mod counters {
    /// Trace spans completed.
    pub const SPANS: &str = "trace.spans";
    /// Committed traces pushed into the ring.
    pub const TRACES: &str = "trace.traces";
    /// Traces evicted from the bounded ring.
    pub const RING_EVICTIONS: &str = "trace.ring_evictions";
    /// Flight-recorder events recorded.
    pub const FLIGHT_EVENTS: &str = "trace.flight_events";
    /// Post-mortem dumps produced.
    pub const FLIGHT_DUMPS: &str = "trace.flight_dumps";
    /// Gauge: traces currently held in the ring.
    pub const RING_OCCUPANCY: &str = "trace.ring_occupancy";
}

/// How many finished traces the global ring retains.
pub const TRACE_CAPACITY: usize = 256;
/// How many flight-recorder events the ring retains.
pub const FLIGHT_CAPACITY: usize = 128;
/// How many post-mortem dumps are retained.
pub const FLIGHT_DUMP_CAPACITY: usize = 8;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn tracing on or off. Off (the default) reduces every call in this
/// module to one relaxed atomic load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Is tracing on?
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// Time source
// ---------------------------------------------------------------------

/// An ambient nanosecond clock probe: return `Some(ns)` to take over
/// timing, `None` to fall through to the real monotonic clock. The
/// govern crate installs a probe backed by its virtual clock so traced
/// durations stay deterministic wherever the virtual clock is active.
pub type TimeSource = fn() -> Option<u64>;

static TIME_SOURCE: OnceLock<TimeSource> = OnceLock::new();
static PROCESS_START: OnceLock<Instant> = OnceLock::new();

/// Install the ambient time source (first installation wins; later calls
/// are ignored, which makes installation idempotent).
pub fn install_time_source(source: TimeSource) {
    let _ = TIME_SOURCE.set(source);
}

fn now_ns() -> u64 {
    if let Some(source) = TIME_SOURCE.get() {
        if let Some(ns) = source() {
            return ns;
        }
    }
    PROCESS_START.get_or_init(Instant::now).elapsed().as_nanos().min(u64::MAX as u128) as u64
}

// ---------------------------------------------------------------------
// Span trees
// ---------------------------------------------------------------------

/// One completed span in a trace: a labeled segment of the commit path
/// with a deterministic ID, its parent's ID (0 for the root), a
/// deterministic detail string (decision, LSN, peer, ...), and a
/// duration that is *not* part of the deterministic structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// Deterministic span ID (never 0).
    pub id: u64,
    /// Parent span ID; 0 marks the root.
    pub parent: u64,
    /// Segment label (`ingest.item`, `stage2.execute`, `durable.append`,
    /// `repl.ack`, ...).
    pub label: &'static str,
    /// Deterministic annotation-specific detail (decision string, LSN,
    /// peer id, queue class).
    pub detail: String,
    /// Measured duration. Excluded from the structure rendering.
    pub duration_ns: u64,
}

/// One rooted span tree for a committed annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// The committed annotation's id.
    pub annotation: u64,
    /// Replication epoch under which the commit ran (0 when replication
    /// is off).
    pub epoch: u64,
    /// First WAL LSN the commit appended (0 when durability is off).
    pub lsn: u64,
    /// Spans in open order; index 0 is the root.
    pub spans: Vec<TraceSpan>,
}

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut hash = seed;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// The deterministic span ID: FNV-1a over (annotation id, epoch, first
/// LSN, open sequence). Never 0 — 0 is the root's parent sentinel.
pub fn span_id(annotation: u64, epoch: u64, lsn: u64, seq: u32) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325;
    hash = fnv1a(hash, &annotation.to_le_bytes());
    hash = fnv1a(hash, &epoch.to_le_bytes());
    hash = fnv1a(hash, &lsn.to_le_bytes());
    hash = fnv1a(hash, &seq.to_le_bytes());
    hash.max(1)
}

impl Trace {
    /// The root span.
    pub fn root(&self) -> &TraceSpan {
        &self.spans[0]
    }

    fn children_of(&self, id: u64) -> impl Iterator<Item = &TraceSpan> {
        self.spans.iter().filter(move |s| s.parent == id)
    }

    /// The critical path: from the root, repeatedly descend into the
    /// child with the largest duration (ties break toward open order).
    pub fn critical_path(&self) -> Vec<&TraceSpan> {
        let mut path = vec![self.root()];
        loop {
            let here = path[path.len() - 1];
            match self.children_of(here.id).max_by_key(|s| s.duration_ns) {
                Some(next) => path.push(next),
                None => return path,
            }
        }
    }

    /// Self time per label: each span's duration minus its children's
    /// (saturating), accumulated by label. This is the attribution
    /// primitive — the label with the largest self time is the segment
    /// that dominated the commit.
    pub fn self_times(&self) -> BTreeMap<&'static str, u64> {
        let mut child_sum: BTreeMap<u64, u64> = BTreeMap::new();
        for span in &self.spans {
            if span.parent != 0 {
                let slot = child_sum.entry(span.parent).or_insert(0);
                *slot = slot.saturating_add(span.duration_ns);
            }
        }
        let mut out: BTreeMap<&'static str, u64> = BTreeMap::new();
        for span in &self.spans {
            let children = child_sum.get(&span.id).copied().unwrap_or(0);
            let own = span.duration_ns.saturating_sub(children);
            let slot = out.entry(span.label).or_insert(0);
            *slot = slot.saturating_add(own);
        }
        out
    }

    /// Deterministic JSON. With `with_durations` false this is the
    /// *structure* rendering — IDs, parentage, labels, details only —
    /// which is byte-identical across worker counts for a fixed fault
    /// seed and backs the determinism tests and the golden sample.
    pub fn render_json(&self, with_durations: bool) -> String {
        let mut out = format!(
            "{{\"annotation\": {}, \"epoch\": {}, \"lsn\": {}, \"spans\": [",
            self.annotation, self.epoch, self.lsn
        );
        let mut first = true;
        for span in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {{\"id\": {}, \"parent\": {}, \"label\": {}, \"detail\": {}",
                span.id,
                span.parent,
                json_string(span.label),
                json_string(&span.detail),
            ));
            if with_durations {
                out.push_str(&format!(", \"duration_ns\": {}", span.duration_ns));
            }
            out.push('}');
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("]}");
        out
    }

    /// Human-readable tree for the shell, one span per line with
    /// indentation, detail, duration, and a `*` on the critical path.
    pub fn render_tree(&self) -> String {
        let critical: Vec<u64> = self.critical_path().iter().map(|s| s.id).collect();
        let mut out = format!(
            "annotation A{} (epoch {}, lsn {}): {} span(s)\n",
            self.annotation,
            self.epoch,
            self.lsn,
            self.spans.len()
        );
        self.render_subtree(0, 1, &critical, &mut out);
        let leaf = critical.last().copied().unwrap_or(0);
        if let Some(span) = self.spans.iter().find(|s| s.id == leaf) {
            out.push_str(&format!(
                "critical path ends at {} ({})\n",
                span.label,
                crate::snapshot::format_ns(span.duration_ns)
            ));
        }
        out
    }

    fn render_subtree(&self, parent: u64, depth: usize, critical: &[u64], out: &mut String) {
        for span in self.children_of(parent) {
            let marker = if critical.contains(&span.id) { "*" } else { " " };
            let detail =
                if span.detail.is_empty() { String::new() } else { format!(" [{}]", span.detail) };
            out.push_str(&format!(
                "{}{}{}{}  {}\n",
                marker,
                "  ".repeat(depth),
                span.label,
                detail,
                crate::snapshot::format_ns(span.duration_ns),
            ));
            self.render_subtree(span.id, depth + 1, critical, out);
        }
    }
}

/// Render a batch of traces as one deterministic JSON document.
pub fn render_traces_json(traces: &[Trace], with_durations: bool) -> String {
    let mut out = String::from("{\n  \"traces\": [");
    let mut first = true;
    for trace in traces {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n  ");
        out.push_str(&trace.render_json(with_durations));
    }
    if !first {
        out.push('\n');
    }
    out.push_str("]\n}\n");
    out
}

// ---------------------------------------------------------------------
// Aggregate attribution
// ---------------------------------------------------------------------

/// Aggregate critical-path attribution over a batch of traces: total
/// self time per segment label, sorted by share.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Attribution {
    /// Traces aggregated.
    pub traces: usize,
    /// Sum of root (end-to-end) durations.
    pub total_ns: u64,
    /// `(label, self time)` pairs, largest first (ties break by name).
    pub segments: Vec<(&'static str, u64)>,
}

impl Attribution {
    /// The dominant segment, if any trace was aggregated.
    pub fn dominant(&self) -> Option<(&'static str, u64)> {
        self.segments.first().copied()
    }

    /// Fixed-format text report.
    pub fn render_text(&self) -> String {
        if self.traces == 0 {
            return "critical path: no traces recorded".into();
        }
        let mut out = format!(
            "critical path over {} trace(s), total {}:\n",
            self.traces,
            crate::snapshot::format_ns(self.total_ns)
        );
        for (label, ns) in &self.segments {
            let share =
                if self.total_ns == 0 { 0.0 } else { *ns as f64 / self.total_ns as f64 * 100.0 };
            out.push_str(&format!(
                "  {label:<28} {:>10}  ({share:.1}%)\n",
                crate::snapshot::format_ns(*ns)
            ));
        }
        out
    }
}

/// Aggregate self-time attribution over `traces`.
pub fn attribution(traces: &[Trace]) -> Attribution {
    let mut by_label: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut total_ns = 0u64;
    for trace in traces {
        total_ns = total_ns.saturating_add(trace.root().duration_ns);
        for (label, ns) in trace.self_times() {
            let slot = by_label.entry(label).or_insert(0);
            *slot = slot.saturating_add(ns);
        }
    }
    let mut segments: Vec<(&'static str, u64)> = by_label.into_iter().collect();
    segments.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    Attribution { traces: traces.len(), total_ns, segments }
}

// ---------------------------------------------------------------------
// Thread-local trace builder
// ---------------------------------------------------------------------

#[derive(Debug)]
struct RawSpan {
    label: &'static str,
    detail: String,
    parent: Option<usize>,
    start_ns: u64,
    duration_ns: u64,
    closed: bool,
}

#[derive(Debug)]
struct Builder {
    annotation: Option<u64>,
    epoch: u64,
    first_lsn: u64,
    extend_root_ns: u64,
    spans: Vec<RawSpan>,
    stack: Vec<usize>,
}

thread_local! {
    static BUILDER: RefCell<Option<Builder>> = const { RefCell::new(None) };
}

fn with_builder<R>(f: impl FnOnce(&mut Builder) -> R) -> Option<R> {
    BUILDER.with(|slot| slot.borrow_mut().as_mut().map(f))
}

/// Begin a fresh trace on this thread, replacing any abandoned one, and
/// open its root span. Returns whether a trace is now active (tracing
/// must be enabled).
pub fn start(label: &'static str) -> bool {
    if !enabled() {
        BUILDER.with(|slot| slot.borrow_mut().take());
        return false;
    }
    let root = RawSpan {
        label,
        detail: String::new(),
        parent: None,
        start_ns: now_ns(),
        duration_ns: 0,
        closed: false,
    };
    BUILDER.with(|slot| {
        *slot.borrow_mut() = Some(Builder {
            annotation: None,
            epoch: 0,
            first_lsn: 0,
            extend_root_ns: 0,
            spans: vec![root],
            stack: vec![0],
        });
    });
    true
}

/// Begin a trace only when none is active on this thread. Returns true
/// when this call started one (the caller then owns finish / abandon).
pub fn start_if_idle(label: &'static str) -> bool {
    if !enabled() {
        return false;
    }
    let idle = BUILDER.with(|slot| slot.borrow().is_none());
    if idle {
        start(label)
    } else {
        false
    }
}

/// Is a trace active on this thread?
pub fn active() -> bool {
    enabled() && BUILDER.with(|slot| slot.borrow().is_some())
}

/// Bind the active trace to the annotation it is committing.
pub fn bind(annotation: u64) {
    if !enabled() {
        return;
    }
    with_builder(|b| b.annotation = Some(annotation));
}

/// Record the replication epoch the commit runs under (last wins).
pub fn note_epoch(epoch: u64) {
    if !enabled() {
        return;
    }
    with_builder(|b| b.epoch = epoch);
}

/// Set the root span's deterministic detail string (e.g. the admission
/// queue class).
pub fn root_detail(detail: impl Into<String>) {
    if !enabled() {
        return;
    }
    with_builder(|b| {
        if let Some(root) = b.spans.first_mut() {
            root.detail = detail.into();
        }
    });
}

/// Record a WAL LSN the commit appended (the first one feeds span-ID
/// derivation).
pub fn note_lsn(lsn: u64) {
    if !enabled() {
        return;
    }
    with_builder(|b| {
        if b.first_lsn == 0 {
            b.first_lsn = lsn;
        }
    });
}

/// Attach a leaf span with an explicit, externally measured duration
/// (queue sojourn, turn-gate wait). The root span's duration is extended
/// by the same amount so it keeps covering admission → commit.
pub fn wait(label: &'static str, detail: String, duration_ns: u64) {
    if !enabled() {
        return;
    }
    with_builder(|b| {
        let parent = b.stack.last().copied();
        let start_ns = b.spans.first().map(|r| r.start_ns).unwrap_or(0);
        b.spans.push(RawSpan { label, detail, parent, start_ns, duration_ns, closed: true });
        b.extend_root_ns = b.extend_root_ns.saturating_add(duration_ns);
    });
    crate::counter_add(counters::SPANS, 1);
}

/// A guard for an open child span in the active trace; closes the span
/// with its measured duration on drop. Inert when no trace is active.
#[must_use = "a trace span measures until dropped — binding to _ ends it immediately"]
pub struct SpanHandle {
    idx: Option<usize>,
}

impl SpanHandle {
    /// A handle that does nothing.
    pub fn inert() -> SpanHandle {
        SpanHandle { idx: None }
    }

    /// Is this handle attached to an open span?
    pub fn is_active(&self) -> bool {
        self.idx.is_some()
    }

    /// Set the span's deterministic detail string.
    pub fn detail(&self, detail: impl Into<String>) {
        if let Some(idx) = self.idx {
            with_builder(|b| {
                if let Some(span) = b.spans.get_mut(idx) {
                    span.detail = detail.into();
                }
            });
        }
    }
}

impl Drop for SpanHandle {
    fn drop(&mut self) {
        let Some(idx) = self.idx.take() else { return };
        let closed = with_builder(|b| {
            if let Some(span) = b.spans.get_mut(idx) {
                if !span.closed {
                    span.duration_ns = now_ns().saturating_sub(span.start_ns);
                    span.closed = true;
                }
            }
            while let Some(&top) = b.stack.last() {
                if top == idx {
                    b.stack.pop();
                    break;
                }
                // Defensive: a span under this one leaked open (panic
                // unwound past its guard); close it at our boundary.
                if b.stack.len() == 1 {
                    break;
                }
                b.stack.pop();
            }
            true
        });
        if closed.unwrap_or(false) {
            crate::counter_add(counters::SPANS, 1);
        }
    }
}

/// Open a child span under the current span of the active trace.
pub fn span(label: &'static str) -> SpanHandle {
    if !enabled() {
        return SpanHandle::inert();
    }
    let idx = with_builder(|b| {
        let parent = b.stack.last().copied();
        b.spans.push(RawSpan {
            label,
            detail: String::new(),
            parent,
            start_ns: now_ns(),
            duration_ns: 0,
            closed: false,
        });
        let idx = b.spans.len() - 1;
        b.stack.push(idx);
        idx
    });
    SpanHandle { idx }
}

/// Drop the active trace without committing it (shed, quarantine,
/// panic).
pub fn abandon() {
    BUILDER.with(|slot| slot.borrow_mut().take());
}

/// Close the active trace and, when it was bound to an annotation, push
/// it into the global ring. Returns the committed annotation id.
pub fn finish() -> Option<u64> {
    let builder = BUILDER.with(|slot| slot.borrow_mut().take())?;
    let annotation = builder.annotation?;
    let end_ns = now_ns();
    let mut raws = builder.spans;
    for raw in raws.iter_mut() {
        if !raw.closed {
            raw.duration_ns = end_ns.saturating_sub(raw.start_ns);
            raw.closed = true;
        }
    }
    if let Some(root) = raws.first_mut() {
        root.duration_ns = root.duration_ns.saturating_add(builder.extend_root_ns);
    }
    let ids: Vec<u64> = (0..raws.len())
        .map(|seq| span_id(annotation, builder.epoch, builder.first_lsn, seq as u32))
        .collect();
    let spans: Vec<TraceSpan> = raws
        .into_iter()
        .enumerate()
        .map(|(i, raw)| TraceSpan {
            id: ids[i],
            parent: raw.parent.map(|p| ids[p]).unwrap_or(0),
            label: raw.label,
            detail: raw.detail,
            duration_ns: raw.duration_ns,
        })
        .collect();
    let span_count = spans.len();
    let trace = Trace { annotation, epoch: builder.epoch, lsn: builder.first_lsn, spans };
    let occupancy = {
        let mut store = STORE.lock().unwrap_or_else(|e| e.into_inner());
        if store.len() == TRACE_CAPACITY {
            store.pop_front();
            crate::counter_add(counters::RING_EVICTIONS, 1);
        }
        store.push_back(trace);
        store.len()
    };
    crate::counter_add(counters::SPANS, 1); // the root
    crate::counter_add(counters::TRACES, 1);
    crate::gauge_set(counters::RING_OCCUPANCY, occupancy as u64);
    flight_event("commit", format!("annotation=A{annotation} spans={span_count}"));
    Some(annotation)
}

// ---------------------------------------------------------------------
// Global trace ring
// ---------------------------------------------------------------------

static STORE: Mutex<VecDeque<Trace>> = Mutex::new(VecDeque::new());

/// All retained traces, oldest first.
pub fn traces() -> Vec<Trace> {
    STORE.lock().unwrap_or_else(|e| e.into_inner()).iter().cloned().collect()
}

/// The most recent trace for one annotation.
pub fn for_annotation(annotation: u64) -> Option<Trace> {
    STORE
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .rev()
        .find(|t| t.annotation == annotation)
        .cloned()
}

/// Clear the trace ring and the flight recorder (enabled flag and any
/// in-flight thread-local builders are untouched).
pub fn reset() {
    STORE.lock().unwrap_or_else(|e| e.into_inner()).clear();
    let mut flight = FLIGHT.lock().unwrap_or_else(|e| e.into_inner());
    flight.seq = 0;
    flight.ring.clear();
    flight.dumps.clear();
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

/// One flight-recorder event: a causal sequence number, an event kind,
/// and a deterministic detail string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global causal sequence number (1-based).
    pub seq: u64,
    /// Event kind: `commit`, `health`, `breaker.trip`, `shed`, `wedge`,
    /// `fence`, `divergence`.
    pub kind: &'static str,
    /// Deterministic detail string.
    pub detail: String,
}

/// One post-mortem: the trigger plus the flight ring as it stood when
/// the trigger fired, in causal order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    /// What fired the dump (`ingest.wedged`, `repl.fenced`,
    /// `repl.divergence`).
    pub trigger: String,
    /// The ring at dump time, oldest first.
    pub events: Vec<FlightEvent>,
}

impl FlightDump {
    /// Deterministic JSON rendering (no wall-clock fields).
    pub fn render_json(&self) -> String {
        let mut out =
            format!("{{\n  \"trigger\": {},\n  \"events\": [", json_string(&self.trigger));
        push_entries(
            &mut out,
            self.events.iter().map(|e| {
                format!(
                    "{{\"seq\": {}, \"kind\": {}, \"detail\": {}}}",
                    e.seq,
                    json_string(e.kind),
                    json_string(&e.detail),
                )
            }),
        );
        out.push_str("]\n}\n");
        out
    }
}

#[derive(Debug, Default)]
struct Flight {
    seq: u64,
    ring: VecDeque<FlightEvent>,
    dumps: Vec<FlightDump>,
}

static FLIGHT: Mutex<Flight> =
    Mutex::new(Flight { seq: 0, ring: VecDeque::new(), dumps: Vec::new() });

/// Record one flight-recorder event. One relaxed load while tracing is
/// disabled.
pub fn flight_event(kind: &'static str, detail: String) {
    if !enabled() {
        return;
    }
    let mut flight = FLIGHT.lock().unwrap_or_else(|e| e.into_inner());
    flight.seq += 1;
    let seq = flight.seq;
    if flight.ring.len() == FLIGHT_CAPACITY {
        flight.ring.pop_front();
    }
    flight.ring.push_back(FlightEvent { seq, kind, detail });
    drop(flight);
    crate::counter_add(counters::FLIGHT_EVENTS, 1);
}

/// Snapshot the flight ring into a post-mortem dump. Call at the moment
/// a terminal condition is detected — ingest Wedged, a fenced primary,
/// a detected divergence.
pub fn flight_dump(trigger: &str) {
    if !enabled() {
        return;
    }
    let mut flight = FLIGHT.lock().unwrap_or_else(|e| e.into_inner());
    let events: Vec<FlightEvent> = flight.ring.iter().cloned().collect();
    if flight.dumps.len() == FLIGHT_DUMP_CAPACITY {
        flight.dumps.remove(0);
    }
    flight.dumps.push(FlightDump { trigger: trigger.to_string(), events });
    drop(flight);
    crate::counter_add(counters::FLIGHT_DUMPS, 1);
}

/// The flight ring, oldest first.
pub fn flight_events() -> Vec<FlightEvent> {
    FLIGHT.lock().unwrap_or_else(|e| e.into_inner()).ring.iter().cloned().collect()
}

/// All retained post-mortem dumps, oldest first.
pub fn flight_dumps() -> Vec<FlightDump> {
    FLIGHT.lock().unwrap_or_else(|e| e.into_inner()).dumps.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // Tracing state is process-global; serialize the tests that toggle it.
    static LOCK: StdMutex<()> = StdMutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn build_one(annotation: u64) -> Option<u64> {
        assert!(start("ingest.item"));
        wait("ingest.queue_wait", String::new(), 50);
        wait("ingest.turn_wait", String::new(), 25);
        {
            let pipeline = span("core.process_annotation");
            bind(annotation);
            note_lsn(7);
            note_epoch(3);
            {
                let stage = span("stage2.execute");
                stage.detail("strategy=primary");
            }
            drop(pipeline);
        }
        finish()
    }

    #[test]
    fn disabled_tracing_is_inert() {
        let _g = guard();
        set_enabled(false);
        reset();
        assert!(!start("ingest.item"));
        assert!(!active());
        let h = span("stage0.register");
        assert!(!h.is_active());
        drop(h);
        wait("ingest.queue_wait", String::new(), 10);
        assert!(finish().is_none());
        flight_event("shed", "reason=test".into());
        assert!(traces().is_empty());
        assert!(flight_events().is_empty());
    }

    #[test]
    fn span_ids_are_deterministic_functions_of_inputs() {
        assert_eq!(span_id(1, 2, 3, 4), span_id(1, 2, 3, 4));
        assert_ne!(span_id(1, 2, 3, 4), span_id(1, 2, 3, 5));
        assert_ne!(span_id(1, 2, 3, 4), span_id(2, 2, 3, 4));
        assert_ne!(span_id(1, 2, 3, 4), span_id(1, 3, 3, 4));
        assert_ne!(span_id(1, 2, 3, 4), span_id(1, 2, 4, 4));
        assert_ne!(span_id(1, 2, 3, 4), 0, "0 is the root-parent sentinel");
    }

    #[test]
    fn trace_builder_produces_one_rooted_tree() {
        let _g = guard();
        set_enabled(true);
        reset();
        let committed = build_one(42);
        set_enabled(false);
        assert_eq!(committed, Some(42));

        let trace = for_annotation(42).expect("stored");
        assert_eq!(trace.epoch, 3);
        assert_eq!(trace.lsn, 7);
        assert_eq!(trace.spans.len(), 5);
        assert_eq!(trace.root().label, "ingest.item");
        assert_eq!(trace.root().parent, 0);
        let root_id = trace.root().id;
        for span in &trace.spans[1..] {
            assert!(span.parent != 0, "every non-root span has a parent");
        }
        let stage2 = trace.spans.iter().find(|s| s.label == "stage2.execute").expect("stage2");
        assert_eq!(stage2.detail, "strategy=primary");
        let pipeline =
            trace.spans.iter().find(|s| s.label == "core.process_annotation").expect("pipeline");
        assert_eq!(pipeline.parent, root_id);
        assert_eq!(stage2.parent, pipeline.id);
        // Wait spans extended the root's duration.
        assert!(trace.root().duration_ns >= 75);
    }

    #[test]
    fn structure_rendering_excludes_durations_and_is_stable() {
        let _g = guard();
        set_enabled(true);
        reset();
        build_one(9).expect("committed");
        let a = for_annotation(9).expect("stored");
        reset();
        build_one(9).expect("committed");
        let b = for_annotation(9).expect("stored");
        set_enabled(false);

        assert_eq!(
            a.render_json(false),
            b.render_json(false),
            "structure is independent of measured durations"
        );
        assert!(!a.render_json(false).contains("duration_ns"));
        assert!(a.render_json(true).contains("duration_ns"));
        assert_eq!(
            render_traces_json(std::slice::from_ref(&a), false),
            render_traces_json(&[b], false)
        );
        assert!(a.render_tree().contains("annotation A9"));
    }

    #[test]
    fn critical_path_follows_the_slowest_child() {
        let mk = |id, parent, label: &'static str, ns| TraceSpan {
            id,
            parent,
            label,
            detail: String::new(),
            duration_ns: ns,
        };
        let trace = Trace {
            annotation: 1,
            epoch: 0,
            lsn: 0,
            spans: vec![
                mk(10, 0, "root", 100),
                mk(11, 10, "fast", 10),
                mk(12, 10, "slow", 80),
                mk(13, 12, "slow.child", 70),
            ],
        };
        let path: Vec<&str> = trace.critical_path().iter().map(|s| s.label).collect();
        assert_eq!(path, vec!["root", "slow", "slow.child"]);
        let selfs = trace.self_times();
        assert_eq!(selfs["root"], 10, "100 - (10 + 80)");
        assert_eq!(selfs["slow"], 10, "80 - 70");
        assert_eq!(selfs["slow.child"], 70);
    }

    #[test]
    fn attribution_aggregates_self_time_across_traces() {
        let _g = guard();
        set_enabled(true);
        reset();
        build_one(1).expect("committed");
        build_one(2).expect("committed");
        let all = traces();
        set_enabled(false);
        assert_eq!(all.len(), 2);
        let attr = attribution(&all);
        assert_eq!(attr.traces, 2);
        assert!(attr.total_ns >= 150, "two roots, each extended by 75ns of waits");
        let labels: Vec<&str> = attr.segments.iter().map(|(l, _)| *l).collect();
        assert!(labels.contains(&"ingest.queue_wait"), "{labels:?}");
        assert!(labels.contains(&"stage2.execute"), "{labels:?}");
        assert!(attr.dominant().is_some());
        assert!(attr.render_text().contains("critical path over 2 trace(s)"));
        assert_eq!(attribution(&[]).render_text(), "critical path: no traces recorded");
    }

    #[test]
    fn unbound_or_abandoned_traces_are_discarded() {
        let _g = guard();
        set_enabled(true);
        reset();
        assert!(start("ingest.item"));
        let _ = span("stage0.register");
        assert!(finish().is_none(), "no annotation bound");
        assert!(start("ingest.item"));
        bind(5);
        abandon();
        assert!(finish().is_none(), "abandoned builders never commit");
        assert!(traces().is_empty());
        set_enabled(false);
    }

    #[test]
    fn start_if_idle_respects_an_active_trace() {
        let _g = guard();
        set_enabled(true);
        reset();
        assert!(start_if_idle("core.process_annotation"), "idle thread starts");
        assert!(active());
        assert!(!start_if_idle("core.process_annotation"), "active thread declines");
        abandon();
        set_enabled(false);
    }

    #[test]
    fn trace_ring_is_bounded() {
        let _g = guard();
        set_enabled(true);
        reset();
        for i in 0..(TRACE_CAPACITY as u64 + 3) {
            assert!(start("ingest.item"));
            bind(i);
            finish().expect("committed");
        }
        let all = traces();
        set_enabled(false);
        assert_eq!(all.len(), TRACE_CAPACITY);
        assert_eq!(all.first().map(|t| t.annotation), Some(3), "oldest evicted");
    }

    #[test]
    fn flight_recorder_rings_and_dumps() {
        let _g = guard();
        set_enabled(true);
        reset();
        flight_event("health", "healthy->degraded".into());
        flight_event("breaker.trip", "breaker=wal trips=1".into());
        flight_event("health", "degraded->wedged".into());
        flight_dump("ingest.wedged");
        let dumps = flight_dumps();
        set_enabled(false);

        assert_eq!(dumps.len(), 1);
        let dump = &dumps[0];
        assert_eq!(dump.trigger, "ingest.wedged");
        assert_eq!(dump.events.len(), 3);
        let seqs: Vec<u64> = dump.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3], "causal order preserved");
        let json = dump.render_json();
        assert!(json.contains("\"trigger\": \"ingest.wedged\""));
        assert!(json.contains("degraded->wedged"));
        assert_eq!(json, dump.render_json(), "rendering is deterministic");
    }

    #[test]
    fn flight_ring_is_bounded() {
        let _g = guard();
        set_enabled(true);
        reset();
        for i in 0..(FLIGHT_CAPACITY as u64 + 5) {
            flight_event("shed", format!("index={i}"));
        }
        let events = flight_events();
        set_enabled(false);
        assert_eq!(events.len(), FLIGHT_CAPACITY);
        assert_eq!(events.first().map(|e| e.seq), Some(6), "oldest evicted");
    }
}

//! Annotations: free-text metadata objects attached to database objects.

use std::fmt;

/// Stable identifier of an annotation within an
/// [`AnnotationStore`](crate::AnnotationStore).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AnnotationId(pub u64);

impl fmt::Display for AnnotationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// A free-text annotation: a comment, an attached article abstract, a flag,
/// or any other piece of metadata end-users link to data.
///
/// Annotations are schema-less by design — their text can reference
/// database objects in arbitrary ways, which is exactly what the proactive
/// layer mines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// The annotation body (free text; may be a whole article).
    pub text: String,
    /// Optional author (end-user, curator, tool).
    pub author: Option<String>,
    /// Optional short kind tag, e.g. `"comment"`, `"publication"`,
    /// `"flag"` — used by applications, opaque to the engine.
    pub kind: Option<String>,
}

impl Annotation {
    /// A plain text annotation with no author or kind.
    pub fn new(text: impl Into<String>) -> Self {
        Annotation { text: text.into(), author: None, kind: None }
    }

    /// Attach an author.
    pub fn by(mut self, author: impl Into<String>) -> Self {
        self.author = Some(author.into());
        self
    }

    /// Tag with a kind.
    pub fn of_kind(mut self, kind: impl Into<String>) -> Self {
        self.kind = Some(kind.into());
        self
    }

    /// Size of the annotation body in bytes (the paper's `L^m` knob).
    pub fn size_bytes(&self) -> usize {
        self.text.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_style_construction() {
        let a = Annotation::new("correlates with JW0014").by("Alice").of_kind("comment");
        assert_eq!(a.author.as_deref(), Some("Alice"));
        assert_eq!(a.kind.as_deref(), Some("comment"));
        assert_eq!(a.size_bytes(), "correlates with JW0014".len());
    }

    #[test]
    fn id_display() {
        assert_eq!(AnnotationId(7).to_string(), "A7");
    }
}

//! Query-time annotation propagation.
//!
//! The defining feature of the passive engines ([9, 16, 20] and the `[18]`
//! engine this crate models) is that annotations *ride along* with query
//! answers: selecting a set of tuples transparently returns the
//! annotations attached to them, and projecting away a column drops the
//! cell-level annotations that lived on it.

use crate::annotation::AnnotationId;
use crate::store::AnnotationStore;
use relstore::schema::ColumnId;
use relstore::TupleId;

/// One answer row with its propagated annotations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropagatedAnswer {
    /// The answer tuple.
    pub tuple: TupleId,
    /// True annotations that propagate to this answer row under the given
    /// projection, in attachment order.
    pub annotations: Vec<AnnotationId>,
}

/// Propagate annotations onto a query answer set.
///
/// `projection` is the set of columns the query kept; `None` means
/// `SELECT *`. Row-level annotations always propagate. Cell-level
/// annotations propagate only if their column survives the projection —
/// the summary-aware semantics of the passive engine.
pub fn propagate(
    store: &AnnotationStore,
    answer: &[TupleId],
    projection: Option<&[ColumnId]>,
) -> Vec<PropagatedAnswer> {
    let out: Vec<PropagatedAnswer> = answer
        .iter()
        .map(|&tuple| {
            let annotations: Vec<AnnotationId> = store
                .annotations_of(tuple)
                .into_iter()
                .filter(|&aid| match (store.cell_column(aid, tuple), projection) {
                    // Row-level annotation, or no projection: always keep.
                    (None, _) | (_, None) => true,
                    // Cell-level: keep only if the column survives.
                    (Some(col), Some(cols)) => cols.contains(&col),
                })
                .collect();
            PropagatedAnswer { tuple, annotations }
        })
        .collect();
    if nebula_obs::enabled() {
        nebula_obs::counter_add("annostore.propagations", 1);
        let fanout: usize = out.iter().map(|a| a.annotations.len()).sum();
        nebula_obs::counter_add("annostore.propagation_fanout", fanout as u64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::Annotation;
    use crate::store::AttachmentTarget;
    use relstore::schema::TableId;

    fn t(row: u64) -> TupleId {
        TupleId::new(TableId(0), row)
    }

    fn setup() -> (AnnotationStore, AnnotationId, AnnotationId) {
        let mut s = AnnotationStore::new();
        let row_note = s.add_annotation(Annotation::new("row-level note"));
        let cell_note = s.add_annotation(Annotation::new("cell-level note"));
        s.attach(row_note, AttachmentTarget::tuple(t(1))).unwrap();
        s.attach(cell_note, AttachmentTarget::cell(t(1), ColumnId(2))).unwrap();
        (s, row_note, cell_note)
    }

    #[test]
    fn select_star_propagates_everything() {
        let (s, row_note, cell_note) = setup();
        let out = propagate(&s, &[t(1)], None);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].annotations, vec![row_note, cell_note]);
    }

    #[test]
    fn projection_drops_cell_annotations_of_removed_columns() {
        let (s, row_note, _) = setup();
        let out = propagate(&s, &[t(1)], Some(&[ColumnId(0), ColumnId(1)]));
        assert_eq!(out[0].annotations, vec![row_note]);
    }

    #[test]
    fn projection_keeps_cell_annotations_of_surviving_columns() {
        let (s, row_note, cell_note) = setup();
        let out = propagate(&s, &[t(1)], Some(&[ColumnId(2)]));
        assert_eq!(out[0].annotations, vec![row_note, cell_note]);
    }

    #[test]
    fn unannotated_tuples_produce_empty_lists() {
        let (s, ..) = setup();
        let out = propagate(&s, &[t(1), t(99)], None);
        assert_eq!(out[1].annotations, Vec::<AnnotationId>::new());
    }

    #[test]
    fn answer_order_preserved() {
        let (s, ..) = setup();
        let out = propagate(&s, &[t(5), t(1)], None);
        assert_eq!(out[0].tuple, t(5));
        assert_eq!(out[1].tuple, t(1));
    }
}

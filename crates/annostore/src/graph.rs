//! The annotated-database bipartite graph `D = {A, T, E}` (paper §3).
//!
//! Edges connect annotations to tuples. *True attachments* (weight 1.0)
//! come from external sources and are assumed correct; *predicted
//! attachments* (weight < 1.0) are produced by the proactive layer and
//! carry an estimated confidence. [`GraphQuality`] computes the paper's
//! divergence metrics `D.F_N` / `D.F_P` (Equations 1 & 2) against an ideal
//! edge set.

use crate::annotation::AnnotationId;
use relstore::TupleId;
use std::collections::HashSet;

/// Whether an edge is an externally asserted truth or a system prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Manually established by end-users / curators; weight is 1.0.
    True,
    /// Proactively predicted by Nebula; weight < 1.0 until verified.
    Predicted,
}

/// One edge of the bipartite graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Edge {
    /// The annotation endpoint.
    pub annotation: AnnotationId,
    /// The tuple endpoint.
    pub tuple: TupleId,
    /// `True` or `Predicted`.
    pub kind: EdgeKind,
    /// Confidence in `[0, 1]`; exactly 1.0 for true attachments.
    pub weight: f64,
}

impl Edge {
    /// A true attachment (weight 1.0).
    pub fn truth(annotation: AnnotationId, tuple: TupleId) -> Self {
        Edge { annotation, tuple, kind: EdgeKind::True, weight: 1.0 }
    }

    /// A predicted attachment with the given confidence.
    pub fn predicted(annotation: AnnotationId, tuple: TupleId, weight: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&weight));
        Edge { annotation, tuple, kind: EdgeKind::Predicted, weight }
    }

    /// The `(annotation, tuple)` endpoint pair.
    pub fn endpoints(&self) -> (AnnotationId, TupleId) {
        (self.annotation, self.tuple)
    }
}

/// A set of `(annotation, tuple)` pairs — the shape of both `E` and
/// `E_ideal` when computing quality metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeSet {
    pairs: HashSet<(AnnotationId, TupleId)>,
}

impl EdgeSet {
    /// Empty set.
    pub fn new() -> Self {
        EdgeSet::default()
    }

    /// Insert a pair; returns false if it was already present.
    pub fn insert(&mut self, annotation: AnnotationId, tuple: TupleId) -> bool {
        self.pairs.insert((annotation, tuple))
    }

    /// Remove a pair; returns true if it was present.
    pub fn remove(&mut self, annotation: AnnotationId, tuple: TupleId) -> bool {
        self.pairs.remove(&(annotation, tuple))
    }

    /// Membership test.
    pub fn contains(&self, annotation: AnnotationId, tuple: TupleId) -> bool {
        self.pairs.contains(&(annotation, tuple))
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterate pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (AnnotationId, TupleId)> + '_ {
        self.pairs.iter().copied()
    }

    /// Pairs of this set missing from `other` (set difference).
    pub fn difference(&self, other: &EdgeSet) -> usize {
        self.pairs.iter().filter(|p| !other.pairs.contains(p)).count()
    }

    /// All tuples attached to `annotation` in this set.
    pub fn tuples_of(&self, annotation: AnnotationId) -> Vec<TupleId> {
        let mut v: Vec<TupleId> =
            self.pairs.iter().filter(|(a, _)| *a == annotation).map(|(_, t)| *t).collect();
        v.sort();
        v
    }
}

impl FromIterator<(AnnotationId, TupleId)> for EdgeSet {
    fn from_iter<I: IntoIterator<Item = (AnnotationId, TupleId)>>(iter: I) -> Self {
        EdgeSet { pairs: iter.into_iter().collect() }
    }
}

/// Quality of an annotated database relative to the ideal one
/// (paper Equations 1 & 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphQuality {
    /// `|E_ideal − E| / |E_ideal|` — fraction of ideal edges missing.
    pub false_negative_ratio: f64,
    /// `|E − E_ideal| / |E|` — fraction of present edges that are wrong.
    pub false_positive_ratio: f64,
}

impl GraphQuality {
    /// Compare the actual edge set against the ideal one.
    ///
    /// Both ratios are defined as 0 when their denominator is 0 (an empty
    /// ideal set has nothing to miss; an empty actual set asserts nothing
    /// wrong).
    pub fn evaluate(actual: &EdgeSet, ideal: &EdgeSet) -> GraphQuality {
        let fn_ratio = if ideal.is_empty() {
            0.0
        } else {
            ideal.difference(actual) as f64 / ideal.len() as f64
        };
        let fp_ratio = if actual.is_empty() {
            0.0
        } else {
            actual.difference(ideal) as f64 / actual.len() as f64
        };
        GraphQuality { false_negative_ratio: fn_ratio, false_positive_ratio: fp_ratio }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::schema::TableId;

    fn t(row: u64) -> TupleId {
        TupleId::new(TableId(0), row)
    }

    #[test]
    fn edge_constructors() {
        let e = Edge::truth(AnnotationId(1), t(2));
        assert_eq!(e.kind, EdgeKind::True);
        assert_eq!(e.weight, 1.0);
        let p = Edge::predicted(AnnotationId(1), t(3), 0.7);
        assert_eq!(p.kind, EdgeKind::Predicted);
        assert_eq!(p.endpoints(), (AnnotationId(1), t(3)));
    }

    #[test]
    fn edge_set_basics() {
        let mut s = EdgeSet::new();
        assert!(s.insert(AnnotationId(0), t(0)));
        assert!(!s.insert(AnnotationId(0), t(0)), "duplicate insert is a no-op");
        assert!(s.contains(AnnotationId(0), t(0)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(AnnotationId(0), t(0)));
        assert!(s.is_empty());
    }

    #[test]
    fn tuples_of_filters_and_sorts() {
        let s: EdgeSet =
            vec![(AnnotationId(0), t(5)), (AnnotationId(0), t(1)), (AnnotationId(1), t(9))]
                .into_iter()
                .collect();
        assert_eq!(s.tuples_of(AnnotationId(0)), vec![t(1), t(5)]);
        assert_eq!(s.tuples_of(AnnotationId(2)), Vec::<TupleId>::new());
    }

    #[test]
    fn quality_matches_paper_equations() {
        // E_ideal = {(a,1),(a,2),(a,3)}, E = {(a,2),(a,3),(a,4)}
        let ideal: EdgeSet =
            [(AnnotationId(0), t(1)), (AnnotationId(0), t(2)), (AnnotationId(0), t(3))]
                .into_iter()
                .collect();
        let actual: EdgeSet =
            [(AnnotationId(0), t(2)), (AnnotationId(0), t(3)), (AnnotationId(0), t(4))]
                .into_iter()
                .collect();
        let q = GraphQuality::evaluate(&actual, &ideal);
        assert!((q.false_negative_ratio - 1.0 / 3.0).abs() < 1e-12);
        assert!((q.false_positive_ratio - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn database_without_predictions_has_zero_fp() {
        // Per §3: a database whose E ⊆ E_ideal has F_P = 0 but possibly
        // large F_N.
        let ideal: EdgeSet =
            [(AnnotationId(0), t(1)), (AnnotationId(0), t(2))].into_iter().collect();
        let actual: EdgeSet = [(AnnotationId(0), t(1))].into_iter().collect();
        let q = GraphQuality::evaluate(&actual, &ideal);
        assert_eq!(q.false_positive_ratio, 0.0);
        assert_eq!(q.false_negative_ratio, 0.5);
    }

    #[test]
    fn empty_sets_define_zero_ratios() {
        let q = GraphQuality::evaluate(&EdgeSet::new(), &EdgeSet::new());
        assert_eq!(q.false_negative_ratio, 0.0);
        assert_eq!(q.false_positive_ratio, 0.0);
    }
}

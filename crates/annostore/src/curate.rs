//! Curator predicates: structured auto-attachment rules ([18, 25]).
//!
//! A curator may define an annotation *with a predicate over the database*:
//! any newly inserted tuple satisfying the predicate gets the annotation
//! attached automatically. This is the structured (schema-level) form of
//! automation that pre-dates Nebula — it cannot look *inside* annotation
//! text, which is exactly the gap the proactive layer fills.

use crate::annotation::AnnotationId;
use crate::store::{AnnotationStore, AttachmentTarget, StoreError};
use relstore::{ConjunctiveQuery, Database, TupleId};

/// An auto-attachment rule: when a new tuple satisfies `query`'s
/// predicates, `annotation` is attached to it.
#[derive(Debug, Clone)]
pub struct CuratorPredicate {
    /// The annotation to attach.
    pub annotation: AnnotationId,
    /// The qualifying condition (a conjunctive query whose base table and
    /// predicates define the rule; joins are honored too).
    pub query: ConjunctiveQuery,
}

impl CuratorPredicate {
    /// Does this rule's condition hold for `tuple` in `db`?
    ///
    /// Implemented by executing the rule restricted to the tuple: cheap
    /// because predicates evaluate per-tuple and join steps probe indexes.
    pub fn matches(&self, db: &Database, tuple: TupleId) -> bool {
        if tuple.table != self.query.base {
            return false;
        }
        let Some(t) = db.get(tuple) else { return false };
        if !self.query.predicates.iter().all(|p| p.matches(&t)) {
            return false;
        }
        if self.query.joins.is_empty() {
            return true;
        }
        // Re-run the full query and check membership (joins need the db).
        self.query.execute(db).map(|r| r.tuples.contains(&tuple)).unwrap_or(false)
    }
}

/// Registry of curator predicates, applied on insert.
#[derive(Debug, Default)]
pub struct CuratorRegistry {
    rules: Vec<CuratorPredicate>,
}

impl CuratorRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        CuratorRegistry::default()
    }

    /// Register a rule.
    pub fn add_rule(&mut self, rule: CuratorPredicate) {
        self.rules.push(rule);
    }

    /// Number of registered rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules are registered.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Apply all rules to a newly inserted tuple, attaching matching
    /// annotations. Returns the annotations that were attached.
    pub fn on_insert(
        &self,
        db: &Database,
        store: &mut AnnotationStore,
        tuple: TupleId,
    ) -> Result<Vec<AnnotationId>, StoreError> {
        let mut attached = Vec::new();
        for rule in &self.rules {
            if rule.matches(db, tuple) {
                store.attach(rule.annotation, AttachmentTarget::tuple(tuple))?;
                attached.push(rule.annotation);
            }
        }
        Ok(attached)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotation::Annotation;
    use relstore::{DataType, Predicate, TableSchema, Value};

    fn setup() -> (Database, AnnotationStore, CuratorRegistry, AnnotationId) {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("gene")
                .column("gid", DataType::Text)
                .column("family", DataType::Text)
                .primary_key("gid")
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut store = AnnotationStore::new();
        let flag = store.add_annotation(Annotation::new("Rounded Flag").of_kind("flag"));
        let gene = db.catalog().resolve("gene").unwrap();
        let fam = db.table(gene).unwrap().schema().column_id("family").unwrap();
        let mut reg = CuratorRegistry::new();
        reg.add_rule(CuratorPredicate {
            annotation: flag,
            query: ConjunctiveQuery::scan(gene)
                .with_predicate(Predicate::Eq(fam, Value::text("F1"))),
        });
        (db, store, reg, flag)
    }

    #[test]
    fn matching_insert_gets_annotation() {
        let (mut db, mut store, reg, flag) = setup();
        let t = db.insert("gene", vec![Value::text("JW0013"), Value::text("F1")]).unwrap();
        let attached = reg.on_insert(&db, &mut store, t).unwrap();
        assert_eq!(attached, vec![flag]);
        assert_eq!(store.annotations_of(t), vec![flag]);
    }

    #[test]
    fn non_matching_insert_untouched() {
        let (mut db, mut store, reg, _) = setup();
        let t = db.insert("gene", vec![Value::text("JW0014"), Value::text("F6")]).unwrap();
        assert!(reg.on_insert(&db, &mut store, t).unwrap().is_empty());
        assert!(store.annotations_of(t).is_empty());
    }

    #[test]
    fn rule_on_wrong_table_never_matches() {
        let (mut db, mut store, reg, _) = setup();
        db.create_table(
            TableSchema::builder("protein")
                .column("pid", DataType::Text)
                .column("family", DataType::Text)
                .primary_key("pid")
                .build()
                .unwrap(),
        )
        .unwrap();
        let t = db.insert("protein", vec![Value::text("P1"), Value::text("F1")]).unwrap();
        assert!(reg.on_insert(&db, &mut store, t).unwrap().is_empty());
    }

    #[test]
    fn registry_len() {
        let (_, _, reg, _) = setup();
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
    }
}

//! Annotation-store snapshots: a compact binary format for saving and
//! restoring an [`AnnotationStore`] — annotations with their metadata,
//! every edge (true and predicted, with weights), and the cell-granularity
//! refinements. Pairs with `relstore::snapshot` so a whole annotated
//! database round-trips: tuple ids are preserved by the relational
//! snapshot, so the edges stay valid.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "NEBANN1\0"
//! u64 annotation_count
//! per annotation: string text, opt string author, opt string kind
//! u64 edge_count
//! per edge: u64 annotation, u32 table, u64 row, u8 kind, f64 weight
//! u64 cell_count
//! per cell: u64 annotation, u32 table, u64 row, u32 column
//! ```

use crate::annotation::{Annotation, AnnotationId};
use crate::graph::EdgeKind;
use crate::store::{AnnotationStore, AttachmentTarget};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use relstore::schema::{ColumnId, TableId};
use relstore::TupleId;
use std::fmt;

const MAGIC: &[u8; 8] = b"NEBANN1\0";

/// Errors from snapshot decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with the expected magic.
    BadMagic,
    /// The buffer ended before the structure was complete.
    Truncated(&'static str),
    /// A tag or reference was out of range.
    Corrupt(String),
    /// A string was not valid UTF-8.
    BadString,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not an annostore snapshot (bad magic)"),
            SnapshotError::Truncated(what) => write!(f, "snapshot truncated while reading {what}"),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            SnapshotError::BadString => write!(f, "invalid UTF-8 string in snapshot"),
        }
    }
}

impl std::error::Error for SnapshotError {}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_opt_string(buf: &mut BytesMut, s: &Option<String>) {
    match s {
        Some(s) => {
            buf.put_u8(1);
            put_string(buf, s);
        }
        None => buf.put_u8(0),
    }
}

fn get_string(buf: &mut Bytes) -> Result<String, SnapshotError> {
    if buf.remaining() < 4 {
        return Err(SnapshotError::Truncated("string length"));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(SnapshotError::Truncated("string body"));
    }
    String::from_utf8(buf.copy_to_bytes(len).to_vec()).map_err(|_| SnapshotError::BadString)
}

fn get_opt_string(buf: &mut Bytes) -> Result<Option<String>, SnapshotError> {
    if buf.remaining() < 1 {
        return Err(SnapshotError::Truncated("option flag"));
    }
    if buf.get_u8() == 0 {
        Ok(None)
    } else {
        Ok(Some(get_string(buf)?))
    }
}

fn put_tuple_id(buf: &mut BytesMut, tid: TupleId) {
    buf.put_u32_le(tid.table.0);
    buf.put_u64_le(tid.row);
}

fn get_tuple_id(buf: &mut Bytes) -> Result<TupleId, SnapshotError> {
    if buf.remaining() < 12 {
        return Err(SnapshotError::Truncated("tuple id"));
    }
    Ok(TupleId::new(TableId(buf.get_u32_le()), buf.get_u64_le()))
}

/// Serialize a store to bytes.
pub fn save(store: &AnnotationStore) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u64_le(store.annotation_count() as u64);
    for (_, a) in store.iter_annotations() {
        put_string(&mut buf, &a.text);
        put_opt_string(&mut buf, &a.author);
        put_opt_string(&mut buf, &a.kind);
    }
    // Canonical (sorted) edge order: restore rebuilds the per-tuple and
    // per-annotation attachment lists in `(annotation, tuple)` order, not
    // original insertion order.
    let mut edges: Vec<_> = store.iter_edges().collect();
    edges.sort_by_key(|e| (e.annotation, e.tuple));
    buf.put_u64_le(edges.len() as u64);
    for e in edges {
        buf.put_u64_le(e.annotation.0);
        put_tuple_id(&mut buf, e.tuple);
        buf.put_u8(match e.kind {
            EdgeKind::True => 0,
            EdgeKind::Predicted => 1,
        });
        buf.put_f64_le(e.weight);
    }
    // Cells are sorted too, so the encoding is canonical: two stores with
    // the same logical content produce identical bytes (the durability
    // layer compares states by snapshot digest).
    let mut cells: Vec<(AnnotationId, TupleId, ColumnId)> = store.iter_cell_columns().collect();
    cells.sort();
    buf.put_u64_le(cells.len() as u64);
    for (aid, tid, cid) in cells {
        buf.put_u64_le(aid.0);
        put_tuple_id(&mut buf, tid);
        buf.put_u32_le(cid.0);
    }
    buf.freeze()
}

/// Restore a store from bytes produced by [`save`].
pub fn load(bytes: &[u8]) -> Result<AnnotationStore, SnapshotError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    if buf.remaining() < MAGIC.len() || &buf.copy_to_bytes(MAGIC.len())[..] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let mut store = AnnotationStore::new();
    if buf.remaining() < 8 {
        return Err(SnapshotError::Truncated("annotation count"));
    }
    let count = buf.get_u64_le();
    // Each annotation costs at least a text length and two option flags;
    // fail a hostile count up front instead of looping on it.
    if count > (buf.remaining() / 6) as u64 {
        return Err(SnapshotError::Corrupt(format!("implausible annotation count {count}")));
    }
    for _ in 0..count {
        let text = get_string(&mut buf)?;
        let author = get_opt_string(&mut buf)?;
        let kind = get_opt_string(&mut buf)?;
        let mut a = Annotation::new(text);
        a.author = author;
        a.kind = kind;
        store.add_annotation(a);
    }
    if buf.remaining() < 8 {
        return Err(SnapshotError::Truncated("edge count"));
    }
    let edges = buf.get_u64_le();
    if edges > (buf.remaining() / 29) as u64 {
        return Err(SnapshotError::Corrupt(format!("implausible edge count {edges}")));
    }
    for _ in 0..edges {
        if buf.remaining() < 8 {
            return Err(SnapshotError::Truncated("edge annotation"));
        }
        let aid = AnnotationId(buf.get_u64_le());
        let tid = get_tuple_id(&mut buf)?;
        if buf.remaining() < 9 {
            return Err(SnapshotError::Truncated("edge kind/weight"));
        }
        let kind = buf.get_u8();
        let weight = buf.get_f64_le();
        match kind {
            0 => store
                .attach(aid, AttachmentTarget::tuple(tid))
                .map_err(|e| SnapshotError::Corrupt(e.to_string()))?,
            1 => store
                .attach_predicted(aid, tid, weight)
                .map_err(|e| SnapshotError::Corrupt(e.to_string()))?,
            t => return Err(SnapshotError::Corrupt(format!("edge kind tag {t}"))),
        }
    }
    if buf.remaining() < 8 {
        return Err(SnapshotError::Truncated("cell count"));
    }
    let cells = buf.get_u64_le();
    if cells > (buf.remaining() / 24) as u64 {
        return Err(SnapshotError::Corrupt(format!("implausible cell count {cells}")));
    }
    for _ in 0..cells {
        if buf.remaining() < 8 {
            return Err(SnapshotError::Truncated("cell annotation"));
        }
        let aid = AnnotationId(buf.get_u64_le());
        let tid = get_tuple_id(&mut buf)?;
        if buf.remaining() < 4 {
            return Err(SnapshotError::Truncated("cell column"));
        }
        let cid = ColumnId(buf.get_u32_le());
        store
            .restore_cell_column(aid, tid, cid)
            .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
    }
    Ok(store)
}

const SLICE_MAGIC: &[u8; 8] = b"NEBSLC1\0";

/// Partition a store into `shards` snapshot **slices** by annotation
/// ownership. `assign` maps each annotation id to its owning shard;
/// slice `i` carries shard `i`'s annotations (bodies, edges, and cell
/// refinements) and nothing else, so the slices are disjoint and their
/// union is the whole store. [`merge`] reassembles them into a store
/// whose [`save`] bytes are identical to the original's — the canonical
/// (sorted) encoding makes the partition/merge round-trip byte-exact
/// regardless of how ownership is assigned.
///
/// Layout of one slice (little-endian):
///
/// ```text
/// magic "NEBSLC1\0"
/// u64 total_annotations (across ALL slices; density check on merge)
/// u64 owned_count
/// per owned annotation: u64 id, string text, opt string author, opt string kind
/// u64 edge_count / edges as in the full snapshot (owned annotations only)
/// u64 cell_count / cells as in the full snapshot (owned annotations only)
/// ```
pub fn partition(
    store: &AnnotationStore,
    shards: usize,
    assign: &dyn Fn(AnnotationId) -> usize,
) -> Vec<Bytes> {
    let shards = shards.max(1);
    let mut slices = Vec::with_capacity(shards);
    for shard in 0..shards {
        let owned = |aid: AnnotationId| assign(aid) % shards == shard;
        let mut buf = BytesMut::new();
        buf.put_slice(SLICE_MAGIC);
        buf.put_u64_le(store.annotation_count() as u64);
        let annotations: Vec<_> = store.iter_annotations().filter(|(id, _)| owned(*id)).collect();
        buf.put_u64_le(annotations.len() as u64);
        for (id, a) in annotations {
            buf.put_u64_le(id.0);
            put_string(&mut buf, &a.text);
            put_opt_string(&mut buf, &a.author);
            put_opt_string(&mut buf, &a.kind);
        }
        let mut edges: Vec<_> = store.iter_edges().filter(|e| owned(e.annotation)).collect();
        edges.sort_by_key(|e| (e.annotation, e.tuple));
        buf.put_u64_le(edges.len() as u64);
        for e in edges {
            buf.put_u64_le(e.annotation.0);
            put_tuple_id(&mut buf, e.tuple);
            buf.put_u8(match e.kind {
                EdgeKind::True => 0,
                EdgeKind::Predicted => 1,
            });
            buf.put_f64_le(e.weight);
        }
        let mut cells: Vec<(AnnotationId, TupleId, ColumnId)> =
            store.iter_cell_columns().filter(|(aid, _, _)| owned(*aid)).collect();
        cells.sort();
        buf.put_u64_le(cells.len() as u64);
        for (aid, tid, cid) in cells {
            buf.put_u64_le(aid.0);
            put_tuple_id(&mut buf, tid);
            buf.put_u32_le(cid.0);
        }
        slices.push(buf.freeze());
    }
    slices
}

struct DecodedSlice {
    total: u64,
    annotations: Vec<(AnnotationId, Annotation)>,
    edges: Vec<(AnnotationId, TupleId, u8, f64)>,
    cells: Vec<(AnnotationId, TupleId, ColumnId)>,
}

fn decode_slice(bytes: &[u8]) -> Result<DecodedSlice, SnapshotError> {
    let mut buf = Bytes::copy_from_slice(bytes);
    if buf.remaining() < SLICE_MAGIC.len()
        || &buf.copy_to_bytes(SLICE_MAGIC.len())[..] != SLICE_MAGIC
    {
        return Err(SnapshotError::BadMagic);
    }
    if buf.remaining() < 16 {
        return Err(SnapshotError::Truncated("slice header"));
    }
    let total = buf.get_u64_le();
    let count = buf.get_u64_le();
    if count > total || count > (buf.remaining() / 8) as u64 {
        return Err(SnapshotError::Corrupt(format!("implausible slice count {count}")));
    }
    let mut annotations = Vec::with_capacity(count as usize);
    for _ in 0..count {
        if buf.remaining() < 8 {
            return Err(SnapshotError::Truncated("slice annotation id"));
        }
        let id = AnnotationId(buf.get_u64_le());
        let text = get_string(&mut buf)?;
        let author = get_opt_string(&mut buf)?;
        let kind = get_opt_string(&mut buf)?;
        let mut a = Annotation::new(text);
        a.author = author;
        a.kind = kind;
        annotations.push((id, a));
    }
    if buf.remaining() < 8 {
        return Err(SnapshotError::Truncated("slice edge count"));
    }
    let edge_count = buf.get_u64_le();
    if edge_count > (buf.remaining() / 29) as u64 {
        return Err(SnapshotError::Corrupt(format!("implausible slice edge count {edge_count}")));
    }
    let mut edges = Vec::with_capacity(edge_count as usize);
    for _ in 0..edge_count {
        if buf.remaining() < 8 {
            return Err(SnapshotError::Truncated("slice edge annotation"));
        }
        let aid = AnnotationId(buf.get_u64_le());
        let tid = get_tuple_id(&mut buf)?;
        if buf.remaining() < 9 {
            return Err(SnapshotError::Truncated("slice edge kind/weight"));
        }
        let kind = buf.get_u8();
        let weight = buf.get_f64_le();
        edges.push((aid, tid, kind, weight));
    }
    if buf.remaining() < 8 {
        return Err(SnapshotError::Truncated("slice cell count"));
    }
    let cell_count = buf.get_u64_le();
    if cell_count > (buf.remaining() / 24) as u64 {
        return Err(SnapshotError::Corrupt(format!("implausible slice cell count {cell_count}")));
    }
    let mut cells = Vec::with_capacity(cell_count as usize);
    for _ in 0..cell_count {
        if buf.remaining() < 8 {
            return Err(SnapshotError::Truncated("slice cell annotation"));
        }
        let aid = AnnotationId(buf.get_u64_le());
        let tid = get_tuple_id(&mut buf)?;
        if buf.remaining() < 4 {
            return Err(SnapshotError::Truncated("slice cell column"));
        }
        cells.push((aid, tid, ColumnId(buf.get_u32_le())));
    }
    Ok(DecodedSlice { total, annotations, edges, cells })
}

/// Merge snapshot slices produced by [`partition`] back into one store.
///
/// Fails if the slices disagree on the total annotation count, collide on
/// an id, or do not cover the dense id range `0..total` — i.e. if a shard
/// slice is missing, duplicated, or from a diverged replica.
pub fn merge(slices: &[Bytes]) -> Result<AnnotationStore, SnapshotError> {
    let mut total: Option<u64> = None;
    let mut bodies: Vec<Option<Annotation>> = Vec::new();
    let mut edges = Vec::new();
    let mut cells = Vec::new();
    for slice in slices {
        let decoded = decode_slice(slice)?;
        match total {
            None => {
                total = Some(decoded.total);
                bodies.resize(decoded.total as usize, None);
            }
            Some(t) if t != decoded.total => {
                return Err(SnapshotError::Corrupt(format!(
                    "slices disagree on annotation total: {t} vs {}",
                    decoded.total
                )));
            }
            Some(_) => {}
        }
        for (id, a) in decoded.annotations {
            let slot = bodies.get_mut(id.0 as usize).ok_or_else(|| {
                SnapshotError::Corrupt(format!("slice annotation {} out of range", id.0))
            })?;
            if slot.is_some() {
                return Err(SnapshotError::Corrupt(format!(
                    "annotation {} owned by two slices",
                    id.0
                )));
            }
            *slot = Some(a);
        }
        edges.extend(decoded.edges);
        cells.extend(decoded.cells);
    }
    let mut store = AnnotationStore::new();
    for (i, body) in bodies.into_iter().enumerate() {
        let body = body.ok_or_else(|| {
            SnapshotError::Corrupt(format!("annotation {i} missing from every slice"))
        })?;
        store.add_annotation(body);
    }
    edges.sort_by_key(|e| (e.0, e.1));
    for (aid, tid, kind, weight) in edges {
        match kind {
            0 => store
                .attach(aid, AttachmentTarget::tuple(tid))
                .map_err(|e| SnapshotError::Corrupt(e.to_string()))?,
            1 => store
                .attach_predicted(aid, tid, weight)
                .map_err(|e| SnapshotError::Corrupt(e.to_string()))?,
            t => return Err(SnapshotError::Corrupt(format!("slice edge kind tag {t}"))),
        }
    }
    cells.sort();
    for (aid, tid, cid) in cells {
        store
            .restore_cell_column(aid, tid, cid)
            .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::schema::TableId;

    fn t(row: u64) -> TupleId {
        TupleId::new(TableId(0), row)
    }

    fn sample() -> AnnotationStore {
        let mut s = AnnotationStore::new();
        let a = s.add_annotation(Annotation::new("heat-shock note").by("Bob").of_kind("comment"));
        let b = s.add_annotation(Annotation::new("plain"));
        s.attach(a, AttachmentTarget::tuple(t(1))).unwrap();
        s.attach(a, AttachmentTarget::cell(t(2), ColumnId(3))).unwrap();
        s.attach(b, AttachmentTarget::tuple(t(1))).unwrap();
        s.attach_predicted(b, t(5), 0.62).unwrap();
        s
    }

    #[test]
    fn roundtrip_preserves_annotations_and_edges() {
        let original = sample();
        let restored = load(&save(&original)).unwrap();
        assert_eq!(restored.annotation_count(), original.annotation_count());
        for ((_, x), (_, y)) in original.iter_annotations().zip(restored.iter_annotations()) {
            assert_eq!(x, y);
        }
        assert_eq!(restored.true_edge_set(), original.true_edge_set());
        assert_eq!(restored.all_edge_set(), original.all_edge_set());
        // Predicted weight survives.
        let e = restored.edge(AnnotationId(1), t(5)).unwrap();
        assert_eq!(e.kind, EdgeKind::Predicted);
        assert!((e.weight - 0.62).abs() < 1e-12);
        // Cell refinement survives.
        assert_eq!(restored.cell_column(AnnotationId(0), t(2)), Some(ColumnId(3)));
        // Both directions of the true-edge index hold the same sets
        // (restore order is canonical, not insertion order).
        let sorted = |mut v: Vec<AnnotationId>| {
            v.sort();
            v
        };
        assert_eq!(restored.focal(AnnotationId(0)), original.focal(AnnotationId(0)));
        assert_eq!(sorted(restored.annotations_of(t(1))), sorted(original.annotations_of(t(1))));
    }

    #[test]
    fn partition_merge_roundtrips_byte_exactly() {
        let original = sample();
        for shards in [1usize, 2, 3, 5] {
            // Ownership by id round-robin and by a skewed assignment both
            // reassemble into the same canonical bytes.
            for assign in
                [&(|aid: AnnotationId| aid.0 as usize) as &dyn Fn(AnnotationId) -> usize, &|_aid| 0]
            {
                let slices = partition(&original, shards, assign);
                assert_eq!(slices.len(), shards);
                let merged = merge(&slices).expect("merge");
                assert_eq!(save(&merged), save(&original), "{shards} shards");
            }
        }
    }

    #[test]
    fn merge_rejects_missing_duplicate_and_disagreeing_slices() {
        let original = sample();
        let slices = partition(&original, 2, &|aid| aid.0 as usize);
        // Missing slice: the uncovered id range fails the density check.
        assert!(merge(&slices[..1]).is_err());
        // Duplicate slice: id collision.
        assert!(merge(&[slices[0].clone(), slices[0].clone()]).is_err());
        // Disagreeing totals: a slice from a different-sized store.
        let mut bigger = sample();
        bigger.add_annotation(Annotation::new("extra"));
        let other = partition(&bigger, 2, &|aid| aid.0 as usize);
        assert!(merge(&[slices[0].clone(), other[1].clone()]).is_err());
    }

    #[test]
    fn empty_store_roundtrips() {
        let restored = load(&save(&AnnotationStore::new())).unwrap();
        assert_eq!(restored.annotation_count(), 0);
        assert_eq!(restored.all_edge_set().len(), 0);
    }

    #[test]
    fn bad_input_rejected() {
        assert_eq!(load(b"nope").unwrap_err(), SnapshotError::BadMagic);
        let good = save(&sample());
        for cut in [8usize, 12, 20, good.len() - 1] {
            assert!(load(&good[..cut]).is_err(), "prefix of {cut} must fail");
        }
    }

    #[test]
    fn dangling_edge_rejected() {
        // Hand-craft a snapshot whose edge references annotation 7 of 1.
        let mut store = AnnotationStore::new();
        store.add_annotation(Annotation::new("x"));
        let mut bytes = save(&store).to_vec();
        // Append an edge section is non-trivial; instead corrupt by
        // building a store, saving, then bumping the edge's annotation id.
        let mut s2 = AnnotationStore::new();
        let a = s2.add_annotation(Annotation::new("x"));
        s2.attach(a, AttachmentTarget::tuple(t(1))).unwrap();
        let bytes2 = save(&s2).to_vec();
        // The edge annotation id (u64 zero) sits right after the edge
        // count; flip it to 7.
        let needle = 7u64.to_le_bytes();
        let mut corrupted = bytes2.clone();
        // Find the edge record: it is the 8 bytes after the edge count
        // field. Locate edge count by structure: magic(8) + count(8) +
        // annotation ("x": 4+1 text, 1 author, 1 kind) = 23, then edge
        // count at 23..31, edge aid at 31..39.
        corrupted[31..39].copy_from_slice(&needle);
        assert!(matches!(load(&corrupted), Err(SnapshotError::Corrupt(_))));
        let _ = bytes.pop();
    }
}

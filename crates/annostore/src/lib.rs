//! # annostore — a passive annotation-management engine
//!
//! This crate models the annotation-management engine Nebula is *built on
//! top of* (Eltabakh et al., EDBT'09): it stores free-text
//! [`Annotation`]s, attaches them to database tuples / cells / columns,
//! maintains the **annotated database** bipartite graph
//! `D = {A, T, E}` of the paper's §3 (true and predicted weighted edges),
//! propagates annotations along query answers, and supports curator
//! *predicates* that auto-attach annotations to qualifying new tuples.
//!
//! It is deliberately **passive**: it manages only the attachments it is
//! given. The proactive layer (discovering the missing ones) lives in
//! `nebula-core`.
//!
//! ```
//! use annostore::{Annotation, AnnotationStore, AttachmentTarget};
//! use relstore::{Database, TableSchema, DataType, Value};
//!
//! let mut db = Database::new();
//! db.create_table(TableSchema::builder("gene")
//!     .column("gid", DataType::Text).primary_key("gid").build().unwrap()).unwrap();
//! let t = db.insert("gene", vec![Value::text("JW0013")]).unwrap();
//!
//! let mut store = AnnotationStore::new();
//! let a = store.add_annotation(Annotation::new("interesting heat-shock gene"));
//! store.attach(a, AttachmentTarget::tuple(t)).unwrap();
//! assert_eq!(store.annotations_of(t), vec![a]);
//! ```

pub mod annotation;
pub mod curate;
pub mod graph;
pub mod propagation;
pub mod snapshot;
pub mod store;

pub use annotation::{Annotation, AnnotationId};
pub use curate::{CuratorPredicate, CuratorRegistry};
pub use graph::{Edge, EdgeKind, EdgeSet, GraphQuality};
pub use propagation::{propagate, PropagatedAnswer};
pub use store::{AnnotationStore, AttachmentTarget, StoreError};

//! The annotation store: annotations, attachments, and edge bookkeeping.

use crate::annotation::{Annotation, AnnotationId};
use crate::graph::{Edge, EdgeKind, EdgeSet};
use relstore::schema::ColumnId;
use relstore::TupleId;
use std::collections::HashMap;
use std::fmt;

/// What an annotation is attached to.
///
/// The bipartite graph of §3 is annotation ↔ tuple; cell- and column-level
/// targets refine a tuple edge with the column they concern, exactly like
/// the `[18]` engine's cell attachments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttachmentTarget {
    /// A whole row.
    Tuple(TupleId),
    /// A single cell of a row.
    Cell(TupleId, ColumnId),
}

impl AttachmentTarget {
    /// Convenience: whole-row target.
    pub fn tuple(tid: TupleId) -> Self {
        AttachmentTarget::Tuple(tid)
    }

    /// Convenience: single-cell target.
    pub fn cell(tid: TupleId, col: ColumnId) -> Self {
        AttachmentTarget::Cell(tid, col)
    }

    /// The tuple endpoint of the target.
    pub fn tuple_id(&self) -> TupleId {
        match self {
            AttachmentTarget::Tuple(t) | AttachmentTarget::Cell(t, _) => *t,
        }
    }

    /// The column, for cell targets.
    pub fn column(&self) -> Option<ColumnId> {
        match self {
            AttachmentTarget::Tuple(_) => None,
            AttachmentTarget::Cell(_, c) => Some(*c),
        }
    }
}

/// Errors from store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The annotation id is unknown.
    UnknownAnnotation(AnnotationId),
    /// No such edge exists.
    UnknownEdge(AnnotationId, TupleId),
    /// The confidence is outside `[0, 1]`.
    InvalidWeight(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownAnnotation(a) => write!(f, "unknown annotation {a}"),
            StoreError::UnknownEdge(a, t) => write!(f, "no edge between {a} and {t}"),
            StoreError::InvalidWeight(msg) => write!(f, "invalid weight: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// The annotated-database store: set `A` of annotations plus the edge set
/// `E`, indexed from both endpoints.
#[derive(Debug, Default)]
pub struct AnnotationStore {
    annotations: Vec<Annotation>,
    /// Edges keyed by `(annotation, tuple)`; at most one edge per pair
    /// (re-attaching upgrades the existing edge).
    edges: HashMap<(AnnotationId, TupleId), Edge>,
    /// Cell refinements for edges that target a specific column.
    cell_columns: HashMap<(AnnotationId, TupleId), ColumnId>,
    /// tuple → annotations with a **true** edge (the hot lookup for both
    /// propagation and the ACG).
    by_tuple: HashMap<TupleId, Vec<AnnotationId>>,
    /// annotation → tuples with a true edge (the annotation's focal).
    by_annotation: HashMap<AnnotationId, Vec<TupleId>>,
}

impl AnnotationStore {
    /// Empty store.
    pub fn new() -> Self {
        AnnotationStore::default()
    }

    /// Register a new annotation, returning its id.
    pub fn add_annotation(&mut self, annotation: Annotation) -> AnnotationId {
        let id = AnnotationId(self.annotations.len() as u64);
        self.annotations.push(annotation);
        nebula_obs::counter_add("annostore.annotations_registered", 1);
        id
    }

    /// Fetch an annotation's body.
    pub fn annotation(&self, id: AnnotationId) -> Option<&Annotation> {
        self.annotations.get(id.0 as usize)
    }

    /// Number of annotations.
    pub fn annotation_count(&self) -> usize {
        self.annotations.len()
    }

    /// Iterate `(id, annotation)`.
    pub fn iter_annotations(&self) -> impl Iterator<Item = (AnnotationId, &Annotation)> {
        self.annotations.iter().enumerate().map(|(i, a)| (AnnotationId(i as u64), a))
    }

    fn require(&self, id: AnnotationId) -> Result<(), StoreError> {
        if (id.0 as usize) < self.annotations.len() {
            Ok(())
        } else {
            Err(StoreError::UnknownAnnotation(id))
        }
    }

    /// Attach an annotation to a target as a **true attachment**
    /// (weight 1.0). Re-attaching an existing pair upgrades any predicted
    /// edge to true.
    pub fn attach(&mut self, id: AnnotationId, target: AttachmentTarget) -> Result<(), StoreError> {
        self.require(id)?;
        let tid = target.tuple_id();
        let key = (id, tid);
        if let Some(col) = target.column() {
            self.cell_columns.insert(key, col);
        }
        match self.edges.get(&key) {
            Some(e) if e.kind == EdgeKind::True => return Ok(()), // idempotent
            Some(_) => { /* predicted -> promote below */ }
            None => {}
        }
        let had_true = matches!(self.edges.get(&key), Some(e) if e.kind == EdgeKind::True);
        self.edges.insert(key, Edge::truth(id, tid));
        if !had_true {
            self.by_tuple.entry(tid).or_default().push(id);
            self.by_annotation.entry(id).or_default().push(tid);
        }
        nebula_obs::counter_add("annostore.edges_added", 1);
        Ok(())
    }

    /// Record a **predicted attachment** with the given confidence.
    /// A pre-existing true edge is never downgraded.
    pub fn attach_predicted(
        &mut self,
        id: AnnotationId,
        tid: TupleId,
        weight: f64,
    ) -> Result<(), StoreError> {
        self.require(id)?;
        if !(0.0..=1.0).contains(&weight) {
            return Err(StoreError::InvalidWeight(format!("{weight} outside [0,1]")));
        }
        let key = (id, tid);
        match self.edges.get(&key) {
            Some(e) if e.kind == EdgeKind::True => Ok(()),
            _ => {
                self.edges.insert(key, Edge::predicted(id, tid, weight));
                nebula_obs::counter_add("annostore.edges_added", 1);
                Ok(())
            }
        }
    }

    /// Promote a predicted edge to a true attachment (verification accept).
    pub fn promote(&mut self, id: AnnotationId, tid: TupleId) -> Result<(), StoreError> {
        match self.edges.get(&(id, tid)) {
            None => Err(StoreError::UnknownEdge(id, tid)),
            Some(e) if e.kind == EdgeKind::True => Ok(()),
            Some(_) => self.attach(id, AttachmentTarget::tuple(tid)),
        }
    }

    /// Discard a predicted edge (verification reject). True edges cannot be
    /// removed this way.
    pub fn discard_prediction(&mut self, id: AnnotationId, tid: TupleId) -> Result<(), StoreError> {
        match self.edges.get(&(id, tid)) {
            Some(e) if e.kind == EdgeKind::Predicted => {
                self.edges.remove(&(id, tid));
                Ok(())
            }
            Some(_) => Err(StoreError::InvalidWeight(
                "cannot discard a true attachment as a prediction".into(),
            )),
            None => Err(StoreError::UnknownEdge(id, tid)),
        }
    }

    /// The edge between an annotation and a tuple, if any.
    pub fn edge(&self, id: AnnotationId, tid: TupleId) -> Option<&Edge> {
        self.edges.get(&(id, tid))
    }

    /// The cell column a pair is refined to, if the attachment was at cell
    /// granularity.
    pub fn cell_column(&self, id: AnnotationId, tid: TupleId) -> Option<ColumnId> {
        self.cell_columns.get(&(id, tid)).copied()
    }

    /// Annotations with a true edge to `tid`, in attachment order.
    pub fn annotations_of(&self, tid: TupleId) -> Vec<AnnotationId> {
        self.by_tuple.get(&tid).cloned().unwrap_or_default()
    }

    /// Tuples with a true edge to `id` — the annotation's **focal**
    /// (Definition 3.5).
    pub fn focal(&self, id: AnnotationId) -> Vec<TupleId> {
        self.by_annotation.get(&id).cloned().unwrap_or_default()
    }

    /// Number of true attachments of `id`.
    pub fn attachment_count(&self, id: AnnotationId) -> usize {
        self.by_annotation.get(&id).map(Vec::len).unwrap_or(0)
    }

    /// Count of common annotations between two tuples and the size of the
    /// union of their annotation sets — the ACG edge-weight ingredients.
    pub fn common_annotations(&self, a: TupleId, b: TupleId) -> (usize, usize) {
        let sa = self.by_tuple.get(&a).map(Vec::as_slice).unwrap_or(&[]);
        let sb = self.by_tuple.get(&b).map(Vec::as_slice).unwrap_or(&[]);
        let set: std::collections::HashSet<AnnotationId> = sa.iter().copied().collect();
        let common = sb.iter().filter(|x| set.contains(x)).count();
        let total = sa.len() + sb.len() - common;
        (common, total)
    }

    /// All edges (both kinds).
    pub fn iter_edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.values()
    }

    /// The `(annotation, tuple)` pairs of all **true** edges, as an
    /// [`EdgeSet`] for quality evaluation.
    pub fn true_edge_set(&self) -> EdgeSet {
        self.edges.values().filter(|e| e.kind == EdgeKind::True).map(Edge::endpoints).collect()
    }

    /// The pairs of all edges regardless of kind.
    pub fn all_edge_set(&self) -> EdgeSet {
        self.edges.values().map(Edge::endpoints).collect()
    }

    /// Iterate all cell-granularity refinements `(annotation, tuple,
    /// column)` (used by snapshots).
    pub fn iter_cell_columns(
        &self,
    ) -> impl Iterator<Item = (AnnotationId, TupleId, ColumnId)> + '_ {
        self.cell_columns.iter().map(|(&(a, t), &c)| (a, t, c))
    }

    /// Restore a cell refinement during snapshot load. The pair must have
    /// an edge already.
    pub fn restore_cell_column(
        &mut self,
        id: AnnotationId,
        tid: TupleId,
        column: ColumnId,
    ) -> Result<(), StoreError> {
        if self.edges.contains_key(&(id, tid)) {
            self.cell_columns.insert((id, tid), column);
            Ok(())
        } else {
            Err(StoreError::UnknownEdge(id, tid))
        }
    }

    /// Tuple-deletion cleanup: remove every edge (true and predicted) and
    /// cell refinement involving `tid`. Returns the annotations that lost
    /// a true attachment (callers may want to flag now-orphaned
    /// annotations).
    pub fn on_tuple_deleted(&mut self, tid: TupleId) -> Vec<AnnotationId> {
        let mut affected = Vec::new();
        self.edges.retain(|&(a, t), edge| {
            if t == tid {
                if edge.kind == EdgeKind::True {
                    affected.push(a);
                }
                false
            } else {
                true
            }
        });
        self.cell_columns.retain(|&(_, t), _| t != tid);
        self.by_tuple.remove(&tid);
        for a in &affected {
            if let Some(list) = self.by_annotation.get_mut(a) {
                list.retain(|t| *t != tid);
                if list.is_empty() {
                    self.by_annotation.remove(a);
                }
            }
        }
        affected.sort();
        affected.dedup();
        affected
    }

    /// All tuples that carry at least one true annotation.
    pub fn annotated_tuples(&self) -> impl Iterator<Item = TupleId> + '_ {
        self.by_tuple.iter().filter(|(_, v)| !v.is_empty()).map(|(t, _)| *t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::schema::TableId;

    fn t(row: u64) -> TupleId {
        TupleId::new(TableId(0), row)
    }

    fn store_with(n: usize) -> (AnnotationStore, Vec<AnnotationId>) {
        let mut s = AnnotationStore::new();
        let ids = (0..n).map(|i| s.add_annotation(Annotation::new(format!("note {i}")))).collect();
        (s, ids)
    }

    #[test]
    fn attach_and_lookup_both_directions() {
        let (mut s, ids) = store_with(2);
        s.attach(ids[0], AttachmentTarget::tuple(t(1))).unwrap();
        s.attach(ids[0], AttachmentTarget::tuple(t(2))).unwrap();
        s.attach(ids[1], AttachmentTarget::tuple(t(1))).unwrap();
        assert_eq!(s.focal(ids[0]), vec![t(1), t(2)]);
        assert_eq!(s.annotations_of(t(1)), vec![ids[0], ids[1]]);
        assert_eq!(s.attachment_count(ids[0]), 2);
    }

    #[test]
    fn attach_is_idempotent() {
        let (mut s, ids) = store_with(1);
        s.attach(ids[0], AttachmentTarget::tuple(t(1))).unwrap();
        s.attach(ids[0], AttachmentTarget::tuple(t(1))).unwrap();
        assert_eq!(s.focal(ids[0]).len(), 1);
        assert_eq!(s.annotations_of(t(1)).len(), 1);
    }

    #[test]
    fn cell_attachment_records_column() {
        let (mut s, ids) = store_with(1);
        s.attach(ids[0], AttachmentTarget::cell(t(1), ColumnId(2))).unwrap();
        assert_eq!(s.cell_column(ids[0], t(1)), Some(ColumnId(2)));
        assert_eq!(s.annotations_of(t(1)), vec![ids[0]], "cell edges reach the tuple");
    }

    #[test]
    fn predicted_edges_do_not_appear_in_true_lookups() {
        let (mut s, ids) = store_with(1);
        s.attach_predicted(ids[0], t(1), 0.6).unwrap();
        assert!(s.annotations_of(t(1)).is_empty());
        assert!(s.focal(ids[0]).is_empty());
        assert_eq!(s.edge(ids[0], t(1)).unwrap().weight, 0.6);
        assert_eq!(s.true_edge_set().len(), 0);
        assert_eq!(s.all_edge_set().len(), 1);
    }

    #[test]
    fn promote_turns_prediction_true() {
        let (mut s, ids) = store_with(1);
        s.attach_predicted(ids[0], t(1), 0.6).unwrap();
        s.promote(ids[0], t(1)).unwrap();
        let e = s.edge(ids[0], t(1)).unwrap();
        assert_eq!(e.kind, EdgeKind::True);
        assert_eq!(e.weight, 1.0);
        assert_eq!(s.focal(ids[0]), vec![t(1)]);
        // promoting again is fine
        s.promote(ids[0], t(1)).unwrap();
        assert_eq!(s.focal(ids[0]).len(), 1);
    }

    #[test]
    fn promote_missing_edge_errors() {
        let (mut s, ids) = store_with(1);
        assert!(matches!(s.promote(ids[0], t(9)), Err(StoreError::UnknownEdge(..))));
    }

    #[test]
    fn discard_prediction_removes_edge_only_if_predicted() {
        let (mut s, ids) = store_with(1);
        s.attach_predicted(ids[0], t(1), 0.4).unwrap();
        s.discard_prediction(ids[0], t(1)).unwrap();
        assert!(s.edge(ids[0], t(1)).is_none());
        s.attach(ids[0], AttachmentTarget::tuple(t(2))).unwrap();
        assert!(s.discard_prediction(ids[0], t(2)).is_err());
    }

    #[test]
    fn true_edge_never_downgraded_by_prediction() {
        let (mut s, ids) = store_with(1);
        s.attach(ids[0], AttachmentTarget::tuple(t(1))).unwrap();
        s.attach_predicted(ids[0], t(1), 0.2).unwrap();
        assert_eq!(s.edge(ids[0], t(1)).unwrap().kind, EdgeKind::True);
    }

    #[test]
    fn invalid_weight_rejected() {
        let (mut s, ids) = store_with(1);
        assert!(s.attach_predicted(ids[0], t(1), 1.5).is_err());
        assert!(s.attach_predicted(ids[0], t(1), -0.1).is_err());
    }

    #[test]
    fn unknown_annotation_rejected() {
        let mut s = AnnotationStore::new();
        assert!(matches!(
            s.attach(AnnotationId(7), AttachmentTarget::tuple(t(0))),
            Err(StoreError::UnknownAnnotation(_))
        ));
    }

    #[test]
    fn common_annotations_counts() {
        let (mut s, ids) = store_with(3);
        // t1: {a0, a1}, t2: {a1, a2}
        s.attach(ids[0], AttachmentTarget::tuple(t(1))).unwrap();
        s.attach(ids[1], AttachmentTarget::tuple(t(1))).unwrap();
        s.attach(ids[1], AttachmentTarget::tuple(t(2))).unwrap();
        s.attach(ids[2], AttachmentTarget::tuple(t(2))).unwrap();
        let (common, total) = s.common_annotations(t(1), t(2));
        assert_eq!(common, 1);
        assert_eq!(total, 3);
        let (c0, t0) = s.common_annotations(t(1), t(9));
        assert_eq!((c0, t0), (0, 2));
    }

    #[test]
    fn on_tuple_deleted_cleans_everything() {
        let (mut s, ids) = store_with(2);
        s.attach(ids[0], AttachmentTarget::cell(t(1), ColumnId(0))).unwrap();
        s.attach(ids[0], AttachmentTarget::tuple(t(2))).unwrap();
        s.attach(ids[1], AttachmentTarget::tuple(t(1))).unwrap();
        s.attach_predicted(ids[1], t(1), 0.5).ok();
        let affected = s.on_tuple_deleted(t(1));
        assert_eq!(affected, vec![ids[0], ids[1]]);
        assert!(s.edge(ids[0], t(1)).is_none());
        assert!(s.edge(ids[1], t(1)).is_none());
        assert!(s.annotations_of(t(1)).is_empty());
        assert_eq!(s.focal(ids[0]), vec![t(2)], "other attachments survive");
        assert!(s.focal(ids[1]).is_empty());
        assert!(s.cell_column(ids[0], t(1)).is_none());
        // Deleting an unknown tuple is a no-op.
        assert!(s.on_tuple_deleted(t(99)).is_empty());
    }

    #[test]
    fn annotated_tuples_lists_tuples_with_true_edges() {
        let (mut s, ids) = store_with(2);
        s.attach(ids[0], AttachmentTarget::tuple(t(3))).unwrap();
        s.attach_predicted(ids[1], t(4), 0.5).unwrap();
        let v: Vec<TupleId> = s.annotated_tuples().collect();
        assert_eq!(v, vec![t(3)]);
    }
}

//! Property-based tests for the annotation store and graph metrics.

use annostore::{
    Annotation, AnnotationId, AnnotationStore, AttachmentTarget, EdgeSet, GraphQuality,
};
use proptest::prelude::*;
use relstore::schema::TableId;
use relstore::TupleId;

fn t(row: u64) -> TupleId {
    TupleId::new(TableId(0), row)
}

fn edge_set(pairs: &[(u64, u64)]) -> EdgeSet {
    pairs.iter().map(|&(a, tu)| (AnnotationId(a), t(tu))).collect()
}

proptest! {
    /// Graph-quality ratios stay in [0,1]; subsets of the ideal have zero
    /// false positives; supersets have zero false negatives.
    #[test]
    fn quality_ratios_bounded(
        ideal in proptest::collection::vec((0u64..5, 0u64..10), 0..25),
        actual in proptest::collection::vec((0u64..5, 0u64..10), 0..25),
    ) {
        let ideal = edge_set(&ideal);
        let actual = edge_set(&actual);
        let q = GraphQuality::evaluate(&actual, &ideal);
        prop_assert!((0.0..=1.0).contains(&q.false_negative_ratio));
        prop_assert!((0.0..=1.0).contains(&q.false_positive_ratio));

        // Union is a superset of ideal → F_N = 0.
        let union: EdgeSet = ideal.iter().chain(actual.iter()).collect();
        let qu = GraphQuality::evaluate(&union, &ideal);
        prop_assert_eq!(qu.false_negative_ratio, 0.0);

        // The ideal itself is perfect.
        let qp = GraphQuality::evaluate(&ideal, &ideal);
        prop_assert_eq!(qp.false_negative_ratio, 0.0);
        prop_assert_eq!(qp.false_positive_ratio, 0.0);
    }

    /// Store invariant: `focal` and `annotations_of` are inverse views of
    /// the same true-edge relation, and the true edge set matches.
    #[test]
    fn store_views_consistent(
        attachments in proptest::collection::vec((0usize..6, 0u64..12), 0..40),
    ) {
        let mut store = AnnotationStore::new();
        let ids: Vec<AnnotationId> =
            (0..6).map(|i| store.add_annotation(Annotation::new(format!("a{i}")))).collect();
        for (a, row) in &attachments {
            store.attach(ids[*a], AttachmentTarget::tuple(t(*row))).unwrap();
        }
        let edges = store.true_edge_set();
        for (a, tuple) in edges.iter() {
            prop_assert!(store.focal(a).contains(&tuple));
            prop_assert!(store.annotations_of(tuple).contains(&a));
        }
        for aid in &ids {
            for tuple in store.focal(*aid) {
                prop_assert!(edges.contains(*aid, tuple));
            }
        }
        // No duplicates in either view.
        for aid in &ids {
            let f = store.focal(*aid);
            let mut d = f.clone();
            d.sort();
            d.dedup();
            prop_assert_eq!(f.len(), d.len());
        }
    }

    /// `common_annotations` is symmetric and bounded by each tuple's own
    /// annotation count.
    #[test]
    fn common_annotations_symmetric(
        attachments in proptest::collection::vec((0usize..5, 0u64..6), 0..30),
        x in 0u64..6,
        y in 0u64..6,
    ) {
        let mut store = AnnotationStore::new();
        let ids: Vec<AnnotationId> =
            (0..5).map(|i| store.add_annotation(Annotation::new(format!("a{i}")))).collect();
        for (a, row) in &attachments {
            store.attach(ids[*a], AttachmentTarget::tuple(t(*row))).unwrap();
        }
        let (cxy, txy) = store.common_annotations(t(x), t(y));
        let (cyx, tyx) = store.common_annotations(t(y), t(x));
        prop_assert_eq!(cxy, cyx);
        prop_assert_eq!(txy, tyx);
        prop_assert!(cxy <= store.annotations_of(t(x)).len());
        prop_assert!(cxy <= store.annotations_of(t(y)).len());
        prop_assert!(cxy <= txy || txy == 0);
    }

    /// Prediction lifecycle: promote turns exactly the predicted edge
    /// true; discard removes it; true edges are never downgraded.
    #[test]
    fn prediction_lifecycle(
        conf in 0.0f64..=1.0,
        promote_first in any::<bool>(),
    ) {
        let mut store = AnnotationStore::new();
        let a = store.add_annotation(Annotation::new("x"));
        store.attach_predicted(a, t(1), conf).unwrap();
        if promote_first {
            store.promote(a, t(1)).unwrap();
            prop_assert_eq!(store.focal(a), vec![t(1)]);
            // Now a true edge: discard must fail.
            prop_assert!(store.discard_prediction(a, t(1)).is_err());
            // Re-predicting cannot downgrade.
            store.attach_predicted(a, t(1), 0.1).unwrap();
            prop_assert_eq!(store.edge(a, t(1)).unwrap().weight, 1.0);
        } else {
            store.discard_prediction(a, t(1)).unwrap();
            prop_assert!(store.edge(a, t(1)).is_none());
            prop_assert!(store.focal(a).is_empty());
        }
    }
}

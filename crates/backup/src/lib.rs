//! # nebula-backup — disaster recovery for the annotation engine
//!
//! Crash recovery (nebula-durable) survives a process death; replication
//! (nebula-replica) survives a node death. Nothing below this crate
//! survives losing the data directory itself, an operator mistake, or a
//! logical corruption that checkpointed over the only good state. This
//! crate closes that gap:
//!
//! - [`bundle`] — `BACKUP TO '<dir>'`: capture a consistent, *verified*
//!   bundle (base checkpoints + sealed WAL segments from the archive the
//!   durability manager feeds, optional page file, and a signed manifest
//!   of per-file digests).
//! - [`restore`](bundle::restore) — `RESTORE FROM '<dir>' [AS OF LSN n]`:
//!   verify every byte against the manifest, load the newest base at or
//!   below the target, and replay archived WAL through the same
//!   idempotent `replay_op` path crash recovery uses — true
//!   point-in-time recovery to any record boundary the archive covers.
//! - [`scrub`] — walk an archive or bundle re-deriving every CRC, so
//!   torn or rotten archive files are found *before* a restore needs
//!   them (`ArchiveRot` is the seeded fault site).
//! - [`retention`] — GC that only ever deletes what a newer base makes
//!   redundant: the oldest restorable point moves forward, never past a
//!   still-needed segment.
//!
//! All activity is reported through `nebula-obs` under `backup.*` names.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![deny(missing_docs)]

pub mod bundle;
pub mod manifest;
pub mod retention;
pub mod scrub;

pub use bundle::{create_bundle, restore, verify_bundle, BundleSpec, Restored, VerifyReport};
pub use manifest::{BackupManifest, ManifestEntry, MANIFEST_FILE};
pub use retention::{gc, GcReport};
pub use scrub::{inject_rot, scrub, BackupScrubReport};

use std::fmt;

/// Counter and span names this crate publishes to `nebula-obs`.
pub mod counters {
    /// Bundles captured.
    pub const BUNDLES_CREATED: &str = "backup.bundles_created";
    /// Bytes written into bundles (files + manifest).
    pub const BUNDLE_BYTES: &str = "backup.bundle_bytes";
    /// Restores completed.
    pub const RESTORES: &str = "backup.restores";
    /// Records replayed by restores.
    pub const RESTORE_RECORDS_REPLAYED: &str = "backup.restore_records_replayed";
    /// Manifest/digest verifications that failed.
    pub const VERIFY_FAILURES: &str = "backup.verify_failures";
    /// Backup-side scrub passes.
    pub const SCRUBS: &str = "backup.scrubs";
    /// At-rest archive bit flips injected by the chaos hook.
    pub const ROT_INJECTED: &str = "backup.rot_injected";
    /// Corrupt archive/bundle files the scrubber found.
    pub const ROT_DETECTED: &str = "backup.rot_detected";
    /// Archive files removed by retention GC.
    pub const GC_REMOVED: &str = "backup.gc_removed";
    /// Span: one verified restore.
    pub const SPAN_RESTORE: &str = "backup.restore";
}

/// Errors from backup, verify, restore, scrub, and retention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackupError {
    /// An operating-system I/O failure.
    Io(String),
    /// A frame or image failed structural validation (CRC, magic, LSN
    /// contiguity).
    Corrupt(String),
    /// The bundle does not match its signed manifest (missing file,
    /// wrong length, wrong digest, bad signature). Restores refuse to
    /// hand such state to the engine.
    Verify(String),
    /// The requested LSN is outside what the archive can rebuild.
    NotRestorable(String),
    /// A write returned no-space (`ENOSPC`); the backup path wedged with
    /// this typed error instead of panicking.
    NoSpace(String),
}

impl fmt::Display for BackupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackupError::Io(msg) => write!(f, "backup i/o error: {msg}"),
            BackupError::Corrupt(msg) => write!(f, "corrupt backup state: {msg}"),
            BackupError::Verify(msg) => write!(f, "bundle failed verification: {msg}"),
            BackupError::NotRestorable(msg) => write!(f, "not restorable: {msg}"),
            BackupError::NoSpace(what) => {
                write!(f, "no space left on device (enospc) while {what}")
            }
        }
    }
}

impl std::error::Error for BackupError {}

impl From<std::io::Error> for BackupError {
    fn from(e: std::io::Error) -> BackupError {
        BackupError::Io(e.to_string())
    }
}

impl From<nebula_durable::DurableError> for BackupError {
    fn from(e: nebula_durable::DurableError) -> BackupError {
        match e {
            nebula_durable::DurableError::NoSpace(what) => BackupError::NoSpace(what),
            nebula_durable::DurableError::Io(msg) => BackupError::Io(msg),
            other => BackupError::Corrupt(other.to_string()),
        }
    }
}

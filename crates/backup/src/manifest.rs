//! The signed bundle manifest (`NEBMAN01`).
//!
//! A bundle is only as trustworthy as the list of what it should
//! contain: the manifest names every file with its length and CRC32C
//! digest, states the restorable LSN range, and carries a keyed
//! signature over the whole body, so a tampered or bit-rotted manifest
//! is as detectable as a rotten segment. Layout:
//!
//! ```text
//! "NEBMAN01" | u32 crc32c(body) | body
//! body   = head_lsn u64 | oldest_lsn u64 | epoch u64 | created_seq u64
//!        | entry_count u32 | entries | signature u32
//! entry  = name_len u16 | name bytes | file_len u64 | file_crc u32
//! ```
//!
//! The signature is `crc32c(SIGN_KEY || body-before-signature)` — a
//! keyed MAC in miniature. Nothing here reads the wall clock:
//! `created_seq` is a caller-supplied ordinal, which keeps golden
//! bundles byte-for-byte reproducible.

use crate::BackupError;
use nebula_durable::crc32c::crc32c;

/// Magic prefix of a bundle manifest.
pub const MANIFEST_MAGIC: &[u8; 8] = b"NEBMAN01";
/// File name of the manifest inside a bundle directory.
pub const MANIFEST_FILE: &str = "MANIFEST.neb";
/// The signing key mixed into the manifest MAC.
const SIGN_KEY: &[u8; 16] = b"nebula-backup-v1";

/// One file the bundle must contain, byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// File name relative to the bundle directory.
    pub name: String,
    /// Exact file length in bytes.
    pub len: u64,
    /// CRC32C of the file's bytes.
    pub crc: u32,
}

/// The decoded, signature-checked manifest of one bundle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackupManifest {
    /// Newest LSN the bundle can restore.
    pub head_lsn: u64,
    /// Oldest LSN the bundle can restore (the oldest base's watermark).
    pub oldest_lsn: u64,
    /// Epoch stamped on the archived frames.
    pub epoch: u64,
    /// Caller-supplied capture ordinal (no wall clock — bundles must be
    /// reproducible byte-for-byte).
    pub created_seq: u64,
    /// Every file in the bundle, sorted by name.
    pub entries: Vec<ManifestEntry>,
}

impl BackupManifest {
    /// The entry for `name`, if the manifest lists it.
    pub fn entry(&self, name: &str) -> Option<&ManifestEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Total bytes the manifest covers (manifest itself excluded).
    pub fn bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.len).sum()
    }
}

/// Encode and sign a manifest.
pub fn encode(m: &BackupManifest) -> Vec<u8> {
    let mut body = Vec::new();
    body.extend_from_slice(&m.head_lsn.to_le_bytes());
    body.extend_from_slice(&m.oldest_lsn.to_le_bytes());
    body.extend_from_slice(&m.epoch.to_le_bytes());
    body.extend_from_slice(&m.created_seq.to_le_bytes());
    body.extend_from_slice(&(m.entries.len() as u32).to_le_bytes());
    for e in &m.entries {
        body.extend_from_slice(&(e.name.len() as u16).to_le_bytes());
        body.extend_from_slice(e.name.as_bytes());
        body.extend_from_slice(&e.len.to_le_bytes());
        body.extend_from_slice(&e.crc.to_le_bytes());
    }
    body.extend_from_slice(&sign(&body).to_le_bytes());
    let mut out = Vec::with_capacity(12 + body.len());
    out.extend_from_slice(MANIFEST_MAGIC);
    out.extend_from_slice(&crc32c(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decode a manifest, checking the envelope CRC and the signature.
pub fn decode(bytes: &[u8]) -> Result<BackupManifest, BackupError> {
    if bytes.len() < 12 || &bytes[0..8] != MANIFEST_MAGIC {
        return Err(BackupError::Verify("not a bundle manifest".into()));
    }
    let stored = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let body = &bytes[12..];
    if crc32c(body) != stored {
        return Err(BackupError::Verify("manifest checksum mismatch".into()));
    }
    if body.len() < 40 {
        return Err(BackupError::Verify("manifest body truncated".into()));
    }
    let head_lsn = u64::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
    let oldest_lsn = u64::from_le_bytes(body[8..16].try_into().expect("8 bytes"));
    let epoch = u64::from_le_bytes(body[16..24].try_into().expect("8 bytes"));
    let created_seq = u64::from_le_bytes(body[24..32].try_into().expect("8 bytes"));
    let count = u32::from_le_bytes(body[32..36].try_into().expect("4 bytes")) as usize;
    let mut entries = Vec::with_capacity(count);
    let mut at = 36usize;
    for _ in 0..count {
        if body.len() < at + 2 {
            return Err(BackupError::Verify("manifest entry truncated".into()));
        }
        let name_len = u16::from_le_bytes(body[at..at + 2].try_into().expect("2 bytes")) as usize;
        at += 2;
        if body.len() < at + name_len + 12 {
            return Err(BackupError::Verify("manifest entry truncated".into()));
        }
        let name = String::from_utf8(body[at..at + name_len].to_vec())
            .map_err(|_| BackupError::Verify("manifest entry name is not utf-8".into()))?;
        at += name_len;
        let len = u64::from_le_bytes(body[at..at + 8].try_into().expect("8 bytes"));
        at += 8;
        let crc = u32::from_le_bytes(body[at..at + 4].try_into().expect("4 bytes"));
        at += 4;
        entries.push(ManifestEntry { name, len, crc });
    }
    if body.len() != at + 4 {
        return Err(BackupError::Verify("manifest has trailing bytes".into()));
    }
    let sig = u32::from_le_bytes(body[at..at + 4].try_into().expect("4 bytes"));
    if sign(&body[..at]) != sig {
        return Err(BackupError::Verify("manifest signature mismatch".into()));
    }
    Ok(BackupManifest { head_lsn, oldest_lsn, epoch, created_seq, entries })
}

/// The keyed MAC over a manifest body prefix.
fn sign(body: &[u8]) -> u32 {
    let mut keyed = Vec::with_capacity(SIGN_KEY.len() + body.len());
    keyed.extend_from_slice(SIGN_KEY);
    keyed.extend_from_slice(body);
    crc32c(&keyed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BackupManifest {
        BackupManifest {
            head_lsn: 42,
            oldest_lsn: 3,
            epoch: 1,
            created_seq: 7,
            entries: vec![
                ManifestEntry { name: "base-00000000000000000003.ckpt".into(), len: 128, crc: 9 },
                ManifestEntry { name: "segment-00000000000000000004.seg".into(), len: 64, crc: 5 },
            ],
        }
    }

    #[test]
    fn round_trips() {
        let m = sample();
        let bytes = encode(&m);
        assert_eq!(decode(&bytes).unwrap(), m);
        assert_eq!(m.bytes(), 192);
        assert!(m.entry("base-00000000000000000003.ckpt").is_some());
        assert!(m.entry("nope").is_none());
    }

    #[test]
    fn any_flipped_bit_is_detected() {
        let bytes = encode(&sample());
        for bit in 0..bytes.len() * 8 {
            let mut bad = bytes.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(decode(&bad).is_err(), "flip of bit {bit} went undetected");
        }
    }

    #[test]
    fn a_resigned_manifest_with_the_wrong_key_is_rejected() {
        // Re-encode the body with a tampered entry and a *recomputed*
        // envelope CRC: only the keyed signature catches this.
        let m = sample();
        let bytes = encode(&m);
        let mut body = bytes[12..].to_vec();
        body[0] ^= 1; // head_lsn
        let sig_at = body.len() - 4;
        // Recompute the unkeyed checksum an attacker without the key
        // would use: plain crc32c of the prefix.
        let fake_sig = crc32c(&body[..sig_at]);
        body[sig_at..].copy_from_slice(&fake_sig.to_le_bytes());
        let mut forged = Vec::new();
        forged.extend_from_slice(MANIFEST_MAGIC);
        forged.extend_from_slice(&crc32c(&body).to_le_bytes());
        forged.extend_from_slice(&body);
        let err = decode(&forged).unwrap_err();
        assert!(matches!(err, BackupError::Verify(ref msg) if msg.contains("signature")), "{err}");
    }
}

//! Bundle capture, verification, and point-in-time restore.
//!
//! A bundle is a directory: the archive's base checkpoints and sealed
//! WAL segments (validated structurally before a byte is copied), an
//! optional page file, and — written last, so a torn capture is never
//! mistaken for a complete one — the signed [`crate::manifest`].
//!
//! Restores are paranoid by construction: [`restore`] re-verifies every
//! file against the manifest digests *before* touching the engine (and
//! reads only manifest-listed files — an unmanifested extra fails
//! verification outright), loads the newest *unfenced* base at or below
//! the target LSN, and replays segments through the same idempotent
//! [`replay_op`] path crash recovery uses. Frames a failover fenced —
//! a deposed primary's sealed-but-never-committed suffix overlapping
//! the new epoch's LSNs — are refused in favor of the highest-epoch
//! coverage. Any gap between the base and the target is a typed
//! [`BackupError::NotRestorable`], never a silently short state.

use crate::manifest::{self, BackupManifest, ManifestEntry, MANIFEST_FILE};
use crate::{counters, BackupError};
use annostore::AnnotationStore;
use nebula_durable::archive::{
    list_bases, list_segments, parse_base_watermark, parse_segment_lsn,
};
use nebula_durable::crc32c::crc32c;
use nebula_durable::segment::{decode_checkpoint_frame, decode_segment, Segment};
use nebula_durable::{checkpoint, replay_op};
use nebula_govern::{inject_io, FaultSite, IoFault};
use relstore::Database;
use std::path::{Path, PathBuf};

/// What to capture into a bundle.
#[derive(Debug, Clone)]
pub struct BundleSpec {
    /// The live archive directory the durability manager feeds.
    pub archive_dir: PathBuf,
    /// Where to write the bundle (created if missing).
    pub bundle_dir: PathBuf,
    /// An optional page file to carry along (copied as `pages.neb`).
    pub pages: Option<PathBuf>,
    /// Capture ordinal stamped into the manifest. No wall clock: callers
    /// supply a sequence number so bundles stay byte-reproducible.
    pub created_seq: u64,
}

/// What [`verify_bundle`] checked.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// The decoded, signature-checked manifest.
    pub manifest: BackupManifest,
    /// Files whose length and digest matched.
    pub files_verified: usize,
    /// Bytes hashed while verifying.
    pub bytes_verified: u64,
}

/// The state a restore rebuilt.
#[derive(Debug)]
pub struct Restored {
    /// The restored relational store.
    pub db: Database,
    /// The restored annotation store.
    pub store: AnnotationStore,
    /// The LSN the state reflects (the restore target).
    pub applied: u64,
    /// Watermark of the base checkpoint the restore started from.
    pub base_watermark: u64,
    /// Epoch stamped on the archived frames.
    pub epoch: u64,
    /// Records replayed on top of the base.
    pub replayed: usize,
    /// Records skipped because the base already covered them.
    pub skipped: usize,
    /// Records refused because a later epoch fenced them: a deposed
    /// primary sealed them into the archive, but they were never
    /// committed past the failover handover.
    pub fenced: usize,
}

/// Epoch fencing for archived history. A failover hands the archive to a
/// new primary at a watermark, and every frame the new epoch writes
/// (its opening base, its segments) covers history from that watermark
/// on. `starts` holds one `(epoch, covers-from)` pair per archived
/// frame: a base covers from its watermark, a segment from
/// `base_lsn - 1`. For epoch `e`, the lowest coverage start among
/// higher-epoch frames is the last LSN of `e` that was ever committed —
/// records (or base watermarks) past that cutoff were sealed by a
/// deposed primary and must never restore, or a divergent, never-acked
/// history silently shadows the real one.
fn epoch_cutoff(starts: &[(u64, u64)], epoch: u64) -> u64 {
    starts.iter().filter(|(e, _)| *e > epoch).map(|(_, s)| *s).min().unwrap_or(u64::MAX)
}

/// Copy one file into the bundle, rolling the `Enospc` fault site so a
/// full disk surfaces as a typed error with nothing half-written kept as
/// a complete capture (the manifest is written last).
fn write_bundle_file(dir: &Path, name: &str, bytes: &[u8]) -> Result<(), BackupError> {
    if let Some(IoFault::NoSpace) = inject_io(FaultSite::Enospc, bytes.len()) {
        return Err(BackupError::NoSpace(format!("writing {name} into the bundle")));
    }
    std::fs::write(dir.join(name), bytes)?;
    nebula_obs::counter_add(counters::BUNDLE_BYTES, bytes.len() as u64);
    Ok(())
}

/// Capture a verified bundle from a live archive directory.
///
/// Every archive file is structurally decoded **before** it is copied —
/// a torn or rotten archive file fails the capture with
/// [`BackupError::Corrupt`] (run [`crate::scrub`] to find them all)
/// rather than poisoning the bundle. The signed manifest is written
/// last, so an interrupted capture is detectable: no manifest, no
/// bundle.
pub fn create_bundle(spec: &BundleSpec) -> Result<BackupManifest, BackupError> {
    let bases = list_bases(&spec.archive_dir)?;
    let segments = list_segments(&spec.archive_dir)?;
    if bases.is_empty() {
        return Err(BackupError::NotRestorable(format!(
            "archive {} holds no base checkpoint; enable archiving and checkpoint first",
            spec.archive_dir.display()
        )));
    }
    std::fs::create_dir_all(&spec.bundle_dir)?;
    // A re-used bundle directory may hold leftovers from an earlier
    // capture (e.g. segments the archive has since GC'd) or planted
    // files. Clear every bundle artifact first — the stale manifest
    // above all, so a capture that fails midway never leaves an old
    // manifest vouching for a mixed file set.
    clear_bundle_dir(&spec.bundle_dir)?;

    let mut entries = Vec::new();
    let mut epoch = 0u64;
    // (epoch, covers-from) per archived frame, for epoch fencing.
    let mut starts: Vec<(u64, u64)> = Vec::new();
    let mut base_frames: Vec<(u64, u64)> = Vec::new(); // (watermark, epoch)
    let mut seg_frames: Vec<(u64, u64)> = Vec::new(); // (epoch, last_lsn)

    for (watermark, path) in &bases {
        let bytes = std::fs::read(path)?;
        let frame = decode_checkpoint_frame(&bytes).map_err(|e| {
            BackupError::Corrupt(format!("archived base {} is unreadable: {e}", path.display()))
        })?;
        let (image_watermark, _, _) = checkpoint::decode(&frame.image)
            .map_err(|e| BackupError::Corrupt(format!("base {}: {e}", path.display())))?;
        if image_watermark != *watermark {
            return Err(BackupError::Corrupt(format!(
                "base {} carries watermark {image_watermark}",
                path.display()
            )));
        }
        epoch = epoch.max(frame.epoch);
        starts.push((frame.epoch, *watermark));
        base_frames.push((*watermark, frame.epoch));
        entries.push(copy_in(&spec.bundle_dir, path, &bytes)?);
    }
    for (base_lsn, path) in &segments {
        let bytes = std::fs::read(path)?;
        let seg = decode_segment(&bytes).map_err(|e| {
            BackupError::Corrupt(format!("archived segment {} is unreadable: {e}", path.display()))
        })?;
        if seg.base_lsn != *base_lsn {
            return Err(BackupError::Corrupt(format!(
                "segment {} carries base lsn {}",
                path.display(),
                seg.base_lsn
            )));
        }
        epoch = epoch.max(seg.epoch);
        starts.push((seg.epoch, base_lsn.saturating_sub(1)));
        seg_frames.push((seg.epoch, base_lsn + seg.records.len().saturating_sub(1) as u64));
        entries.push(copy_in(&spec.bundle_dir, path, &bytes)?);
    }

    // The restorable range, epoch-fenced: a frame only extends it up to
    // its epoch's cutoff — anything past that was superseded at failover.
    let mut head_lsn = 0u64;
    let mut oldest_lsn = u64::MAX;
    for (w, e) in &base_frames {
        if *w <= epoch_cutoff(&starts, *e) {
            head_lsn = head_lsn.max(*w);
            oldest_lsn = oldest_lsn.min(*w);
        }
    }
    for (e, last) in &seg_frames {
        head_lsn = head_lsn.max((*last).min(epoch_cutoff(&starts, *e)));
    }
    if oldest_lsn == u64::MAX {
        return Err(BackupError::NotRestorable(format!(
            "every base in {} is past its epoch's failover fence",
            spec.archive_dir.display()
        )));
    }
    if let Some(pages) = &spec.pages {
        let bytes = std::fs::read(pages)?;
        write_bundle_file(&spec.bundle_dir, "pages.neb", &bytes)?;
        entries.push(ManifestEntry {
            name: "pages.neb".into(),
            len: bytes.len() as u64,
            crc: crc32c(&bytes),
        });
    }

    entries.sort_by(|a, b| a.name.cmp(&b.name));
    let m = BackupManifest { head_lsn, oldest_lsn, epoch, created_seq: spec.created_seq, entries };
    write_bundle_file(&spec.bundle_dir, MANIFEST_FILE, &manifest::encode(&m))?;
    nebula_obs::counter_add(counters::BUNDLES_CREATED, 1);
    Ok(m)
}

/// Remove every bundle artifact from a (re-used) bundle directory. The
/// manifest goes first: once it is gone, no half-finished state in the
/// directory can pass verification.
fn clear_bundle_dir(dir: &Path) -> Result<(), BackupError> {
    let manifest = dir.join(MANIFEST_FILE);
    if manifest.exists() {
        std::fs::remove_file(&manifest)?;
    }
    for (_, path) in list_bases(dir)?.into_iter().chain(list_segments(dir)?) {
        std::fs::remove_file(&path)?;
    }
    let pages = dir.join("pages.neb");
    if pages.exists() {
        std::fs::remove_file(&pages)?;
    }
    Ok(())
}

fn copy_in(bundle_dir: &Path, src: &Path, bytes: &[u8]) -> Result<ManifestEntry, BackupError> {
    let name = src
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| BackupError::Io(format!("unnameable archive file {}", src.display())))?
        .to_string();
    write_bundle_file(bundle_dir, &name, bytes)?;
    Ok(ManifestEntry { name, len: bytes.len() as u64, crc: crc32c(bytes) })
}

/// Verify a bundle against its signed manifest: every listed file must
/// exist with the exact length and CRC32C digest the manifest recorded.
pub fn verify_bundle(dir: &Path) -> Result<VerifyReport, BackupError> {
    let result = verify_inner(dir);
    if result.is_err() {
        nebula_obs::counter_add(counters::VERIFY_FAILURES, 1);
    }
    result
}

fn verify_inner(dir: &Path) -> Result<VerifyReport, BackupError> {
    let manifest_path = dir.join(MANIFEST_FILE);
    let bytes = std::fs::read(&manifest_path).map_err(|e| {
        BackupError::Verify(format!("cannot read {}: {e}", manifest_path.display()))
    })?;
    let m = manifest::decode(&bytes)?;
    let mut bytes_verified = 0u64;
    for entry in &m.entries {
        let path = dir.join(&entry.name);
        let data = std::fs::read(&path)
            .map_err(|e| BackupError::Verify(format!("manifest lists {} but: {e}", entry.name)))?;
        if data.len() as u64 != entry.len {
            return Err(BackupError::Verify(format!(
                "{} is {} bytes, manifest says {}",
                entry.name,
                data.len(),
                entry.len
            )));
        }
        if crc32c(&data) != entry.crc {
            return Err(BackupError::Verify(format!("{} fails its digest", entry.name)));
        }
        bytes_verified += entry.len;
    }
    // The manifest must also be exhaustive: a base or segment file the
    // manifest does not list has no digest or signature coverage, so a
    // restore reading it would run over unverified bytes. Planted or
    // stale extras fail the bundle outright.
    for (_, path) in list_bases(dir)?.into_iter().chain(list_segments(dir)?) {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or_default();
        if m.entry(name).is_none() {
            return Err(BackupError::Verify(format!(
                "{name} is present but the signed manifest does not list it"
            )));
        }
    }
    Ok(VerifyReport { manifest: m.clone(), files_verified: m.entries.len(), bytes_verified })
}

/// Rebuild state from a bundle, to `as_of` (an LSN) or, when `None`, the
/// bundle's head.
///
/// Verification runs first — a bundle that fails its manifest never
/// reaches the engine, and only files the signed manifest lists are
/// read, so an unmanifested (planted or stale) base or segment can
/// never contribute a byte. Then the newest *unfenced* base at or below
/// the target loads and segments replay through [`replay_op`], skipping
/// records the base already covers and stopping exactly at the target.
/// Records a later epoch fenced at failover — a deposed primary's
/// sealed-but-never-committed suffix — are refused, never replayed; the
/// higher epoch's frames cover those LSNs with the history that was
/// actually committed. A gap in the archived history or a target
/// outside `[oldest_lsn, head_lsn]` is [`BackupError::NotRestorable`].
pub fn restore(dir: &Path, as_of: Option<u64>) -> Result<Restored, BackupError> {
    let _span = nebula_obs::span(counters::SPAN_RESTORE);
    let report = verify_bundle(dir)?;
    let m = &report.manifest;
    let target = as_of.unwrap_or(m.head_lsn);
    if target > m.head_lsn || target < m.oldest_lsn {
        return Err(BackupError::NotRestorable(format!(
            "lsn {target} is outside the bundle's range [{}, {}]",
            m.oldest_lsn, m.head_lsn
        )));
    }

    // Load frames strictly from the manifest — never a raw directory
    // listing — and note each frame's epoch and coverage start so
    // failover fencing can be applied below.
    let mut bases: Vec<(u64, u64, PathBuf)> = Vec::new(); // (watermark, epoch, path)
    let mut segments: Vec<(u64, Segment)> = Vec::new(); // (base_lsn, decoded)
    let mut starts: Vec<(u64, u64)> = Vec::new(); // (epoch, covers-from)
    for entry in &m.entries {
        let path = dir.join(&entry.name);
        if let Some(watermark) = parse_base_watermark(&entry.name) {
            let frame = decode_checkpoint_frame(&std::fs::read(&path)?)
                .map_err(|e| BackupError::Corrupt(format!("base {}: {e}", path.display())))?;
            starts.push((frame.epoch, watermark));
            bases.push((watermark, frame.epoch, path));
        } else if let Some(base_lsn) = parse_segment_lsn(&entry.name) {
            let seg = decode_segment(&std::fs::read(&path)?)
                .map_err(|e| BackupError::Corrupt(format!("segment {}: {e}", path.display())))?;
            if seg.base_lsn != base_lsn {
                return Err(BackupError::Corrupt(format!(
                    "segment {} carries base lsn {}",
                    path.display(),
                    seg.base_lsn
                )));
            }
            starts.push((seg.epoch, base_lsn.saturating_sub(1)));
            segments.push((base_lsn, seg));
        }
    }
    bases.sort_by_key(|(w, _, _)| *w);
    segments.sort_by_key(|(l, _)| *l);

    // Newest unfenced base at or below the target: a base a later epoch
    // fenced (its watermark is past the handover) holds never-committed
    // state and must not seed the restore.
    let (base_watermark, base_path) = bases
        .iter()
        .filter(|(w, e, _)| *w <= target && *w <= epoch_cutoff(&starts, *e))
        .next_back()
        .map(|(w, _, p)| (*w, p.clone()))
        .ok_or_else(|| {
            BackupError::NotRestorable(format!("no base checkpoint at or below lsn {target}"))
        })?;
    let base_bytes = std::fs::read(&base_path)?;
    let frame = decode_checkpoint_frame(&base_bytes)
        .map_err(|e| BackupError::Corrupt(format!("base {}: {e}", base_path.display())))?;
    let (watermark, mut db, mut store) = checkpoint::decode(&frame.image)
        .map_err(|e| BackupError::Corrupt(format!("base {}: {e}", base_path.display())))?;
    if watermark != base_watermark {
        return Err(BackupError::Corrupt(format!(
            "base {} carries watermark {watermark}",
            base_path.display()
        )));
    }

    let mut applied = watermark;
    let mut replayed = 0usize;
    let mut skipped = 0usize;
    let mut fenced = 0usize;
    'segments: for (_, seg) in &segments {
        let limit = epoch_cutoff(&starts, seg.epoch);
        for rec in &seg.records {
            if rec.lsn > limit {
                // Sealed by a deposed primary past the handover: the
                // higher epoch's frames carry the committed history for
                // these LSNs.
                fenced += 1;
                continue;
            }
            if rec.lsn <= applied {
                skipped += 1;
                continue;
            }
            if rec.lsn > target {
                break 'segments;
            }
            if rec.lsn != applied + 1 {
                return Err(BackupError::NotRestorable(format!(
                    "archived history jumps from lsn {applied} to {}; a segment is missing",
                    rec.lsn
                )));
            }
            replay_op(&mut db, &mut store, &rec.op)
                .map_err(|e| BackupError::Corrupt(format!("replaying lsn {}: {e}", rec.lsn)))?;
            applied = rec.lsn;
            replayed += 1;
        }
    }
    if applied != target {
        return Err(BackupError::NotRestorable(format!(
            "archived history ends at lsn {applied}, short of the requested {target}"
        )));
    }
    nebula_obs::counter_add(counters::RESTORES, 1);
    nebula_obs::counter_add(counters::RESTORE_RECORDS_REPLAYED, replayed as u64);
    Ok(Restored { db, store, applied, base_watermark, epoch: m.epoch, replayed, skipped, fenced })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_durable::state_digest;
    use nebula_durable::{Durability, DurabilityOptions, WalOp};
    use relstore::{DataType, TableSchema, Value};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nebula-bundle-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Build an archive with `checkpoints` checkpoints, `per` records
    /// between each, and return (live db, live store, archive dir, root).
    fn seeded_archive(
        tag: &str,
        checkpoints: usize,
        per: u64,
    ) -> (Database, AnnotationStore, PathBuf, PathBuf) {
        let root = temp_dir(tag);
        let data = root.join("data");
        let archive = root.join("archive");
        let mut db = Database::new();
        let mut store = AnnotationStore::new();
        db.create_table(TableSchema::builder("t").column("v", DataType::Int).build().unwrap())
            .unwrap();
        let mut d = Durability::begin(&data, &db, &store, DurabilityOptions::default()).unwrap();
        d.set_archive(&archive, 1).unwrap();
        let mut n = 0u64;
        for _ in 0..checkpoints {
            for _ in 0..per {
                let id = annostore::AnnotationId(store.annotation_count() as u64);
                let op = WalOp::AddAnnotation {
                    expected: id,
                    text: format!("note {n}"),
                    author: Some("op".into()),
                    kind: None,
                };
                d.append(&op).unwrap();
                replay_op(&mut db, &mut store, &op).unwrap();
                db.insert("t", vec![Value::Int(n as i64)]).unwrap();
                n += 1;
            }
            d.checkpoint(&db, &store).unwrap();
        }
        (db, store, archive, root)
    }

    #[test]
    fn a_bundle_restores_byte_identical_state() {
        let (db, store, archive, root) = seeded_archive("identical", 3, 4);
        let bundle = root.join("bundle");
        let m = create_bundle(&BundleSpec {
            archive_dir: archive,
            bundle_dir: bundle.clone(),
            pages: None,
            created_seq: 1,
        })
        .unwrap();
        assert_eq!(m.head_lsn, 12);
        assert_eq!(m.oldest_lsn, 0);
        let report = verify_bundle(&bundle).unwrap();
        assert_eq!(report.files_verified, m.entries.len());
        let r = restore(&bundle, None).unwrap();
        assert_eq!(r.applied, 12);
        assert_eq!(state_digest(&r.db, &r.store), state_digest(&db, &store));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn as_of_lsn_restores_to_any_boundary_in_range() {
        let (_, _, archive, root) = seeded_archive("asof", 2, 5);
        let bundle = root.join("bundle");
        create_bundle(&BundleSpec {
            archive_dir: archive,
            bundle_dir: bundle.clone(),
            pages: None,
            created_seq: 1,
        })
        .unwrap();
        for lsn in 0..=10u64 {
            let r = restore(&bundle, Some(lsn)).unwrap();
            assert_eq!(r.applied, lsn);
            assert_eq!(r.store.annotation_count() as u64, lsn);
        }
        assert!(matches!(restore(&bundle, Some(11)), Err(BackupError::NotRestorable(_))));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn a_tampered_bundle_is_refused_before_restore() {
        let (_, _, archive, root) = seeded_archive("tamper", 2, 3);
        let bundle = root.join("bundle");
        create_bundle(&BundleSpec {
            archive_dir: archive,
            bundle_dir: bundle.clone(),
            pages: None,
            created_seq: 1,
        })
        .unwrap();
        // Flip one bit in one segment: verify and restore both refuse.
        let seg = list_segments(&bundle).unwrap().pop().unwrap().1;
        let mut bytes = std::fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&seg, &bytes).unwrap();
        assert!(matches!(verify_bundle(&bundle), Err(BackupError::Verify(_))));
        assert!(matches!(restore(&bundle, None), Err(BackupError::Verify(_))));
        // A missing file is refused too.
        bytes[mid] ^= 0x10;
        std::fs::write(&seg, &bytes).unwrap();
        verify_bundle(&bundle).unwrap();
        std::fs::remove_file(&seg).unwrap();
        assert!(matches!(verify_bundle(&bundle), Err(BackupError::Verify(_))));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn a_gap_in_the_archived_history_is_not_restorable() {
        let (_, _, archive, root) = seeded_archive("gap", 3, 3);
        let bundle = root.join("bundle");
        create_bundle(&BundleSpec {
            archive_dir: archive,
            bundle_dir: bundle.clone(),
            pages: None,
            created_seq: 1,
        })
        .unwrap();
        // Drop the middle segment (lsns 4..=6) and rewrite the manifest
        // honestly — the gap itself must be detected, not just the digest.
        let victim = bundle.join(nebula_durable::archive::segment_file_name(4));
        std::fs::remove_file(&victim).unwrap();
        let mut m = manifest::decode(&std::fs::read(bundle.join(MANIFEST_FILE)).unwrap()).unwrap();
        m.entries.retain(|e| !e.name.contains("00000000000000000004.seg"));
        std::fs::write(bundle.join(MANIFEST_FILE), manifest::encode(&m)).unwrap();
        // Restores at or below the newest base before the gap still work…
        assert_eq!(restore(&bundle, Some(3)).unwrap().applied, 3);
        // …because base-6 covers lsn 6, so do restores ≥ 6…
        assert_eq!(restore(&bundle, Some(7)).unwrap().applied, 7);
        // …but lsn 4 and 5 fell into the hole.
        for lsn in [4u64, 5] {
            assert!(
                matches!(restore(&bundle, Some(lsn)), Err(BackupError::NotRestorable(_))),
                "lsn {lsn} restored across a gap"
            );
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Encode a run of `AddAnnotation` records, `text_tag` per record,
    /// with `expected` ids continuing from `store_count`.
    fn record_run(first_lsn: u64, store_count: u64, texts: &[String]) -> Vec<u8> {
        let mut out = Vec::new();
        for (i, text) in texts.iter().enumerate() {
            let op = WalOp::AddAnnotation {
                expected: annostore::AnnotationId(store_count + i as u64),
                text: text.clone(),
                author: None,
                kind: None,
            };
            out.extend_from_slice(&nebula_durable::wal::encode_record(
                first_lsn + i as u64,
                &op,
            ));
        }
        out
    }

    /// The review-found failover hazard: the archive directory survives a
    /// promotion, so it holds an epoch-1 segment whose tail (lsn 5..=6)
    /// was sealed by the deposed primary but never committed — the
    /// failover handed over at lsn 4, and epoch 2 re-wrote those LSNs
    /// with different records. Epoch 1 even checkpointed the divergent
    /// state as `base-6`. A restore must rebuild only the committed
    /// history: epoch-1 records past the handover and the poisoned base
    /// are fenced, the epoch-2 frames win.
    #[test]
    fn restore_prefers_the_highest_epoch_across_a_failover_overlap() {
        use nebula_durable::archive::{archive_base, archive_segment};
        let root = temp_dir("failover");
        let archive = root.join("archive");

        let committed: Vec<String> = (1..=8).map(|n| format!("committed {n}")).collect();
        let fenced: Vec<String> = (5..=6).map(|n| format!("fenced {n}")).collect();

        // Reference digests of the committed history at every LSN.
        let mut db = Database::new();
        let mut store = AnnotationStore::new();
        let mut digests = vec![state_digest(&db, &store)];
        let mut states = Vec::new();
        for (i, text) in committed.iter().enumerate() {
            let op = WalOp::AddAnnotation {
                expected: annostore::AnnotationId(i as u64),
                text: text.clone(),
                author: None,
                kind: None,
            };
            replay_op(&mut db, &mut store, &op).unwrap();
            digests.push(state_digest(&db, &store));
            states.push(nebula_durable::checkpoint::encode(i as u64 + 1, &db, &store));
        }

        // Epoch 1: base-0, then one segment sealing lsn 1..=6 where the
        // last two records diverge from the committed history, and a
        // checkpoint of that divergent state as base-6.
        let empty = nebula_durable::checkpoint::encode(
            0,
            &Database::new(),
            &AnnotationStore::new(),
        );
        archive_base(&archive, 1, 0, &empty).unwrap();
        let mut e1_texts = committed[..4].to_vec();
        e1_texts.extend(fenced.iter().cloned());
        archive_segment(&archive, 1, 1, &record_run(1, 0, &e1_texts)).unwrap();
        let mut db1 = Database::new();
        let mut store1 = AnnotationStore::new();
        for (i, text) in e1_texts.iter().enumerate() {
            let op = WalOp::AddAnnotation {
                expected: annostore::AnnotationId(i as u64),
                text: text.clone(),
                author: None,
                kind: None,
            };
            replay_op(&mut db1, &mut store1, &op).unwrap();
        }
        archive_base(&archive, 1, 6, &nebula_durable::checkpoint::encode(6, &db1, &store1))
            .unwrap();

        // Epoch 2 adopts the archive at the handover watermark (lsn 4)
        // and seals the committed 5..=8.
        archive_base(&archive, 2, 4, &states[3]).unwrap();
        archive_segment(&archive, 2, 5, &record_run(5, 4, &committed[4..])).unwrap();

        let bundle = root.join("bundle");
        let m = create_bundle(&BundleSpec {
            archive_dir: archive,
            bundle_dir: bundle.clone(),
            pages: None,
            created_seq: 1,
        })
        .unwrap();
        assert_eq!(m.epoch, 2);
        assert_eq!(m.head_lsn, 8, "fenced epoch-1 records must not extend the head");
        assert_eq!(m.oldest_lsn, 0);

        // Restore to the head: byte-identical to the committed history,
        // with exactly the two deposed records refused.
        let r = restore(&bundle, None).unwrap();
        assert_eq!(r.applied, 8);
        assert_eq!(r.fenced, 2, "the deposed primary's suffix must be fenced");
        assert_eq!(state_digest(&r.db, &r.store), digests[8]);

        // Targets just past the handover are exactly where the stale
        // segment used to win: every boundary must match the committed
        // reference, and lsn 6 must not come from the poisoned base-6.
        for target in 0..=8u64 {
            let r = restore(&bundle, Some(target)).unwrap();
            assert_eq!(r.applied, target);
            assert_eq!(
                state_digest(&r.db, &r.store),
                digests[target as usize],
                "restore AS OF LSN {target} resurrected fenced history"
            );
            if target >= 4 {
                assert_eq!(r.base_watermark, 4, "lsn {target} must seed from the epoch-2 base");
            }
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn an_unmanifested_file_fails_verification_and_never_restores() {
        let (_, _, archive, root) = seeded_archive("planted", 2, 3);
        let bundle = root.join("bundle");
        create_bundle(&BundleSpec {
            archive_dir: archive.clone(),
            bundle_dir: bundle.clone(),
            pages: None,
            created_seq: 1,
        })
        .unwrap();
        // Plant a segment file the signed manifest does not cover: the
        // bundle must fail verification outright, and restore with it.
        let planted = bundle.join(nebula_durable::archive::segment_file_name(99));
        std::fs::write(&planted, b"unverified bytes").unwrap();
        let err = verify_bundle(&bundle).unwrap_err();
        assert!(matches!(err, BackupError::Verify(ref m) if m.contains("not list")), "{err}");
        assert!(matches!(restore(&bundle, None), Err(BackupError::Verify(_))));
        // Re-capturing into the same directory clears the stale extra
        // (and any other leftover artifact) before writing the new set.
        create_bundle(&BundleSpec {
            archive_dir: archive,
            bundle_dir: bundle.clone(),
            pages: None,
            created_seq: 2,
        })
        .unwrap();
        assert!(!planted.exists(), "create_bundle must clear unmanifested leftovers");
        verify_bundle(&bundle).unwrap();
        restore(&bundle, None).unwrap();
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn enospc_during_capture_is_typed_and_leaves_no_manifest() {
        let (_, _, archive, root) = seeded_archive("enospc", 1, 2);
        let bundle = root.join("bundle");
        nebula_govern::set_fault_plan(Some(nebula_govern::FaultPlan::new(9).with_enospc(1.0)));
        let err = create_bundle(&BundleSpec {
            archive_dir: archive.clone(),
            bundle_dir: bundle.clone(),
            pages: None,
            created_seq: 1,
        })
        .unwrap_err();
        nebula_govern::set_fault_plan(None);
        assert!(matches!(err, BackupError::NoSpace(_)), "{err}");
        assert!(!bundle.join(MANIFEST_FILE).exists(), "a torn capture must not look complete");
        assert!(matches!(verify_bundle(&bundle), Err(BackupError::Verify(_))));
        // With space back, the capture succeeds into the same directory.
        create_bundle(&BundleSpec {
            archive_dir: archive,
            bundle_dir: bundle.clone(),
            pages: None,
            created_seq: 2,
        })
        .unwrap();
        verify_bundle(&bundle).unwrap();
        let _ = std::fs::remove_dir_all(&root);
    }
}

//! Bundle capture, verification, and point-in-time restore.
//!
//! A bundle is a directory: the archive's base checkpoints and sealed
//! WAL segments (validated structurally before a byte is copied), an
//! optional page file, and — written last, so a torn capture is never
//! mistaken for a complete one — the signed [`crate::manifest`].
//!
//! Restores are paranoid by construction: [`restore`] re-verifies every
//! file against the manifest digests *before* touching the engine, loads
//! the newest base at or below the target LSN, and replays segments
//! through the same idempotent [`replay_op`] path crash recovery uses.
//! Any gap between the base and the target is a typed
//! [`BackupError::NotRestorable`], never a silently short state.

use crate::manifest::{self, BackupManifest, ManifestEntry, MANIFEST_FILE};
use crate::{counters, BackupError};
use annostore::AnnotationStore;
use nebula_durable::archive::{list_bases, list_segments};
use nebula_durable::crc32c::crc32c;
use nebula_durable::segment::{decode_checkpoint_frame, decode_segment};
use nebula_durable::{checkpoint, replay_op};
use nebula_govern::{inject_io, FaultSite, IoFault};
use relstore::Database;
use std::path::{Path, PathBuf};

/// What to capture into a bundle.
#[derive(Debug, Clone)]
pub struct BundleSpec {
    /// The live archive directory the durability manager feeds.
    pub archive_dir: PathBuf,
    /// Where to write the bundle (created if missing).
    pub bundle_dir: PathBuf,
    /// An optional page file to carry along (copied as `pages.neb`).
    pub pages: Option<PathBuf>,
    /// Capture ordinal stamped into the manifest. No wall clock: callers
    /// supply a sequence number so bundles stay byte-reproducible.
    pub created_seq: u64,
}

/// What [`verify_bundle`] checked.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// The decoded, signature-checked manifest.
    pub manifest: BackupManifest,
    /// Files whose length and digest matched.
    pub files_verified: usize,
    /// Bytes hashed while verifying.
    pub bytes_verified: u64,
}

/// The state a restore rebuilt.
#[derive(Debug)]
pub struct Restored {
    /// The restored relational store.
    pub db: Database,
    /// The restored annotation store.
    pub store: AnnotationStore,
    /// The LSN the state reflects (the restore target).
    pub applied: u64,
    /// Watermark of the base checkpoint the restore started from.
    pub base_watermark: u64,
    /// Epoch stamped on the archived frames.
    pub epoch: u64,
    /// Records replayed on top of the base.
    pub replayed: usize,
    /// Records skipped because the base already covered them.
    pub skipped: usize,
}

/// Copy one file into the bundle, rolling the `Enospc` fault site so a
/// full disk surfaces as a typed error with nothing half-written kept as
/// a complete capture (the manifest is written last).
fn write_bundle_file(dir: &Path, name: &str, bytes: &[u8]) -> Result<(), BackupError> {
    if let Some(IoFault::NoSpace) = inject_io(FaultSite::Enospc, bytes.len()) {
        return Err(BackupError::NoSpace(format!("writing {name} into the bundle")));
    }
    std::fs::write(dir.join(name), bytes)?;
    nebula_obs::counter_add(counters::BUNDLE_BYTES, bytes.len() as u64);
    Ok(())
}

/// Capture a verified bundle from a live archive directory.
///
/// Every archive file is structurally decoded **before** it is copied —
/// a torn or rotten archive file fails the capture with
/// [`BackupError::Corrupt`] (run [`crate::scrub`] to find them all)
/// rather than poisoning the bundle. The signed manifest is written
/// last, so an interrupted capture is detectable: no manifest, no
/// bundle.
pub fn create_bundle(spec: &BundleSpec) -> Result<BackupManifest, BackupError> {
    let bases = list_bases(&spec.archive_dir)?;
    let segments = list_segments(&spec.archive_dir)?;
    if bases.is_empty() {
        return Err(BackupError::NotRestorable(format!(
            "archive {} holds no base checkpoint; enable archiving and checkpoint first",
            spec.archive_dir.display()
        )));
    }
    std::fs::create_dir_all(&spec.bundle_dir)?;

    let mut entries = Vec::new();
    let mut epoch = 0u64;
    let mut head_lsn = bases.last().map(|(w, _)| *w).unwrap_or(0);
    let oldest_lsn = bases.first().map(|(w, _)| *w).unwrap_or(0);

    for (watermark, path) in &bases {
        let bytes = std::fs::read(path)?;
        let frame = decode_checkpoint_frame(&bytes).map_err(|e| {
            BackupError::Corrupt(format!("archived base {} is unreadable: {e}", path.display()))
        })?;
        let (image_watermark, _, _) = checkpoint::decode(&frame.image)
            .map_err(|e| BackupError::Corrupt(format!("base {}: {e}", path.display())))?;
        if image_watermark != *watermark {
            return Err(BackupError::Corrupt(format!(
                "base {} carries watermark {image_watermark}",
                path.display()
            )));
        }
        epoch = epoch.max(frame.epoch);
        entries.push(copy_in(&spec.bundle_dir, path, &bytes)?);
    }
    for (base_lsn, path) in &segments {
        let bytes = std::fs::read(path)?;
        let seg = decode_segment(&bytes).map_err(|e| {
            BackupError::Corrupt(format!("archived segment {} is unreadable: {e}", path.display()))
        })?;
        if seg.base_lsn != *base_lsn {
            return Err(BackupError::Corrupt(format!(
                "segment {} carries base lsn {}",
                path.display(),
                seg.base_lsn
            )));
        }
        epoch = epoch.max(seg.epoch);
        head_lsn = head_lsn.max(base_lsn + seg.records.len().saturating_sub(1) as u64);
        entries.push(copy_in(&spec.bundle_dir, path, &bytes)?);
    }
    if let Some(pages) = &spec.pages {
        let bytes = std::fs::read(pages)?;
        write_bundle_file(&spec.bundle_dir, "pages.neb", &bytes)?;
        entries.push(ManifestEntry {
            name: "pages.neb".into(),
            len: bytes.len() as u64,
            crc: crc32c(&bytes),
        });
    }

    entries.sort_by(|a, b| a.name.cmp(&b.name));
    let m = BackupManifest { head_lsn, oldest_lsn, epoch, created_seq: spec.created_seq, entries };
    write_bundle_file(&spec.bundle_dir, MANIFEST_FILE, &manifest::encode(&m))?;
    nebula_obs::counter_add(counters::BUNDLES_CREATED, 1);
    Ok(m)
}

fn copy_in(bundle_dir: &Path, src: &Path, bytes: &[u8]) -> Result<ManifestEntry, BackupError> {
    let name = src
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| BackupError::Io(format!("unnameable archive file {}", src.display())))?
        .to_string();
    write_bundle_file(bundle_dir, &name, bytes)?;
    Ok(ManifestEntry { name, len: bytes.len() as u64, crc: crc32c(bytes) })
}

/// Verify a bundle against its signed manifest: every listed file must
/// exist with the exact length and CRC32C digest the manifest recorded.
pub fn verify_bundle(dir: &Path) -> Result<VerifyReport, BackupError> {
    let result = verify_inner(dir);
    if result.is_err() {
        nebula_obs::counter_add(counters::VERIFY_FAILURES, 1);
    }
    result
}

fn verify_inner(dir: &Path) -> Result<VerifyReport, BackupError> {
    let manifest_path = dir.join(MANIFEST_FILE);
    let bytes = std::fs::read(&manifest_path).map_err(|e| {
        BackupError::Verify(format!("cannot read {}: {e}", manifest_path.display()))
    })?;
    let m = manifest::decode(&bytes)?;
    let mut bytes_verified = 0u64;
    for entry in &m.entries {
        let path = dir.join(&entry.name);
        let data = std::fs::read(&path)
            .map_err(|e| BackupError::Verify(format!("manifest lists {} but: {e}", entry.name)))?;
        if data.len() as u64 != entry.len {
            return Err(BackupError::Verify(format!(
                "{} is {} bytes, manifest says {}",
                entry.name,
                data.len(),
                entry.len
            )));
        }
        if crc32c(&data) != entry.crc {
            return Err(BackupError::Verify(format!("{} fails its digest", entry.name)));
        }
        bytes_verified += entry.len;
    }
    Ok(VerifyReport { manifest: m.clone(), files_verified: m.entries.len(), bytes_verified })
}

/// Rebuild state from a bundle, to `as_of` (an LSN) or, when `None`, the
/// bundle's head.
///
/// Verification runs first — a bundle that fails its manifest never
/// reaches the engine. Then the newest base at or below the target loads
/// and segments replay through [`replay_op`], skipping records the base
/// already covers and stopping exactly at the target. A gap in the
/// archived history or a target outside `[oldest_lsn, head_lsn]` is
/// [`BackupError::NotRestorable`].
pub fn restore(dir: &Path, as_of: Option<u64>) -> Result<Restored, BackupError> {
    let _span = nebula_obs::span(counters::SPAN_RESTORE);
    let report = verify_bundle(dir)?;
    let m = &report.manifest;
    let target = as_of.unwrap_or(m.head_lsn);
    if target > m.head_lsn || target < m.oldest_lsn {
        return Err(BackupError::NotRestorable(format!(
            "lsn {target} is outside the bundle's range [{}, {}]",
            m.oldest_lsn, m.head_lsn
        )));
    }

    // Newest base at or below the target.
    let bases = list_bases(dir)?;
    let (base_watermark, base_path) =
        bases.iter().rfind(|(w, _)| *w <= target).cloned().ok_or_else(|| {
            BackupError::NotRestorable(format!("no base checkpoint at or below lsn {target}"))
        })?;
    let base_bytes = std::fs::read(&base_path)?;
    let frame = decode_checkpoint_frame(&base_bytes)
        .map_err(|e| BackupError::Corrupt(format!("base {}: {e}", base_path.display())))?;
    let (watermark, mut db, mut store) = checkpoint::decode(&frame.image)
        .map_err(|e| BackupError::Corrupt(format!("base {}: {e}", base_path.display())))?;
    if watermark != base_watermark {
        return Err(BackupError::Corrupt(format!(
            "base {} carries watermark {watermark}",
            base_path.display()
        )));
    }

    let mut applied = watermark;
    let mut replayed = 0usize;
    let mut skipped = 0usize;
    'segments: for (_, path) in list_segments(dir)? {
        let seg = decode_segment(&std::fs::read(&path)?)
            .map_err(|e| BackupError::Corrupt(format!("segment {}: {e}", path.display())))?;
        for rec in &seg.records {
            if rec.lsn <= applied {
                skipped += 1;
                continue;
            }
            if rec.lsn > target {
                break 'segments;
            }
            if rec.lsn != applied + 1 {
                return Err(BackupError::NotRestorable(format!(
                    "archived history jumps from lsn {applied} to {}; a segment is missing",
                    rec.lsn
                )));
            }
            replay_op(&mut db, &mut store, &rec.op)
                .map_err(|e| BackupError::Corrupt(format!("replaying lsn {}: {e}", rec.lsn)))?;
            applied = rec.lsn;
            replayed += 1;
        }
    }
    if applied != target {
        return Err(BackupError::NotRestorable(format!(
            "archived history ends at lsn {applied}, short of the requested {target}"
        )));
    }
    nebula_obs::counter_add(counters::RESTORES, 1);
    nebula_obs::counter_add(counters::RESTORE_RECORDS_REPLAYED, replayed as u64);
    Ok(Restored { db, store, applied, base_watermark, epoch: m.epoch, replayed, skipped })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nebula_durable::state_digest;
    use nebula_durable::{Durability, DurabilityOptions, WalOp};
    use relstore::{DataType, TableSchema, Value};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nebula-bundle-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Build an archive with `checkpoints` checkpoints, `per` records
    /// between each, and return (live db, live store, archive dir, root).
    fn seeded_archive(
        tag: &str,
        checkpoints: usize,
        per: u64,
    ) -> (Database, AnnotationStore, PathBuf, PathBuf) {
        let root = temp_dir(tag);
        let data = root.join("data");
        let archive = root.join("archive");
        let mut db = Database::new();
        let mut store = AnnotationStore::new();
        db.create_table(TableSchema::builder("t").column("v", DataType::Int).build().unwrap())
            .unwrap();
        let mut d = Durability::begin(&data, &db, &store, DurabilityOptions::default()).unwrap();
        d.set_archive(&archive, 1).unwrap();
        let mut n = 0u64;
        for _ in 0..checkpoints {
            for _ in 0..per {
                let id = annostore::AnnotationId(store.annotation_count() as u64);
                let op = WalOp::AddAnnotation {
                    expected: id,
                    text: format!("note {n}"),
                    author: Some("op".into()),
                    kind: None,
                };
                d.append(&op).unwrap();
                replay_op(&mut db, &mut store, &op).unwrap();
                db.insert("t", vec![Value::Int(n as i64)]).unwrap();
                n += 1;
            }
            d.checkpoint(&db, &store).unwrap();
        }
        (db, store, archive, root)
    }

    #[test]
    fn a_bundle_restores_byte_identical_state() {
        let (db, store, archive, root) = seeded_archive("identical", 3, 4);
        let bundle = root.join("bundle");
        let m = create_bundle(&BundleSpec {
            archive_dir: archive,
            bundle_dir: bundle.clone(),
            pages: None,
            created_seq: 1,
        })
        .unwrap();
        assert_eq!(m.head_lsn, 12);
        assert_eq!(m.oldest_lsn, 0);
        let report = verify_bundle(&bundle).unwrap();
        assert_eq!(report.files_verified, m.entries.len());
        let r = restore(&bundle, None).unwrap();
        assert_eq!(r.applied, 12);
        assert_eq!(state_digest(&r.db, &r.store), state_digest(&db, &store));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn as_of_lsn_restores_to_any_boundary_in_range() {
        let (_, _, archive, root) = seeded_archive("asof", 2, 5);
        let bundle = root.join("bundle");
        create_bundle(&BundleSpec {
            archive_dir: archive,
            bundle_dir: bundle.clone(),
            pages: None,
            created_seq: 1,
        })
        .unwrap();
        for lsn in 0..=10u64 {
            let r = restore(&bundle, Some(lsn)).unwrap();
            assert_eq!(r.applied, lsn);
            assert_eq!(r.store.annotation_count() as u64, lsn);
        }
        assert!(matches!(restore(&bundle, Some(11)), Err(BackupError::NotRestorable(_))));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn a_tampered_bundle_is_refused_before_restore() {
        let (_, _, archive, root) = seeded_archive("tamper", 2, 3);
        let bundle = root.join("bundle");
        create_bundle(&BundleSpec {
            archive_dir: archive,
            bundle_dir: bundle.clone(),
            pages: None,
            created_seq: 1,
        })
        .unwrap();
        // Flip one bit in one segment: verify and restore both refuse.
        let seg = list_segments(&bundle).unwrap().pop().unwrap().1;
        let mut bytes = std::fs::read(&seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&seg, &bytes).unwrap();
        assert!(matches!(verify_bundle(&bundle), Err(BackupError::Verify(_))));
        assert!(matches!(restore(&bundle, None), Err(BackupError::Verify(_))));
        // A missing file is refused too.
        bytes[mid] ^= 0x10;
        std::fs::write(&seg, &bytes).unwrap();
        verify_bundle(&bundle).unwrap();
        std::fs::remove_file(&seg).unwrap();
        assert!(matches!(verify_bundle(&bundle), Err(BackupError::Verify(_))));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn a_gap_in_the_archived_history_is_not_restorable() {
        let (_, _, archive, root) = seeded_archive("gap", 3, 3);
        let bundle = root.join("bundle");
        create_bundle(&BundleSpec {
            archive_dir: archive,
            bundle_dir: bundle.clone(),
            pages: None,
            created_seq: 1,
        })
        .unwrap();
        // Drop the middle segment (lsns 4..=6) and rewrite the manifest
        // honestly — the gap itself must be detected, not just the digest.
        let victim = bundle.join(nebula_durable::archive::segment_file_name(4));
        std::fs::remove_file(&victim).unwrap();
        let mut m = manifest::decode(&std::fs::read(bundle.join(MANIFEST_FILE)).unwrap()).unwrap();
        m.entries.retain(|e| !e.name.contains("00000000000000000004.seg"));
        std::fs::write(bundle.join(MANIFEST_FILE), manifest::encode(&m)).unwrap();
        // Restores at or below the newest base before the gap still work…
        assert_eq!(restore(&bundle, Some(3)).unwrap().applied, 3);
        // …because base-6 covers lsn 6, so do restores ≥ 6…
        assert_eq!(restore(&bundle, Some(7)).unwrap().applied, 7);
        // …but lsn 4 and 5 fell into the hole.
        for lsn in [4u64, 5] {
            assert!(
                matches!(restore(&bundle, Some(lsn)), Err(BackupError::NotRestorable(_))),
                "lsn {lsn} restored across a gap"
            );
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn enospc_during_capture_is_typed_and_leaves_no_manifest() {
        let (_, _, archive, root) = seeded_archive("enospc", 1, 2);
        let bundle = root.join("bundle");
        nebula_govern::set_fault_plan(Some(nebula_govern::FaultPlan::new(9).with_enospc(1.0)));
        let err = create_bundle(&BundleSpec {
            archive_dir: archive.clone(),
            bundle_dir: bundle.clone(),
            pages: None,
            created_seq: 1,
        })
        .unwrap_err();
        nebula_govern::set_fault_plan(None);
        assert!(matches!(err, BackupError::NoSpace(_)), "{err}");
        assert!(!bundle.join(MANIFEST_FILE).exists(), "a torn capture must not look complete");
        assert!(matches!(verify_bundle(&bundle), Err(BackupError::Verify(_))));
        // With space back, the capture succeeds into the same directory.
        create_bundle(&BundleSpec {
            archive_dir: archive,
            bundle_dir: bundle.clone(),
            pages: None,
            created_seq: 2,
        })
        .unwrap();
        verify_bundle(&bundle).unwrap();
        let _ = std::fs::remove_dir_all(&root);
    }
}

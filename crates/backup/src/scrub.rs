//! Backup-side scrubbing: find torn and rotten archive files *before* a
//! restore needs them.
//!
//! An archive that sits on disk for months is exposed to the same decay
//! the page store defends against: torn writes that crashed mid-flight
//! and silent bit rot. The scrubber structurally decodes every base and
//! segment (the same validation a restore performs) and, when a signed
//! manifest is present, re-derives every digest against it. It reports
//! instead of erroring — operators want the full damage list, not the
//! first casualty — and it never repairs in place: a corrupt archive
//! file is a fact for the retention policy and the operator, not
//! something to quietly rewrite.
//!
//! [`inject_rot`] is the chaos half: it rolls the `ArchiveRot` fault
//! site per file and flips one bit on disk where the draw says, which is
//! how the acceptance test proves 100% detection with zero false
//! positives.

use crate::{counters, BackupError};
use nebula_durable::archive::{list_bases, list_segments};
use nebula_durable::checkpoint;
use nebula_durable::crc32c::crc32c;
use nebula_durable::segment::{decode_checkpoint_frame, decode_segment};
use nebula_govern::{inject_io, FaultSite, IoFault};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// One corrupt file the scrubber found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptFile {
    /// Path of the damaged file.
    pub path: PathBuf,
    /// Why it failed validation.
    pub reason: String,
}

/// What a scrub pass found.
#[derive(Debug, Clone, Default)]
pub struct BackupScrubReport {
    /// Base checkpoints validated clean.
    pub bases_ok: usize,
    /// Segments validated clean.
    pub segments_ok: usize,
    /// Files that failed structural validation or their manifest digest.
    pub corrupt: Vec<CorruptFile>,
    /// Whether a manifest was present and its digests were checked too.
    pub manifest_checked: bool,
    /// Bytes read and hashed.
    pub bytes_scrubbed: u64,
}

impl BackupScrubReport {
    /// True when every file validated clean.
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty()
    }
}

/// Scrub an archive or bundle directory.
///
/// Every base and segment is structurally decoded; when `MANIFEST.neb`
/// is present (a bundle), every listed file is additionally checked
/// against its signed length and digest, so a flipped bit that happens
/// to keep a frame decodable is still caught. Corruption is *reported*,
/// never silently skipped and never repaired.
pub fn scrub(dir: &Path) -> Result<BackupScrubReport, BackupError> {
    let mut report = BackupScrubReport::default();
    for (watermark, path) in list_bases(dir)? {
        match check_base(watermark, &path, &mut report.bytes_scrubbed) {
            Ok(()) => report.bases_ok += 1,
            Err(reason) => report.corrupt.push(CorruptFile { path, reason }),
        }
    }
    for (base_lsn, path) in list_segments(dir)? {
        match check_segment(base_lsn, &path, &mut report.bytes_scrubbed) {
            Ok(()) => report.segments_ok += 1,
            Err(reason) => report.corrupt.push(CorruptFile { path, reason }),
        }
    }
    let manifest_path = dir.join(crate::manifest::MANIFEST_FILE);
    if manifest_path.exists() {
        report.manifest_checked = true;
        match check_manifest(dir, &manifest_path, &mut report.bytes_scrubbed) {
            Ok(extra) => {
                for c in extra {
                    if !report.corrupt.iter().any(|k| k.path == c.path) {
                        report.corrupt.push(c);
                    }
                }
            }
            Err(reason) => report.corrupt.push(CorruptFile { path: manifest_path, reason }),
        }
    }
    nebula_obs::counter_add(counters::SCRUBS, 1);
    nebula_obs::counter_add(counters::ROT_DETECTED, report.corrupt.len() as u64);
    Ok(report)
}

fn check_base(watermark: u64, path: &Path, bytes: &mut u64) -> Result<(), String> {
    let data = std::fs::read(path).map_err(|e| e.to_string())?;
    *bytes += data.len() as u64;
    let frame = decode_checkpoint_frame(&data).map_err(|e| e.to_string())?;
    let (image_watermark, _, _) = checkpoint::decode(&frame.image).map_err(|e| e.to_string())?;
    if image_watermark != watermark {
        return Err(format!("image watermark {image_watermark} contradicts the file name"));
    }
    Ok(())
}

fn check_segment(base_lsn: u64, path: &Path, bytes: &mut u64) -> Result<(), String> {
    let data = std::fs::read(path).map_err(|e| e.to_string())?;
    *bytes += data.len() as u64;
    let seg = decode_segment(&data).map_err(|e| e.to_string())?;
    if seg.base_lsn != base_lsn {
        return Err(format!("frame base lsn {} contradicts the file name", seg.base_lsn));
    }
    Ok(())
}

fn check_manifest(
    dir: &Path,
    manifest_path: &Path,
    bytes: &mut u64,
) -> Result<Vec<CorruptFile>, String> {
    let data = std::fs::read(manifest_path).map_err(|e| e.to_string())?;
    *bytes += data.len() as u64;
    let m = crate::manifest::decode(&data).map_err(|e| e.to_string())?;
    let mut corrupt = Vec::new();
    for entry in &m.entries {
        let path = dir.join(&entry.name);
        let reason = match std::fs::read(&path) {
            Err(e) => Some(format!("manifest lists it but: {e}")),
            Ok(d) if d.len() as u64 != entry.len => {
                Some(format!("{} bytes on disk, manifest says {}", d.len(), entry.len))
            }
            Ok(d) if crc32c(&d) != entry.crc => Some("fails its manifest digest".into()),
            Ok(_) => None,
        };
        if let Some(reason) = reason {
            corrupt.push(CorruptFile { path, reason });
        }
    }
    Ok(corrupt)
}

/// Chaos hook: roll the `ArchiveRot` fault site once per archive file
/// and flip the drawn bit on disk where it fires. Returns the paths that
/// were damaged — the test harness's ground truth for proving the
/// scrubber finds exactly the rot that was injected.
pub fn inject_rot(dir: &Path) -> Result<Vec<PathBuf>, BackupError> {
    let mut rotted = Vec::new();
    let mut files: Vec<PathBuf> =
        list_bases(dir)?.into_iter().chain(list_segments(dir)?).map(|(_, p)| p).collect();
    files.sort();
    for path in files {
        let len = std::fs::metadata(&path)?.len() as usize;
        if let Some(IoFault::BitFlip { bit }) = inject_io(FaultSite::ArchiveRot, len) {
            flip_bit(&path, bit)?;
            nebula_obs::counter_add(counters::ROT_INJECTED, 1);
            rotted.push(path);
        }
    }
    Ok(rotted)
}

fn flip_bit(path: &Path, bit: usize) -> Result<(), BackupError> {
    let mut f = std::fs::OpenOptions::new().read(true).write(true).open(path)?;
    let offset = (bit / 8) as u64;
    let mut byte = [0u8; 1];
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(&mut byte)?;
    byte[0] ^= 1 << (bit % 8);
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(&byte)?;
    f.sync_data()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use annostore::AnnotationId;
    use nebula_durable::archive::{archive_base, archive_segment};
    use nebula_durable::wal::{encode_record, WalOp};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nebula-bscrub-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fill(dir: &Path, segments: u64, per: u64) {
        let db = relstore::Database::new();
        let store = annostore::AnnotationStore::new();
        archive_base(dir, 1, 0, &checkpoint::encode(0, &db, &store)).unwrap();
        for s in 0..segments {
            let base = 1 + s * per;
            let mut recs = Vec::new();
            for i in 0..per {
                let lsn = base + i;
                let op = WalOp::AddAnnotation {
                    expected: AnnotationId(lsn - 1),
                    text: format!("note {lsn}"),
                    author: None,
                    kind: None,
                };
                recs.extend_from_slice(&encode_record(lsn, &op));
            }
            archive_segment(dir, 1, base, &recs).unwrap();
        }
    }

    #[test]
    fn a_clean_archive_scrubs_clean() {
        let dir = temp_dir("clean");
        fill(&dir, 3, 4);
        let report = scrub(&dir).unwrap();
        assert!(report.is_clean(), "{:?}", report.corrupt);
        assert_eq!(report.bases_ok, 1);
        assert_eq!(report.segments_ok, 3);
        assert!(!report.manifest_checked);
        assert!(report.bytes_scrubbed > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_rot_is_detected_exactly() {
        let dir = temp_dir("rot");
        fill(&dir, 4, 3);
        // Rate 0.5: some files rot, some stay clean — the scrubber must
        // flag exactly the rotted set (100% detection, no false positives).
        nebula_govern::set_fault_plan(Some(
            nebula_govern::FaultPlan::new(21).with_archive_faults(0.0, 0.5, 0.0),
        ));
        let rotted = inject_rot(&dir).unwrap();
        nebula_govern::set_fault_plan(None);
        assert!(!rotted.is_empty(), "seed 21 must rot at least one file");
        assert!(rotted.len() < 5, "seed 21 must leave at least one file clean");
        let report = scrub(&dir).unwrap();
        let mut flagged: Vec<_> = report.corrupt.iter().map(|c| c.path.clone()).collect();
        flagged.sort();
        assert_eq!(flagged, rotted);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rot_in_a_bundle_is_caught_even_when_the_frame_still_decodes() {
        // A corrupt *name* cross-check: tamper by swapping two record
        // frames would keep CRCs... simplest decodable-but-wrong case is
        // a renamed file; the manifest digest pass must also catch pure
        // content substitution between structurally valid files.
        let dir = temp_dir("bundle-rot");
        fill(&dir, 2, 2);
        let bundle = temp_dir("bundle-rot-out");
        crate::bundle::create_bundle(&crate::bundle::BundleSpec {
            archive_dir: dir.clone(),
            bundle_dir: bundle.clone(),
            pages: None,
            created_seq: 1,
        })
        .unwrap();
        assert!(scrub(&bundle).unwrap().is_clean());
        // Substitute one structurally valid segment for another under the
        // wrong name: structural decode flags the name mismatch, and the
        // manifest digest pass flags it independently.
        let a = bundle.join(nebula_durable::archive::segment_file_name(1));
        let b = bundle.join(nebula_durable::archive::segment_file_name(3));
        std::fs::copy(&a, &b).unwrap();
        let report = scrub(&bundle).unwrap();
        assert!(report.manifest_checked);
        assert_eq!(report.corrupt.len(), 1);
        assert_eq!(report.corrupt[0].path, b);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&bundle);
    }

    #[test]
    fn a_truncated_base_is_reported_not_erred() {
        let dir = temp_dir("torn-base");
        fill(&dir, 1, 2);
        let base = dir.join(nebula_durable::archive::base_file_name(0));
        let bytes = std::fs::read(&base).unwrap();
        std::fs::write(&base, &bytes[..bytes.len() / 2]).unwrap();
        let report = scrub(&dir).unwrap();
        assert_eq!(report.corrupt.len(), 1);
        assert_eq!(report.bases_ok, 0);
        assert_eq!(report.segments_ok, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Archive retention: GC that can never eat a restorable point.
//!
//! The invariant is stated from the restore side, not the delete side:
//! after a GC that keeps `k` bases, every LSN from the oldest *kept*
//! base's watermark to the archive head is still restorable. That means:
//!
//! - only bases older than the `k` newest may go;
//! - a segment may go only when **every** record it holds is at or below
//!   the oldest kept base's watermark (the base supersedes it entirely);
//! - a segment that cannot be decoded is **kept** — its coverage is
//!   unknown, and deleting unknowns is how backup systems eat data. The
//!   scrubber reports it; the operator decides.

use crate::{counters, BackupError};
use nebula_durable::archive::{list_bases, list_segments};
use nebula_durable::segment::decode_segment;
use std::path::Path;

/// What a GC pass removed and what remains restorable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcReport {
    /// Base checkpoints removed.
    pub removed_bases: usize,
    /// Sealed segments removed (fully superseded by a kept base).
    pub removed_segments: usize,
    /// Bytes reclaimed.
    pub bytes_reclaimed: u64,
    /// The oldest LSN still restorable after the pass.
    pub oldest_restorable_lsn: u64,
    /// Undecodable segments conservatively kept for the scrubber.
    pub kept_undecodable: usize,
}

/// Remove archive files made redundant by newer bases, keeping the
/// newest `keep_bases` bases (at least one is always kept).
pub fn gc(dir: &Path, keep_bases: usize) -> Result<GcReport, BackupError> {
    let bases = list_bases(dir)?;
    let mut report = GcReport::default();
    if bases.is_empty() {
        return Ok(report);
    }
    let keep = keep_bases.max(1).min(bases.len());
    let cut = bases.len() - keep;
    let oldest_kept = bases[cut].0;
    report.oldest_restorable_lsn = oldest_kept;

    for (_, path) in &bases[..cut] {
        report.bytes_reclaimed += std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        std::fs::remove_file(path)?;
        report.removed_bases += 1;
    }
    for (base_lsn, path) in list_segments(dir)? {
        let bytes = std::fs::read(&path)?;
        let last_lsn = match decode_segment(&bytes) {
            Ok(seg) => base_lsn + seg.records.len().saturating_sub(1) as u64,
            Err(_) => {
                // Unknown coverage: keep it. Deleting what we cannot read
                // is how the oldest restorable point silently moves past
                // data someone still needs.
                report.kept_undecodable += 1;
                continue;
            }
        };
        if last_lsn <= oldest_kept {
            report.bytes_reclaimed += bytes.len() as u64;
            std::fs::remove_file(&path)?;
            report.removed_segments += 1;
        }
    }
    nebula_obs::counter_add(
        counters::GC_REMOVED,
        (report.removed_bases + report.removed_segments) as u64,
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use annostore::AnnotationId;
    use nebula_durable::archive::{
        archive_base, archive_segment, archive_stats, segment_file_name,
    };
    use nebula_durable::checkpoint;
    use nebula_durable::wal::{encode_record, WalOp};
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nebula-gc-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn records(first_lsn: u64, n: u64) -> Vec<u8> {
        let mut out = Vec::new();
        for i in 0..n {
            let lsn = first_lsn + i;
            let op = WalOp::AddAnnotation {
                expected: AnnotationId(lsn - 1),
                text: format!("note {lsn}"),
                author: None,
                kind: None,
            };
            out.extend_from_slice(&encode_record(lsn, &op));
        }
        out
    }

    /// Bases at 0/3/6/9 (each encoding the state at its watermark),
    /// segments covering 1-3, 4-6, 7-9.
    fn fill(dir: &Path) {
        let mut db = relstore::Database::new();
        let mut store = annostore::AnnotationStore::new();
        archive_base(dir, 1, 0, &checkpoint::encode(0, &db, &store)).unwrap();
        for base in [1u64, 4, 7] {
            let recs = records(base, 3);
            archive_segment(dir, 1, base, &recs).unwrap();
            let seg =
                decode_segment(&std::fs::read(dir.join(segment_file_name(base))).unwrap()).unwrap();
            for rec in &seg.records {
                nebula_durable::replay_op(&mut db, &mut store, &rec.op).unwrap();
            }
            let w = base + 2;
            archive_base(dir, 1, w, &checkpoint::encode(w, &db, &store)).unwrap();
        }
    }

    #[test]
    fn gc_keeps_everything_a_kept_base_does_not_supersede() {
        let dir = temp_dir("invariant");
        fill(&dir);
        let report = gc(&dir, 2).unwrap();
        // Kept bases: 6 and 9. Segments 1-3 and 4-6 are fully ≤ 6; 7-9 is not.
        assert_eq!(report.removed_bases, 2);
        assert_eq!(report.removed_segments, 2);
        assert_eq!(report.oldest_restorable_lsn, 6);
        assert!(report.bytes_reclaimed > 0);
        let stats = archive_stats(&dir).unwrap();
        assert_eq!(stats.oldest_restorable_lsn, 6);
        assert_eq!(stats.newest_lsn, 9);
        // Every LSN from 6 to 9 must still restore from what remains.
        let bundle = temp_dir("invariant-bundle");
        crate::bundle::create_bundle(&crate::bundle::BundleSpec {
            archive_dir: dir.clone(),
            bundle_dir: bundle.clone(),
            pages: None,
            created_seq: 1,
        })
        .unwrap();
        for lsn in 6..=9u64 {
            assert_eq!(crate::bundle::restore(&bundle, Some(lsn)).unwrap().applied, lsn);
        }
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&bundle);
    }

    #[test]
    fn gc_always_keeps_at_least_one_base() {
        let dir = temp_dir("floor");
        fill(&dir);
        let report = gc(&dir, 0).unwrap();
        assert_eq!(report.removed_bases, 3);
        assert_eq!(report.oldest_restorable_lsn, 9);
        assert_eq!(archive_stats(&dir).unwrap().bases, 1);
        // Idempotent: a second pass finds nothing to do.
        assert_eq!(gc(&dir, 0).unwrap().removed_bases, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn an_undecodable_segment_is_never_deleted() {
        let dir = temp_dir("undecodable");
        fill(&dir);
        // Tear the oldest segment — fully superseded by kept base 9, but
        // its coverage can no longer be proven.
        let victim = dir.join(segment_file_name(1));
        let bytes = std::fs::read(&victim).unwrap();
        std::fs::write(&victim, &bytes[..bytes.len() / 3]).unwrap();
        let report = gc(&dir, 1).unwrap();
        assert_eq!(report.kept_undecodable, 1);
        assert_eq!(report.removed_segments, 2, "only the provably superseded segments go");
        assert!(victim.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn an_empty_archive_is_a_no_op() {
        let dir = temp_dir("empty");
        assert_eq!(gc(&dir, 3).unwrap(), GcReport::default());
    }
}

//! The *passive* annotation-management layer on its own: attachments at
//! row and cell granularity, query-time propagation through projections,
//! and curator predicates that auto-attach annotations to qualifying new
//! tuples ([18, 25]-style structured automation — the part that existed
//! before Nebula).
//!
//! ```text
//! cargo run --example annotated_queries
//! ```

use nebula::annostore::{
    propagate, Annotation, AnnotationStore, AttachmentTarget, CuratorPredicate, CuratorRegistry,
};
use nebula::relstore::{ConjunctiveQuery, DataType, Database, Predicate, TableSchema, Value};

fn main() {
    let mut db = Database::new();
    db.create_table(
        TableSchema::builder("gene")
            .column("gid", DataType::Text)
            .column("name", DataType::Text)
            .indexed_column("family", DataType::Text)
            .primary_key("gid")
            .build()
            .expect("valid schema"),
    )
    .expect("fresh db");
    let gene = db.catalog().resolve("gene").expect("created");
    let schema = db.table(gene).expect("exists").schema().clone();
    let name_col = schema.column_id("name").expect("exists");
    let family_col = schema.column_id("family").expect("exists");

    let mut store = AnnotationStore::new();

    // Row-level and cell-level attachments.
    let g1 = db
        .insert("gene", vec![Value::text("JW0013"), Value::text("grpC"), Value::text("F1")])
        .expect("unique");
    let row_note = store.add_annotation(Annotation::new("heat-shock candidate").by("Bob"));
    store.attach(row_note, AttachmentTarget::tuple(g1)).expect("live tuple");
    let cell_note =
        store.add_annotation(Annotation::new("name disputed in literature").by("Alice"));
    store.attach(cell_note, AttachmentTarget::cell(g1, name_col)).expect("live tuple");

    // Curator predicate: every gene in family F1 gets the Rounded Flag
    // automatically (the Figure 1 "Rounded Flag" correlation, expressed
    // as a structured rule).
    let flag = store.add_annotation(Annotation::new("Rounded Flag").of_kind("flag"));
    let mut curators = CuratorRegistry::new();
    curators.add_rule(CuratorPredicate {
        annotation: flag,
        query: ConjunctiveQuery::scan(gene)
            .with_predicate(Predicate::Eq(family_col, Value::text("F1"))),
    });
    // Retroactively flag the existing row, then watch new inserts.
    curators.on_insert(&db, &mut store, g1).expect("rule applies");
    for (gid, name, fam) in [("JW0014", "groP", "F6"), ("JW0012", "yaaI", "F1")] {
        let t = db
            .insert("gene", vec![Value::text(gid), Value::text(name), Value::text(fam)])
            .expect("unique");
        let attached = curators.on_insert(&db, &mut store, t).expect("rules apply");
        println!("inserted {gid} ({fam}): {} curator annotation(s) auto-attached", attached.len());
    }

    // Query-time propagation: SELECT gid, family FROM gene WHERE family='F1'
    // — annotations ride along; the cell-level note on `name` is dropped
    // because the projection removed its column.
    let query =
        ConjunctiveQuery::scan(gene).with_predicate(Predicate::Eq(family_col, Value::text("F1")));
    let result = query.execute(&db).expect("valid query");
    let projection = [schema.column_id("gid").expect("exists"), family_col];
    println!("\nSELECT gid, family FROM gene WHERE family = 'F1':");
    for answer in propagate(&store, &result.tuples, Some(&projection)) {
        let tuple = db.get(answer.tuple).expect("live tuple");
        let notes: Vec<String> = answer
            .annotations
            .iter()
            .map(|a| store.annotation(*a).expect("stored").text.clone())
            .collect();
        println!(
            "  {} | {}  <- [{}]",
            tuple.get_by_name("gid").expect("col"),
            tuple.get_by_name("family").expect("col"),
            notes.join(", ")
        );
    }

    // SELECT * keeps the cell-level note.
    println!("\nSELECT * FROM gene WHERE family = 'F1':");
    for answer in propagate(&store, &result.tuples, None) {
        println!("  {} annotations on {}", answer.annotations.len(), answer.tuple);
    }
}

//! The paper's Figure 1 scenario, end to end.
//!
//! Two scientists annotate a genes database:
//!
//! - **Bob** attaches a scientific article to his gene-under-investigation
//!   `JW0013`. The article also references genes `yaaB` and `yaaI` and the
//!   protein `G-Actin` — links Bob never created.
//! - **Alice** attaches a quick comment to her gene of interest `JW0019`.
//!   The comment mentions `JW0014` and `grpC`, which Alice does not care
//!   to link.
//!
//! Without Nebula the database stays *under-annotated*; this example shows
//! the proactive engine recovering every missing attachment.
//!
//! ```text
//! cargo run --example biocuration
//! ```

use nebula::nebula_core::{ConceptRef, Pattern};
use nebula::prelude::*;

fn main() {
    // ---- The Figure 1 database -------------------------------------
    let mut db = Database::new();
    db.create_table(
        TableSchema::builder("gene")
            .column("gid", DataType::Text)
            .column("name", DataType::Text)
            .column("length", DataType::Int)
            .column("seq", DataType::Text)
            .column("family", DataType::Text)
            .primary_key("gid")
            .build()
            .expect("valid schema"),
    )
    .expect("fresh db");
    db.create_table(
        TableSchema::builder("protein")
            .column("pid", DataType::Text)
            .column("pname", DataType::Text)
            .column("ptype", DataType::Text)
            .primary_key("pid")
            .build()
            .expect("valid schema"),
    )
    .expect("fresh db");

    let genes = [
        ("JW0013", "grpC", 1130, "TGCT", "F1"),
        ("JW0014", "groP", 1916, "GGTT", "F6"),
        ("JW0015", "insL", 1112, "GGCT", "F1"),
        ("JW0018", "nhaA", 1166, "CGTT", "F1"),
        ("JW0019", "yaaB", 905, "TGTG", "F3"),
        ("JW0012", "yaaI", 404, "TTCG", "F1"),
        ("JW0027", "namE", 658, "GTTT", "F4"),
    ];
    let mut gene_ids = std::collections::HashMap::new();
    for (gid, name, len, seq, fam) in genes {
        let tid = db
            .insert(
                "gene",
                vec![
                    Value::text(gid),
                    Value::text(name),
                    Value::Int(len),
                    Value::text(seq),
                    Value::text(fam),
                ],
            )
            .expect("unique rows");
        gene_ids.insert(gid, tid);
    }
    let actin = db
        .insert(
            "protein",
            vec![Value::text("P0001"), Value::text("G-Actin"), Value::text("structural")],
        )
        .expect("unique row");

    // ---- NebulaMeta: the ConceptRefs table of Figure 3 --------------
    let mut meta = NebulaMeta::new();
    meta.add_concept(ConceptRef {
        concept: "Gene".into(),
        table: "gene".into(),
        referenced_by: vec![vec!["gid".into()], vec!["name".into()]],
    });
    meta.add_concept(ConceptRef {
        concept: "Protein".into(),
        table: "protein".into(),
        referenced_by: vec![vec!["pid".into()], vec!["pname".into(), "ptype".into()]],
    });
    meta.add_column_equivalent("id", "gene", "gid");
    meta.set_pattern("gene", "gid", Pattern::compile("JW[0-9]{4}").expect("valid pattern"));
    meta.set_pattern("gene", "name", Pattern::compile("[a-z]{3}[A-Z]").expect("valid pattern"));
    meta.set_sample("protein", "pname", ["G-Actin"]);
    meta.set_ontology("protein", "ptype", ["structural", "enzyme", "receptor"]);

    let mut store = AnnotationStore::new();
    let mut nebula = Nebula::new(
        NebulaConfig { bounds: VerificationBounds::new(0.3, 0.85), ..Default::default() },
        meta,
    );

    // ---- Bob attaches his article to JW0013 -------------------------
    let article = Annotation::new(
        "We characterize the heat-shock response cluster. The protein G-Actin \
         structural role is discussed alongside gene yaaB regulation, while \
         expression of gene yaaI remained constant across replicates.",
    )
    .by("Bob")
    .of_kind("article");
    let bob = nebula
        .process_annotation(&db, &mut store, &article, &[gene_ids["JW0013"]])
        .expect("processing succeeds");

    println!("Bob's article ({} queries generated):", bob.queries.len());
    report(&db, &bob);

    // ---- Alice attaches her comment to JW0019 -----------------------
    let comment = Annotation::new(
        "From the exp, it seems this gene is correlated to the expression \
         patterns of JW0014 and of grpC",
    )
    .by("Alice")
    .of_kind("comment");
    let alice = nebula
        .process_annotation(&db, &mut store, &comment, &[gene_ids["JW0019"]])
        .expect("processing succeeds");

    println!("\nAlice's comment ({} queries generated):", alice.queries.len());
    report(&db, &alice);

    // ---- Expert review of whatever landed in the pending band -------
    let pending: Vec<u64> = nebula.queue().iter().map(|t| t.vid).collect();
    for vid in pending {
        let task = nebula.queue().get(vid).expect("pending").clone();
        let verdict_tuple = db.get(task.tuple).expect("live tuple");
        println!(
            "\nexpert reviews task {vid}: {} (conf {:.2})",
            verdict_tuple.render(),
            task.confidence
        );
        nebula
            .execute_command(&mut store, &format!("Verify Attachment {vid};"))
            .expect("valid command");
    }

    // ---- Final state -------------------------------------------------
    println!("\nfinal attachments:");
    for (aid, ann) in store.iter_annotations() {
        let who = ann.author.as_deref().unwrap_or("?");
        let tuples = store.focal(aid);
        println!("  {who}'s {}: {} tuples", ann.kind.as_deref().unwrap_or("note"), tuples.len());
        for t in tuples {
            println!("    -> {}", db.get(t).expect("live tuple").render());
        }
    }
    // Bob's article should now reach yaaB, yaaI, and G-Actin; Alice's
    // comment should reach JW0014 and grpC.
    assert!(store.focal(bob.annotation).len() >= 3);
    assert!(store.focal(alice.annotation).len() >= 3);
    let _ = actin;
}

fn report(db: &Database, outcome: &nebula::nebula_core::ProcessOutcome) {
    for q in &outcome.queries {
        println!("  query {{{}}} w={:.2}", q.keywords.join(", "), q.weight);
    }
    for c in &outcome.candidates {
        println!(
            "  candidate conf={:.2}  {}",
            c.confidence,
            db.get(c.tuple).expect("live tuple").render()
        );
    }
    println!(
        "  -> {} accepted / {} pending / {} rejected",
        outcome.accepted.len(),
        outcome.pending.len(),
        outcome.rejected.len()
    );
}

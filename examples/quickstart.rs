//! Quickstart: build a small annotated biological database, insert a new
//! annotation, and let Nebula proactively discover its missing
//! attachments.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use nebula::prelude::*;

fn main() {
    // 1. Generate a small synthetic curated dataset (genes, proteins, and
    //    publications already attached to the tuples they cite).
    let spec = DatasetSpec::tiny();
    let mut bundle = generate_dataset(&spec, 42);
    println!(
        "dataset: {} genes, {} proteins, {} publications",
        bundle.gene_tuples.len(),
        bundle.protein_tuples.len(),
        bundle.publication_tuples.len()
    );

    // 2. Configure the engine. NebulaMeta came with the dataset (concepts,
    //    syntactic patterns, samples); the ACG is bootstrapped from the
    //    existing publication attachments.
    let config = NebulaConfig::default();
    let mut nebula = Nebula::new(config, bundle.meta.clone());
    nebula.bootstrap_acg(&bundle.annotations);
    println!("ACG: {} nodes, {} edges", nebula.acg().node_count(), nebula.acg().edge_count());

    // 3. A scientist attaches a comment to one gene. The comment also
    //    references two other database objects she did not link.
    let focal = vec![bundle.gene_tuples[5]];
    let annotation = Annotation::new(
        "From the exp, it seems this gene is strongly correlated to JW0001 \
         and possibly to yaaB under heat shock",
    )
    .by("Alice")
    .of_kind("comment");

    let outcome = nebula
        .process_annotation(&bundle.db, &mut bundle.annotations, &annotation, &focal)
        .expect("processing succeeds");

    // 4. Inspect what the engine did.
    println!("\ngenerated {} keyword queries:", outcome.queries.len());
    for q in &outcome.queries {
        println!(
            "  {{{}}}  weight={:.2}  (Type-{})",
            q.keywords.join(", "),
            q.weight,
            q.match_type
        );
    }
    println!("\ncandidates ({}):", outcome.candidates.len());
    for c in outcome.candidates.iter().take(5) {
        let tuple = bundle.db.get(c.tuple).expect("live tuple");
        println!("  conf={:.2}  {}", c.confidence, tuple.render());
    }
    println!(
        "\nrouting: {} auto-accepted, {} pending expert review, {} auto-rejected",
        outcome.accepted.len(),
        outcome.pending.len(),
        outcome.rejected.len()
    );

    // 5. An expert resolves any pending tasks with the extended SQL
    //    command.
    for vid in &outcome.pending {
        let task = nebula.queue().get(*vid).expect("pending task");
        println!(
            "  task {}: attach to {} (conf {:.2}, evidence: {})",
            vid,
            bundle.db.get(task.tuple).expect("live tuple").render(),
            task.confidence,
            task.evidence.join("; ")
        );
        nebula
            .execute_command(&mut bundle.annotations, &format!("Verify Attachment {vid};"))
            .expect("valid command");
    }
    println!(
        "\nannotation is now attached to {} tuples",
        bundle.annotations.focal(outcome.annotation).len()
    );
}

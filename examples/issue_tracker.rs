//! Nebula outside biology: a software issue tracker.
//!
//! The paper's techniques are domain-agnostic — all domain knowledge lives
//! in NebulaMeta. This example builds a tracker with commits, CVE records,
//! and tickets; engineers attach free-text comments to tickets, and those
//! comments reference commits (by short SHA) and vulnerabilities (by CVE
//! id) that Nebula links automatically.
//!
//! ```text
//! cargo run --example issue_tracker
//! ```

use nebula::nebula_core::{ConceptRef, Pattern, SessionReport, StabilityConfig};
use nebula::prelude::*;

fn main() {
    // ---- Schema ------------------------------------------------------
    let mut db = Database::new();
    db.create_table(
        TableSchema::builder("commits")
            .column("sha", DataType::Text)
            .column("message", DataType::Text)
            .column("author", DataType::Text)
            .primary_key("sha")
            .build()
            .expect("valid schema"),
    )
    .expect("fresh db");
    db.create_table(
        TableSchema::builder("vulns")
            .column("cve", DataType::Text)
            .column("severity", DataType::Text)
            .column("component", DataType::Text)
            .primary_key("cve")
            .build()
            .expect("valid schema"),
    )
    .expect("fresh db");
    db.create_table(
        TableSchema::builder("tickets")
            .column("key", DataType::Text)
            .column("title", DataType::Text)
            .primary_key("key")
            .build()
            .expect("valid schema"),
    )
    .expect("fresh db");

    let commits = [
        ("3fa9c1d2", "fix race in flush path", "kim"),
        ("77be02aa", "refactor parser tables", "ana"),
        ("9c0de111", "harden input validation", "kim"),
        ("badc0ffe", "bump allocator defaults", "raj"),
    ];
    for (sha, msg, author) in commits {
        db.insert("commits", vec![Value::text(sha), Value::text(msg), Value::text(author)])
            .expect("unique rows");
    }
    let vulns = [("CVE-2024-0042", "high", "parser"), ("CVE-2023-9911", "medium", "allocator")];
    for (cve, sev, comp) in vulns {
        db.insert("vulns", vec![Value::text(cve), Value::text(sev), Value::text(comp)])
            .expect("unique rows");
    }
    let mut tickets = Vec::new();
    for (key, title) in [
        ("TCK-101", "crash on concurrent flush"),
        ("TCK-102", "parser mishandles escapes"),
        ("TCK-103", "memory spike under load"),
    ] {
        tickets.push(
            db.insert("tickets", vec![Value::text(key), Value::text(title)]).expect("unique rows"),
        );
    }

    // ---- Domain knowledge: the ConceptRefs of this domain -------------
    let mut meta = NebulaMeta::new();
    meta.add_concept(ConceptRef {
        concept: "Commit".into(),
        table: "commits".into(),
        referenced_by: vec![vec!["sha".into()]],
    });
    meta.add_concept(ConceptRef {
        concept: "Vulnerability".into(),
        table: "vulns".into(),
        referenced_by: vec![vec!["cve".into()]],
    });
    // Short git SHAs and CVE ids are syntactically crisp.
    meta.set_pattern("commits", "sha", Pattern::compile("[0-9a-f]{8}").expect("valid"));
    meta.set_pattern("vulns", "cve", Pattern::compile("CVE-[0-9]{4}-[0-9]{4}").expect("valid"));
    // Engineers say "fix", "change", or "patch" for commits.
    meta.add_table_synonym("fix", "commits");
    meta.add_table_synonym("patch", "commits");
    meta.add_table_equivalent("commit", "commits");
    meta.add_table_equivalent("vulnerability", "vulns");
    meta.add_table_synonym("cve", "vulns");

    // ---- The proactive engine -----------------------------------------
    let mut store = AnnotationStore::new();
    let mut nebula = Nebula::new(
        NebulaConfig {
            bounds: VerificationBounds::new(0.3, 0.85),
            stability: StabilityConfig { batch_size: 5, mu: 0.5 },
            ..Default::default()
        },
        meta,
    );
    let mut report = SessionReport::new();

    let comments = [
        (tickets[0], "bisect points at commit 3fa9c1d2 which reordered the flush locks"),
        (
            tickets[1],
            "root cause is the parser rewrite, see commit 77be02aa and the \
             related vulnerability CVE-2024-0042",
        ),
        (
            tickets[2],
            "suspect the allocator patch badc0ffe is implicated; the cve \
             CVE-2023-9911 describes the same pattern",
        ),
    ];
    for (ticket, text) in comments {
        let outcome = nebula
            .process_annotation(
                &db,
                &mut store,
                &Annotation::new(text).of_kind("comment"),
                &[ticket],
            )
            .expect("pipeline runs");
        report.record(&outcome);
        println!("comment on {}:", db.get(ticket).expect("live").get_by_name("key").expect("col"));
        for (t, conf) in &outcome.accepted {
            println!("  linked (conf {conf:.2}) -> {}", db.get(*t).expect("live").render());
        }
        for vid in &outcome.pending {
            let task = nebula.queue().get(*vid).expect("queued");
            println!(
                "  pending task {vid} (conf {:.2}) -> {}",
                task.confidence,
                db.get(task.tuple).expect("live").render()
            );
        }
    }

    // Work the queue: accept everything the evidence supports.
    let vids: Vec<u64> = nebula.queue().iter().map(|t| t.vid).collect();
    for vid in vids {
        nebula.resolve_task(&mut store, vid, true).expect("task resolves");
        report.record_resolution(true);
    }

    println!("\n{report}");

    // The cross-domain payoff: querying a commit now surfaces the ticket
    // discussion that referenced it.
    let c = db
        .table_by_name("commits")
        .expect("exists")
        .lookup_key(&Value::text("77be02aa"))
        .expect("present");
    let notes = store.annotations_of(c);
    println!("\nannotations now attached to commit 77be02aa: {}", notes.len());
    for aid in notes {
        println!("  {}", store.annotation(aid).expect("stored").text);
    }
    assert!(
        !store.annotations_of(c).is_empty(),
        "the comment was proactively linked to the commit it references"
    );
}

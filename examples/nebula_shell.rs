//! Interactive extended-SQL shell over a synthetic annotated database.
//!
//! ```text
//! cargo run --release --example nebula_shell
//! nebula> SELECT gene WHERE family = 'F1' LIMIT 3;
//! nebula> ANNOTATE gene 'JW0005' 'correlated with JW0001 under stress';
//! nebula> PENDING;
//! nebula> VERIFY ATTACHMENT 0;
//! nebula> EXIT;
//! ```
//!
//! Pipe a script on stdin for non-interactive use.

use nebula::prelude::*;
use nebula::Shell;
use std::io::{BufRead, Write};

fn main() {
    let spec = DatasetSpec::tiny();
    let mut shell = Shell::with_dataset(&spec, 42);
    println!(
        "nebula shell — {} tuples, {} annotations loaded; type HELP for commands.",
        shell.db.total_tuples(),
        shell.store.annotation_count()
    );

    let stdin = std::io::stdin();
    let interactive = atty_guess();
    loop {
        if interactive {
            print!("nebula> ");
            std::io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if trimmed.eq_ignore_ascii_case("exit") || trimmed.eq_ignore_ascii_case("exit;") {
            break;
        }
        match shell.exec(trimmed) {
            Ok(out) if out.is_empty() => {}
            Ok(out) => println!("{out}"),
            Err(e) => println!("error: {e}"),
        }
    }
}

/// Crude interactivity guess without platform crates: honor an env
/// override, default to interactive.
fn atty_guess() -> bool {
    std::env::var("NEBULA_SHELL_BATCH").is_err()
}

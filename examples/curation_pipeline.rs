//! A realistic curation pipeline over a synthetic UniProt-like database:
//! a stream of new publications arrives, Nebula discovers their missing
//! attachments, the ACG matures until focal-spreading search engages, and
//! a (simulated) expert works the pending queue. Ends with the paper's
//! four assessment criteria for the whole run.
//!
//! ```text
//! cargo run --release --example curation_pipeline
//! ```

use nebula::nebula_core::{assess_predictions, AssessmentReport, SessionReport, StabilityConfig};
use nebula::nebula_workload::{build_workload, WorkloadSpec};
use nebula::prelude::*;

fn main() {
    // A mid-size dataset; its publications pre-populate the store and ACG.
    let spec = DatasetSpec::small();
    let mut bundle = generate_dataset(&spec, 7);

    let config = NebulaConfig {
        search_mode: SearchMode::FocalSpreadAuto { coverage: 0.95 },
        require_stable: true,
        bounds: VerificationBounds::new(0.6, 0.8), // near the BoundsSetting optimum
        stability: StabilityConfig { batch_size: 10, mu: 0.3 },
        ..Default::default()
    };
    let mut nebula = Nebula::new(config, bundle.meta.clone());
    nebula.bootstrap_acg(&bundle.annotations);
    println!(
        "bootstrap: {} annotations, ACG {} nodes / {} edges",
        bundle.annotations.annotation_count(),
        nebula.acg().node_count(),
        nebula.acg().edge_count()
    );

    // A stream of 45 brand-new publications (the workload generator keeps
    // their ground-truth reference sets for the final assessment).
    let stream = build_workload(&bundle, &WorkloadSpec { sizes: vec![500], per_subset: 15 }, 99);
    let mut reports: Vec<AssessmentReport> = Vec::new();
    let mut session = SessionReport::new();
    let mut spread_used = 0usize;

    for (i, wa) in stream[0].annotations.iter().enumerate() {
        // The author attaches the publication to one tuple; the rest is
        // Nebula's job.
        let focal = vec![wa.ideal[0]];
        let outcome = nebula
            .process_annotation(&bundle.db, &mut bundle.annotations, &wa.annotation, &focal)
            .expect("processing succeeds");
        if outcome.used_focal_spread {
            spread_used += 1;
        }
        session.record(&outcome);

        // The expert (simulated with the ground truth) works the queue.
        for vid in &outcome.pending {
            let task = nebula.queue().get(*vid).expect("pending").clone();
            let correct = wa.ideal.contains(&task.tuple);
            nebula.resolve_task(&mut bundle.annotations, *vid, correct).expect("task resolves");
            session.record_resolution(correct);
        }

        // Record the assessment for this annotation.
        let (_, report) =
            assess_predictions(&outcome.candidates, &nebula.config().bounds, &wa.ideal, &focal);
        reports.push(report);

        if (i + 1) % 15 == 0 {
            println!(
                "after {:>2} annotations: ACG stable = {}, focal-spreading used {} times, \
                 hop-profile points = {}",
                i + 1,
                nebula.acg().is_stable(),
                spread_used,
                nebula.profile().total()
            );
        }
    }

    let avg = AssessmentReport::average(&reports);
    println!("\nwhole-run assessment (45 annotations):");
    println!("  F_N = {:.1}%  (missed attachments)", avg.f_n * 100.0);
    println!("  F_P = {:.1}%  (wrong auto-accepts)", avg.f_p * 100.0);
    println!("  M_F = {:.1}   (expert verifications per annotation)", avg.m_f);
    println!("  M_H = {:.2}   (expert-accept ratio)", avg.m_h);
    println!("  expert actions total: {}", session.expert_accepts + session.expert_rejects);
    println!(
        "  profile coverage: K=2 -> {:.0}%, K=3 -> {:.0}%",
        nebula.profile().coverage(2) * 100.0,
        nebula.profile().coverage(3) * 100.0
    );
    println!(
        "
{session}"
    );
}
